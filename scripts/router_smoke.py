#!/usr/bin/env python
"""Router smoke check: 3 shards behind the consistent-hash front door.

Two legs, both against real ``paraverser`` subprocesses:

* **Golden leg** — ``paraverser route --shards 3`` spawns its own
  backends (deterministic ``shard<i>`` ring names); a fixed serial
  traffic script (5 evals + 1 fanned-out campaign) is checked
  bit-identical against in-process reference runs, then the ``router.*``
  stats tree is compared leaf-for-leaf against the committed golden
  (``tests/golden/router_smoke.json``), masking only the wall-clock
  ``router.runtime.*`` leaves.  ``--write-golden`` regenerates the
  golden from the same verified traffic (see
  scripts/gen_stats_baseline.sh).
* **Kill leg** — the router adopts 3 script-owned serve backends via
  ``--backends``; one backend is SIGKILLed while a campaign's windows
  are in flight, and the merged row must still equal the in-process
  reference exactly, with ``router.re_dispatches >= 1`` and the dead
  shard marked down.

Exits non-zero on any failure; the caller wraps it in a hard timeout.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time

LISTEN = re.compile(r"listening on ([\d.]+):(\d+)")
GOLDEN = os.path.join("tests", "golden", "router_smoke.json")
IGNORE = ("router.runtime.*",)
BUDGET = 4000
SEED = 7
EVALS = [
    ("exchange2", "paraverser-full"),
    ("mcf", "paraverser-full"),
    ("exchange2", "dual-lockstep"),
    ("mcf", "paraverser-sampling"),
    ("exchange2", "paraverser-full"),  # repeat: same row again
]


def _spawn(argv: list[str], tag: str) -> tuple[subprocess.Popen, str, int]:
    """Start a subprocess, parse its listen line, keep stdout drained."""
    process = subprocess.Popen(argv, stdout=subprocess.PIPE,
                               stderr=subprocess.STDOUT, text=True)
    assert process.stdout is not None
    host = port = None
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise SystemExit(f"{tag} exited before listening "
                             f"(code {process.poll()})")
        sys.stdout.write(f"{tag}: {line}")
        match = LISTEN.search(line)
        if match:
            host, port = match.group(1), int(match.group(2))
            break
    if port is None:
        raise SystemExit(f"{tag} never reported its port")

    def _drain() -> None:
        for extra in process.stdout:
            sys.stdout.write(f"{tag}: {extra}")

    threading.Thread(target=_drain, daemon=True).start()
    return process, host, port


def _stop(process: subprocess.Popen, sig: int = signal.SIGTERM) -> None:
    if process.poll() is None:
        process.send_signal(sig)
    try:
        process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait()


def _direct_eval_row(workload: str, backend_name: str) -> dict:
    """Reference result: direct in-process pipeline evaluation."""
    from repro.detect import get_backend
    from repro.harness.runner import WorkloadCache

    cache = WorkloadCache(max_instructions=BUDGET, seed=SEED,
                          trace_cache=None)
    report = get_backend(backend_name).evaluate(cache, workload)
    return {
        "backend": report.backend,
        "workload": report.benchmark,
        "slowdown_percent": report.slowdown_percent,
        "coverage": report.coverage,
        "segments": report.segments,
        "verified_clean": report.verified_clean,
    }


def _direct_campaign_row(workload: str, trials: int) -> dict:
    from repro.faults.engine import CampaignSpec, run_campaign

    spec = CampaignSpec(workload=workload, instructions=BUDGET,
                        seed=SEED, trials=trials)
    return run_campaign(spec, jobs=1).to_row()


def _check_campaign_row(routed: dict, reference: dict, label: str) -> None:
    from repro.router import RUNTIME_ROW_KEYS

    for key, expected in reference.items():
        if key in RUNTIME_ROW_KEYS:
            continue
        if routed.get(key) != expected:
            raise SystemExit(
                f"{label}: campaign row diverges at {key!r}: "
                f"routed {routed.get(key)!r} != direct {expected!r}")


def _masked(flat: dict[str, float]) -> dict[str, float]:
    return {key: value for key, value in flat.items()
            if not any(fnmatch.fnmatchcase(key, glob) for glob in IGNORE)}


# -- golden leg --------------------------------------------------------------

def golden_leg(write_golden: bool) -> None:
    from repro.obs.diff import flatten_tree
    from repro.serve.client import EvalClient
    from repro.serve.protocol import CampaignRequest, EvalRequest

    trace_dir = tempfile.mkdtemp(prefix="router-smoke-")
    stats_path = os.path.join(trace_dir, "route_shutdown_stats.json")
    router, host, port = _spawn(
        [sys.executable, "-m", "repro.cli", "route",
         "--shards", "3", "--port", "0", "--workers", "1",
         "--batch-window-ms", "20", "--health-interval", "0",
         "--trace-cache", trace_dir, "--stats-json", stats_path],
        "route")
    try:
        with EvalClient(host, port) as client:
            for workload, backend in EVALS:
                response = client.evaluate(EvalRequest(
                    workload=workload, backend=backend,
                    instructions=BUDGET, seed=SEED, timeout_s=240.0))
                if not response.ok:
                    raise SystemExit(f"eval failed: {response.error}")
                expected = _direct_eval_row(workload, backend)
                got = {key: response.result[key] for key in expected}
                if got != expected:
                    raise SystemExit(
                        f"routed eval diverges for {workload}/{backend}:"
                        f"\n  routed: {got}\n  direct: {expected}")
            print(f"{len(EVALS)} routed evals bit-identical to direct runs")

            response = client.campaign(CampaignRequest(
                workload="exchange2", instructions=BUDGET, seed=SEED,
                trials=9, timeout_s=240.0))
            if not response.ok:
                raise SystemExit(f"campaign failed: {response.error}")
            _check_campaign_row(response.result,
                                _direct_campaign_row("exchange2", 9),
                                "golden leg")
            print("fanned-out campaign row bit-identical to direct run")

            tree = client.stats()
        candidate = {"router": tree["router"]}

        if write_golden:
            os.makedirs(os.path.dirname(GOLDEN), exist_ok=True)
            with open(GOLDEN, "w") as handle:
                json.dump(candidate, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"golden written: {GOLDEN}")
        else:
            with open(GOLDEN) as handle:
                golden = json.load(handle)
            got = _masked(flatten_tree(candidate))
            want = _masked(flatten_tree(golden))
            if got != want:
                drift = sorted(set(got) ^ set(want)) + sorted(
                    key for key in set(got) & set(want)
                    if got[key] != want[key])
                raise SystemExit(
                    "router stats drifted from golden at: "
                    + ", ".join(f"{key} ({want.get(key)} -> "
                                f"{got.get(key)})" for key in drift))
            print(f"router stats bit-exact vs golden "
                  f"({len(want)} gated leaves)")
    finally:
        _stop(router, signal.SIGINT)

    # The shutdown dump is part of the CLI contract (--stats-json).
    with open(stats_path) as handle:
        dumped = json.load(handle)
    if "router" not in dumped:
        raise SystemExit("route --stats-json dump has no router group")
    print("route --stats-json shutdown dump written and well-formed")


# -- kill leg ----------------------------------------------------------------

def kill_leg() -> None:
    from repro.serve.client import EvalClient
    from repro.serve.protocol import CampaignRequest

    trace_dir = tempfile.mkdtemp(prefix="router-smoke-kill-")
    backends = []
    router = None
    try:
        for _ in range(3):
            backends.append(_spawn(
                [sys.executable, "-m", "repro.cli", "serve",
                 "--port", "0", "--workers", "1",
                 "--batch-window-ms", "20", "--trace-cache", trace_dir],
                "serve"))
        addresses = ",".join(f"{host}:{port}"
                             for _, host, port in backends)
        router, host, port = _spawn(
            [sys.executable, "-m", "repro.cli", "route",
             "--port", "0", "--backends", addresses,
             "--health-interval", "1.0"],
            "route")

        request = CampaignRequest(workload="xz", instructions=BUDGET,
                                  seed=SEED, trials=9, timeout_s=240.0)
        result: dict = {}

        def send() -> None:
            with EvalClient(host, port) as client:
                result["response"] = client.campaign(request)

        sender = threading.Thread(target=send)
        sender.start()
        # Trial windows need a fresh xz trace build, so they are still
        # in flight when the kill lands.
        sender.join(timeout=0.4)
        if not sender.is_alive():
            raise SystemExit("campaign finished before the kill; "
                             "raise the trial count")
        victim = backends[0][0]
        victim.kill()
        victim.wait()
        print(f"SIGKILLed backend pid {victim.pid} mid-campaign")
        sender.join(timeout=240)
        if sender.is_alive():
            raise SystemExit("campaign never completed after the kill")

        response = result["response"]
        if not response.ok:
            raise SystemExit(
                f"campaign failed after the kill: {response.error}")
        _check_campaign_row(response.result,
                            _direct_campaign_row("xz", 9), "kill leg")
        print("post-kill campaign row bit-identical to direct run")

        with EvalClient(host, port) as client:
            router_stats = client.stats()["router"]
        if router_stats["re_dispatches"] < 1:
            raise SystemExit(f"no re-dispatch recorded: {router_stats}")
        healthy = sum(s["healthy"]
                      for s in router_stats["shards"].values())
        if healthy != 2:
            raise SystemExit(f"expected 2 healthy shards: {router_stats}")
        print(f"re-dispatches: {router_stats['re_dispatches']}, "
              f"mark-downs: {router_stats['mark_downs']}, "
              f"healthy shards: {healthy}/3")
    finally:
        if router is not None:
            _stop(router)
        for process, _, _ in backends:
            _stop(process)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write-golden", action="store_true",
                        help=f"regenerate {GOLDEN} from verified traffic"
                             " instead of gating against it")
    parser.add_argument("--skip-kill-leg", action="store_true",
                        help="run only the golden leg")
    args = parser.parse_args()

    golden_leg(args.write_golden)
    if not args.skip_kill_leg:
        kill_leg()
    print("router smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
