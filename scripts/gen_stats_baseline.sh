#!/bin/sh
# Regenerate the committed stats baseline the CI regression gate
# compares against (see .github/workflows/ci.yml).  Run from the repo
# root after an intentional change to simulated statistics.
set -e
PYTHONPATH=src python -m repro.cli run -w mcf -n 20000 --stage-jobs 2 \
  --stats-json tests/golden/stats_smoke.json
# Campaign coverage baseline: trial outcomes are a pure function of
# (spec, trial), so these leaves are deterministic across hosts and
# worker counts; faults.runtime.* is wall-clock and masked in CI.
PYTHONPATH=src python -m repro.cli campaign -w mcf -t 10 -n 20000 -j 1 \
  --stats-json tests/golden/campaign_smoke.json
# Scenario-matrix baseline: one campaign per detection scheme
# (paraverser, dme, ithica-sdc, meek-ro) under faults.<scheme>.*; same
# purity argument as above, so CI regenerates with -j 2 and demands
# bit-identity with faults.*runtime* masked.
PYTHONPATH=src python -m repro.cli scenarios -w mcf -t 8 -n 20000 -j 1 \
  --stats-json tests/golden/scenarios_smoke.json
# Fleet traffic baseline: every leaf is a pure function of the config
# matrix (sha256 per-request RNG streams, rep-order merge), so CI can
# regenerate it with -j 2 and demand bit-identity; fleet.runtime.* is
# wall-clock and masked in CI.
PYTHONPATH=src python -m repro.cli fleet --policies shortest,jbsq2 \
  --modes full,opportunistic --loads 0.7,0.92 \
  --duration 0.5 --reps 2 -j 1 \
  --stats-json tests/golden/fleet_smoke.json
# Control-plane baseline: the diurnal bench's three arms (always-full,
# always-opportunistic, closed-loop threshold controller).  Every
# control.*/power.* leaf is a pure function of the config — controllers
# are rebuilt per rep from the JSON spec and epoch records merge in rep
# order — so CI regenerates the tree with -j 2 and demands bit-identity.
PYTHONPATH=src python -m repro.cli control --servers 4 --load 0.7 \
  --duration 1.0 --epoch-s 0.1 --reps 2 -j 1 \
  --stats-json tests/golden/control_smoke.json
# Router baseline: the smoke script's fixed serial traffic against 3
# spawned shards yields a deterministic router.* tree (sha256 ring
# placement, exact-integer campaign merge); router.runtime.* is
# wall-clock and masked in CI.  The smoke verifies result bit-identity
# before writing the golden.
PYTHONPATH=src python scripts/router_smoke.py --write-golden \
  --skip-kill-leg
