#!/bin/sh
# Regenerate the committed stats baseline the CI regression gate
# compares against (see .github/workflows/ci.yml).  Run from the repo
# root after an intentional change to simulated statistics.
set -e
PYTHONPATH=src python -m repro.cli run -w mcf -n 20000 --stage-jobs 2 \
  --stats-json tests/golden/stats_smoke.json
