"""CI bench-smoke gate: fail on throughput regression vs committed numbers.

Measures functional-execution and timing-replay instructions/second the
same way ``benchmarks/test_bench_throughput.py`` does (warm best-of-N,
budget via ``REPRO_BENCH_BUDGET``) and compares against the
``functional_inst_per_sec`` / ``timing_inst_per_sec`` values committed
in ``BENCH_throughput.json``.  Exits non-zero when either rate drops
more than ``REPRO_BENCH_GATE_THRESHOLD`` (default 0.10, i.e. >10%
regression) below its committed value.

CI hosts are slower than the machine the committed numbers were taken
on; set ``REPRO_BENCH_GATE_SCALE`` to the expected host ratio (e.g.
``0.5`` halves the committed bar) when calibrating a new runner class.
"""

import json
import os
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.core.system import ParaVerserSystem, warm_addresses  # noqa: E402
from repro.cpu.timing import TimingModel  # noqa: E402
from repro.harness.runner import _probe_config, main_x2  # noqa: E402
from repro.mem.hierarchy import SharedUncore  # noqa: E402
from repro.workloads.generator import build_program  # noqa: E402
from repro.workloads.profiles import get_profile  # noqa: E402

BENCH = "gcc"
BUDGET = int(os.environ.get("REPRO_BENCH_BUDGET", 30_000))
REPS = int(os.environ.get("REPRO_BENCH_REPS", 5))
SEED = 7


def _best_of(reps, fn):
    best = float("inf")
    value = None
    for _ in range(reps):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def measure() -> tuple[float, float]:
    program = build_program(get_profile(BENCH), seed=SEED)
    system = ParaVerserSystem(_probe_config(SEED))
    system.execute(program, BUDGET)  # warm-up
    elapsed, run = _best_of(REPS, lambda: system.execute(program, BUDGET))
    functional_ips = run.instructions / elapsed

    main = main_x2()
    hierarchy = main.config.hierarchy
    uncore = SharedUncore(hierarchy.l3, hierarchy.dram,
                          hierarchy.uncore_clock_ghz)
    model = TimingModel(main, uncore)
    model.warm_data(warm_addresses(program))
    model.simulate(program, run.columns)  # warm-up
    elapsed, _ = _best_of(REPS, lambda: model.simulate(program, run.columns))
    return functional_ips, len(run.columns) / elapsed


def main() -> int:
    committed = json.loads((ROOT / "BENCH_throughput.json").read_text())
    threshold = float(os.environ.get("REPRO_BENCH_GATE_THRESHOLD", "0.10"))
    scale = float(os.environ.get("REPRO_BENCH_GATE_SCALE", "1.0"))
    functional_ips, timing_ips = measure()
    failed = False
    for name, measured in (("functional", functional_ips),
                           ("timing", timing_ips)):
        bar = committed[f"{name}_inst_per_sec"] * scale * (1.0 - threshold)
        status = "ok" if measured >= bar else "REGRESSION"
        if measured < bar:
            failed = True
        print(f"{name:10s} {measured:12,.0f} inst/s "
              f"(bar {bar:12,.0f}, committed "
              f"{committed[f'{name}_inst_per_sec']:12,} "
              f"x scale {scale} x {1.0 - threshold:.2f}) {status}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
