#!/usr/bin/env python
"""Serve smoke check: real server process, concurrent CLI clients.

Starts ``paraverser serve`` as a subprocess, issues two concurrent
``paraverser eval`` requests for the same (workload, backend) pair,
and asserts:

* both clients get identical results;
* the served stats tree records a batch (batch-size stat >= 1).

Exits non-zero on any failure; the caller wraps it in a hard timeout so
a hung event loop fails fast instead of stalling CI.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

WORKLOAD = "exchange2"
BACKEND = "paraverser-full"
BUDGET = "6000"
LISTEN = re.compile(r"listening on ([\d.]+):(\d+)")


def _eval_once(host: str, port: int) -> dict:
    out = subprocess.check_output(
        [sys.executable, "-m", "repro.cli", "eval",
         "-w", WORKLOAD, "--backend", BACKEND, "-n", BUDGET,
         "--host", host, "--port", str(port),
         "--timeout", "240", "--json"],
        text=True)
    return json.loads(out)


def main() -> int:
    trace_dir = tempfile.mkdtemp(prefix="serve-smoke-")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", "0", "--workers", "2", "--batch-window-ms", "300",
         "--trace-cache", trace_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        host = port = None
        deadline = time.monotonic() + 60
        assert server.stdout is not None
        while time.monotonic() < deadline:
            line = server.stdout.readline()
            if not line:
                raise SystemExit("server exited before listening")
            sys.stdout.write(f"server: {line}")
            match = LISTEN.search(line)
            if match:
                host, port = match.group(1), int(match.group(2))
                break
        if port is None:
            raise SystemExit("server never reported its port")

        with ThreadPoolExecutor(max_workers=2) as pool:
            rows = list(pool.map(lambda _: _eval_once(host, port),
                                 range(2)))
        if rows[0] != rows[1]:
            raise SystemExit(f"divergent results:\n{rows[0]}\n{rows[1]}")
        print(f"identical results: slowdown "
              f"{rows[0]['slowdown_percent']:+.2f}%, "
              f"coverage {rows[0]['coverage'] * 100:.1f}%")

        from repro.serve.client import EvalClient

        with EvalClient(host, port) as client:
            serve = client.stats()["serve"]
        batch_max = serve["batch_requests"]["max"]
        if not batch_max or batch_max < 1:
            raise SystemExit(f"no batch recorded: {serve}")
        print(f"batches: {serve['batches']}, "
              f"max batch size: {batch_max}, "
              f"unique sims: {serve['unique_simulations']}, "
              f"requests served: {serve['requests_served']}")
        return 0
    finally:
        server.terminate()
        try:
            server.wait(timeout=15)
        except subprocess.TimeoutExpired:
            server.kill()


if __name__ == "__main__":
    sys.exit(main())
