"""Memory-access semantics of the functional executor."""

from hypothesis import given, strategies as st

from repro.cpu.functional import DirectMemoryPort, FunctionalCore
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.mem.memory import Memory


def run_ops(*instructions, ints=None, image=None):
    instrs = list(instructions) + [Instruction(Opcode.HALT)]
    program = Program("t", instrs, memory_image=image or {})
    program.validate()
    memory = Memory(program.memory_image)
    core = FunctionalCore(program, DirectMemoryPort(memory))
    for idx, value in (ints or {}).items():
        core.regs.write_int(idx, value)
    result = core.run(1000)
    return core, memory, result


def test_store_then_load():
    core, memory, _ = run_ops(
        Instruction(Opcode.ST, rs2=2, rs1=1, imm=0),
        Instruction(Opcode.LD, rd=3, rs1=1, imm=0),
        ints={1: 0x1000, 2: 0xDEAD},
    )
    assert core.regs.read_int(3) == 0xDEAD
    assert memory.load(0x1000, 8) == 0xDEAD


def test_load_with_offset():
    _, memory, _ = run_ops(
        Instruction(Opcode.ST, rs2=2, rs1=1, imm=24),
        ints={1: 0x1000, 2: 7},
    )
    assert memory.load(0x1018, 8) == 7


def test_narrow_store_masks_value():
    core, memory, _ = run_ops(
        Instruction(Opcode.ST, rs2=2, rs1=1, imm=0, size=2),
        Instruction(Opcode.LD, rd=3, rs1=1, imm=0, size=2),
        ints={1: 0x2000, 2: 0x12345},
    )
    assert core.regs.read_int(3) == 0x2345


def test_narrow_load_zero_extends():
    core, _, _ = run_ops(
        Instruction(Opcode.LD, rd=3, rs1=1, imm=0, size=1),
        ints={1: 0x3000},
        image={0x3000: 0xFFEE},
    )
    assert core.regs.read_int(3) == 0xEE


def test_uninitialised_memory_reads_zero():
    core, _, _ = run_ops(
        Instruction(Opcode.LD, rd=3, rs1=1, imm=0),
        ints={1: 0x9999000},
    )
    assert core.regs.read_int(3) == 0


def test_swap_returns_old_value_and_stores_new():
    core, memory, _ = run_ops(
        Instruction(Opcode.SWP, rd=3, rs2=2, rs1=1),
        ints={1: 0x4000, 2: 99},
        image={0x4000: 55},
    )
    assert core.regs.read_int(3) == 55
    assert memory.load(0x4000, 8) == 99


def test_gather_loads_two_addresses():
    core, _, _ = run_ops(
        Instruction(Opcode.LDG, rd=3, rd2=4, rs1=1, rs2=2),
        ints={1: 0x1000, 2: 0x2000},
        image={0x1000: 11, 0x2000: 22},
    )
    assert core.regs.read_int(3) == 11
    assert core.regs.read_int(4) == 22


def test_scatter_stores_two_addresses():
    _, memory, _ = run_ops(
        Instruction(Opcode.STS, rs3=3, rs1=1, rs2=2),
        ints={1: 0x1000, 2: 0x2000, 3: 77},
    )
    assert memory.load(0x1000, 8) == 77
    assert memory.load(0x2000, 8) == 77


def test_store_conditional_succeeds_on_main_core():
    core, memory, _ = run_ops(
        Instruction(Opcode.SC, rd=3, rs2=2, rs1=1),
        ints={1: 0x5000, 2: 123},
    )
    assert core.regs.read_int(3) == 1  # success flag
    assert memory.load(0x5000, 8) == 123


def test_trace_records_load_metadata():
    _, _, result = run_ops(
        Instruction(Opcode.LD, rd=3, rs1=1, imm=8, size=4),
        ints={1: 0x1000},
        image={0x1008: 0xABCD},
    )
    entry = result.trace[0]
    assert entry.addr == 0x1008
    assert entry.size == 4
    assert entry.loaded == 0xABCD


def test_trace_records_store_metadata():
    _, _, result = run_ops(
        Instruction(Opcode.ST, rs2=2, rs1=1, imm=0, size=2),
        ints={1: 0x1000, 2: 0x12345},
    )
    entry = result.trace[0]
    assert entry.stored == 0x2345
    assert entry.size == 2


def test_trace_records_gather_pair():
    _, _, result = run_ops(
        Instruction(Opcode.LDG, rd=3, rd2=4, rs1=1, rs2=2),
        ints={1: 0x1000, 2: 0x2000},
        image={0x1000: 1, 0x2000: 2},
    )
    entry = result.trace[0]
    assert entry.addr == 0x1000 and entry.addr2 == 0x2000
    assert entry.loaded == 1 and entry.loaded2 == 2


@given(st.integers(min_value=0, max_value=(1 << 40) - 1),
       st.sampled_from([1, 2, 4, 8]),
       st.integers(min_value=0))
def test_store_load_roundtrip_property(addr, size, value):
    _, memory, _ = run_ops(
        Instruction(Opcode.ST, rs2=2, rs1=1, imm=0, size=size),
        ints={1: addr, 2: value & ((1 << 64) - 1)},
    )
    assert memory.load(addr, size) == value & ((1 << (8 * size)) - 1)
