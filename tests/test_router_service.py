"""Router dispatch semantics against scripted in-process shards.

The FakeShard speaks the serve wire protocol but computes campaign
rows from a pure function of ``(seed, trial)`` — the same contract the
real engine honours — so fan-out, failover and the exact-integer merge
can be tested deterministically and fast.  Bit-identity against the
*real* engine is covered by the window-merge test at the bottom and by
the spawned-backend end-to-end tests in ``test_router_e2e.py``.
"""

import asyncio
import dataclasses

from repro.faults.engine import CampaignSpec, run_campaign
from repro.router.backends import Backend, BackendManager
from repro.router.service import (
    RUNTIME_ROW_KEYS,
    RouterService,
    merge_campaign_rows,
)
from repro.serve import protocol
from repro.serve.client import AsyncEvalClient
from repro.serve.protocol import CampaignRequest, EvalRequest, STATUS_OK

KINDS = ("lsl_corrupt", "alu_wrong")


def fake_campaign_row(workload="exchange2", checkers="1xA510@1.0",
                      mode="opportunistic", seed=7, trials=10,
                      trial_offset=0):
    """Deterministic per-trial outcomes over one trial window.

    Trial ``t`` is masked when ``t % 5 == 0``, missed when ``t % 3 ==
    0``, detected otherwise with latency ``(seed + t) * 10`` — a pure
    function of global trial ids, like the real engine's sha256 seeds.
    """
    by_kind = {k: {"injected": 0, "detected": 0, "masked": 0}
               for k in KINDS}
    detected = masked = latency_sum = 0
    latency_max = 0
    for t in range(trial_offset, trial_offset + trials):
        counts = by_kind[KINDS[t % len(KINDS)]]
        counts["injected"] += 1
        if t % 5 == 0:
            masked += 1
            counts["masked"] += 1
        elif t % 3 != 0:
            detected += 1
            latency_sum += (seed + t) * 10
            latency_max = max(latency_max, (seed + t) * 10)
            counts["detected"] += 1
    effective = trials - masked
    return {
        "workload": workload, "checkers": checkers, "mode": mode,
        "scheme": "paraverser",
        "trials": trials, "detected": detected, "masked": masked,
        "missed": trials - detected - masked,
        "detection_rate_all": detected / trials if trials else 0.0,
        "detection_rate_effective": (detected / effective
                                     if effective else 0.0),
        "sdc_escape_rate": ((trials - detected - masked) / trials
                            if trials else 0.0),
        "detection_latency_sum": latency_sum,
        "mean_detection_latency": (latency_sum / detected
                                   if detected else None),
        "detection_latency_max": latency_max,
        "by_kind": by_kind,
        "elapsed_s": 0.0, "jobs": 1, "resumed_trials": 0,
    }


class FakeShard:
    """Scripted serve shard: wire-compatible, instantly deterministic."""

    def __init__(self, name, delay_s=0.0):
        self.name = name
        self.delay_s = delay_s
        self.evals = []       # payloads of eval requests seen
        self.campaigns = []   # payloads of campaign requests seen
        self.drop_next = 0    # close the connection instead of answering
        self.server = None
        self.host = None
        self.port = None

    async def start(self):
        self.server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0)
        self.host, self.port = self.server.sockets[0].getsockname()[:2]
        return self

    async def stop(self):
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
            self.server = None

    async def _handle(self, reader, writer):
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                payload = protocol.decode_message(line)
                op = payload.get("op", protocol.OP_EVAL)
                if op != protocol.OP_PING and self.drop_next > 0:
                    self.drop_next -= 1
                    break  # simulate a crash mid-request
                if self.delay_s:
                    await asyncio.sleep(self.delay_s)
                writer.write(protocol.encode_message(
                    self._respond(payload, op)))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    def _respond(self, payload, op):
        request_id = payload.get("request_id", "")
        if op == protocol.OP_PING:
            result = {"protocol": protocol.PROTOCOL_VERSION}
        elif op == protocol.OP_CAMPAIGN:
            self.campaigns.append(payload)
            result = fake_campaign_row(
                workload=payload["workload"],
                checkers=payload.get("checkers", "1xA510@1.0"),
                mode=payload.get("mode", "opportunistic"),
                seed=payload.get("seed", 7),
                trials=payload.get("trials", 20),
                trial_offset=payload.get("trial_offset", 0))
        else:
            self.evals.append(payload)
            result = {"workload": payload["workload"],
                      "backend": payload.get("backend"),
                      "shard": self.name}
        return {"v": protocol.PROTOCOL_VERSION,
                "status": protocol.STATUS_OK,
                "request_id": request_id, "result": result}


def _manager(shards):
    manager = BackendManager()
    for shard in shards:
        backend = Backend(name=shard.name, host=shard.host,
                          port=shard.port)
        manager.backends[backend.name] = backend
    return manager


class RouterHarness:
    """Three fake shards behind one RouterService, in the test's loop."""

    def __init__(self, count=3, delay_s=0.0, **router_kwargs):
        self.count = count
        self.delay_s = delay_s
        self.router_kwargs = router_kwargs
        self.shards = []
        self.service = None
        self.client = None

    async def __aenter__(self):
        self.shards = [await FakeShard(f"shard{i}",
                                       delay_s=self.delay_s).start()
                       for i in range(self.count)]
        self.router_kwargs.setdefault("health_interval_s", 0.0)
        self.router_kwargs.setdefault("health_timeout_s", 2.0)
        self.service = RouterService(_manager(self.shards),
                                     **self.router_kwargs)
        host, port = await self.service.start()
        self.client = AsyncEvalClient(host, port)
        await self.client.connect()
        return self

    async def __aexit__(self, *exc):
        await self.client.close()
        await self.service.stop()
        for shard in self.shards:
            await shard.stop()

    def shard(self, name):
        return next(s for s in self.shards if s.name == name)

    def counter(self, name, group=None):
        stats = self.service._stats if group is None \
            else self.service._stats.group(group)
        return stats.counter(name).value


def _eval_req(workload="exchange2", **kwargs):
    kwargs.setdefault("backend", "paraverser-full")
    kwargs.setdefault("instructions", 4000)
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("timeout_s", 10.0)
    return EvalRequest(workload=workload, **kwargs)


def _campaign_req(trials=10, **kwargs):
    kwargs.setdefault("workload", "exchange2")
    kwargs.setdefault("instructions", 4000)
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("timeout_s", 10.0)
    return CampaignRequest(trials=trials, **kwargs)


def _sim_row(row):
    """Simulated-result slice of a campaign row (runtime keys off)."""
    return {k: v for k, v in row.items() if k not in RUNTIME_ROW_KEYS}


class TestRouting:
    def test_eval_lands_on_ring_owner(self):
        async def scenario():
            async with RouterHarness() as h:
                workloads = ["exchange2", "mcf", "xz", "omnetpp"]
                for workload in workloads:
                    request = _eval_req(workload=workload)
                    owner = h.service.ring.lookup(request.trace_key())
                    response = await h.client.evaluate(request)
                    assert response.status == STATUS_OK
                    assert response.result["shard"] == owner
                assert h.counter("primary", group="locality") \
                    == len(workloads)
                assert h.counter("failover", group="locality") == 0
                assert h.counter("evals") == len(workloads)

        asyncio.run(scenario())

    def test_response_keeps_caller_request_id(self):
        async def scenario():
            async with RouterHarness() as h:
                response = await h.client.evaluate(
                    _eval_req(request_id="caller-7"))
                assert response.request_id == "caller-7"
                # The shard saw a router-generated forward id instead.
                seen = [p["request_id"] for s in h.shards
                        for p in s.evals]
                assert seen and all(i.startswith("fwd") for i in seen)

        asyncio.run(scenario())

    def test_failover_re_dispatches_and_marks_down(self):
        async def scenario():
            async with RouterHarness() as h:
                request = _eval_req()
                chain = h.service.ring.preference(request.trace_key())
                h.shard(chain[0]).drop_next = 1
                response = await h.client.evaluate(request)
                assert response.status == STATUS_OK
                assert response.result["shard"] == chain[1]
                assert h.counter("re_dispatches") == 1
                assert h.counter("mark_downs") == 1
                assert h.counter("failover", group="locality") == 1
                assert not h.service.manager.backends[chain[0]].healthy

                # The shard is still listening: the next health sweep
                # brings it back, and traffic goes home again.
                await h.service.check_health()
                assert h.service.manager.backends[chain[0]].healthy
                assert h.counter("mark_ups") == 1
                again = await h.client.evaluate(
                    _eval_req(request_id="after"))
                assert again.result["shard"] == chain[0]

        asyncio.run(scenario())

    def test_all_shards_dead_is_an_error_not_a_hang(self):
        async def scenario():
            async with RouterHarness() as h:
                for shard in h.shards:
                    await shard.stop()
                response = await asyncio.wait_for(
                    h.client.evaluate(_eval_req()), timeout=15.0)
                assert response.status == protocol.STATUS_ERROR
                assert "no reachable shard" in response.error
                assert h.counter("unroutable") == 1

        asyncio.run(scenario())

    def test_concurrent_twins_share_one_forward(self):
        async def scenario():
            async with RouterHarness(delay_s=0.2) as h:
                a, b = await asyncio.gather(
                    h.client.evaluate(_eval_req(request_id="twin-a")),
                    h.client.evaluate(_eval_req(request_id="twin-b")))
                assert a.status == b.status == STATUS_OK
                assert a.request_id == "twin-a"
                assert b.request_id == "twin-b"
                assert sum(len(s.evals) for s in h.shards) == 1
                assert h.counter("dedup_hits") == 1

        asyncio.run(scenario())

    def test_ring_op_describes_the_fleet(self):
        async def scenario():
            async with RouterHarness() as h:
                payload = await h.client._send(
                    {"op": protocol.OP_RING, "request_id": "r1"})
                ring = payload["result"]
                assert ring["replicas"] == h.service.ring.replicas
                names = [b["name"] for b in ring["backends"]]
                assert names == ["shard0", "shard1", "shard2"]
                assert all(b["healthy"] for b in ring["backends"])

        asyncio.run(scenario())


class TestCampaignFanOut:
    def test_fanout_partitions_trials_and_merges_exactly(self):
        async def scenario():
            async with RouterHarness() as h:
                request = _campaign_req(trials=10)
                response = await h.client.campaign(request)
                assert response.status == STATUS_OK
                # Windows partition [0, 10) contiguously across shards.
                seen = sorted(
                    ((p["trial_offset"], p["trials"]) for s in h.shards
                     for p in s.campaigns))
                assert sum(n for _, n in seen) == 10
                edges = [0]
                for offset, n in seen:
                    assert offset == edges[-1]
                    edges.append(offset + n)
                assert len(seen) == 3  # every healthy shard got one
                # The merged row is the unsplit row, bit for bit.
                assert _sim_row(response.result) \
                    == _sim_row(fake_campaign_row(trials=10))
                assert h.counter("trials_forwarded",
                                 group="campaign") == 10

        asyncio.run(scenario())

    def test_fanout_survives_a_shard_death_mid_campaign(self):
        async def scenario():
            async with RouterHarness() as h:
                request = _campaign_req(trials=9)
                chain = h.service.ring.preference(request.trace_key())
                # The window primary crashes on its first campaign
                # request; its window must re-dispatch and the merged
                # row must not change.
                h.shard(chain[0]).drop_next = 1
                response = await h.client.campaign(request)
                assert response.status == STATUS_OK
                assert _sim_row(response.result) \
                    == _sim_row(fake_campaign_row(trials=9))
                assert h.counter("re_dispatches") >= 1
                assert h.counter("mark_downs") == 1

        asyncio.run(scenario())

    def test_single_trial_campaign_is_not_split(self):
        async def scenario():
            async with RouterHarness() as h:
                response = await h.client.campaign(_campaign_req(trials=1))
                assert response.status == STATUS_OK
                assert sum(len(s.campaigns) for s in h.shards) == 1

        asyncio.run(scenario())

    def test_fanout_skips_unhealthy_shards(self):
        async def scenario():
            async with RouterHarness() as h:
                down = h.shards[1]
                await down.stop()
                await h.service.check_health()
                assert not h.service.manager.backends[down.name].healthy
                response = await h.client.campaign(_campaign_req(trials=8))
                assert response.status == STATUS_OK
                assert _sim_row(response.result) \
                    == _sim_row(fake_campaign_row(trials=8))
                assert len(down.campaigns) == 0
                assert h.counter("mark_downs") == 1

        asyncio.run(scenario())


class TestMerge:
    def test_merge_requires_rows_and_keeps_identity_fields(self):
        rows = [fake_campaign_row(trials=4, trial_offset=0),
                fake_campaign_row(trials=4, trial_offset=4)]
        merged = merge_campaign_rows(rows)
        assert merged["workload"] == "exchange2"
        assert merged["trials"] == 8
        assert _sim_row(merged) == _sim_row(fake_campaign_row(trials=8))

    def test_merge_sums_trace_cache_traffic(self):
        rows = [fake_campaign_row(trials=2),
                fake_campaign_row(trials=2, trial_offset=2)]
        rows[0]["trace_cache"] = {"hits": 1, "misses": 1}
        rows[1]["trace_cache"] = {"hits": 3, "misses": 0}
        merged = merge_campaign_rows(rows)
        assert merged["trace_cache"] == {"hits": 4, "misses": 1}

    def test_real_engine_windows_merge_bit_identically(self):
        """The acceptance property, against the real fault engine:
        offset windows merged == the unsplit campaign, exactly."""
        spec = CampaignSpec(workload="exchange2", instructions=4000,
                            seed=11, trials=7)
        full = run_campaign(spec, jobs=1).to_row()
        windows = [(0, 3), (3, 2), (5, 2)]
        rows = [run_campaign(
            dataclasses.replace(spec, trial_offset=off, trials=n),
            jobs=1).to_row() for off, n in windows]
        merged = merge_campaign_rows(rows)
        assert _sim_row(merged) == _sim_row(full)
        # Exact means exact: float equality, not approx.
        assert merged["detection_rate_effective"] \
            == full["detection_rate_effective"]
        assert merged["mean_detection_latency"] \
            == full["mean_detection_latency"]
