"""Tests for trace/program serialization."""

import json

import pytest

from repro.core.checker import CheckerCore
from repro.core.system import ParaVerserConfig, ParaVerserSystem
from repro.cpu.config import CoreInstance
from repro.cpu.presets import A510, X2
from repro.cpu.timing import TimingModel
from repro.cpu import traceio
from repro.cpu.traceio import (
    load_run,
    program_from_json,
    program_to_json,
    save_run,
)
from repro.workloads.generator import build_program
from repro.workloads.profiles import get_profile


@pytest.fixture(scope="module")
def run_and_program():
    program = build_program(get_profile("x264"), seed=3)  # incl. BCOPY ops
    config = ParaVerserConfig(
        main=CoreInstance(X2, 3.0), checkers=[CoreInstance(A510, 2.0)],
        seed=3, timeout_instructions=500,
    )
    system = ParaVerserSystem(config)
    return system, program, system.execute(program, 6_000)


def test_program_roundtrip(run_and_program):
    _, program, _ = run_and_program
    restored = program_from_json(program_to_json(program))
    assert restored.name == program.name
    assert len(restored.instructions) == len(program.instructions)
    assert restored.memory_image == program.memory_image
    for a, b in zip(restored.instructions, program.instructions):
        assert a == b


def test_run_roundtrip(tmp_path, run_and_program):
    _, _, run = run_and_program
    path = tmp_path / "run.json"
    save_run(run, path)
    restored = load_run(path)
    assert restored.instructions == run.instructions
    assert restored.halted == run.halted
    assert restored.start_checkpoint.matches(run.start_checkpoint)
    assert restored.end_checkpoint.matches(run.end_checkpoint)
    assert len(restored.trace) == len(run.trace)
    for a, b in zip(restored.trace[:200], run.trace[:200]):
        assert (a.pc, a.addr, a.loaded, a.stored, a.taken, a.next_pc, a.bulk) \
            == (b.pc, b.addr, b.loaded, b.stored, b.taken, b.next_pc, b.bulk)


def test_loaded_trace_is_checkable(tmp_path, run_and_program):
    """A reloaded run must drive segmentation + healthy replay cleanly."""
    system, _, run = run_and_program
    path = tmp_path / "run.json"
    save_run(run, path)
    restored = load_run(path)
    segments = system.segment(restored)
    checker = CheckerCore(restored.program)
    for segment in segments[:3]:
        result = checker.check_segment(segment)
        assert not result.detected, str(result.first_event)


def test_loaded_trace_times_identically(tmp_path, run_and_program):
    _, _, run = run_and_program
    path = tmp_path / "run.json"
    save_run(run, path)
    restored = load_run(path)
    original = TimingModel(CoreInstance(X2, 3.0)).simulate(
        run.program, run.trace)
    reloaded = TimingModel(CoreInstance(X2, 3.0)).simulate(
        restored.program, restored.trace)
    assert reloaded.cycles == pytest.approx(original.cycles)


def test_format_is_binary_container(tmp_path, run_and_program):
    _, _, run = run_and_program
    path = tmp_path / "run.pvtc"
    save_run(run, path)
    data = path.read_bytes()
    assert data.startswith(traceio.MAGIC)
    assert data[4] == traceio.FORMAT_VERSION
    header_len = int.from_bytes(data[5:13], "little")
    header = json.loads(data[13:13 + header_len].decode("utf-8"))
    assert header["n"] == run.instructions
    assert sum(length for _, length in header["sections"]) \
        == len(data) - 13 - header_len


def test_legacy_json_files_still_load(tmp_path, run_and_program):
    """Files written by the v1 JSON writer keep loading bit-identically."""
    _, _, run = run_and_program
    path = tmp_path / "run.json"
    legacy = {
        "version": 1,
        "program": traceio.program_to_json(run.program),
        "trace": [[e.pc, e.addr, e.addr2, e.size, e.loaded, e.loaded2,
                   e.stored, e.nonrep, 1 if e.taken else 0, e.next_pc,
                   list(e.bulk) if e.bulk is not None else None]
                  for e in run.trace],
        "start_checkpoint": {"ints": list(run.start_checkpoint.ints),
                             "fps": list(run.start_checkpoint.fps),
                             "pc": run.start_checkpoint.pc},
        "end_checkpoint": {"ints": list(run.end_checkpoint.ints),
                           "fps": list(run.end_checkpoint.fps),
                           "pc": run.end_checkpoint.pc},
        "halted": run.halted,
        "instructions": run.instructions,
        "class_counts": run.class_counts,
    }
    path.write_text(json.dumps(legacy))
    restored = load_run(path)
    assert restored.instructions == run.instructions
    assert restored.end_checkpoint.matches(run.end_checkpoint)
    assert restored.columns == run.columns


def test_version_check(tmp_path, run_and_program):
    _, _, run = run_and_program
    path = tmp_path / "run.pvtc"
    save_run(run, path)
    data = bytearray(path.read_bytes())
    data[4] = 99  # container version byte
    path.write_bytes(bytes(data))
    with pytest.raises(ValueError):
        load_run(path)
    path.write_text(json.dumps({"version": 99}))
    with pytest.raises(ValueError):
        load_run(path)
