"""Serve wire protocol: codec round-trips, validation, canned responses."""

import pytest

from repro.serve import protocol
from repro.serve.protocol import (
    CampaignRequest,
    EvalRequest,
    EvalResponse,
    ProtocolError,
    error_response,
    ok_response,
    shed_response,
    timeout_response,
)


def test_request_round_trip():
    request = EvalRequest(workload="mcf", backend="paraverser-full",
                          instructions=4000, seed=11, fault_trials=3,
                          timeout_s=2.5, request_id="r1")
    wire = protocol.request_to_wire(request)
    line = protocol.encode_message(wire)
    assert line.endswith(b"\n")
    decoded = protocol.request_from_wire(protocol.decode_message(line))
    assert decoded == request


def test_request_round_trip_checkers_spec():
    request = EvalRequest(workload="bwaves", checkers="2xA510@2.0",
                          mode="opportunistic", hash_mode=True)
    decoded = protocol.request_from_wire(protocol.request_to_wire(request))
    assert decoded == request
    assert decoded.checkers == "2xA510@2.0"


def test_response_round_trip():
    response = EvalResponse(protocol.STATUS_OK, "r7",
                            result={"slowdown_percent": 1.25})
    decoded = protocol.response_from_wire(protocol.response_to_wire(response))
    assert decoded == response
    assert decoded.ok


def test_response_error_round_trip():
    response = error_response(EvalRequest(workload="mcf", backend="x",
                                          request_id="r9"), "boom")
    decoded = protocol.response_from_wire(protocol.response_to_wire(response))
    assert decoded.status == protocol.STATUS_ERROR
    assert decoded.request_id == "r9"
    assert decoded.error == "boom"
    assert not decoded.ok


def test_decode_rejects_garbage():
    with pytest.raises(ProtocolError):
        protocol.decode_message(b"not json\n")
    with pytest.raises(ProtocolError):
        protocol.decode_message(b"[1, 2, 3]\n")
    with pytest.raises(ProtocolError):
        protocol.decode_message(b"\xff\xfe\n")


def test_decode_rejects_oversized():
    huge = b"x" * (protocol.MAX_LINE_BYTES + 1)
    with pytest.raises(ProtocolError):
        protocol.decode_message(huge)


def test_request_validation():
    with pytest.raises(ProtocolError):
        EvalRequest(workload="").validate()
    # neither backend nor checkers
    with pytest.raises(ProtocolError):
        EvalRequest(workload="mcf").validate()
    # both
    with pytest.raises(ProtocolError):
        EvalRequest(workload="mcf", backend="a",
                    checkers="1xA510@2.0").validate()
    with pytest.raises(ProtocolError):
        EvalRequest(workload="mcf", backend="a",
                    instructions=0).validate()
    with pytest.raises(ProtocolError):
        EvalRequest(workload="mcf", backend="a",
                    fault_trials=-1).validate()
    with pytest.raises(ProtocolError):
        EvalRequest(workload="mcf", backend="a", timeout_s=0.0).validate()


def test_from_wire_rejects_bad_envelopes():
    good = protocol.request_to_wire(
        EvalRequest(workload="mcf", backend="b"))
    with pytest.raises(ProtocolError):
        protocol.request_from_wire({**good, "op": "launch-missiles"})
    with pytest.raises(ProtocolError):
        protocol.request_from_wire({**good, "v": 999})
    with pytest.raises(ProtocolError):
        protocol.response_from_wire({"status": "maybe"})


def test_sim_key_ignores_delivery_metadata():
    base = EvalRequest(workload="mcf", backend="b", request_id="r1",
                       timeout_s=1.0)
    twin = EvalRequest(workload="mcf", backend="b", request_id="r2",
                       timeout_s=9.0)
    other = EvalRequest(workload="mcf", backend="b", seed=8)
    assert base.sim_key() == twin.sim_key()
    assert base.sim_key() != other.sim_key()


def test_trace_key_groups_by_functional_run():
    a = EvalRequest(workload="mcf", backend="paraverser-full",
                    instructions=4000)
    b = EvalRequest(workload="mcf", checkers="1xA510@2.0",
                    instructions=4000)
    c = EvalRequest(workload="mcf", backend="paraverser-full",
                    instructions=8000)
    assert a.trace_key() == b.trace_key()
    assert a.trace_key() != c.trace_key()


def test_canned_responses_echo_request_id():
    request = EvalRequest(workload="mcf", backend="b", request_id="r3")
    assert ok_response(request, {"x": 1}).request_id == "r3"
    assert shed_response(request, 4).status == protocol.STATUS_SHED
    assert timeout_response(request).status == protocol.STATUS_TIMEOUT
    assert "saturated" in shed_response(request, 4).error


def test_campaign_round_trip():
    request = CampaignRequest(workload="mcf", checkers="2xA510@2.0",
                              mode="full", instructions=8000, seed=11,
                              trials=50, fault_kinds=("stuck_at",),
                              timeout_s=30.0, request_id="c1")
    wire = protocol.campaign_to_wire(request)
    line = protocol.encode_message(wire)
    decoded = protocol.campaign_from_wire(protocol.decode_message(line))
    assert decoded == request
    assert isinstance(decoded.fault_kinds, tuple)


def test_campaign_wire_accepts_json_lists():
    # JSON has no tuples; a list on the wire must land back as a tuple.
    wire = protocol.campaign_to_wire(CampaignRequest(workload="mcf"))
    wire["fault_kinds"] = list(wire["fault_kinds"])
    decoded = protocol.campaign_from_wire(wire)
    assert decoded.fault_kinds == protocol.DEFAULT_FAULT_KINDS


def test_campaign_validation():
    with pytest.raises(ProtocolError):
        CampaignRequest(workload="").validate()
    with pytest.raises(ProtocolError):
        CampaignRequest(workload="mcf", checkers="").validate()
    with pytest.raises(ProtocolError):
        CampaignRequest(workload="mcf", trials=0).validate()
    with pytest.raises(ProtocolError):
        CampaignRequest(workload="mcf", instructions=0).validate()
    with pytest.raises(ProtocolError):
        CampaignRequest(workload="mcf", fault_kinds=()).validate()
    with pytest.raises(ProtocolError):
        CampaignRequest(workload="mcf",
                        fault_kinds=("cosmic_ray",)).validate()
    with pytest.raises(ProtocolError):
        CampaignRequest(workload="mcf", timeout_s=0.0).validate()


def test_campaign_from_wire_rejects_bad_envelopes():
    good = protocol.campaign_to_wire(CampaignRequest(workload="mcf"))
    with pytest.raises(ProtocolError):
        protocol.campaign_from_wire({**good, "op": "eval"})
    with pytest.raises(ProtocolError):
        protocol.campaign_from_wire({**good, "v": 999})
    with pytest.raises(ProtocolError):
        protocol.campaign_from_wire({**good, "fault_kinds": "stuck_at"})


def test_campaign_sim_key_ignores_delivery_metadata():
    base = CampaignRequest(workload="mcf", request_id="c1", timeout_s=5.0)
    twin = CampaignRequest(workload="mcf", request_id="c2", timeout_s=9.0)
    other = CampaignRequest(workload="mcf", trials=99)
    assert base.sim_key() == twin.sim_key()
    assert base.sim_key() != other.sim_key()
    assert base.sim_spec()["op"] == protocol.OP_CAMPAIGN


def test_campaign_trace_key_matches_eval_requests():
    # Campaigns must batch with evals of the same functional run.
    campaign = CampaignRequest(workload="mcf", instructions=4000, seed=7)
    evaluation = EvalRequest(workload="mcf", checkers="1xA510@2.0",
                             instructions=4000, seed=7)
    assert campaign.trace_key() == evaluation.trace_key()
