"""Tests for segment construction (instruction counter, section IV-F)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.counter import CutReason, SegmentBuilder
from repro.core.lsl import record_from_trace
from repro.cpu.functional import DirectMemoryPort, FunctionalCore
from repro.isa.assembler import assemble
from repro.mem.memory import Memory


def make_trace(loads_per_iter=2, iterations=200):
    body = "\n".join(
        f"ld x{3 + i}, {i * 8}(x2)" for i in range(loads_per_iter)
    )
    program = assemble(
        f"""
        addi x1, x0, {iterations}
        lui x2, 0x1000
        loop:
        {body}
        subi x1, x1, 1
        bne x1, x0, loop
        halt
        """
    )
    core = FunctionalCore(program, DirectMemoryPort(Memory()))
    return core.run(100_000).trace


def test_timeout_cuts():
    trace = make_trace()
    builder = SegmentBuilder(lsl_capacity_bytes=64 * 1024,
                             timeout_instructions=100)
    segments = builder.split(trace)
    assert all(seg.instructions <= 100 for seg in segments)
    assert segments[0].reason is CutReason.TIMEOUT


def test_lsl_full_cuts_with_tiny_capacity():
    trace = make_trace(loads_per_iter=4)
    builder = SegmentBuilder(lsl_capacity_bytes=256,
                             timeout_instructions=100_000)
    segments = builder.split(trace)
    assert segments[0].reason is CutReason.LSL_FULL
    for seg in segments[:-1]:
        assert seg.lsl_bytes <= 256


def test_segments_partition_trace_exactly():
    trace = make_trace()
    builder = SegmentBuilder(lsl_capacity_bytes=4096,
                             timeout_instructions=77)
    segments = builder.split(trace)
    assert segments[0].start == 0
    assert segments[-1].end == len(trace)
    for prev, cur in zip(segments, segments[1:]):
        assert prev.end == cur.start


def test_records_cover_all_memory_instructions():
    trace = make_trace()
    builder = SegmentBuilder(lsl_capacity_bytes=64 * 1024,
                             timeout_instructions=100)
    segments = builder.split(trace)
    total_records = sum(len(seg.records) for seg in segments)
    expected = sum(1 for i, e in enumerate(trace)
                   if record_from_trace(e, i) is not None)
    assert total_records == expected


def test_records_belong_to_their_segment():
    trace = make_trace()
    segments = SegmentBuilder(64 * 1024, 50).split(trace)
    for seg in segments:
        for record in seg.records:
            assert seg.start <= record.trace_index < seg.end


def test_forced_boundaries_cut_as_interrupts():
    trace = make_trace()
    segments = SegmentBuilder(64 * 1024, 10_000).split(
        trace, forced_boundaries={100, 250})
    assert segments[0].end == 100
    assert segments[0].reason is CutReason.INTERRUPT
    assert segments[1].end == 250


def test_final_segment_reason_program_end():
    trace = make_trace()
    segments = SegmentBuilder(64 * 1024, 10_000).split(trace)
    assert segments[-1].reason is CutReason.PROGRAM_END


def test_default_timeout_is_5000():
    from repro.core.counter import DEFAULT_TIMEOUT_INSTRUCTIONS
    assert DEFAULT_TIMEOUT_INSTRUCTIONS == 5000  # Table I


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        SegmentBuilder(lsl_capacity_bytes=16)
    with pytest.raises(ValueError):
        SegmentBuilder(lsl_capacity_bytes=1024, timeout_instructions=0)


def test_lines_account_for_padding():
    trace = make_trace(loads_per_iter=1, iterations=50)
    segments = SegmentBuilder(64 * 1024, 10_000).split(trace)
    for seg in segments:
        raw = sum(r.entry_bytes() for r in seg.records)
        assert seg.lsl_bytes >= raw          # padding only adds
        assert seg.lsl_bytes == seg.lines * 64


def test_empty_trace_gives_no_segments():
    assert SegmentBuilder(1024, 100).split([]) == []


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=10, max_value=400),
    st.integers(min_value=256, max_value=8192),
)
def test_partition_property(loads, timeout, capacity):
    trace = make_trace(loads_per_iter=loads, iterations=60)
    segments = SegmentBuilder(capacity, timeout).split(trace)
    covered = sum(seg.instructions for seg in segments)
    assert covered == len(trace)
    for seg in segments:
        assert seg.instructions > 0
        assert seg.lsl_bytes <= max(capacity, seg.lines * 64)
