"""Tests for flat functional memory."""

from hypothesis import given, strategies as st

from repro.mem.memory import Memory


def test_initial_image():
    memory = Memory({0x100: 42})
    assert memory.load(0x100, 8) == 42


def test_load_defaults_zero():
    assert Memory().load(0xDEAD, 8) == 0


def test_aligned_word_roundtrip():
    memory = Memory()
    memory.store(0x2000, 8, 0x1122334455667788)
    assert memory.load(0x2000, 8) == 0x1122334455667788


def test_byte_granular_access():
    memory = Memory()
    memory.store(0x1000, 8, 0x1122334455667788)
    assert memory.load(0x1000, 1) == 0x88  # little endian
    assert memory.load(0x1007, 1) == 0x11
    assert memory.load(0x1002, 2) == 0x5566


def test_unaligned_straddling_access():
    memory = Memory()
    memory.store(0x1006, 4, 0xAABBCCDD)  # straddles two words
    assert memory.load(0x1006, 4) == 0xAABBCCDD
    assert memory.load(0x1006, 1) == 0xDD
    assert memory.load(0x1009, 1) == 0xAA


def test_partial_store_preserves_neighbours():
    memory = Memory()
    memory.store(0x1000, 8, 0xFFFFFFFFFFFFFFFF)
    memory.store(0x1002, 2, 0)
    assert memory.load(0x1000, 8) == 0xFFFFFFFF0000FFFF


def test_store_masks_oversized_value():
    memory = Memory()
    memory.store(0x1000, 2, 0x123456)
    assert memory.load(0x1000, 8) == 0x3456


def test_swap():
    memory = Memory({0x10: 5})
    old = memory.swap(0x10, 8, 9)
    assert old == 5
    assert memory.load(0x10, 8) == 9


def test_copy_is_independent():
    memory = Memory({0x10: 1})
    clone = memory.copy()
    clone.store(0x10, 8, 2)
    assert memory.load(0x10, 8) == 1


def test_equality_ignores_explicit_zeros():
    a = Memory()
    b = Memory()
    a.store(0x10, 8, 0)
    assert a == b
    a.store(0x10, 8, 3)
    assert a != b


def test_len_counts_words():
    memory = Memory()
    memory.store(0x0, 8, 1)
    memory.store(0x8, 8, 2)
    assert len(memory) == 2


@given(
    st.integers(min_value=0, max_value=(1 << 48) - 1),
    st.sampled_from([1, 2, 4, 8]),
    st.integers(min_value=0, max_value=(1 << 64) - 1),
)
def test_roundtrip_property(addr, size, value):
    memory = Memory()
    memory.store(addr, size, value)
    assert memory.load(addr, size) == value & ((1 << (8 * size)) - 1)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=255),
            st.integers(min_value=0, max_value=255),
        ),
        max_size=50,
    )
)
def test_byte_store_model_property(writes):
    """Memory must behave like a simple byte array."""
    memory = Memory()
    model: dict[int, int] = {}
    for addr, value in writes:
        memory.store(addr, 1, value)
        model[addr] = value
    for addr, value in model.items():
        assert memory.load(addr, 1) == value
