"""Tests for the `paraverser` command-line interface."""

import argparse

import pytest

from repro.cli import main, parse_checkers


class TestParseCheckers:
    def test_single_group(self):
        checkers = parse_checkers("4xA510@2.0")
        assert len(checkers) == 4
        assert all(c.config.name == "A510" for c in checkers)
        assert all(c.freq_ghz == 2.0 for c in checkers)

    def test_mixed_pool(self):
        checkers = parse_checkers("2xX2@1.5,1xA510@2.0")
        assert len(checkers) == 3
        assert checkers[0].config.name == "X2"
        assert checkers[2].config.name == "A510"

    def test_bad_format_rejected(self):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_checkers("A510")

    def test_unknown_core_rejected(self):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_checkers("1xM1@3.0")

    def test_out_of_range_frequency_rejected(self):
        with pytest.raises(ValueError):
            parse_checkers("1xA510@9.9")


class TestCommands:
    def test_workloads_lists_profiles(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "bwaves" in out and "bfs" in out and "canneal" in out

    def test_workloads_suite_filter(self, capsys):
        main(["workloads", "--suite", "gap"])
        out = capsys.readouterr().out
        assert "bfs" in out
        assert "bwaves" not in out

    def test_run_reports_overheads(self, capsys):
        code = main(["run", "-w", "exchange2", "-c", "1xA510@2.0",
                     "-n", "6000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "slowdown" in out
        assert "coverage" in out
        assert "energy overhead" in out

    def test_run_opportunistic_mode(self, capsys):
        main(["run", "-w", "exchange2", "-c", "1xA510@0.5",
              "-m", "opportunistic", "-n", "6000"])
        out = capsys.readouterr().out
        assert "opportunistic" in out

    def test_run_hash_slow_noc(self, capsys):
        main(["run", "-w", "exchange2", "-c", "1xX2@3.0",
              "--hash", "--slow-noc", "-n", "6000"])
        out = capsys.readouterr().out
        assert "hash" in out

    def test_inject_campaign(self, capsys):
        code = main(["inject", "-w", "exchange2", "-t", "5", "-n", "6000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "injected faults:         5" in out
        assert "detection" in out

    def test_campaign_runs_serially(self, capsys):
        code = main(["campaign", "-w", "exchange2", "-t", "4",
                     "-n", "6000", "-j", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "trials:" in out
        assert "detection" in out

    def test_campaign_json_row(self, capsys):
        code = main(["campaign", "-w", "exchange2", "-t", "4",
                     "-n", "6000", "-j", "1", "--json"])
        assert code == 0
        import json
        row = json.loads(capsys.readouterr().out)
        assert row["trials"] == 4
        assert row["detected"] + row["masked"] + row["missed"] == 4

    def test_campaign_resume_round_trip(self, capsys, tmp_path):
        args = ["campaign", "-w", "exchange2", "-n", "6000", "-j", "1",
                "--campaign-dir", str(tmp_path)]
        assert main([*args, "-t", "2"]) == 0
        capsys.readouterr()
        assert main([*args, "-t", "4", "--resume"]) == 0
        assert "resumed from shards:     2" in capsys.readouterr().out

    def test_campaign_rejects_unknown_fault_kind(self, capsys):
        code = main(["campaign", "-w", "exchange2",
                     "--fault-kinds", "cosmic_ray"])
        assert code == 2
        assert "bad fault kinds" in capsys.readouterr().err

    def test_campaign_resume_requires_dir(self, capsys):
        code = main(["campaign", "-w", "exchange2", "--resume"])
        assert code == 2
        assert "--campaign-dir" in capsys.readouterr().err

    def test_campaign_stats_json(self, capsys, tmp_path):
        stats_path = tmp_path / "stats.json"
        code = main(["campaign", "-w", "exchange2", "-t", "2",
                     "-n", "6000", "-j", "1",
                     "--stats-json", str(stats_path)])
        assert code == 0
        import json
        tree = json.loads(stats_path.read_text())
        assert tree["faults"]["injected"] == 2

    def test_campaign_telemetry_jsonl(self, capsys, tmp_path):
        import json
        jsonl_path = tmp_path / "faults.jsonl"
        code = main(["campaign", "-w", "exchange2", "-t", "8",
                     "-n", "6000", "-j", "1",
                     "--telemetry-jsonl", str(jsonl_path)])
        assert code == 0
        lines = jsonl_path.read_text().splitlines()
        assert lines
        records = [json.loads(line) for line in lines]
        assert all(r["label"] == "faults.exchange2" for r in records)
        assert [r["epoch"] for r in records] == list(range(1, len(records) + 1))
        final = records[-1]["stats"]["campaign"]
        assert final["trials"] == 8
        assert 0 <= final["detected"] <= 8

    def test_campaign_chunked_matches_serial(self, capsys):
        import json
        base = ["campaign", "-w", "exchange2", "-t", "4", "-n", "6000",
                "--json"]
        assert main([*base, "-j", "1"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main([*base, "-j", "2", "--chunk", "2"]) == 0
        chunked = json.loads(capsys.readouterr().out)
        for key in ("trials", "detected", "masked", "missed", "by_kind"):
            assert chunked[key] == serial[key]

    def test_cache_requires_directory(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
        assert main(["cache", "info"]) == 2
        assert "REPRO_TRACE_CACHE" in capsys.readouterr().err

    def test_cache_info_purge(self, capsys, tmp_path, monkeypatch):
        from repro.cpu.tracecache import TraceCache
        from repro.harness.runner import WorkloadCache

        tc = TraceCache(tmp_path)
        cache = WorkloadCache(max_instructions=4000, seed=7,
                              trace_cache=tc)
        cache.get("exchange2")  # populates one entry
        assert main(["cache", "info", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries:           1" in out
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        assert main(["cache", "purge"]) == 0
        assert "purged entries:    1" in capsys.readouterr().out
        assert tc.info()["entries"] == 0

    def test_cache_migrate(self, capsys, tmp_path):
        import json

        from repro.cpu import traceio
        from repro.cpu.tracecache import TraceCache
        from repro.harness.runner import WorkloadCache

        tc = TraceCache(tmp_path)
        run = WorkloadCache(max_instructions=4000, seed=7,
                            trace_cache=None).get("exchange2").run
        legacy = tc.path_for("exchange2", 7, 4000).with_suffix(".json")
        legacy.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": 1,
            "program": traceio.program_to_json(run.program),
            "trace": [[e.pc, e.addr, e.addr2, e.size, e.loaded,
                       e.loaded2, e.stored, e.nonrep,
                       1 if e.taken else 0, e.next_pc,
                       list(e.bulk) if e.bulk is not None else None]
                      for e in run.trace],
            "start_checkpoint": {
                "ints": list(run.start_checkpoint.ints),
                "fps": list(run.start_checkpoint.fps),
                "pc": run.start_checkpoint.pc},
            "end_checkpoint": {
                "ints": list(run.end_checkpoint.ints),
                "fps": list(run.end_checkpoint.fps),
                "pc": run.end_checkpoint.pc},
            "halted": run.halted,
            "instructions": run.instructions,
            "class_counts": run.class_counts,
        }
        legacy.write_text(json.dumps(payload))
        assert main(["cache", "migrate", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "migrated entries:  1" in out
        assert not legacy.exists()
        hit = tc.get("exchange2", 7, 4000)
        assert hit is not None and hit.columns == run.columns

    def test_fleet_prints_cell_table(self, capsys):
        code = main(["fleet", "--policies", "shortest", "--modes", "full",
                     "--loads", "0.7", "--duration", "0.2", "-j", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "shortest_full_load0.7" in out
        assert "p99" in out and "cover" in out

    def test_fleet_json_rows(self, capsys):
        import json
        code = main(["fleet", "--policies", "rr", "--modes",
                     "opportunistic", "--loads", "0.9", "--duration",
                     "0.2", "-j", "1", "--json"])
        assert code == 0
        row = json.loads(capsys.readouterr().out.splitlines()[0])
        assert row["label"] == "rr_opportunistic_load0.9"
        assert 0.0 < row["coverage"] <= 1.0

    def test_fleet_stats_json(self, capsys, tmp_path):
        import json
        stats_path = tmp_path / "fleet.json"
        code = main(["fleet", "--policies", "shortest", "--modes", "full",
                     "--loads", "0.7", "--duration", "0.2", "-j", "1",
                     "--stats-json", str(stats_path)])
        assert code == 0
        tree = json.loads(stats_path.read_text())
        cell = tree["fleet"]["shortest_full_load0.7"]
        assert cell["coverage"] == 1.0
        assert cell["latency_ms"]["p99"] > 0

    def test_fleet_bad_numeric_flag_one_liner(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--servers", "four"])
        message = str(excinfo.value)
        assert "--servers" in message and "four" in message
        assert "Traceback" not in message

    def test_fleet_bad_float_flag_one_liner(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--duration", "2s"])
        assert "--duration" in str(excinfo.value)

    def test_fleet_unknown_policy_rejected(self, capsys):
        code = main(["fleet", "--policies", "power-of-two",
                     "--duration", "0.2"])
        assert code == 2
        assert "unknown dispatch policy" in capsys.readouterr().err

    def test_fleet_unknown_mode_rejected(self, capsys):
        code = main(["fleet", "--modes", "sometimes", "--duration", "0.2"])
        assert code == 2
        assert "unknown mode" in capsys.readouterr().err

    def test_control_prints_frontier_table(self, capsys):
        code = main(["control", "--servers", "4", "--duration", "0.5",
                     "--epoch-s", "0.1", "--reps", "1", "-j", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "always_full" in out
        assert "always_opportunistic" in out
        assert "controlled" in out
        assert "frontier: p99 vs always-full" in out

    def test_control_json_reports_dominance(self, capsys):
        import json
        code = main(["control", "--servers", "4", "--duration", "0.5",
                     "--epoch-s", "0.1", "--reps", "1", "-j", "1",
                     "--json"])
        assert code == 0
        out = json.loads(capsys.readouterr().out)
        assert set(out["arms"]) == {"always_full",
                                    "always_opportunistic", "controlled"}
        assert set(out["dominates"]) == {"p99_vs_full",
                                         "coverage_vs_opportunistic"}

    def test_control_stats_and_telemetry_outputs(self, capsys, tmp_path):
        import json
        stats_path = tmp_path / "control.json"
        jsonl_path = tmp_path / "epochs.jsonl"
        code = main(["control", "--servers", "4", "--duration", "0.5",
                     "--epoch-s", "0.1", "--reps", "1", "-j", "1",
                     "--stats-json", str(stats_path),
                     "--telemetry-jsonl", str(jsonl_path)])
        assert code == 0
        capsys.readouterr()
        tree = json.loads(stats_path.read_text())
        cell = tree["control"]["shortest_threshold_load0.7"]
        assert cell["epochs"] == 5
        assert "power" in tree
        assert "shortest_full_load0.7" in tree["fleet"]
        lines = jsonl_path.read_text().strip().splitlines()
        assert len(lines) == 5
        assert json.loads(lines[0])["label"] \
            == "control.shortest_threshold_load0.7"

    def test_control_bad_flags_one_liner(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["control", "--epoch-s", "fast"])
        assert "--epoch-s" in str(excinfo.value)
        with pytest.raises(SystemExit) as excinfo:
            main(["control", "--policy", "pid"])
        message = str(excinfo.value)
        assert "--policy" in message and "threshold" in message

    def test_control_env_knobs_apply(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CONTROL_EPOCH_S", "0.25")
        code = main(["control", "--servers", "4", "--duration", "0.5",
                     "--reps", "1", "-j", "1"])
        assert code == 0
        assert "epoch 0.25s" in capsys.readouterr().out

    def test_control_bad_env_knob_one_liner(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONTROL_EPOCH_S", "fast")
        with pytest.raises(SystemExit) as excinfo:
            main(["control", "--servers", "4", "--duration", "0.5"])
        assert "REPRO_CONTROL_EPOCH_S" in str(excinfo.value)

    def test_control_rejects_degenerate_scale(self, capsys):
        code = main(["control", "--servers", "0", "--duration", "0.5"])
        assert code == 2
        assert "--servers" in capsys.readouterr().err

    def test_control_ed2p_needs_single_group_pool(self, capsys):
        code = main(["control", "--policy", "ed2p_budget",
                     "--checkers", "2xA510@2.0,1xX2@3.0",
                     "--duration", "0.5"])
        assert code == 2
        assert "single-group pool" in capsys.readouterr().err

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["run", "-w", "doom", "-n", "1000"])

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestRouteCli:
    """`paraverser route` flag validation: one-line errors, no spawns."""

    def test_bad_replicas_one_liner(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["route", "--replicas", "many"])
        message = str(excinfo.value)
        assert "--replicas" in message and "many" in message
        assert "Traceback" not in message

    def test_bad_shards_one_liner(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["route", "--shards", "3.5"])
        assert "--shards" in str(excinfo.value)

    def test_bad_health_interval_one_liner(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["route", "--health-interval", "soon"])
        assert "--health-interval" in str(excinfo.value)

    def test_bad_workers_one_liner(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["route", "--workers", "a few"])
        assert "--workers" in str(excinfo.value)

    def test_shards_and_backends_conflict(self, capsys):
        code = main(["route", "--shards", "2",
                     "--backends", "127.0.0.1:1"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--shards" in err and "--backends" in err

    def test_out_of_range_values_rejected(self, capsys):
        assert main(["route", "--shards", "0"]) == 2
        assert "route:" in capsys.readouterr().err
        assert main(["route", "--replicas", "-3"]) == 2
        assert main(["route", "--health-interval", "-1",
                     "--shards", "1"]) == 2

    def test_backends_entry_without_port(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["route", "--backends", "localhost"])
        assert "host:port" in str(excinfo.value)

    def test_backends_entry_bad_port(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["route", "--backends", "127.0.0.1:http"])
        assert "non-integer port" in str(excinfo.value)

    def test_backends_entry_port_out_of_range(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["route", "--backends", "127.0.0.1:99999"])
        assert "1..65535" in str(excinfo.value)

    def test_backends_empty_list_rejected(self, capsys):
        code = main(["route", "--backends", " , "])
        assert code == 2
        assert "at least one" in capsys.readouterr().err
