"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.cache import Cache, CacheConfig


def make_cache(size=1024, ways=2, line=64, **kw):
    return Cache(CacheConfig("test", size, ways, line_bytes=line, **kw))


def test_geometry():
    config = CacheConfig("c", 64 * 1024, 4, line_bytes=64)
    assert config.num_sets == 256
    assert config.num_lines == 1024


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        Cache(CacheConfig("c", 64, 4, line_bytes=64)).access(0)  # 0 sets


def test_non_power_of_two_sets_rejected():
    with pytest.raises(ValueError):
        Cache(CacheConfig("c", 3 * 64, 1, line_bytes=64))


def test_first_access_misses_second_hits():
    cache = make_cache()
    assert cache.access(0x1000) is False
    assert cache.access(0x1000) is True
    assert cache.hits == 1 and cache.misses == 1


def test_same_line_hits_different_line_misses():
    cache = make_cache()
    cache.access(0x1000)
    assert cache.access(0x103F) is True   # same 64 B line
    assert cache.access(0x1040) is False  # next line


def test_lru_eviction_order():
    cache = make_cache(size=2 * 64, ways=2, line=64)  # 1 set, 2 ways
    cache.access(0x000)
    cache.access(0x040)
    cache.access(0x000)   # touch A: B is now LRU
    cache.access(0x080)   # evicts B
    assert cache.probe(0x000) is True
    assert cache.probe(0x040) is False
    assert cache.evictions == 1


def test_probe_does_not_change_state():
    cache = make_cache()
    cache.access(0x1000)
    hits_before = cache.hits
    cache.probe(0x1000)
    cache.probe(0x9999)
    assert cache.hits == hits_before


def test_invalidate():
    cache = make_cache()
    cache.access(0x1000)
    assert cache.invalidate(0x1000) is True
    assert cache.invalidate(0x1000) is False
    assert cache.probe(0x1000) is False


def test_flush_clears_everything():
    cache = make_cache()
    for i in range(8):
        cache.access(i * 64)
    cache.flush()
    for i in range(8):
        assert cache.probe(i * 64) is False


def test_miss_rate():
    cache = make_cache()
    cache.access(0)
    cache.access(0)
    assert cache.miss_rate == 0.5
    assert cache.accesses == 2


def test_reset_stats():
    cache = make_cache()
    cache.access(0)
    cache.reset_stats()
    assert cache.hits == cache.misses == cache.evictions == 0
    assert cache.probe(0)  # contents survive a stats reset


def test_sets_are_independent():
    cache = make_cache(size=4 * 64, ways=1, line=64)  # 4 sets, direct mapped
    cache.access(0 * 64)
    cache.access(1 * 64)
    cache.access(2 * 64)
    cache.access(3 * 64)
    assert cache.misses == 4 and cache.evictions == 0


def test_working_set_bigger_than_cache_thrashes():
    cache = make_cache(size=4 * 64, ways=4, line=64)  # 1 set, 4 ways
    for _ in range(3):
        for i in range(5):  # 5 lines into 4 ways, LRU: all miss
            cache.access(i * 64)
    assert cache.hits == 0


@given(st.lists(st.integers(min_value=0, max_value=(1 << 32) - 1),
                max_size=200))
def test_occupancy_never_exceeds_capacity(addresses):
    cache = make_cache(size=8 * 64, ways=2, line=64)
    for addr in addresses:
        cache.access(addr)
    occupancy = sum(len(ways) for ways in cache._sets)
    assert occupancy <= cache.config.num_lines


@given(st.lists(st.integers(min_value=0, max_value=(1 << 20) - 1),
                min_size=1, max_size=100))
def test_immediate_reaccess_always_hits(addresses):
    cache = make_cache(size=64 * 64, ways=4, line=64)
    for addr in addresses:
        cache.access(addr)
        assert cache.access(addr) is True
