"""System-level tests: full-coverage vs opportunistic, NoC, modes."""

import pytest

from repro.core.counter import CutReason
from repro.core.system import (
    CheckMode,
    ParaVerserConfig,
    ParaVerserSystem,
)
from repro.cpu.config import CoreInstance
from repro.cpu.presets import A35, A510, X2
from repro.noc.mesh import SLOW_NOC
from repro.workloads.generator import build_program
from repro.workloads.profiles import get_profile

INSTRUCTIONS = 15_000


@pytest.fixture(scope="module")
def bwaves_program():
    return build_program(get_profile("bwaves"), seed=3)


@pytest.fixture(scope="module")
def exchange_program():
    return build_program(get_profile("exchange2"), seed=3)


def run(program, checkers, mode=CheckMode.FULL, **kw):
    config = ParaVerserConfig(
        main=CoreInstance(X2, 3.0),
        checkers=checkers,
        mode=mode,
        seed=3,
        timeout_instructions=kw.pop("timeout", 1000),
        **kw,
    )
    return ParaVerserSystem(config).run(program,
                                        max_instructions=INSTRUCTIONS)


def test_full_coverage_checks_everything(exchange_program):
    result = run(exchange_program, [CoreInstance(X2, 3.0)])
    assert result.coverage == 1.0
    assert result.mode is CheckMode.FULL


def test_full_coverage_verifies_sample_segments(exchange_program):
    result = run(exchange_program, [CoreInstance(X2, 3.0)])
    assert result.verify_results
    assert all(not r.detected for r in result.verify_results)


def test_slow_checkers_stall_on_fdiv_heavy_code(bwaves_program):
    result = run(bwaves_program, [CoreInstance(A510, 1.0)])
    assert result.stall_ns > 0
    assert result.slowdown > 1.05


def test_more_checkers_reduce_stalls(bwaves_program):
    one = run(bwaves_program, [CoreInstance(A510, 2.0)])
    four = run(bwaves_program, [CoreInstance(A510, 2.0)] * 4)
    assert four.stall_ns < one.stall_ns


def test_opportunistic_never_stalls(bwaves_program):
    result = run(bwaves_program, [CoreInstance(A510, 1.0)],
                 mode=CheckMode.OPPORTUNISTIC)
    assert result.stall_ns == 0.0
    assert result.coverage < 1.0  # one slow checker cannot keep up


def test_opportunistic_coverage_scales_with_checkers(bwaves_program):
    weak = run(bwaves_program, [CoreInstance(A510, 1.0)],
               mode=CheckMode.OPPORTUNISTIC)
    strong = run(bwaves_program, [CoreInstance(A510, 2.0)] * 4,
                 mode=CheckMode.OPPORTUNISTIC)
    assert strong.coverage > weak.coverage


def test_opportunistic_cheaper_than_full(bwaves_program):
    full = run(bwaves_program, [CoreInstance(A510, 1.0)])
    opp = run(bwaves_program, [CoreInstance(A510, 1.0)],
              mode=CheckMode.OPPORTUNISTIC)
    assert opp.checked_time_ns < full.checked_time_ns


def test_segments_cut_by_timeout(exchange_program):
    result = run(exchange_program, [CoreInstance(X2, 3.0)])
    assert result.cut_reasons.get(CutReason.TIMEOUT.value, 0) > 0


def test_tiny_dedicated_lsl_cuts_on_capacity(exchange_program):
    result = run(exchange_program, [CoreInstance(A35, 1.0)] * 12,
                 lsl_capacity_bytes=3 * 1024, timeout=5000)
    assert result.cut_reasons.get(CutReason.LSL_FULL.value, 0) > 0


def test_hash_mode_reduces_lsl_traffic(exchange_program):
    plain = run(exchange_program, [CoreInstance(X2, 3.0)])
    hashed = run(exchange_program, [CoreInstance(X2, 3.0)], hash_mode=True)
    # Hash Mode halves load traffic and eliminates store traffic.
    assert hashed.lsl_bytes < 0.6 * plain.lsl_bytes


def test_slow_noc_hurts_more_than_fast(exchange_program):
    fast = run(exchange_program, [CoreInstance(X2, 3.0)])
    slow = run(exchange_program, [CoreInstance(X2, 3.0)], noc=SLOW_NOC)
    assert slow.noc_extra_llc_ns >= fast.noc_extra_llc_ns


def test_hash_mode_relieves_slow_noc(exchange_program):
    slow = run(exchange_program, [CoreInstance(X2, 3.0)], noc=SLOW_NOC)
    hashed = run(exchange_program, [CoreInstance(X2, 3.0)], noc=SLOW_NOC,
                 hash_mode=True)
    assert hashed.noc_extra_llc_ns <= slow.noc_extra_llc_ns


def test_eager_wake_beats_lazy(bwaves_program):
    eager = run(bwaves_program, [CoreInstance(A510, 1.6)] * 2)
    lazy = run(bwaves_program, [CoreInstance(A510, 1.6)] * 2,
               eager_wake=False)
    assert eager.checked_time_ns <= lazy.checked_time_ns


def test_empty_checker_pool_rejected(exchange_program):
    config = ParaVerserConfig(main=CoreInstance(X2, 3.0), checkers=[])
    with pytest.raises(ValueError):
        ParaVerserSystem(config)


def test_config_label_mentions_checkers(exchange_program):
    result = run(exchange_program, [CoreInstance(A510, 2.0)] * 4)
    assert "4xA510@2GHz" in result.config_label
    assert "full" in result.config_label


def test_checker_slots_account_work(exchange_program):
    result = run(exchange_program, [CoreInstance(A510, 2.0)] * 2)
    checked = sum(slot.instructions_checked for slot in result.checker_slots)
    # Warmup exclusion aside, every instruction is checked exactly once.
    assert checked == result.instructions


def test_lsl_capacity_defaults_to_smallest_checker_l1d():
    config = ParaVerserConfig(
        main=CoreInstance(X2, 3.0),
        checkers=[CoreInstance(X2, 3.0), CoreInstance(A510, 2.0)],
    )
    assert config.lsl_capacity() == 32 * 1024  # the A510's L1D


def test_induction_checkpoint_chain(exchange_program):
    config = ParaVerserConfig(
        main=CoreInstance(X2, 3.0), checkers=[CoreInstance(A510, 2.0)],
        seed=3, timeout_instructions=500,
    )
    system = ParaVerserSystem(config)
    run_result = system.execute(exchange_program, 4_000)
    segments = system.segment(run_result)
    assert segments[0].start_checkpoint.matches(run_result.start_checkpoint)
    for prev, cur in zip(segments, segments[1:]):
        assert prev.end_checkpoint.matches(cur.start_checkpoint)
