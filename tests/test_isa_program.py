"""Tests for the Program container."""

import pytest

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program


def _program(instructions, **kw):
    return Program(name="t", instructions=instructions, **kw)


def test_len_counts_instructions():
    program = _program([Instruction(Opcode.NOP), Instruction(Opcode.HALT)])
    assert len(program) == 2


def test_static_code_bytes():
    program = _program([Instruction(Opcode.NOP)] * 10)
    assert program.static_code_bytes == 40  # 4 B per instruction


def test_fetch_addresses_are_contiguous():
    program = _program([Instruction(Opcode.NOP)] * 3)
    a0 = program.fetch_address(0)
    a1 = program.fetch_address(1)
    assert a1 - a0 == Program.INSTRUCTION_BYTES
    assert a0 == Program.CODE_BASE


def test_validate_accepts_good_branches():
    program = _program([
        Instruction(Opcode.BNE, rs1=1, rs2=0, target=0),
        Instruction(Opcode.HALT),
    ])
    program.validate()


def test_validate_rejects_out_of_range_branch():
    program = _program([
        Instruction(Opcode.JMP, target=5),
        Instruction(Opcode.HALT),
    ])
    with pytest.raises(ValueError):
        program.validate()


def test_validate_rejects_negative_branch():
    program = _program([
        Instruction(Opcode.BEQ, rs1=0, rs2=0, target=-1),
        Instruction(Opcode.HALT),
    ])
    with pytest.raises(ValueError):
        program.validate()


def test_validate_rejects_bad_entry():
    program = _program([Instruction(Opcode.HALT)], entry=3)
    with pytest.raises(ValueError):
        program.validate()


def test_jalr_targets_not_statically_validated():
    # Indirect targets are only known at run time.
    program = _program([
        Instruction(Opcode.JALR, rd=1, rs1=2),
        Instruction(Opcode.HALT),
    ])
    program.validate()


def test_memory_image_defaults_empty():
    program = _program([Instruction(Opcode.HALT)])
    assert program.memory_image == {}
    assert program.metadata == {}
