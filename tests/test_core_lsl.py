"""Tests for LSL records and the Load-Store Log Cache."""

import pytest
from hypothesis import given, strategies as st

from repro.core.lsl import (
    LoadStoreLogCache,
    LSLAccess,
    LSLRecord,
    RecordKind,
    record_from_trace,
)
from repro.cpu.functional import DirectMemoryPort, FunctionalCore
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.mem.memory import Memory


def trace_of(*instructions, ints=None, image=None):
    instrs = list(instructions) + [Instruction(Opcode.HALT)]
    program = Program("t", instrs, memory_image=image or {})
    program.validate()
    core = FunctionalCore(program, DirectMemoryPort(Memory(image or {})))
    for idx, value in (ints or {}).items():
        core.regs.write_int(idx, value)
    return core.run(100).trace


class TestRecordFromTrace:
    def test_plain_load(self):
        trace = trace_of(Instruction(Opcode.LD, rd=3, rs1=1, size=4),
                         ints={1: 0x1000}, image={0x1000: 0xAA})
        record = record_from_trace(trace[0], 0)
        assert record.kind is RecordKind.LOAD
        access = record.accesses[0]
        assert access.addr == 0x1000 and access.size == 4
        assert access.loaded == 0xAA and access.stored is None

    def test_plain_store(self):
        trace = trace_of(Instruction(Opcode.ST, rs2=2, rs1=1, size=2),
                         ints={1: 0x1000, 2: 0xBEEF})
        record = record_from_trace(trace[0], 0)
        assert record.kind is RecordKind.STORE
        assert record.accesses[0].stored == 0xBEEF

    def test_swap_records_both_directions(self):
        trace = trace_of(Instruction(Opcode.SWP, rd=3, rs2=2, rs1=1),
                         ints={1: 0x10, 2: 7}, image={0x10: 5})
        record = record_from_trace(trace[0], 0)
        assert record.kind is RecordKind.SWAP
        access = record.accesses[0]
        assert access.loaded == 5 and access.stored == 7

    def test_gather_sorted_lowest_address_first(self):
        trace = trace_of(Instruction(Opcode.LDG, rd=3, rd2=4, rs1=1, rs2=2),
                         ints={1: 0x2000, 2: 0x1000},
                         image={0x1000: 1, 0x2000: 2})
        record = record_from_trace(trace[0], 0)
        assert record.kind is RecordKind.GATHER
        assert record.accesses[0].addr == 0x1000
        assert record.accesses[1].addr == 0x2000

    def test_scatter_sorted(self):
        trace = trace_of(Instruction(Opcode.STS, rs3=3, rs1=1, rs2=2),
                         ints={1: 0x3000, 2: 0x1000, 3: 9})
        record = record_from_trace(trace[0], 0)
        assert record.kind is RecordKind.SCATTER
        assert record.accesses[0].addr == 0x1000

    def test_nonrepeatable_value(self):
        trace = trace_of(Instruction(Opcode.RDRAND, rd=3))
        record = record_from_trace(trace[0], 0)
        assert record.kind is RecordKind.NONREP
        assert record.accesses[0].loaded == trace[0].nonrep

    def test_store_conditional(self):
        trace = trace_of(Instruction(Opcode.SC, rd=3, rs2=2, rs1=1),
                         ints={1: 0x10, 2: 4})
        record = record_from_trace(trace[0], 0)
        assert record.kind is RecordKind.NONREP_STORE
        assert record.accesses[0].loaded == 1  # success flag
        assert record.accesses[0].stored == 4

    def test_arithmetic_produces_no_record(self):
        trace = trace_of(Instruction(Opcode.ADD, rd=3, rs1=1, rs2=2))
        assert record_from_trace(trace[0], 0) is None

    def test_branch_produces_no_record(self):
        trace = trace_of(Instruction(Opcode.BEQ, rs1=0, rs2=0, target=1))
        assert record_from_trace(trace[0], 0) is None


class TestEntryBytes:
    def test_load_entry_format(self):
        # 7 B address + 1 B size + 8 B payload (section IV-B).
        record = LSLRecord(RecordKind.LOAD,
                           (LSLAccess(0x100, 8, loaded=1),), 0)
        assert record.entry_bytes() == 16

    def test_payload_rounds_to_eight(self):
        record = LSLRecord(RecordKind.LOAD,
                           (LSLAccess(0x100, 2, loaded=1),), 0)
        assert record.entry_bytes() == 16  # 2 B of data still takes 8

    def test_swap_payload_has_both(self):
        record = LSLRecord(
            RecordKind.SWAP, (LSLAccess(0x100, 8, loaded=1, stored=2),), 0)
        assert record.entry_bytes() == 8 + 16  # header + 2x8 B

    def test_gather_counts_each_access(self):
        record = LSLRecord(RecordKind.GATHER, (
            LSLAccess(0x100, 8, loaded=1),
            LSLAccess(0x200, 8, loaded=2),
        ), 0)
        assert record.entry_bytes() == 2 * 16

    def test_hash_mode_drops_store_payloads(self):
        store = LSLRecord(RecordKind.STORE,
                          (LSLAccess(0x100, 8, stored=1),), 0)
        assert store.entry_bytes(hash_mode=True) == 0

    def test_hash_mode_keeps_load_payload_only(self):
        load = LSLRecord(RecordKind.LOAD,
                         (LSLAccess(0x100, 8, loaded=1),), 0)
        assert load.entry_bytes(hash_mode=True) == 8  # no addr/size header

    def test_hash_mode_halves_load_traffic(self):
        # The paper: hash mode reduces load traffic by 50 %.
        load = LSLRecord(RecordKind.LOAD,
                         (LSLAccess(0x100, 8, loaded=1),), 0)
        assert load.entry_bytes(True) * 2 == load.entry_bytes(False)


class TestLogCache:
    def make(self, capacity=1024):
        return LoadStoreLogCache(capacity)

    def record(self, index=0):
        return LSLRecord(RecordKind.LOAD,
                         (LSLAccess(0x100, 8, loaded=index),), index)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            LoadStoreLogCache(32)

    def test_push_advances_end_register(self):
        log = self.make()
        assert log.end_register == -1
        log.push_line([self.record(0)], line_count=1)
        assert log.end_register == 0
        log.push_line([self.record(1)], line_count=1)
        assert log.end_register == 1

    def test_indexed_access(self):
        log = self.make()
        log.push_line([self.record(0), self.record(1)])
        assert log.record_at(1).trace_index == 1

    def test_is_pushed_limiter(self):
        log = self.make()
        log.push_line([self.record(0)])
        assert log.is_pushed(0)
        assert not log.is_pushed(1)  # eager-wake: sleep until pushed

    def test_overflow_raises(self):
        log = self.make(capacity=128)  # 2 lines
        log.push_line([self.record(0)])
        log.push_line([self.record(1)])
        with pytest.raises(OverflowError):
            log.push_line([self.record(2)])

    def test_reset_frees_everything(self):
        log = self.make()
        log.push_line([self.record(0)])
        log.reset()
        assert log.end_register == -1
        assert log.valid_records == 0
        assert log.bytes_used == 0

    def test_would_fill(self):
        log = self.make(capacity=128)
        assert not log.would_fill(64, 0)
        assert log.would_fill(65, 64)


@given(st.integers(min_value=1, max_value=8),
       st.booleans(), st.booleans())
def test_entry_bytes_invariants(size, has_load, has_store):
    if not has_load and not has_store:
        has_load = True
    record = LSLRecord(RecordKind.SWAP, (LSLAccess(
        0x1000, size,
        loaded=1 if has_load else None,
        stored=2 if has_store else None,
    ),), 0)
    plain = record.entry_bytes(False)
    hashed = record.entry_bytes(True)
    assert plain >= 16            # header + at least one payload unit
    assert plain % 8 == 0
    assert hashed <= plain        # hash mode never grows the log
