"""Detection-event formatting and replay-interface edge paths."""

import pytest

from repro.core.checker import LogReplayInterface, ReplayDetection
from repro.core.counter import CutReason, Segment
from repro.core.errors import DetectionEvent, DetectionKind
from repro.core.lsc import LoadStoreComparator
from repro.core.lsl import LSLAccess, LSLRecord, RecordKind


def make_segment(records):
    return Segment(index=0, start=0, end=10, records=list(records),
                   lsl_bytes=64, lines=1, reason=CutReason.TIMEOUT)


def load_record(addr=0x100, value=7):
    return LSLRecord(RecordKind.LOAD, (LSLAccess(addr, 8, loaded=value),), 0)


def store_record(addr=0x200, value=9):
    return LSLRecord(RecordKind.STORE, (LSLAccess(addr, 8, stored=value),), 1)


class TestDetectionEvent:
    def test_str_includes_segment_and_kind(self):
        event = DetectionEvent(DetectionKind.STORE_DATA, 7, "bad data", 123)
        text = str(event)
        assert "segment 7" in text
        assert "store_data" in text
        assert "trace[123]" in text

    def test_str_without_trace_index(self):
        event = DetectionEvent(DetectionKind.HASH_MISMATCH, 1, "x")
        assert "trace[" not in str(event)

    def test_all_kinds_have_distinct_values(self):
        values = [kind.value for kind in DetectionKind]
        assert len(values) == len(set(values))


class TestReplayInterface:
    def make(self, records, hash_mode=False):
        return LogReplayInterface(make_segment(records),
                                 LoadStoreComparator(), hash_mode)

    def test_load_served_from_log(self):
        interface = self.make([load_record(value=42)])
        assert interface.load(0x100, 8) == 42
        assert interface.consumed == 1
        assert interface.surplus_records == 0

    def test_load_when_log_has_store_is_detected(self):
        interface = self.make([store_record()])
        with pytest.raises(ReplayDetection) as excinfo:
            interface.load(0x200, 8)
        assert excinfo.value.event.kind is DetectionKind.LOAD_ADDRESS

    def test_store_when_log_has_load_is_detected(self):
        interface = self.make([load_record()])
        with pytest.raises(ReplayDetection) as excinfo:
            interface.store(0x100, 8, 7)
        assert excinfo.value.event.kind is DetectionKind.STORE_ADDRESS

    def test_log_underflow(self):
        interface = self.make([])
        with pytest.raises(ReplayDetection) as excinfo:
            interface.load(0x100, 8)
        assert excinfo.value.event.kind is DetectionKind.LOG_UNDERFLOW

    def test_wrong_load_address_detected(self):
        interface = self.make([load_record(addr=0x100)])
        with pytest.raises(ReplayDetection):
            interface.load(0x108, 8)

    def test_wrong_store_value_detected(self):
        interface = self.make([store_record(addr=0x200, value=9)])
        with pytest.raises(ReplayDetection) as excinfo:
            interface.store(0x200, 8, 10)
        assert excinfo.value.event.kind is DetectionKind.STORE_DATA

    def test_swap_roundtrip(self):
        record = LSLRecord(
            RecordKind.SWAP, (LSLAccess(0x10, 8, loaded=5, stored=6),), 0)
        interface = self.make([record])
        assert interface.swap(0x10, 8, 6) == 5

    def test_swap_with_wrong_new_value_detected(self):
        record = LSLRecord(
            RecordKind.SWAP, (LSLAccess(0x10, 8, loaded=5, stored=6),), 0)
        interface = self.make([record])
        with pytest.raises(ReplayDetection):
            interface.swap(0x10, 8, 99)

    def test_nonrep_values_replayed_in_order(self):
        records = [
            LSLRecord(RecordKind.NONREP, (LSLAccess(0, 8, loaded=11),), 0),
            LSLRecord(RecordKind.NONREP, (LSLAccess(0, 8, loaded=22),), 1),
        ]
        interface = self.make(records)
        assert interface.rdrand() == 11
        assert interface.rdtime(0) == 22

    def test_sc_success_then_store_checked(self):
        record = LSLRecord(RecordKind.NONREP_STORE,
                           (LSLAccess(0x30, 8, loaded=1, stored=77),), 0)
        interface = self.make([record])
        assert interface.sc_success() == 1
        interface.store(0x30, 8, 77)  # consumes the pending SC record

    def test_sc_failure_skips_store(self):
        record = LSLRecord(RecordKind.NONREP_STORE,
                           (LSLAccess(0x30, 8, loaded=0, stored=None),), 0)
        interface = self.make([record])
        assert interface.sc_success() == 0
        assert interface.surplus_records == 0

    def test_gather_serves_by_address(self):
        record = LSLRecord(RecordKind.GATHER, (
            LSLAccess(0x100, 8, loaded=1),
            LSLAccess(0x200, 8, loaded=2),
        ), 0)
        interface = self.make([record])
        # The executor may ask in either order; values match addresses.
        assert interface.load(0x200, 8) == 2
        assert interface.load(0x100, 8) == 1

    def test_gather_wrong_address_detected(self):
        record = LSLRecord(RecordKind.GATHER, (
            LSLAccess(0x100, 8, loaded=1),
            LSLAccess(0x200, 8, loaded=2),
        ), 0)
        interface = self.make([record])
        with pytest.raises(ReplayDetection):
            interface.load(0x300, 8)

    def test_hash_mode_defers_compare_to_digest(self):
        # In Hash Mode a wrong address does NOT raise inline; it corrupts
        # the digest instead.
        interface = self.make([load_record(addr=0x100)], hash_mode=True)
        interface.load(0x108, 8)  # no exception
        good = self.make([load_record(addr=0x100)], hash_mode=True)
        good.load(0x100, 8)
        assert interface.hash_stream.digest() != good.hash_stream.digest()

    def test_hash_mode_digests_stores(self):
        a = self.make([store_record()], hash_mode=True)
        b = self.make([store_record()], hash_mode=True)
        a.store(0x200, 8, 9)
        b.store(0x200, 8, 10)
        assert a.hash_stream.digest() != b.hash_stream.digest()


def test_examples_compile():
    """Every example script must at least be valid Python."""
    import pathlib
    import py_compile

    examples = pathlib.Path(__file__).parent.parent / "examples"
    scripts = sorted(examples.glob("*.py"))
    assert len(scripts) >= 4
    for script in scripts:
        py_compile.compile(str(script), doraise=True)
