"""Unit tests for the observability spine (repro.obs) and the stats
tree a full pipeline run publishes (``--stats-json`` schema)."""

import json
import math

import pytest

from repro.obs.stats import Counter, Gauge, Histogram, StageTimer, StatGroup


# -- leaf statistics ---------------------------------------------------------

def test_counter_increments():
    c = Counter("hits")
    c.inc()
    c.inc(4)
    assert c.to_value() == 5


def test_gauge_sets():
    g = Gauge("util")
    g.set(0.75)
    assert g.to_value() == 0.75


def test_histogram_records_and_buckets():
    h = Histogram("lat", bins=[0, 10, 100])
    h.record(5)
    h.record(50, n=2)
    h.record(500)
    v = h.to_value()
    assert v["count"] == 4
    assert v["sum"] == 5 + 100 + 500
    assert v["min"] == 5 and v["max"] == 500
    assert v["buckets"] == {">=0": 1, ">=10": 2, ">=100": 1}


def test_histogram_reset():
    h = Histogram("lat")
    h.record(7)
    h.reset()
    assert h.count == 0 and h.total == 0.0
    assert h.min == math.inf and h.max == -math.inf
    assert h.to_value()["buckets"] == {}
    h.record(3)
    assert h.count == 1  # usable after reset


def test_empty_histogram_min_max_null():
    v = Histogram("lat").to_value()
    assert v["min"] is None and v["max"] is None and v["mean"] == 0.0


# -- the group tree ----------------------------------------------------------

def test_group_get_or_create_returns_same_object():
    root = StatGroup("root")
    assert root.counter("x") is root.counter("x")
    assert root.group("sub") is root.group("sub")


def test_kind_clash_raises_type_error():
    root = StatGroup("root")
    root.counter("x")
    with pytest.raises(TypeError, match="'x'"):
        root.gauge("x")
    with pytest.raises(TypeError):
        root.group("x")


def test_publish_semantics_overwrite():
    """scalar()/count() set rather than accumulate, so re-exporting a
    snapshot (finalize runs twice per cluster pass) stays correct."""
    root = StatGroup("root")
    root.count("n", 10)
    root.count("n", 10)
    root.scalar("v", 2.5)
    root.scalar("v", 2.5)
    assert root["n"].to_value() == 10
    assert root["v"].to_value() == 2.5


def test_flatten_and_to_dict_and_json():
    root = StatGroup("root")
    root.group("a").count("n", 3)
    root.group("a").group("b").scalar("v", 1.5)
    assert root.to_dict() == {"a": {"n": 3, "b": {"v": 1.5}}}
    assert root.flatten() == {"a.n": 3, "a.b.v": 1.5}
    assert json.loads(root.to_json()) == root.to_dict()


def test_format_tree_lists_leaves():
    root = StatGroup("root")
    root.group("a").count("n", 3)
    root.histogram("h").record(2)
    text = root.format_tree()
    assert "a.n" in text and "3" in text and "n=1" in text


def test_stage_timer_accumulates():
    gauge = Gauge("wall_time_ms")
    for _ in range(2):
        with StageTimer(gauge):
            pass
    first = gauge.value
    assert first >= 0.0
    with StageTimer(gauge):
        pass
    assert gauge.value >= first


# -- the schema a real run publishes ----------------------------------------

#: Dotted leaf names ISSUE acceptance requires in every simulated run.
REQUIRED_LEAVES = [
    "main.caches.l1d.hits",
    "main.caches.l1d.misses",
    "main.uncore.dram.row_hits",
    "main.uncore.dram.row_misses",
    "noc.link_utilisation",
    "pipeline.trace.wall_time_ms",
    "pipeline.timing.wall_time_ms",
    "pipeline.noc.wall_time_ms",
    "pipeline.schedule.wall_time_ms",
    "pipeline.check.wall_time_ms",
    "pipeline.report.wall_time_ms",
    "schedule.segments",
    "schedule.coverage",
    "checkers.pool_occupancy",
    "result.slowdown",
    "result.baseline_time_ns",
]


@pytest.fixture(scope="module")
def run_stats():
    from repro.core.system import (CheckMode, ParaVerserConfig,
                                   ParaVerserSystem)
    from repro.cpu.config import CoreInstance
    from repro.cpu.presets import A510, X2
    from repro.workloads.generator import build_program
    from repro.workloads.profiles import get_profile

    config = ParaVerserConfig(
        main=CoreInstance(X2, 3.0),
        checkers=[CoreInstance(A510, 2.0)] * 2,
        mode=CheckMode.FULL,
        seed=7,
    )
    program = build_program(get_profile("exchange2"), seed=7)
    result = ParaVerserSystem(config).run(program, max_instructions=20_000)
    return result.stats


def test_run_publishes_required_leaves(run_stats):
    flat = run_stats.flatten()
    missing = [name for name in REQUIRED_LEAVES if name not in flat]
    assert not missing, f"stats tree missing {missing}"


def test_per_slot_checker_occupancy(run_stats):
    checkers = run_stats.group("checkers")
    slots = [name for name in checkers
             if isinstance(checkers[name], StatGroup)]
    assert len(slots) == 2
    for name in slots:
        # Can exceed 1.0: checkers keep draining after the main run ends.
        occupancy = checkers[name]["occupancy"].to_value()
        assert occupancy >= 0.0


def test_stats_json_round_trips(run_stats):
    tree = json.loads(run_stats.to_json())
    assert tree["result"]["slowdown"] == pytest.approx(
        run_stats.flatten()["result.slowdown"])
    assert tree["schedule"]["checker_lag_ns"]["count"] >= 0
