"""Tests for speculative out-of-order LSL indexing (section IV-G, Fig. 4)."""

import pytest

from repro.core.lsl import LSLAccess, LSLRecord, RecordKind
from repro.core.speculative import (
    AccessOutcome,
    SpeculativeIndexAllocator,
    SpeculativeLSLWindow,
)


def records(*specs):
    """Build log records from (addr, is_store) pairs."""
    out = []
    for i, (addr, is_store) in enumerate(specs):
        access = LSLAccess(addr, 8,
                           loaded=None if is_store else 1,
                           stored=2 if is_store else None)
        kind = RecordKind.STORE if is_store else RecordKind.LOAD
        out.append(LSLRecord(kind, (access,), i))
    return out


class TestAllocator:
    def test_indices_assigned_in_decode_order(self):
        alloc = SpeculativeIndexAllocator()
        a = alloc.decode(1)
        b = alloc.decode(2)
        c = alloc.decode(3)
        assert (a.index, b.index, c.index) == (0, 1, 2)

    def test_multi_entry_ops_advance_by_their_size(self):
        alloc = SpeculativeIndexAllocator()
        a = alloc.decode(1, entries=2)  # e.g. a gather
        b = alloc.decode(2)
        assert a.index == 0
        assert b.index == 2

    def test_hash_mode_zero_entry_ops_share_index(self):
        # In Hash Mode plain stores carry no log payload (section IV-I).
        alloc = SpeculativeIndexAllocator()
        a = alloc.decode(1, entries=0)
        b = alloc.decode(2)
        assert a.index == 0 and b.index == 0

    def test_double_decode_rejected(self):
        alloc = SpeculativeIndexAllocator()
        alloc.decode(1)
        with pytest.raises(ValueError):
            alloc.decode(1)

    def test_squash_rewinds_index(self):
        alloc = SpeculativeIndexAllocator()
        alloc.decode(1)
        victim = alloc.decode(2)
        alloc.decode(3)
        squashed = alloc.squash_from(2)
        assert [op.op_id for op in squashed] == [2, 3]
        # Correct-path instruction reuses the squashed index (Fig. 4).
        replay = alloc.decode(4)
        assert replay.index == victim.index

    def test_squash_unknown_op_rejected(self):
        alloc = SpeculativeIndexAllocator()
        with pytest.raises(KeyError):
            alloc.squash_from(9)

    def test_commit_retires_in_flight_op(self):
        alloc = SpeculativeIndexAllocator()
        op = alloc.decode(1)
        committed = alloc.commit(1)
        assert committed is op
        assert committed.committed

    def test_cannot_commit_squashed_op(self):
        alloc = SpeculativeIndexAllocator()
        alloc.decode(1)
        alloc.squash_from(1)
        with pytest.raises(KeyError):
            alloc.commit(1)

    def test_reset_for_new_segment(self):
        alloc = SpeculativeIndexAllocator()
        alloc.decode(1)
        alloc.reset()
        assert alloc.next_index == 0
        assert alloc.decode(2).index == 0


class TestFig4Scenario:
    """The exact example of the paper's Fig. 4."""

    def test_fig4(self):
        # Log: id0 -> load x, id2 -> store x, id4 -> load y... the figure's
        # entries are (load x, a), (store x, b), (load z, c): three log
        # entries at indices 0, 1, 2 in our record-granular model.
        log = records((0x100, False),   # load x
                      (0x100, True),    # store x
                      (0x300, False))   # load z
        window = SpeculativeLSLWindow(log)
        alloc = window.allocator

        i1 = alloc.decode(1)  # load x
        i2 = alloc.decode(2)  # store x
        i3 = alloc.decode(3)  # wrong-path "load y"

        # Out-of-order backend: I3 accesses before I2.
        assert window.access(i1, 0x100, is_store=False) is AccessOutcome.MATCH
        # I3 is a load to y (0x200) but its entry holds a load to z: the
        # PE bit is set, not raised.
        outcome = window.access(i3, 0x200, is_store=False)
        assert outcome is AccessOutcome.PE_SET
        assert i3.pe_bit
        # I2 accesses its own entry by index despite executing after I3.
        assert window.access(i2, 0x100, is_store=True) is AccessOutcome.MATCH

        # I3 turns out to be a misspeculation: squash and rewind.
        alloc.squash_from(3)
        # The correct-path instruction (a load to z) reuses index 2.
        i3b = alloc.decode(4)
        assert i3b.index == 2
        assert window.access(i3b, 0x300, is_store=False) is AccessOutcome.MATCH
        assert not i3b.pe_bit

    def test_pe_bit_raised_only_if_committed(self):
        log = records((0x100, False))
        window = SpeculativeLSLWindow(log)
        op = window.allocator.decode(1)
        window.access(op, 0x999, is_store=False)
        assert op.pe_bit
        committed = window.allocator.commit(1)
        # A committed op with the PE bit set is a reported error.
        assert committed.pe_bit and committed.committed


class TestEagerLimiter:
    def test_access_beyond_pushed_entries_sleeps(self):
        log = records((0x100, False), (0x200, False))
        window = SpeculativeLSLWindow(log, pushed=1)
        a = window.allocator.decode(1)
        b = window.allocator.decode(2)
        assert window.access(a, 0x100, False) is AccessOutcome.MATCH
        assert window.access(b, 0x200, False) is AccessOutcome.BEYOND_END

    def test_push_wakes_access(self):
        log = records((0x100, False), (0x200, False))
        window = SpeculativeLSLWindow(log, pushed=1)
        b = window.allocator.decode(2, entries=1)
        window.allocator.squash_from(2)  # restart fetch after sleep
        window.push_to(2)
        b2 = window.allocator.decode(3)
        assert window.access(b2, 0x100, False) is AccessOutcome.MATCH

    def test_push_count_cannot_decrease(self):
        window = SpeculativeLSLWindow(records((0x100, False)), pushed=1)
        with pytest.raises(ValueError):
            window.push_to(0)


def test_out_of_order_access_order_matches_inorder_consumption():
    """Whatever the access order, committed ops must map to the same
    entries as sequential in-order consumption would give them."""
    import random
    rng = random.Random(0)
    log = records(*[(0x1000 + i * 8, i % 3 == 0) for i in range(20)])
    window = SpeculativeLSLWindow(log)
    ops = [window.allocator.decode(i) for i in range(20)]
    shuffled = ops[:]
    rng.shuffle(shuffled)
    for op in shuffled:
        access = log[op.index].accesses[0]
        is_store = access.stored is not None
        assert window.access(op, access.addr, is_store) is AccessOutcome.MATCH
    for i, op in enumerate(ops):
        assert op.index == i
