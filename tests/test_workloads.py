"""Tests for workload profiles and the synthetic program generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.functional import DirectMemoryPort, FunctionalCore
from repro.mem.memory import Memory
from repro.workloads.generator import (
    CHASE_BASE,
    build_parallel_programs,
    build_program,
    build_thread_program,
)
from repro.workloads.profiles import (
    ALL_PROFILES,
    GAP,
    PARSEC,
    SPEC2017,
    SPEC_MIXES,
    get_profile,
)

#: The 20 SPECspeed benchmarks the paper names.
PAPER_SPEC_NAMES = {
    "bwaves", "cactuBSSN", "lbm", "wrf", "cam4", "pop2", "imagick", "nab",
    "fotonik3d", "roms", "perlbench", "gcc", "mcf", "omnetpp", "xalancbmk",
    "x264", "deepsjeng", "leela", "exchange2", "xz",
}


class TestProfiles:
    def test_all_twenty_spec_benchmarks_present(self):
        assert set(SPEC2017) == PAPER_SPEC_NAMES

    def test_gap_has_six_kernels(self):
        assert set(GAP) == {"bfs", "sssp", "pr", "cc", "bc", "tc"}

    def test_parsec_profiles_are_two_threaded(self):
        assert len(PARSEC) >= 8
        for profile in PARSEC.values():
            assert profile.threads == 2

    def test_instruction_mixes_sum_below_one(self):
        for profile in ALL_PROFILES.values():
            total = (profile.loads + profile.stores + profile.branches
                     + profile.fp + profile.fdiv + profile.mul
                     + profile.nonrep)
            assert total < 1.0, profile.name

    def test_bwaves_has_the_highest_fdiv_density(self):
        assert SPEC2017["bwaves"].fdiv == max(
            p.fdiv for p in SPEC2017.values())

    def test_gcc_has_the_biggest_icache_footprint(self):
        assert SPEC2017["gcc"].icache_blocks == max(
            p.icache_blocks for p in SPEC2017.values())

    def test_mcf_is_pointer_chasing(self):
        assert SPEC2017["mcf"].pointer_chase >= 0.5

    def test_gap_memory_bound_profiles(self):
        for profile in GAP.values():
            assert profile.pointer_chase >= 0.5
            assert profile.working_set_kib >= 64 * 1024

    def test_mixes_reference_real_benchmarks(self):
        assert len(SPEC_MIXES) == 5
        for names in SPEC_MIXES.values():
            assert len(names) == 4
            for name in names:
                assert name in SPEC2017

    def test_get_profile_unknown_name(self):
        with pytest.raises(KeyError):
            get_profile("doom")


class TestGenerator:
    def test_generated_programs_validate(self):
        for name in ("bwaves", "mcf", "gcc", "exchange2"):
            program = build_program(get_profile(name), seed=1)
            program.validate()  # no exception

    def test_deterministic_per_seed(self):
        a = build_program(get_profile("xz"), seed=5)
        b = build_program(get_profile("xz"), seed=5)
        assert len(a.instructions) == len(b.instructions)
        assert a.memory_image == b.memory_image

    def test_different_seeds_differ(self):
        a = build_program(get_profile("mcf"), seed=5)
        b = build_program(get_profile("mcf"), seed=6)
        assert a.memory_image != b.memory_image  # shuffled chase rings

    def test_icache_blocks_control_static_size(self):
        small = build_program(get_profile("mcf"), seed=1)
        big = build_program(get_profile("gcc"), seed=1)
        assert len(big.instructions) > 5 * len(small.instructions)

    def test_realised_mix_tracks_targets(self):
        profile = get_profile("bwaves")
        program = build_program(profile, seed=2)
        memory = Memory(program.memory_image)
        run = FunctionalCore(program, DirectMemoryPort(memory)).run(30_000)
        total = run.instructions
        loads = run.class_counts.get("load", 0) / total
        fdiv = run.class_counts.get("fp_div", 0) / total
        branches = run.class_counts.get("branch", 0) / total
        assert loads == pytest.approx(profile.loads, abs=0.06)
        assert fdiv == pytest.approx(profile.fdiv, abs=0.04)
        assert branches == pytest.approx(profile.branches, abs=0.05)

    def test_chase_ring_is_a_closed_cycle(self):
        profile = get_profile("mcf")
        program = build_program(profile, seed=3)
        ring = {addr: value for addr, value in program.memory_image.items()
                if addr >= CHASE_BASE}
        start = next(iter(ring))
        seen = set()
        node = start
        while node not in seen:
            seen.add(node)
            node = ring[node]
        assert len(seen) == len(ring)  # a single full cycle

    def test_programs_run_without_escaping(self):
        for name in ("mcf", "canneal", "pr"):
            program = build_program(get_profile(name), seed=4)
            memory = Memory(program.memory_image)
            run = FunctionalCore(program, DirectMemoryPort(memory)).run(5_000)
            assert run.instructions == 5_000  # still looping, no halt/escape

    def test_warm_ranges_only_for_llc_resident_sets(self):
        small = build_program(get_profile("exchange2"), seed=1)
        huge = build_program(get_profile("mcf"), seed=1)
        assert small.metadata["warm_ranges"]
        assert huge.metadata["warm_ranges"] == []

    def test_parallel_programs_one_per_thread(self):
        profile = get_profile("canneal")
        programs = build_parallel_programs(profile, seed=1)
        assert len(programs) == profile.threads
        assert programs[0].name != programs[1].name

    def test_threads_use_disjoint_private_working_sets(self):
        profile = get_profile("canneal")
        t0 = build_thread_program(profile, seed=1, tid=0)
        t1 = build_thread_program(profile, seed=1, tid=1)
        # Private chase rings live in per-thread regions.
        t0_chase = {a for a in t0.memory_image if a >= CHASE_BASE}
        t1_chase = {a for a in t1.memory_image if a >= CHASE_BASE}
        assert t0_chase.isdisjoint(t1_chase)

    def test_thread_programs_touch_shared_region(self):
        from repro.workloads.generator import SHARED_BASE
        profile = get_profile("canneal")
        program = build_thread_program(profile, seed=1, tid=0)
        memory = Memory(program.memory_image)
        run = FunctionalCore(program, DirectMemoryPort(memory)).run(20_000)
        shared_accesses = [
            e for e in run.trace
            if e.addr >= SHARED_BASE and e.addr < SHARED_BASE + 0x10000
        ]
        assert shared_accesses

    def test_nonrep_instructions_emitted_when_profiled(self):
        profile = get_profile("canneal")  # nonrep > 0
        program = build_thread_program(profile, seed=1, tid=0)
        memory = Memory(program.memory_image)
        run = FunctionalCore(program, DirectMemoryPort(memory)).run(20_000)
        nonrep = [e for e in run.trace if e.instr.spec.is_nonrepeatable]
        assert nonrep


@settings(max_examples=10, deadline=None)
@given(st.sampled_from(sorted(ALL_PROFILES)), st.integers(0, 50))
def test_every_profile_generates_runnable_code(name, seed):
    program = build_program(get_profile(name), seed=seed)
    program.validate()
    memory = Memory(program.memory_image)
    run = FunctionalCore(program, DirectMemoryPort(memory)).run(2_000)
    assert run.instructions == 2_000
