"""Tests for the parity and SEC-DED codecs."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.ecc import (
    EccError,
    ParityError,
    check_parity,
    decode_secded,
    encode_secded,
    parity_bit,
)

WORDS = st.integers(min_value=0, max_value=(1 << 64) - 1)


def test_parity_bit():
    assert parity_bit(0) == 0
    assert parity_bit(1) == 1
    assert parity_bit(0b11) == 0
    assert parity_bit(0b111) == 1


def test_check_parity_accepts_good():
    check_parity(0xDEAD, parity_bit(0xDEAD))


def test_check_parity_rejects_bad():
    with pytest.raises(ParityError):
        check_parity(0xDEAD, parity_bit(0xDEAD) ^ 1)


def test_clean_roundtrip():
    word = encode_secded(0x0123456789ABCDEF)
    value, corrected = decode_secded(word)
    assert value == 0x0123456789ABCDEF
    assert corrected is False


@pytest.mark.parametrize("position", [1, 2, 3, 5, 17, 33, 64, 70, 71])
def test_single_bit_error_corrected(position):
    word = encode_secded(0xCAFEBABE12345678).flip(position)
    value, corrected = decode_secded(word)
    assert value == 0xCAFEBABE12345678
    assert corrected is True


def test_overall_parity_bit_error_corrected():
    word = encode_secded(42).flip_overall()
    value, corrected = decode_secded(word)
    assert value == 42
    assert corrected is True


def test_double_bit_error_detected():
    word = encode_secded(99).flip(3).flip(40)
    with pytest.raises(EccError):
        decode_secded(word)


def test_flip_out_of_range_rejected():
    word = encode_secded(0)
    with pytest.raises(ValueError):
        word.flip(0)
    with pytest.raises(ValueError):
        word.flip(72)


@given(WORDS)
def test_roundtrip_property(value):
    decoded, corrected = decode_secded(encode_secded(value))
    assert decoded == value and not corrected


@given(WORDS, st.integers(min_value=1, max_value=71))
def test_any_single_flip_corrected_property(value, position):
    decoded, corrected = decode_secded(encode_secded(value).flip(position))
    assert decoded == value
    assert corrected


@given(WORDS, st.integers(min_value=1, max_value=71),
       st.integers(min_value=1, max_value=71))
def test_any_double_flip_detected_property(value, p1, p2):
    if p1 == p2:
        return  # flips cancel
    word = encode_secded(value).flip(p1).flip(p2)
    with pytest.raises(EccError):
        decode_secded(word)
