"""Tests for workload-fidelity validation — and the fidelity guard itself."""

import pytest

from repro.cpu.functional import DirectMemoryPort, FunctionalCore
from repro.mem.memory import Memory
from repro.workloads.generator import build_program
from repro.workloads.profiles import SPEC2017, get_profile
from repro.workloads.validation import (
    characterise,
    validate_against_profile,
)


def run_workload(name, instructions=20_000, seed=7):
    program = build_program(get_profile(name), seed=seed)
    memory = Memory(program.memory_image)
    return FunctionalCore(program, DirectMemoryPort(memory)).run(instructions)


class TestCharacterise:
    def test_fractions_sum_to_about_one(self):
        character = characterise(run_workload("bwaves"))
        total = sum(v for k, v in character.class_fractions.items()
                    if k != "nonrep")
        assert total == pytest.approx(1.0, abs=0.01)

    def test_footprint_tracks_working_set(self):
        small = characterise(run_workload("exchange2"))  # 64 KiB WS
        large = characterise(run_workload("mcf"))        # 64 MiB WS
        assert large.data_footprint_lines > 2 * small.data_footprint_lines

    def test_chase_fraction_measured(self):
        mcf = characterise(run_workload("mcf"))
        stream = characterise(run_workload("lbm"))
        assert mcf.dependent_load_fraction > 0.4
        assert stream.dependent_load_fraction < 0.05

    def test_static_touch_tracks_icache_blocks(self):
        gcc = characterise(run_workload("gcc", 40_000))
        mcf = characterise(run_workload("mcf"))
        assert gcc.static_instructions_touched > \
            5 * mcf.static_instructions_touched

    def test_taken_fraction_in_sane_range(self):
        character = characterise(run_workload("deepsjeng"))
        assert 0.2 < character.taken_fraction < 0.95


class TestValidation:
    @pytest.mark.parametrize("name", sorted(SPEC2017))
    def test_every_spec_profile_is_faithful(self, name):
        """Fidelity regression guard over all 20 SPEC profiles."""
        run = run_workload(name)
        # Support instructions (address computation) deflate the realised
        # fractions slightly below target; 0.08 absolute is the band the
        # generator holds across all profiles.
        deviations = validate_against_profile(run, get_profile(name),
                                              tolerance=0.08)
        assert not deviations, "; ".join(str(d) for d in deviations)

    def test_deviation_reported_for_wrong_profile(self):
        # bwaves measured against mcf's profile must deviate loudly.
        run = run_workload("bwaves")
        deviations = validate_against_profile(run, get_profile("mcf"))
        metrics = {d.metric for d in deviations}
        assert "fdiv" in metrics or "load" in metrics

    def test_deviation_str_is_informative(self):
        run = run_workload("bwaves")
        deviations = validate_against_profile(run, get_profile("mcf"))
        assert deviations
        text = str(deviations[0])
        assert "target" in text and "measured" in text
