"""Tests for the rollback-correction extension (ParaMedic-style)."""

import pytest

from repro.core.rollback import RecoverableSystem, UndoLogPort
from repro.cpu.functional import DirectMemoryPort, FunctionalCore
from repro.faults.models import StuckAtFault, TransientFault
from repro.isa.assembler import assemble
from repro.isa.instructions import FUKind
from repro.mem.memory import Memory

PROGRAM_TEXT = """
    addi x1, x0, 400
    lui x3, 0x1000
loop:
    ld x4, 0(x3)
    addi x4, x4, 3
    st x4, 0(x3)
    mul x5, x4, x1
    st x5, 8(x3)
    addi x3, x3, 16
    subi x1, x1, 1
    bne x1, x0, loop
    halt
"""


def reference_run(max_instructions=10_000):
    program = assemble(PROGRAM_TEXT, name="rollback")
    memory = Memory(program.memory_image)
    core = FunctionalCore(program, DirectMemoryPort(memory))
    result = core.run(max_instructions)
    return result.end_checkpoint, memory


class TestUndoLog:
    def test_records_old_values(self):
        memory = Memory({0x10: 5})
        port = UndoLogPort(memory)
        port.store(0x10, 8, 9)
        assert port.undo == [(0x10, 8, 5)]

    def test_unwind_restores_in_reverse(self):
        memory = Memory()
        port = UndoLogPort(memory)
        port.store(0x10, 8, 1)
        port.store(0x10, 8, 2)
        log = port.take_undo()
        port.unwind(log)
        assert memory.load(0x10, 8) == 0

    def test_swap_is_logged(self):
        memory = Memory({0x20: 7})
        port = UndoLogPort(memory)
        assert port.swap(0x20, 8, 8) == 7
        port.unwind(port.take_undo())
        assert memory.load(0x20, 8) == 7

    def test_take_undo_clears(self):
        port = UndoLogPort(Memory())
        port.store(0x10, 8, 1)
        port.take_undo()
        assert port.undo == []


class TestRecovery:
    def test_clean_run_never_rolls_back(self):
        program = assemble(PROGRAM_TEXT, name="rollback")
        system = RecoverableSystem(program, segment_instructions=500)
        result = system.run(6_000)
        assert result.rolled_back == 0
        assert result.segments > 5

    def test_clean_run_matches_reference(self):
        program = assemble(PROGRAM_TEXT, name="rollback")
        system = RecoverableSystem(program, segment_instructions=500)
        result = system.run(10_000)
        reference_end, reference_memory = reference_run(10_000)
        assert result.end_checkpoint.matches(reference_end)
        assert result.memory == reference_memory

    def test_transient_main_fault_corrected(self):
        """A soft error in the main core is detected, rolled back, and the
        re-executed run converges to the fault-free result."""
        program = assemble(PROGRAM_TEXT, name="rollback")
        fault = TransientFault(FUKind.INT_ALU, unit=0, bit=7,
                               strike_at_use=1000)
        system = RecoverableSystem(program, segment_instructions=500,
                                   main_fault=fault)
        result = system.run(10_000)
        assert result.rolled_back >= 1
        reference_end, reference_memory = reference_run(10_000)
        assert result.end_checkpoint.matches(reference_end)
        assert result.memory == reference_memory

    def test_recovery_event_carries_detection(self):
        program = assemble(PROGRAM_TEXT, name="rollback")
        fault = TransientFault(FUKind.INT_ALU, unit=0, bit=3,
                               strike_at_use=700)
        system = RecoverableSystem(program, segment_instructions=500,
                                   main_fault=fault)
        result = system.run(5_000)
        if result.recoveries:  # the strike may be architecturally masked
            event = result.recoveries[0]
            assert event.detection is not None
            assert event.attempt == 1

    def test_hard_checker_fault_exhausts_retries(self):
        program = assemble(PROGRAM_TEXT, name="rollback")
        fault = StuckAtFault(FUKind.INT_ALU, unit=0, bit=0, stuck_at=1)
        system = RecoverableSystem(program, segment_instructions=500,
                                   checker_fault=fault, max_retries=2)
        with pytest.raises(RuntimeError, match="hard fault"):
            system.run(5_000)

    def test_multiple_transients_all_corrected(self):
        program = assemble(PROGRAM_TEXT, name="rollback")

        class TwoStrikes:
            def __init__(self):
                self.faults = [
                    TransientFault(FUKind.INT_ALU, 0, 5, strike_at_use=600),
                    TransientFault(FUKind.INT_MUL, 0, 9, strike_at_use=400),
                ]

            def apply(self, fu, unit, value, is_address=False):
                for fault in self.faults:
                    value = fault.apply(fu, unit, value, is_address)
                return value

        system = RecoverableSystem(program, segment_instructions=400,
                                   main_fault=TwoStrikes())
        result = system.run(10_000)
        reference_end, reference_memory = reference_run(10_000)
        assert result.end_checkpoint.matches(reference_end)
        assert result.memory == reference_memory
