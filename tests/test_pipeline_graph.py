"""Stage-graph declaration, executor scheduling, and bit-identity.

The tentpole guarantee of the stage-graph engine is that parallel
execution is an implementation detail: ``stage_jobs=N`` must be
bit-identical to the serial pipeline.  These tests pin the graph's
declared shape, the executor's failure modes, and that guarantee.
"""

import pytest

from repro.core.system import CheckMode, ParaVerserSystem
from repro.harness.runner import make_config
from repro.pipeline.check import verify_sample
from repro.pipeline.executor import GraphExecutor, env_stage_jobs
from repro.pipeline.graph import RUN_GRAPH, StageGraph, StageNode
from repro.workloads.generator import build_program
from repro.workloads.profiles import get_profile

BUDGET = 6000
SEED = 7


def _nop(system, artifacts, executor):
    return {}


def _node(name, inputs, outputs):
    return StageNode(name, tuple(inputs), tuple(outputs), _nop)


# -- graph declaration -------------------------------------------------------

class TestRunGraph:
    def test_declares_seven_stages(self):
        assert len(RUN_GRAPH) == 7
        assert [node.name for node in RUN_GRAPH.nodes] == [
            "build", "trace", "timing", "noc", "schedule", "check",
            "report"]

    def test_request_is_the_only_external_input(self):
        assert RUN_GRAPH.external_inputs == ("request",)

    def test_result_is_produced_by_report(self):
        assert RUN_GRAPH.producers["result"] == "report"

    def test_check_is_independent_of_noc_and_schedule(self):
        """The overlap win: verify replay needs no timing artifacts."""
        check = next(n for n in RUN_GRAPH.nodes if n.name == "check")
        assert "noc_terms" not in check.inputs
        assert "scheduled" not in check.inputs
        assert "prepared" not in check.inputs

    def test_initially_only_build_is_ready(self):
        ready = RUN_GRAPH.ready({"request": object()}, set())
        assert [node.name for node in ready] == ["build"]


class TestStageGraphValidation:
    def test_duplicate_stage_name_rejected(self):
        with pytest.raises(ValueError, match="duplicate stage names"):
            StageGraph([_node("a", [], ["x"]), _node("a", [], ["y"])])

    def test_duplicate_producer_rejected(self):
        with pytest.raises(ValueError, match="produced by both"):
            StageGraph([_node("a", [], ["x"]), _node("b", [], ["x"])])

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            StageGraph([_node("a", ["y"], ["x"]),
                        _node("b", ["x"], ["y"])])

    def test_ready_respects_done_and_missing_inputs(self):
        graph = StageGraph([_node("a", ["ext"], ["x"]),
                            _node("b", ["x"], ["y"])])
        assert graph.external_inputs == ("ext",)
        ready = graph.ready({"ext": 1}, set())
        assert [n.name for n in ready] == ["a"]
        ready = graph.ready({"ext": 1, "x": 2}, {"a"})
        assert [n.name for n in ready] == ["b"]
        assert graph.ready({"ext": 1, "x": 2, "y": 3}, {"a", "b"}) == []


# -- executor ----------------------------------------------------------------

class TestGraphExecutor:
    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_STAGE_JOBS", raising=False)
        assert env_stage_jobs() == 1
        monkeypatch.setenv("REPRO_STAGE_JOBS", "3")
        assert env_stage_jobs() == 3
        assert GraphExecutor().stage_jobs == 3
        monkeypatch.setenv("REPRO_STAGE_JOBS", "0")
        assert env_stage_jobs() >= 1

    @pytest.mark.parametrize("stage_jobs", [1, 4])
    def test_map_ordered_preserves_input_order(self, stage_jobs):
        executor = GraphExecutor(stage_jobs)
        items = list(range(31))
        assert executor.map_ordered(lambda i: i * i, items) == \
            [i * i for i in items]

    def test_map_ordered_empty(self):
        assert GraphExecutor(4).map_ordered(lambda i: i, []) == []

    @pytest.mark.parametrize("stage_jobs", [1, 4])
    def test_missing_output_raises(self, stage_jobs):
        graph = StageGraph([_node("a", [], ["x"])])  # _nop returns {}
        with pytest.raises(RuntimeError, match="did not produce"):
            GraphExecutor(stage_jobs).execute(graph, _FakeSystem(), {})

    @pytest.mark.parametrize("stage_jobs", [1, 4])
    def test_stalled_graph_raises(self, stage_jobs):
        graph = StageGraph([_node("a", ["never"], ["x"])])
        with pytest.raises(RuntimeError, match="stalled"):
            GraphExecutor(stage_jobs).execute(graph, _FakeSystem(), {})


class _FakeStats:
    def group(self, *args, **kwargs):
        return self

    def scalar(self, *args, **kwargs):
        pass

    def count(self, *args, **kwargs):
        pass


class _FakeCtx:
    stats = _FakeStats()


class _FakeSystem:
    ctx = _FakeCtx()


# -- bit-identity ------------------------------------------------------------

@pytest.fixture(scope="module")
def program():
    return build_program(get_profile("xz"), seed=SEED)


def _fingerprint(result):
    return (
        result.overhead_percent,
        result.coverage,
        result.segments,
        result.stall_ns,
        result.lsl_bytes,
        result.noc_extra_llc_ns,
        result.cut_reasons,
        tuple(r.detected for r in result.verify_results),
        result.main_timing.time_ns,
        result.baseline_timing.time_ns,
    )


@pytest.mark.parametrize("mode", [CheckMode.FULL, CheckMode.OPPORTUNISTIC])
def test_parallel_stages_bit_identical_to_serial(program, mode):
    config = make_config(_pool(), mode)
    serial = ParaVerserSystem(config, stage_jobs=1).run(
        program, max_instructions=BUDGET)
    pooled = ParaVerserSystem(config, stage_jobs=4).run(
        program, max_instructions=BUDGET)
    assert _fingerprint(pooled) == _fingerprint(serial)


def _pool():
    from repro.cpu.config import CoreInstance
    from repro.cpu.presets import A510

    return [CoreInstance(A510, 2.0), CoreInstance(A510, 2.0)]


def test_executor_stats_published(program):
    config = make_config(_pool())
    result = ParaVerserSystem(config, stage_jobs=2).run(
        program, max_instructions=BUDGET)
    flat = result.stats.flatten()
    assert flat["pipeline.executor.stage_jobs"] == 2.0
    assert flat["pipeline.executor.stages_run"] == 7
    assert flat["pipeline.executor.wall_time_ms"] > 0.0
    assert flat["pipeline.executor.queue_depth_max"] >= 1.0
    assert flat["pipeline.executor.overlap"] > 0.0
    assert 0.0 < flat["pipeline.executor.occupancy"] <= 1.0
    for stage in ("build", "trace", "timing", "noc", "schedule", "check",
                  "report"):
        assert f"pipeline.{stage}.wall_time_ms" in flat


def test_verify_sample_mapper_matches_serial(program):
    config = make_config(_pool())
    system = ParaVerserSystem(config)
    run = system.execute(program, max_instructions=BUDGET)
    segments = system.segment(run)
    serial = verify_sample(config, program, segments)
    mapped = verify_sample(config, program, segments,
                           mapper=GraphExecutor(4).map_ordered)
    assert len(serial) == len(mapped) > 0
    for a, b in zip(serial, mapped):
        assert a.detected == b.detected
        assert a.instructions_replayed == b.instructions_replayed
        assert a.first_event == b.first_event
