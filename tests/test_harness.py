"""Tests for the experiment harness (report tables, runner, opportunity)."""

import math

import pytest

from repro.core.system import CheckMode
from repro.cpu.config import CoreInstance
from repro.cpu.presets import A510, X2
from repro.harness.opportunity import core_throughput_gips, parallel_speedup
from repro.harness.report import Table, geomean, slowdown_percent
from repro.harness.runner import WorkloadCache, make_config


class TestReport:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geomean_empty_is_nan(self):
        assert math.isnan(geomean([]))

    def test_slowdown_percent(self):
        assert slowdown_percent(1.05) == pytest.approx(5.0)

    def test_table_add_and_columns(self):
        table = Table(title="t")
        table.add("bench1", "cfgA", 1.0)
        table.add("bench1", "cfgB", 2.0)
        table.add("bench2", "cfgA", 3.0)
        assert table.columns == ["cfgA", "cfgB"]
        assert table.column_values("cfgA") == [1.0, 3.0]

    def test_geomean_row_through_ratio_space(self):
        table = Table(title="t")
        table.add("a", "cfg", 0.0)    # 1.00x
        table.add("b", "cfg", 10.0)   # 1.10x
        gm = table.geomean_row(from_percent=True)
        assert gm["cfg"] == pytest.approx((math.sqrt(1.1) - 1) * 100)

    def test_render_contains_rows_and_geomean(self):
        table = Table(title="My Figure")
        table.add("bwaves", "cfg", 5.0)
        text = table.render()
        assert "My Figure" in text
        assert "bwaves" in text
        assert "geomean" in text
        assert "5.00" in text

    def test_render_handles_missing_cells(self):
        table = Table(title="t")
        table.add("a", "cfgA", 1.0)
        table.add("b", "cfgB", 2.0)
        assert "-" in table.render()


class TestRunner:
    def test_cache_reuses_trace(self):
        cache = WorkloadCache(max_instructions=3_000)
        first = cache.get("exchange2")
        second = cache.get("exchange2")
        assert first is second

    def test_run_config_produces_result(self):
        cache = WorkloadCache(max_instructions=3_000)
        config = make_config([CoreInstance(A510, 2.0)],
                             timeout_instructions=500)
        result = cache.run_config("exchange2", config)
        assert result.workload == "exchange2"
        assert result.instructions == 3_000

    def test_baseline_cached_across_configs(self):
        cache = WorkloadCache(max_instructions=3_000)
        r1 = cache.run_config("exchange2", make_config(
            [CoreInstance(A510, 2.0)], timeout_instructions=500))
        r2 = cache.run_config("exchange2", make_config(
            [CoreInstance(X2, 3.0)], timeout_instructions=500))
        assert r1.baseline_time_ns == r2.baseline_time_ns

    def test_make_config_defaults(self):
        config = make_config([CoreInstance(A510, 2.0)])
        assert config.main.config.name == "X2"
        assert config.main.freq_ghz == 3.0
        assert config.mode is CheckMode.FULL


class TestOpportunity:
    @pytest.fixture(scope="class")
    def cached(self):
        cache = WorkloadCache(max_instructions=6_000)
        return cache.get("pr")

    def test_throughput_ordering(self, cached):
        big = core_throughput_gips(cached.program, cached.run,
                                   CoreInstance(X2, 3.0))
        little = core_throughput_gips(cached.program, cached.run,
                                      CoreInstance(A510, 2.0))
        assert big > little > 0

    def test_speedup_above_one_below_ideal(self, cached):
        speedup = parallel_speedup(
            cached.program, cached.run, CoreInstance(X2, 3.0),
            [CoreInstance(A510, 2.0)] * 2)
        assert 1.0 < speedup < 3.0

    def test_homogeneous_scaling_close_to_two(self, cached):
        speedup = parallel_speedup(
            cached.program, cached.run, CoreInstance(X2, 3.0),
            [CoreInstance(X2, 3.0)])
        # The paper measures 1.8-1.9x for a second big core.
        assert 1.5 < speedup < 2.0

    def test_more_littles_more_speedup(self, cached):
        two = parallel_speedup(cached.program, cached.run,
                               CoreInstance(X2, 3.0),
                               [CoreInstance(A510, 2.0)] * 2)
        four = parallel_speedup(cached.program, cached.run,
                                CoreInstance(X2, 3.0),
                                [CoreInstance(A510, 2.0)] * 4)
        assert four > two
