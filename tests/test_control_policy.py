"""Control policies: watermarks, ladders, specs (repro.control.policy)."""

import pytest

from repro.control import (
    ControlAction,
    Controller,
    ED2PBudgetPolicy,
    EpochObservation,
    SchedulerPolicy,
    StaticPolicy,
    ThresholdPolicy,
    fleet_energy_nj,
    make_controller,
)
from repro.power.ed2p import A510_SWEEP_GHZ


def obs(**overrides) -> EpochObservation:
    base = dict(epoch=1, t_s=0.1, epoch_len_s=0.1, servers=4,
                offered=100, completed=100, p50_ms=1.0, p99_ms=2.0,
                utilization=0.5, stall_fraction=0.0, coverage=1.0,
                lag_max_frac=0.2, busy_s=0.2, checked_work_s=0.2,
                mode="full", checkers="4xA510@2.0")
    base.update(overrides)
    return EpochObservation(**base)


class TestStatic:
    def test_pins_the_operating_point(self):
        policy = StaticPolicy(mode="opportunistic", checkers="2xA510@2.0")
        action = policy.on_epoch(obs())
        assert action == ControlAction(mode="opportunistic",
                                       checkers="2xA510@2.0")

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown mode"):
            StaticPolicy(mode="turbo")


class TestThreshold:
    def test_degrades_on_stall_not_p99(self):
        policy = ThresholdPolicy()
        # High p99 alone (pure overload below the overload watermark's
        # trigger semantics) must not shed coverage...
        assert policy.on_epoch(obs(p99_ms=20.0)).mode == "full"
        # ...but checking-caused stalls must.
        hot = policy.on_epoch(obs(stall_fraction=0.10))
        assert hot.mode == "opportunistic"
        assert hot.info["hot"] is True

    def test_disabled_only_past_overload_watermark(self):
        policy = ThresholdPolicy()
        policy.on_epoch(obs(stall_fraction=0.10))  # -> opportunistic
        stay = policy.on_epoch(obs(mode="opportunistic",
                                   stall_fraction=0.10, p99_ms=10.0))
        assert stay.mode == "opportunistic"
        shed = policy.on_epoch(obs(mode="opportunistic", p99_ms=50.0))
        assert shed.mode == "disabled"
        assert shed.info["overload"] is True
        # The pool spec survives disabled so the backlog keeps draining.
        assert shed.checkers == policy.checkers

    def test_restore_requires_lag_headroom(self):
        policy = ThresholdPolicy()
        policy.on_epoch(obs(stall_fraction=0.10))  # -> opportunistic
        # Quiet stalls and tail, but the LSL is still near the bound:
        held = policy.on_epoch(obs(mode="opportunistic",
                                   lag_max_frac=0.99))
        assert held.mode == "opportunistic"
        restored = policy.on_epoch(obs(mode="opportunistic",
                                       lag_max_frac=0.2))
        assert restored.mode == "full"
        assert restored.info["cool"] is True

    def test_band_between_watermarks_never_switches(self):
        policy = ThresholdPolicy(stall_high=0.05, stall_low=0.01)
        for _ in range(20):
            action = policy.on_epoch(obs(stall_fraction=0.03,
                                         p99_ms=10.0))
            assert action.mode == "full"

    def test_watermark_ordering_enforced(self):
        with pytest.raises(ValueError, match="low < high"):
            ThresholdPolicy(stall_high=0.01, stall_low=0.05)
        with pytest.raises(ValueError, match="low < high"):
            ThresholdPolicy(p99_high_ms=1.0, p99_low_ms=5.0)


class TestED2PBudget:
    def test_ladder_walks_dvfs_before_modes(self):
        policy = ED2PBudgetPolicy(budget=0.40, pool=4)
        modes = [mode for mode, _ in policy.ladder]
        assert modes == ["full"] * len(A510_SWEEP_GHZ) \
            + ["opportunistic", "disabled"]
        assert policy.ladder[0][1] == "4xA510@2"
        assert policy.ladder[len(A510_SWEEP_GHZ) - 1][1] == "4xA510@1.4"
        assert policy.ladder[-1] == ("disabled", "none")

    def test_over_budget_steps_down_and_reports_overshoot(self):
        # A tiny budget forces a step down on the very first epoch.
        policy = ED2PBudgetPolicy(budget=0.01)
        action = policy.on_epoch(obs())
        assert action.info["step"] == 1
        assert action.info["overshoot"] > 0.0
        # Disabling the checkers stops the cumulative overhead growing,
        # and the margin band eventually walks the ladder back up.
        for _ in range(60):
            action = policy.on_epoch(obs(mode=action.mode,
                                         checkers=action.checkers,
                                         checked_work_s=0.0))
        assert action.info["step"] < len(policy.ladder) - 1

    def test_validation(self):
        with pytest.raises(ValueError, match="budget"):
            ED2PBudgetPolicy(budget=0.0)
        with pytest.raises(ValueError, match="low_margin"):
            ED2PBudgetPolicy(low_margin=1.5)


class TestSchedulerPolicy:
    def test_quiet_fleet_gets_full_coverage(self):
        policy = SchedulerPolicy()
        action = policy.on_epoch(obs(utilization=0.1))
        assert action.mode == "full"
        assert action.checkers.endswith("xA510@2")

    def test_saturated_fleet_disables(self):
        policy = SchedulerPolicy(littles=2)
        action = policy.on_epoch(obs(utilization=1.0))
        assert action.mode == "disabled"
        assert action.checkers == "none"


class TestEnergy:
    def test_checker_energy_scales_with_checked_work(self):
        main_a, checker_a = fleet_energy_nj(1.0, 0.5, "4xA510@2.0")
        main_b, checker_b = fleet_energy_nj(1.0, 1.0, "4xA510@2.0")
        assert main_a == main_b
        assert 0 < checker_a < checker_b

    def test_no_pool_means_no_checker_energy(self):
        main, checker = fleet_energy_nj(1.0, 0.5, "none")
        assert main > 0 and checker == 0.0

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError, match="bad checker spec"):
            fleet_energy_nj(1.0, 0.5, "A510")

    def test_slower_pool_burns_less_per_instruction(self):
        _, fast = fleet_energy_nj(1.0, 0.5, "4xA510@2.0")
        _, slow = fleet_energy_nj(1.0, 0.5, "4xA510@1.4")
        assert slow < fast  # lower frequency -> lower voltage -> less E


class TestMakeController:
    def test_builds_dwell_wrapped_policies(self):
        controller = make_controller({"kind": "threshold", "dwell": 3,
                                      "stall_high": 0.2})
        assert isinstance(controller, Controller)
        assert controller.dwell_epochs == 3
        assert isinstance(controller.policy, ThresholdPolicy)
        assert controller.policy.stall_high == 0.2

    def test_freqs_ghz_tuple_restored_from_json_list(self):
        controller = make_controller({"kind": "ed2p_budget",
                                      "freqs_ghz": [2.0, 1.6]})
        assert isinstance(controller.policy, ED2PBudgetPolicy)
        assert len(controller.policy.ladder) == 4  # 2 DVFS + opp + off

    def test_scheduler_kind_registered(self):
        controller = make_controller({"kind": "scheduler", "littles": 4})
        assert isinstance(controller.policy, SchedulerPolicy)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown controller kind"):
            make_controller({"kind": "pid"})
