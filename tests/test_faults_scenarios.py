"""Campaign scenarios from related work: DME, ITHICA SDC, MEEK."""

import json
import logging

import pytest

from repro.faults.engine import (
    CampaignOutcome,
    CampaignSpec,
    load_completed,
    run_campaign,
)
from repro.faults.models import (
    ALL_FAULT_KINDS,
    FAULT_DEFECT,
    FAULT_KINDS,
    DefectFault,
    random_defect_fault,
)
from repro.faults.scenarios import (
    CAMPAIGN_SCHEMES,
    DecorrelatedSurface,
    decorrelation_mask,
    default_fault_kinds,
    make_campaign,
)
from repro.isa.instructions import FUKind


def small_spec(scheme="paraverser", **overrides):
    params = dict(workload="mcf", checkers="1xA510@1.0",
                  mode="opportunistic", hash_mode=False,
                  instructions=20000, seed=7, trials=6,
                  fault_kinds=FAULT_KINDS, scheme=scheme)
    params.update(overrides)
    return CampaignSpec(**params)


def sim_row(outcome):
    """The deterministic part of ``to_row`` (host runtime keys dropped)."""
    row = outcome.to_row()
    for key in ("elapsed_s", "jobs", "trace_source", "resumed_trials",
                "trace_cache"):
        row.pop(key, None)
    return row


# -- DefectFault (ITHICA SDC model) -----------------------------------------

def make_defect(**overrides):
    params = dict(fus=(FUKind.INT_ALU,), trigger_mask=0xF0,
                  trigger_value=0x30, corruption=1 << 5, latch_after=1)
    params.update(overrides)
    return DefectFault(**params)


def test_defect_triggers_only_on_matching_pattern():
    fault = make_defect()
    assert fault.apply(FUKind.INT_ALU, 0, 0x131) == 0x131 ^ (1 << 5)
    assert fault.apply(FUKind.INT_ALU, 0, 0x141) == 0x141  # pattern miss
    assert fault.apply(FUKind.FP, 0, 0x131) == 0x131  # other FU class


def test_defect_hits_every_unit_instance():
    fault = make_defect()
    assert fault.apply(FUKind.INT_ALU, 0, 0x30) != 0x30
    assert fault.apply(FUKind.INT_ALU, 3, 0x30) != 0x30


def test_defect_latch_after_wear_in():
    fault = make_defect(latch_after=3)
    assert fault.apply(FUKind.INT_ALU, 0, 0x30) == 0x30
    assert fault.apply(FUKind.INT_ALU, 0, 0x30) == 0x30
    assert fault.apply(FUKind.INT_ALU, 0, 0x30) == 0x30 ^ (1 << 5)


def test_defect_addresses_only_gate():
    fault = make_defect(fus=(FUKind.LOAD,), addresses_only=True)
    assert fault.apply(FUKind.LOAD, 0, 0x30, is_address=False) == 0x30
    assert fault.apply(FUKind.LOAD, 0, 0x30, is_address=True) != 0x30


def test_defect_fresh_resets_persistent_state():
    """The match counter must never leak between replay passes."""
    fault = make_defect(latch_after=2)
    fault.apply(FUKind.INT_ALU, 0, 0x30)
    assert fault.matches == 1
    clean = fault.fresh()
    assert clean.matches == 0
    # A fresh copy needs wear-in again; the stale one is already primed.
    assert clean.apply(FUKind.INT_ALU, 0, 0x30) == 0x30
    assert fault.apply(FUKind.INT_ALU, 0, 0x30) == 0x30 ^ (1 << 5)


def test_defect_two_passes_identical_after_fresh():
    """Replaying twice from fresh() is bit-identical (no state leak)."""
    fault = make_defect(latch_after=2)
    values = [0x30, 0x31, 0x42, 0x35, 0x30]

    def one_pass(surface):
        return [surface.apply(FUKind.INT_ALU, 0, v) for v in values]

    assert one_pass(fault.fresh()) == one_pass(fault.fresh())


def test_random_defect_fault_is_deterministic():
    import random
    fu_counts = {FUKind.INT_ALU: 2, FUKind.FP: 1,
                 FUKind.LOAD: 1, FUKind.STORE: 1}
    a = random_defect_fault(random.Random(99), fu_counts)
    b = random_defect_fault(random.Random(99), fu_counts)
    assert a == b
    assert a.trigger_value == a.trigger_value & a.trigger_mask


def test_defect_kind_registered():
    assert FAULT_DEFECT in ALL_FAULT_KINDS
    assert FAULT_DEFECT not in FAULT_KINDS  # default mix is unchanged
    assert default_fault_kinds("ithica-sdc") == (FAULT_DEFECT,)
    assert default_fault_kinds("paraverser") == FAULT_KINDS


# -- decorrelation (DME) -----------------------------------------------------

def test_decorrelation_mask_identity_and_determinism():
    assert decorrelation_mask(7, 0) == 0
    mask = decorrelation_mask(7, 1)
    assert mask != 0
    assert mask == decorrelation_mask(7, 1)
    assert mask < (1 << 40)
    assert decorrelation_mask(7, 2) != mask
    assert decorrelation_mask(8, 1) != mask


class _Identity:
    def apply(self, fu, unit, value, is_address=False):
        return value

    def describe(self):
        return "identity"


def test_decorrelated_surface_is_transparent_when_inner_is_clean():
    surface = DecorrelatedSurface(_Identity(), 0xABC)
    # XOR in, XOR out: a clean inner fault leaves addresses untouched.
    assert surface.apply(FUKind.LOAD, 0, 0x1234, is_address=True) == 0x1234
    assert surface.apply(FUKind.INT_ALU, 0, 55) == 55


def test_decorrelated_surface_remaps_address_seen_by_inner():
    seen = []

    class Recorder:
        def apply(self, fu, unit, value, is_address=False):
            seen.append((value, is_address))
            return value

    surface = DecorrelatedSurface(Recorder(), 0xABC)
    surface.apply(FUKind.LOAD, 0, 0x1234, is_address=True)
    surface.apply(FUKind.INT_ALU, 0, 0x1234, is_address=False)
    assert seen[0] == (0x1234 ^ 0xABC, True)   # address remapped
    assert seen[1] == (0x1234, False)          # data untouched


def test_decorrelated_surface_delegates_checkpoint_hook():
    class WithHook(_Identity):
        def corrupt_checkpoint(self, checkpoint, segment):
            return ("corrupted", segment)

    surface = DecorrelatedSurface(WithHook(), 0x1)
    assert surface.corrupt_checkpoint(None, 3) == ("corrupted", 3)
    plain = DecorrelatedSurface(_Identity(), 0x1)
    assert getattr(plain, "corrupt_checkpoint", None) is None


# -- campaign schemes --------------------------------------------------------

def detected_trials(outcome):
    return {r.trial for r in outcome.records if r.detected}


def latency_by_trial(outcome):
    return {r.trial: r.detection_instruction
            for r in outcome.records if r.detected}


def test_unknown_scheme_raises():
    with pytest.raises(ValueError, match="unknown campaign scheme"):
        make_campaign("bogus", None, [], None)
    assert set(CAMPAIGN_SCHEMES) == {
        "paraverser", "dme", "ithica-sdc", "meek-ro"}


def test_spec_scheme_roundtrip_and_key():
    spec = small_spec("dme")
    again = CampaignSpec.from_json(spec.to_json())
    assert again.scheme == "dme"
    assert spec.key() != small_spec("paraverser").key()
    # Pre-scheme payloads (old shards/clients) default to paraverser.
    payload = small_spec().to_json()
    del payload["scheme"]
    assert CampaignSpec.from_json(payload).scheme == "paraverser"


def test_dme_detects_superset_of_paraverser():
    base = run_campaign(small_spec("paraverser"), jobs=1)
    dme = run_campaign(small_spec("dme"), jobs=1)
    assert detected_trials(dme) >= detected_trials(base)


def test_dme_bit_identical_across_worker_counts():
    serial = run_campaign(small_spec("dme"), jobs=1)
    pooled = run_campaign(small_spec("dme"), jobs=2, chunk=2)
    assert sim_row(serial) == sim_row(pooled)


def test_meek_latency_coarser_and_detections_subset():
    base = run_campaign(small_spec("paraverser"), jobs=1)
    meek = run_campaign(small_spec("meek-ro"), jobs=1)
    assert detected_trials(meek) <= detected_trials(base)
    base_latency = latency_by_trial(base)
    for trial, latency in latency_by_trial(meek).items():
        assert latency >= base_latency[trial]


def test_meek_escapes_count_as_missed_not_masked():
    base = run_campaign(small_spec("paraverser"), jobs=1)
    meek = run_campaign(small_spec("meek-ro"), jobs=1)
    # Same trials, same faults: maskedness is a property of the fault,
    # not the observer — reduced observability converts detections into
    # misses (SDC escapes), never into masks.
    assert meek.masked == base.masked
    assert meek.missed >= base.missed
    assert meek.to_row()["sdc_escape_rate"] == meek.missed / meek.injected


def test_ithica_campaign_runs_defect_kind():
    spec = small_spec("ithica-sdc", fault_kinds=(FAULT_DEFECT,))
    outcome = run_campaign(spec, jobs=1)
    assert outcome.injected == spec.trials
    assert all(r.kind == FAULT_DEFECT for r in outcome.records)


# -- zero-denominator guards (satellite) -------------------------------------

def test_zero_trial_campaign_rates_are_zero_with_warning(caplog):
    outcome = CampaignOutcome(spec=small_spec(trials=0))
    with caplog.at_level(logging.WARNING, logger="repro.faults.engine"):
        assert outcome.detection_rate_all == 0.0
        assert outcome.detection_rate_effective == 0.0
    assert "0 trials injected" in caplog.text
    assert outcome.sdc_escape_rate == 0.0
    assert outcome.max_detection_latency == 0


def test_all_masked_campaign_effective_rate_zero(caplog):
    from repro.faults.engine import TrialRecord
    records = [TrialRecord(trial=t, kind="stuck_at", fault="f",
                           detected=False, masked=True) for t in range(3)]
    outcome = CampaignOutcome(spec=small_spec(trials=3), records=records)
    with caplog.at_level(logging.WARNING, logger="repro.faults.engine"):
        assert outcome.detection_rate_effective == 0.0
    assert "no effective faults" in caplog.text


def test_campaign_result_zero_denominator(caplog):
    from repro.faults.campaign import CampaignResult
    result = CampaignResult(workload="mcf")
    with caplog.at_level(logging.WARNING, logger="repro.faults.campaign"):
        assert result.detection_rate_all == 0.0
        assert result.detection_rate_effective == 0.0
    assert result.sdc_escape_rate == 0.0


# -- resume dedupe (satellite) -----------------------------------------------

def test_resume_ignores_duplicate_trial_records(tmp_path, caplog):
    spec = small_spec(trials=4)
    first = run_campaign(spec, jobs=1, campaign_dir=tmp_path)
    shards = sorted(tmp_path.glob("shard-*.jsonl"))
    assert shards
    # A crash between write and fsync can replay lines, and a killed
    # worker's trials may be re-run into another shard: duplicate every
    # record into a second shard file.
    (tmp_path / "shard-999.jsonl").write_text(
        shards[0].read_text(), encoding="utf-8")
    with caplog.at_level(logging.WARNING, logger="repro.faults.engine"):
        completed = load_completed(tmp_path, spec)
    assert sorted(completed) == [0, 1, 2, 3]
    assert "duplicate trial record" in caplog.text
    resumed = run_campaign(spec, jobs=1, campaign_dir=tmp_path, resume=True)
    assert resumed.injected == spec.trials  # not double-counted
    assert resumed.resumed_trials == spec.trials
    assert sim_row(resumed) == sim_row(first)


def test_resume_duplicates_keep_first_record(tmp_path):
    spec = small_spec(trials=2)
    run_campaign(spec, jobs=1, campaign_dir=tmp_path)
    shard = sorted(tmp_path.glob("shard-*.jsonl"))[0]
    lines = [json.loads(line) for line in shard.read_text().splitlines()]
    forged = dict(lines[0], detected=not lines[0]["detected"])
    with shard.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(forged, sort_keys=True) + "\n")
    completed = load_completed(tmp_path, spec)
    assert completed[lines[0]["trial"]].detected == lines[0]["detected"]


# -- registry / serve wiring -------------------------------------------------

def test_scenario_backends_registered_with_fleet_strategies():
    from repro.detect import backend_names, get_backend
    names = backend_names()
    for name in ("dme", "ithica-sdc", "meek-ro"):
        assert name in names
        assert get_backend(name).fleet_strategy() is not None


def test_campaign_request_scheme_roundtrip():
    from repro.serve.protocol import (
        CampaignRequest,
        ProtocolError,
        campaign_from_wire,
        campaign_to_wire,
    )
    request = CampaignRequest(workload="mcf", trials=2, scheme="meek-ro")
    again = campaign_from_wire(campaign_to_wire(request))
    assert again.scheme == "meek-ro"
    assert again.sim_spec()["scheme"] == "meek-ro"
    # Pre-scheme clients omit the field entirely.
    payload = campaign_to_wire(CampaignRequest(workload="mcf", trials=2))
    del payload["scheme"]
    assert campaign_from_wire(payload).scheme == "paraverser"
    with pytest.raises(ProtocolError, match="scheme"):
        CampaignRequest(workload="mcf", trials=2, scheme="bogus").validate()
