"""Tests for the checker-core replay engine — the heart of ParaVerser."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.checker import CheckerCore
from repro.core.errors import DetectionKind
from repro.core.system import ParaVerserConfig, ParaVerserSystem
from repro.cpu.config import CoreInstance
from repro.cpu.presets import A510, X2
from repro.faults.models import StuckAtFault
from repro.isa.assembler import assemble
from repro.isa.instructions import FUKind
from repro.workloads.generator import build_program
from repro.workloads.profiles import WorkloadProfile


def system_for(program, seed=0, timeout=500):
    config = ParaVerserConfig(
        main=CoreInstance(X2, 3.0),
        checkers=[CoreInstance(A510, 2.0)],
        seed=seed,
        timeout_instructions=timeout,
    )
    return ParaVerserSystem(config)


def segments_of(text_or_program, max_instructions=5_000, seed=0, timeout=500):
    program = (assemble(text_or_program)
               if isinstance(text_or_program, str) else text_or_program)
    system = system_for(program, seed=seed, timeout=timeout)
    run = system.execute(program, max_instructions)
    return program, system.segment(run)


RICH_PROGRAM = """
    addi x1, x0, 300
    lui x3, 0x8000
    lui x22, 0x9000
    addi x20, x0, 1
    addi x9, x0, 3
    fcvt.if f1, x9
    fcvt.if f2, x20
loop:
    ld x4, 0(x3)
    addi x4, x4, 1
    st x4, 0(x3)
    swp x5, x20, (x22)
    rdrand x6
    and x6, x6, x9
    fadd f3, f1, f2
    fdiv f4, f3, f1
    sc x7, x4, (x22)
    addi x3, x3, 8
    subi x1, x1, 1
    bne x1, x0, loop
    halt
"""


class TestHealthyReplay:
    def test_rich_program_verifies_clean(self):
        program, segments = segments_of(RICH_PROGRAM)
        checker = CheckerCore(program)
        for segment in segments:
            result = checker.check_segment(segment)
            assert not result.detected, str(result.first_event)
            assert result.instructions_replayed == segment.instructions
            assert result.records_consumed == len(segment.records)

    def test_hash_mode_verifies_clean(self):
        program = assemble(RICH_PROGRAM)
        config = ParaVerserConfig(
            main=CoreInstance(X2, 3.0),
            checkers=[CoreInstance(A510, 2.0)],
            hash_mode=True,
            timeout_instructions=500,
        )
        system = ParaVerserSystem(config)
        run = system.execute(program, 5_000)
        segments = system.segment(run)
        checker = CheckerCore(program, hash_mode=True)
        for segment in segments:
            result = checker.check_segment(segment)
            assert not result.detected, str(result.first_event)

    def test_induction_chain(self):
        # Each segment's end state is the next segment's start state.
        _, segments = segments_of(RICH_PROGRAM)
        for prev, cur in zip(segments, segments[1:]):
            assert prev.end_checkpoint.matches(cur.start_checkpoint)

    def test_missing_checkpoints_rejected(self):
        program, segments = segments_of(RICH_PROGRAM)
        segments[0].start_checkpoint = None
        with pytest.raises(ValueError):
            CheckerCore(program).check_segment(segments[0])


class TestFaultDetection:
    def check_with_fault(self, fault, program=None, segments=None):
        if segments is None:
            program, segments = segments_of(RICH_PROGRAM)
        checker = CheckerCore(program, fault_surface=fault)
        for segment in segments:
            result = checker.check_segment(segment)
            if result.detected:
                return result
        return None

    def test_alu_fault_detected(self):
        result = self.check_with_fault(
            StuckAtFault(FUKind.INT_ALU, unit=0, bit=0, stuck_at=1))
        assert result is not None

    def test_fpu_fault_detected(self):
        result = self.check_with_fault(
            StuckAtFault(FUKind.FP, unit=0, bit=52, stuck_at=1))
        assert result is not None

    def test_fdiv_fault_detected(self):
        result = self.check_with_fault(
            StuckAtFault(FUKind.FP_DIV, unit=0, bit=51, stuck_at=1))
        assert result is not None

    def test_load_address_fault_detected_as_address_mismatch(self):
        result = self.check_with_fault(
            StuckAtFault(FUKind.LOAD, unit=0, bit=4, stuck_at=1,
                         addresses_only=True))
        assert result is not None
        assert result.first_event.kind in (
            DetectionKind.LOAD_ADDRESS, DetectionKind.STORE_ADDRESS)

    def test_store_address_fault_detected(self):
        result = self.check_with_fault(
            StuckAtFault(FUKind.STORE, unit=0, bit=5, stuck_at=1,
                         addresses_only=True))
        assert result is not None

    def test_branch_fault_changes_control_flow_and_is_detected(self):
        result = self.check_with_fault(
            StuckAtFault(FUKind.BRANCH, unit=0, bit=0, stuck_at=0))
        assert result is not None

    def test_fault_detected_in_hash_mode(self):
        program = assemble(RICH_PROGRAM)
        config = ParaVerserConfig(
            main=CoreInstance(X2, 3.0),
            checkers=[CoreInstance(A510, 2.0)],
            hash_mode=True,
            timeout_instructions=500,
        )
        system = ParaVerserSystem(config)
        run = system.execute(program, 5_000)
        segments = system.segment(run)
        checker = CheckerCore(
            program, hash_mode=True,
            fault_surface=StuckAtFault(FUKind.STORE, unit=0, bit=6,
                                       stuck_at=1, addresses_only=True))
        detected = any(
            checker.check_segment(seg).detected for seg in segments)
        assert detected

    def test_stuck_at_current_value_is_masked(self):
        # A bit stuck at a value it always has does not perturb anything.
        program, segments = segments_of(
            """
            addi x1, x0, 200
            loop:
            addi x2, x2, 2   # x2 stays even: bit 0 is always 0
            subi x1, x1, 2   # counter stays even too
            bne x1, x0, loop
            halt
            """
        )
        checker = CheckerCore(
            program,
            fault_surface=StuckAtFault(FUKind.INT_ALU, unit=0, bit=0,
                                       stuck_at=0))
        for segment in segments:
            assert not checker.check_segment(segment).detected


class TestLogDiscipline:
    def test_log_underflow_detected(self):
        program, segments = segments_of(RICH_PROGRAM)
        seg = segments[0]
        # Drop the tail of the log: replay runs out of records.
        seg.records[:] = seg.records[:3]
        result = CheckerCore(program).check_segment(seg)
        assert result.detected
        assert result.first_event.kind is DetectionKind.LOG_UNDERFLOW

    def test_log_overflow_detected(self):
        from repro.core.lsl import LSLAccess, LSLRecord, RecordKind
        program, segments = segments_of(RICH_PROGRAM)
        seg = segments[0]
        seg.records.append(LSLRecord(
            RecordKind.LOAD, (LSLAccess(0xDEAD, 8, loaded=0),), 10 ** 9))
        result = CheckerCore(program).check_segment(seg)
        assert result.detected
        assert any(e.kind is DetectionKind.LOG_OVERFLOW
                   for e in result.events)

    def test_corrupted_end_checkpoint_detected(self):
        program, segments = segments_of(RICH_PROGRAM)
        seg = segments[0]
        bad = list(seg.end_checkpoint.ints)
        bad[5] ^= 1
        from repro.isa.registers import RegisterCheckpoint
        seg.end_checkpoint = RegisterCheckpoint(
            tuple(bad), seg.end_checkpoint.fps, seg.end_checkpoint.pc)
        result = CheckerCore(program).check_segment(seg)
        assert result.detected
        assert result.first_event.kind is DetectionKind.REGISTER_CHECKPOINT

    def test_corrupted_loaded_value_detected(self):
        # Flip a loaded value in the log: replay diverges somewhere.
        from dataclasses import replace
        program, segments = segments_of(RICH_PROGRAM)
        seg = segments[0]
        for i, record in enumerate(seg.records):
            access = record.accesses[0]
            if access.loaded is not None:
                new_access = replace(access, loaded=access.loaded ^ 0xFF)
                seg.records[i] = replace(record, accesses=(new_access,))
                break
        result = CheckerCore(program).check_segment(seg)
        assert result.detected


@settings(max_examples=10, deadline=None)
@given(
    loads=st.floats(min_value=0.05, max_value=0.35),
    stores=st.floats(min_value=0.02, max_value=0.15),
    branches=st.floats(min_value=0.02, max_value=0.2),
    # Max mix must stay <= 1.0 including the profile's fixed
    # fdiv=0.02 + nonrep=0.01 + default mul=0.02 below.
    fp=st.floats(min_value=0.0, max_value=0.25),
    entropy=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(min_value=0, max_value=100),
)
def test_any_generated_workload_replays_clean(loads, stores, branches, fp,
                                              entropy, seed):
    """Property: whatever the generator produces, a healthy checker must
    verify every segment without a false positive."""
    profile = WorkloadProfile(
        name="prop", suite="test",
        loads=loads, stores=stores, branches=branches, fp=fp,
        fdiv=0.02, nonrep=0.01, gather=0.05,
        branch_entropy=entropy, working_set_kib=64,
        pointer_chase=0.3, stride=0, icache_blocks=4, block_instrs=32,
    )
    program = build_program(profile, seed=seed)
    system = system_for(program, seed=seed, timeout=400)
    run = system.execute(program, 3_000)
    segments = system.segment(run)
    checker = CheckerCore(program)
    for segment in segments:
        result = checker.check_segment(segment)
        assert not result.detected, str(result.first_event)
