"""Third-party backend discovery through the repro.backends entry-point
group."""

from dataclasses import dataclass, field

import pytest

from repro.detect import (
    BackendResult,
    get_backend,
    backend_names,
)
from repro.detect import registry


@dataclass
class PluginBackend:
    """A minimal third-party DetectionBackend."""

    name: str = "plugin-scheme"
    description: str = "a scheme from outside the tree"
    evaluated: list = field(default_factory=list)

    def evaluate(self, cache, benchmark):
        self.evaluated.append(benchmark)
        return BackendResult(backend=self.name, benchmark=benchmark,
                             slowdown_percent=1.0, coverage=0.5,
                             energy_overhead_percent=2.0,
                             area_overhead_percent=3.0)

    def fleet_strategy(self):
        return None


class FakeEntryPoint:
    def __init__(self, name, obj):
        self.name = name
        self._obj = obj

    def load(self):
        return self._obj


@pytest.fixture()
def plugin_env(monkeypatch):
    """Patch the entry-point source and restore registry state after."""
    snapshot = dict(registry._REGISTRY)

    def install(*entry_points):
        monkeypatch.setattr(registry, "_iter_backend_entry_points",
                            lambda: list(entry_points))

    yield install
    registry._REGISTRY.clear()
    registry._REGISTRY.update(snapshot)
    registry._entry_points_loaded = True


def test_entry_point_backend_is_discovered(plugin_env):
    backend = PluginBackend()
    plugin_env(FakeEntryPoint("plugin", backend))
    loaded = registry.load_entry_point_backends(reload=True)
    assert loaded == ["plugin-scheme"]
    assert get_backend("plugin-scheme") is backend
    assert "plugin-scheme" in backend_names()


def test_factory_entry_point_returning_many(plugin_env):
    backends = [PluginBackend(name="plugin-a"),
                PluginBackend(name="plugin-b")]
    plugin_env(FakeEntryPoint("plugin", lambda: backends))
    loaded = registry.load_entry_point_backends(reload=True)
    assert loaded == ["plugin-a", "plugin-b"]
    assert get_backend("plugin-b") is backends[1]


def test_duplicate_name_raises_clear_error(plugin_env):
    plugin_env(FakeEntryPoint("plugin", PluginBackend(name="swscan")))
    with pytest.raises(ValueError) as excinfo:
        registry.load_entry_point_backends(reload=True)
    message = str(excinfo.value)
    assert "swscan" in message
    assert "plugin" in message
    assert "repro.backends" in message


def test_duplicate_between_plugins_raises(plugin_env):
    plugin_env(FakeEntryPoint("one", PluginBackend(name="plugin-x")),
               FakeEntryPoint("two", PluginBackend(name="plugin-x")))
    with pytest.raises(ValueError) as excinfo:
        registry.load_entry_point_backends(reload=True)
    assert "plugin-x" in str(excinfo.value)


def test_non_backend_entry_point_skipped_with_log(plugin_env, caplog):
    plugin_env(FakeEntryPoint("junk", object()))
    with caplog.at_level("ERROR", logger="repro.detect"):
        loaded = registry.load_entry_point_backends(reload=True)
    assert loaded == []
    assert "junk" in caplog.text
    assert "repro.backends" in caplog.text


class ExplodingEntryPoint:
    name = "broken"

    def load(self):
        raise ImportError("plugin module is missing a dependency")


def test_broken_plugin_does_not_take_down_discovery(plugin_env, caplog):
    """One entry point whose load() raises is skipped; the rest load."""
    good = PluginBackend(name="plugin-good")
    plugin_env(ExplodingEntryPoint(), FakeEntryPoint("plugin", good))
    with caplog.at_level("ERROR", logger="repro.detect"):
        loaded = registry.load_entry_point_backends(reload=True)
    assert loaded == ["plugin-good"]
    assert get_backend("plugin-good") is good
    assert "broken" in caplog.text


def test_crashing_factory_is_skipped(plugin_env, caplog):
    def factory():
        raise RuntimeError("factory exploded")

    good = PluginBackend(name="plugin-survivor")
    plugin_env(FakeEntryPoint("bad-factory", factory),
               FakeEntryPoint("plugin", good))
    with caplog.at_level("ERROR", logger="repro.detect"):
        loaded = registry.load_entry_point_backends(reload=True)
    assert loaded == ["plugin-survivor"]
    assert "bad-factory" in caplog.text


def test_load_runs_once_unless_reloaded(plugin_env):
    backend = PluginBackend()
    plugin_env(FakeEntryPoint("plugin", backend))
    assert registry.load_entry_point_backends(reload=True) == [
        "plugin-scheme"]
    # Second pass is a no-op: already loaded, nothing re-registered.
    assert registry.load_entry_point_backends() == []


def test_lookup_triggers_discovery(plugin_env):
    backend = PluginBackend(name="plugin-lazy")
    plugin_env(FakeEntryPoint("plugin", backend))
    registry._entry_points_loaded = False
    assert "plugin-lazy" in backend_names()
    assert get_backend("plugin-lazy") is backend
