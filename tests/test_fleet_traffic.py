"""Tests for the event-driven fleet traffic model (repro.fleet.sim etc.)."""

import math
from dataclasses import replace

import pytest

from repro.fleet import (
    FleetTrafficConfig,
    FleetTrafficSim,
    checker_relative_rate,
    make_policy,
    matrix,
    publish_fleet_stats,
    run_cell,
    service_model_for,
    summarize,
)
from repro.fleet.dispatch import JBSQPolicy, KeyAffinityPolicy
from repro.fleet.metrics import percentile
from repro.fleet.server import Server, ServerConfig
from repro.fleet.traffic import ServiceModel, ZipfKeys, stream_rng
from repro.obs import StatGroup


def config(**overrides) -> FleetTrafficConfig:
    base = FleetTrafficConfig(servers=4, duration_s=0.5, seed=7)
    return replace(base, **overrides)


class RecordingPolicy:
    """Wraps a policy, recording every (request, occupancy, choice)."""

    def __init__(self, inner):
        self.inner = inner
        self.name = inner.name
        self.choices = []

    def choose(self, request, occupancy):
        chosen = self.inner.choose(request, occupancy)
        self.choices.append((request.key, list(occupancy), chosen))
        return chosen

    def admit_on_free(self, server, occupancy):
        return self.inner.admit_on_free(server, occupancy)


class TestTraffic:
    def test_stream_rng_is_pure(self):
        a = stream_rng(7, 123, "service").random()
        b = stream_rng(7, 123, "service").random()
        assert a == b
        assert stream_rng(7, 124, "service").random() != a
        assert stream_rng(7, 123, "key").random() != a

    def test_zipf_head_is_hottest(self):
        zipf = ZipfKeys(256, alpha=1.1)
        draws = [zipf.key_for(stream_rng(0, rid, "key").random())
                 for rid in range(4000)]
        head = sum(1 for k in draws if k == 0) / len(draws)
        tail = sum(1 for k in draws if k == 255) / len(draws)
        assert head > 0.05 > tail
        assert all(0 <= k < 256 for k in draws)

    def test_service_model_mean_matches_target(self):
        for workload in ("mcf", "imagick", "bfs"):
            model = service_model_for(workload, mean_service_s=1e-3)
            assert model.mean_s == pytest.approx(1e-3)

    def test_irregular_workloads_get_heavier_tails(self):
        mcf = service_model_for("mcf")          # pointer-chasing
        imagick = service_model_for("imagick")  # regular compute
        assert mcf.heavy_fraction > imagick.heavy_fraction

    def test_exponential_model_samples_to_mean(self):
        model = ServiceModel(kind="exponential", small_s=2e-3)
        draws = [model.sample(stream_rng(1, rid, "service"))
                 for rid in range(5000)]
        assert sum(draws) / len(draws) == pytest.approx(2e-3, rel=0.05)


class TestDispatch:
    def test_make_policy_parses_all_names(self):
        for name in ("random", "rr", "shortest", "jbsq2", "jbsq8",
                     "affinity"):
            assert make_policy(name).name == name

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown dispatch policy"):
            make_policy("power-of-two")

    def test_shortest_breaks_ties_low(self):
        policy = make_policy("shortest")
        assert policy.choose(None, [2, 1, 1, 3]) == 1

    def test_jbsq_defers_when_all_full(self):
        policy = JBSQPolicy(2)
        assert policy.choose(None, [2, 2, 2]) is None
        assert policy.choose(None, [2, 1, 2]) == 1
        assert not policy.admit_on_free(0, [2, 1, 2])
        assert policy.admit_on_free(1, [2, 1, 2])


class TestServer:
    def test_checker_rate_from_presets(self):
        # 4 A510 @ 2 GHz: 4*3*2.0*0.6 / (5*3.0) = 0.96 of the main core.
        assert checker_relative_rate("4xA510@2.0") == pytest.approx(0.96)
        # A second X2 at 3 GHz replays exactly as fast as the main core.
        assert checker_relative_rate("1xX2@3.0") == pytest.approx(1.0)
        assert checker_relative_rate("none") == 0.0

    def test_bad_checker_specs_rejected(self):
        with pytest.raises(ValueError, match="bad checker spec"):
            checker_relative_rate("A510")
        with pytest.raises(ValueError, match="unknown core class"):
            checker_relative_rate("2xM1@3.0")
        with pytest.raises(ValueError, match="empty"):
            checker_relative_rate("0xA510@2.0")

    def test_full_mode_requires_live_checkers(self):
        with pytest.raises(ValueError, match="live checker pool"):
            Server(0, ServerConfig(checkers="none", mode="full"))

    def test_full_mode_stalls_at_lag_bound(self):
        server = Server(0, ServerConfig(checkers="1xA510@2.0",
                                        mode="full", lag_bound_s=1e-3))
        # Rate 0.24: back-to-back 1 ms requests outrun the checkers.
        t = 0.0
        for _ in range(20):
            server.admit(t)
            t = server.start(t, 1e-3)
            server.depart(t)
        assert server.stats.stall_s > 0
        assert server.stats.unchecked_work_s == 0.0
        # The lag bound actually bounds the lag at service start.
        assert server.stats.max_lag_s <= 1e-3 + 1e-3 + 1e-9

    def test_opportunistic_mode_drops_coverage_instead(self):
        server = Server(0, ServerConfig(checkers="1xA510@2.0",
                                        mode="opportunistic",
                                        lag_bound_s=1e-3))
        t = 0.0
        for _ in range(20):
            server.admit(t)
            t = server.start(t, 1e-3)
            server.depart(t)
        assert server.stats.stall_s == 0.0
        assert server.stats.unchecked_work_s > 0


class TestSimulation:
    def test_mm1_mean_sojourn_matches_analytic(self):
        # One server, Poisson arrivals, exponential service: M/M/1 with
        # mean sojourn  E[T] = E[S] / (1 - rho).
        cell = config(servers=1, policy="rr", workload="exponential",
                      load=0.5, mean_service_s=1e-3, duration_s=20.0,
                      mode="opportunistic")
        metrics = summarize(FleetTrafficSim(cell).run())
        assert metrics.completed > 5000
        assert metrics.mean_ms == pytest.approx(2.0, rel=0.15)
        assert metrics.utilization == pytest.approx(0.5, rel=0.1)

    def test_jobs_fanout_is_bit_identical(self):
        cell = config(load=0.8)
        serial = run_cell(cell, reps=3, jobs=1)
        fanned = run_cell(cell, reps=3, jobs=3)
        assert fanned.latencies_s == serial.latencies_s
        assert summarize(fanned) == summarize(serial)

    def test_reps_are_independent(self):
        cell = config(load=0.8)
        merged = run_cell(cell, reps=2, jobs=1)
        single = run_cell(cell, reps=1, jobs=1)
        assert merged.reps == 2
        assert merged.offered > single.offered
        assert merged.latencies_s[:single.completed] == single.latencies_s

    def test_jbsq_never_exceeds_bound(self):
        recorder = RecordingPolicy(JBSQPolicy(2))
        cell = config(policy="jbsq2", load=0.95)
        FleetTrafficSim(cell, policy=recorder).run()
        assigned = [(occ, chosen) for _, occ, chosen in recorder.choices
                    if chosen is not None]
        assert assigned, "no request was ever assigned"
        assert all(occ[chosen] < 2 for occ, chosen in assigned)
        deferred = [1 for _, occ, chosen in recorder.choices
                    if chosen is None]
        assert deferred, "load 0.95 should overflow a bound of 2"

    def test_affinity_is_a_function_of_the_key(self):
        recorder = RecordingPolicy(KeyAffinityPolicy())
        cell = config(policy="affinity", load=0.6)
        FleetTrafficSim(cell, policy=recorder).run()
        routes = {}
        for key, _, chosen in recorder.choices:
            assert routes.setdefault(key, chosen) == chosen
        assert len(set(routes.values())) > 1  # spreads across servers

    def test_full_vs_opportunistic_trade(self):
        # Near the checker replay rate, full mode pays the tail and
        # opportunistic pays coverage — the paper's central trade-off.
        full = summarize(FleetTrafficSim(
            config(mode="full", load=0.92, duration_s=1.0)).run())
        opp = summarize(FleetTrafficSim(
            config(mode="opportunistic", load=0.92, duration_s=1.0)).run())
        assert full.coverage == 1.0
        assert full.stall_fraction > 0
        assert opp.coverage < 1.0
        assert opp.stall_fraction == 0.0
        assert opp.p99_ms < full.p99_ms
        assert opp.sdc_events > full.sdc_events

    def test_closed_loop_self_limits(self):
        cell = config(traffic_kind="closed", clients=8, think_s=5e-3,
                      duration_s=2.0)
        result = FleetTrafficSim(cell).run()
        # Never more requests in flight than clients.
        assert result.offered > 0
        assert max(s.max_in_system for s in result.server_stats) <= 8

    def test_config_round_trips_through_json(self):
        cell = config(policy="jbsq2", load=0.9)
        assert FleetTrafficConfig.from_json(cell.to_json()) == cell

    def test_matrix_covers_the_grid(self):
        cells = matrix(["rr", "shortest"], ["full", "opportunistic"],
                       [0.5, 0.9])
        assert len(cells) == 8
        assert len({c.label for c in cells}) == 8


class TestMetrics:
    def test_percentile_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 0.5) == 51.0
        assert percentile(values, 1.0) == 100.0
        assert percentile([], 0.99) == 0.0

    def test_publish_builds_the_stats_tree(self):
        metrics = summarize(FleetTrafficSim(config()).run())
        root = StatGroup("root")
        publish_fleet_stats(root, [metrics], elapsed_s=1.0)
        flat = root.flatten()
        label = metrics.label
        for leaf in ("latency_ms.p99", "coverage", "stall_fraction",
                     "sdc_events", "utilization"):
            assert f"fleet.{label}.{leaf}" in flat
        assert "fleet.runtime.elapsed_s" in flat

    def test_unchecked_coverage_raises_sdc_exposure(self):
        low = summarize(FleetTrafficSim(
            config(mode="opportunistic", checkers="none")).run())
        assert low.coverage < 0.2
        assert low.sdc_events > 1000
        assert math.isfinite(low.mean_detection_days)
