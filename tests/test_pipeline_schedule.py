"""Opportunistic mid-segment partial coverage in ``schedule_segments``.

Section IV-A: when no checker is free at a segment's start but one
frees before the segment ends, checking resumes from a fresh checkpoint
at the free point, covering the tail fraction of the interval.  These
tests drive the scheduler directly with synthetic segments so the
partial-coverage arithmetic (fraction, the ``lines >= 1`` clamp, the
0.5 ``covered`` threshold) is pinned independently of any workload.
"""

import pytest

from repro.core.allocator import CheckerSlot
from repro.core.counter import CutReason, Segment
from repro.core.simconfig import CheckMode
from repro.cpu.config import CoreInstance
from repro.cpu.presets import A510
from repro.harness.runner import make_config
from repro.pipeline.schedule import schedule_segments


def _segment(index, start, end, lines=10):
    return Segment(index=index, start=start, end=end, records=[],
                   lsl_bytes=lines * 64, lines=lines,
                   reason=CutReason.TIMEOUT)


def _config():
    # eager_wake off: lazy finish = max(free, seg_end) + duration + noc,
    # so checker free times are exact round numbers below.
    return make_config([CoreInstance(A510, 2.0)],
                       mode=CheckMode.OPPORTUNISTIC, eager_wake=False)


def _slots(config):
    return [CheckerSlot(instance=inst,
                        lsl_capacity_bytes=config.lsl_capacity(),
                        position=i)
            for i, inst in enumerate(config.checkers)]


def _run(durations, segments, boundaries):
    config = _config()
    slots = _slots(config)
    label = config.checkers[0].label
    return schedule_segments(
        config, segments, boundaries,
        {label: durations}, slots, push_latency_ns=0.0)


class TestPartialCoverage:
    def test_tail_fraction_resumes_mid_segment(self):
        # Segment 0 occupies the lone checker until t=1500 (lazy finish:
        # max(0, 1000) + 500); segment 1 spans [1000, 2000], so the
        # checker frees 50% of the way through it.
        schedule, stall, covered = _run(
            durations=[500.0, 400.0],
            segments=[_segment(0, 0, 1000), _segment(1, 1000, 2000)],
            boundaries=[1000.0, 2000.0])
        first, second = schedule
        assert first.covered and first.coverage_fraction == 1.0
        assert second.checker_label is not None
        assert second.coverage_fraction == pytest.approx(0.5)
        # Exactly at the threshold counts as covered.
        assert second.covered
        assert covered == 1000 + int(1000 * 0.5)

    def test_fraction_below_half_is_not_covered(self):
        # Checker frees at 1600 -> fraction 0.4: checked, but the
        # segment does not count toward covered status.
        schedule, _, covered = _run(
            durations=[600.0, 400.0],
            segments=[_segment(0, 0, 1000), _segment(1, 1000, 2000)],
            boundaries=[1000.0, 2000.0])
        second = schedule[1]
        assert second.checker_label is not None
        assert second.coverage_fraction == pytest.approx(0.4)
        assert not second.covered
        assert covered == 1000 + int(1000 * 0.4)

    def test_lines_clamped_to_at_least_one(self):
        # A tiny tail of a one-line segment must still push one line:
        # the partial checkpoint itself travels over the NoC.  With a
        # 0.05 fraction, int(1 * 0.05) would be 0 without the clamp;
        # the schedule still records a real (non-zero-work) assignment.
        schedule, _, _ = _run(
            durations=[950.0, 10.0],
            segments=[_segment(0, 0, 1000), _segment(1, 1000, 2000,
                                                     lines=1)],
            boundaries=[1000.0, 2000.0])
        second = schedule[1]
        assert second.checker_label is not None
        assert second.coverage_fraction == pytest.approx(0.05)
        # Lazy finish: max(free=1950, m_end=2000) + 10 * 0.05 = 2000.5.
        assert second.checker_finish_ns == pytest.approx(2000.5)

    def test_no_checker_before_segment_end_drops_segment(self):
        # Checker busy past m_end=2000 -> the segment goes unchecked.
        schedule, _, covered = _run(
            durations=[1500.0, 400.0],
            segments=[_segment(0, 0, 1000), _segment(1, 1000, 2000)],
            boundaries=[1000.0, 2000.0])
        second = schedule[1]
        assert second.checker_label is None
        assert not second.covered
        assert second.coverage_fraction == 0.0
        assert covered == 1000

    def test_opportunistic_never_stalls(self):
        schedule, stall, _ = _run(
            durations=[1500.0, 400.0, 300.0],
            segments=[_segment(0, 0, 1000), _segment(1, 1000, 2000),
                      _segment(2, 2000, 3000)],
            boundaries=[1000.0, 2000.0, 3000.0])
        assert stall == 0.0
        assert all(entry.stalled_ns == 0.0 for entry in schedule)

    def test_partial_duration_scales_with_fraction(self):
        # The checker only replays the tail, so its busy time is the
        # full-segment duration scaled by the covered fraction.
        schedule, _, _ = _run(
            durations=[500.0, 400.0],
            segments=[_segment(0, 0, 1000), _segment(1, 1000, 2000)],
            boundaries=[1000.0, 2000.0])
        second = schedule[1]
        # Lazy finish: max(free=1500, m_end=2000) + 400 * 0.5 = 2200.
        assert second.checker_finish_ns == pytest.approx(2200.0)
