"""End-to-end integration tests cutting across every subsystem."""

import pytest

from repro.core.checker import CheckerCore
from repro.core.system import CheckMode, ParaVerserConfig, ParaVerserSystem
from repro.cpu.config import CoreInstance
from repro.cpu.presets import A510, X2
from repro.faults.campaign import FaultCampaign, covered_segments
from repro.faults.models import StuckAtFault, TransientFault
from repro.isa.instructions import FUKind
from repro.power.energy import energy_report
from repro.workloads.generator import build_program
from repro.workloads.profiles import get_profile

INSTRUCTIONS = 12_000


@pytest.fixture(scope="module")
def bwaves():
    program = build_program(get_profile("bwaves"), seed=9)
    config = ParaVerserConfig(
        main=CoreInstance(X2, 3.0),
        checkers=[CoreInstance(A510, 2.0)] * 4,
        seed=9,
        timeout_instructions=1000,
    )
    system = ParaVerserSystem(config)
    run = system.execute(program, INSTRUCTIONS)
    return program, system, run


def test_full_pipeline_produces_consistent_result(bwaves):
    program, system, run = bwaves
    result = system.run(program, run_result=run)
    assert result.instructions == INSTRUCTIONS
    assert result.coverage == 1.0
    assert result.segments > 5
    assert result.lsl_bytes > 0
    assert result.slowdown >= 0.99


def test_energy_hierarchy_ordering(bwaves):
    """Heterogeneous checking must beat homogeneous lockstep on energy."""
    program, _, run = bwaves

    def energy_for(checkers):
        config = ParaVerserConfig(main=CoreInstance(X2, 3.0),
                                  checkers=checkers, seed=9,
                                  timeout_instructions=1000)
        result = ParaVerserSystem(config).run(program, run_result=run)
        return energy_report(result, config.main).overhead

    homogeneous = energy_for([CoreInstance(X2, 3.0)])
    heterogeneous = energy_for([CoreInstance(A510, 2.0)] * 4)
    assert heterogeneous < homogeneous
    # The paper's headline: about a third of lockstep's energy overhead.
    assert heterogeneous < 0.62 * homogeneous


def test_transient_fault_detected_by_full_coverage(bwaves):
    """A single-event upset must be caught by full coverage — though any
    individual strike can be architecturally masked (dead value), so we
    probe several strike points and require that some are detected."""
    program, system, run = bwaves
    segments = system.segment(run)
    detections = 0
    for strike in (100, 500, 900, 1300, 1700):
        fault = TransientFault(FUKind.INT_ALU, unit=0, bit=3,
                               strike_at_use=strike)
        checker = CheckerCore(program, fault_surface=fault)
        if any(checker.check_segment(seg).detected for seg in segments):
            detections += 1
    assert detections >= 2


def test_hard_fault_detected_under_opportunistic_coverage(bwaves):
    program, _, run = bwaves
    config = ParaVerserConfig(
        main=CoreInstance(X2, 3.0),
        checkers=[CoreInstance(A510, 1.0)],
        mode=CheckMode.OPPORTUNISTIC,
        seed=9,
        timeout_instructions=1000,
    )
    system = ParaVerserSystem(config)
    result = system.run(program, run_result=run)
    assert result.coverage < 1.0
    segments = system.segment(run)
    campaign = FaultCampaign(program, segments, A510)
    fault = StuckAtFault(FUKind.FP_DIV, 0, bit=50, stuck_at=1)
    outcome = campaign.run_trial(fault, covered=covered_segments(result))
    assert outcome.detected or not outcome.masked


def test_detection_is_attributable_to_a_segment(bwaves):
    program, system, run = bwaves
    segments = system.segment(run)
    fault = StuckAtFault(FUKind.INT_ALU, 0, bit=0, stuck_at=1)
    campaign = FaultCampaign(program, segments, A510)
    outcome = campaign.run_trial(fault)
    assert outcome.detected
    assert 0 <= outcome.detecting_segment < len(segments)
    assert outcome.event.segment == outcome.detecting_segment


def test_false_positive_rate_is_zero_across_benchmarks():
    """Healthy checkers across diverse workloads never report errors."""
    for name in ("gcc", "mcf", "imagick"):
        program = build_program(get_profile(name), seed=2)
        config = ParaVerserConfig(
            main=CoreInstance(X2, 3.0),
            checkers=[CoreInstance(A510, 2.0)],
            seed=2, timeout_instructions=800,
        )
        system = ParaVerserSystem(config)
        run = system.execute(program, 6_000)
        segments = system.segment(run)
        checker = CheckerCore(program)
        for segment in segments:
            result = checker.check_segment(segment)
            assert not result.detected, (name, str(result.first_event))


def test_public_api_importable():
    import repro

    assert repro.__version__
    from repro import (  # noqa: F401
        CheckMode,
        CheckerCore,
        ParaVerserConfig,
        ParaVerserSystem,
    )
