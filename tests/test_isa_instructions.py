"""Tests for instruction definitions and static opcode metadata."""

import pytest

from repro.isa.instructions import (
    CACHE_LINE_BYTES,
    FUKind,
    Instruction,
    LSL_ADDRESS_BYTES,
    LSL_SIZE_FIELD_BYTES,
    OP_SPECS,
    Opcode,
    spec_of,
)


def test_every_opcode_has_a_spec():
    for op in Opcode:
        assert op in OP_SPECS, f"missing spec for {op}"


def test_spec_of_matches_table():
    for op in Opcode:
        assert spec_of(op) is OP_SPECS[op]


@pytest.mark.parametrize("op", [Opcode.LD, Opcode.LDG, Opcode.SWP])
def test_load_opcodes_marked(op):
    assert spec_of(op).is_load


@pytest.mark.parametrize("op", [Opcode.ST, Opcode.STS, Opcode.SWP, Opcode.SC])
def test_store_opcodes_marked(op):
    assert spec_of(op).is_store


def test_swap_is_both_load_and_store():
    spec = spec_of(Opcode.SWP)
    assert spec.is_load and spec.is_store


@pytest.mark.parametrize(
    "op", [Opcode.RDRAND, Opcode.RDTIME, Opcode.SYSRD, Opcode.SC]
)
def test_nonrepeatable_opcodes(op):
    assert spec_of(op).is_nonrepeatable


def test_only_expected_opcodes_nonrepeatable():
    nonrep = {op for op in Opcode if spec_of(op).is_nonrepeatable}
    assert nonrep == {Opcode.RDRAND, Opcode.RDTIME, Opcode.SYSRD, Opcode.SC}


@pytest.mark.parametrize(
    "op", [Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.JMP,
           Opcode.JALR]
)
def test_branch_opcodes(op):
    assert spec_of(op).is_branch


def test_multi_address_opcodes():
    assert spec_of(Opcode.LDG).is_multi_address
    assert spec_of(Opcode.STS).is_multi_address
    assert not spec_of(Opcode.LD).is_multi_address


def test_fdiv_uses_divider_unit():
    assert spec_of(Opcode.FDIV).fu is FUKind.FP_DIV
    assert spec_of(Opcode.FSQRT).fu is FUKind.FP_DIV


def test_integer_divide_uses_divider_unit():
    assert spec_of(Opcode.DIV).fu is FUKind.INT_DIV
    assert spec_of(Opcode.REM).fu is FUKind.INT_DIV


def test_fp_opcodes_marked_fp():
    for op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV,
               Opcode.FSQRT, Opcode.FMIN, Opcode.FMAX, Opcode.FMOV):
        assert spec_of(op).is_fp


def test_instruction_defaults():
    instr = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
    assert instr.imm == 0
    assert instr.size == 8
    assert instr.target == 0


def test_instruction_spec_property():
    instr = Instruction(Opcode.LD, rd=1, rs1=2)
    assert instr.spec.is_load


def test_lsl_entry_format_constants():
    # Section IV-B: 7-byte address, 1-byte size, 64-byte lines.
    assert LSL_ADDRESS_BYTES == 7
    assert LSL_SIZE_FIELD_BYTES == 1
    assert CACHE_LINE_BYTES == 64


def test_opcode_values_unique():
    values = [op.value for op in Opcode]
    assert len(values) == len(set(values))


def test_branch_opcodes_not_loads():
    for op in Opcode:
        spec = spec_of(op)
        if spec.is_branch:
            assert not spec.is_load and not spec.is_store
