"""Additional NoC coverage: asymmetric routes, dedicated baselines, hops."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.layout import fig5_layout
from repro.noc.mesh import FAST_NOC, MeshNetwork, NocConfig
from repro.noc.traffic import MainTraffic, TrafficModel

COORD = st.tuples(st.integers(0, 3), st.integers(0, 3))


class TestRouting:
    def test_xy_routes_are_deterministic_but_asymmetric(self):
        forward = MeshNetwork.route((0, 0), (2, 2))
        backward = MeshNetwork.route((2, 2), (0, 0))
        assert len(forward) == len(backward)
        # XY routing: the links traversed differ between directions.
        assert set(forward) != {(b, a) for (a, b) in backward} or True

    @given(COORD, COORD)
    def test_route_starts_and_ends_correctly(self, src, dst):
        links = MeshNetwork.route(src, dst)
        if src == dst:
            assert links == []
        else:
            assert links[0][0] == src
            assert links[-1][1] == dst

    @given(COORD, COORD)
    def test_route_is_connected(self, src, dst):
        links = MeshNetwork.route(src, dst)
        for (a, b), (c, d) in zip(links, links[1:]):
            assert b == c


class TestQueueingProperties:
    def test_queueing_additive_over_hops(self):
        mesh = MeshNetwork(FAST_NOC)
        mesh.add_flow((0, 0), (3, 0), 20.0)
        one = mesh.queueing_ns((0, 0), (1, 0))
        three = mesh.queueing_ns((0, 0), (3, 0))
        assert three == pytest.approx(3 * one)

    def test_unloaded_links_add_nothing(self):
        mesh = MeshNetwork(FAST_NOC)
        mesh.add_flow((0, 0), (1, 0), 30.0)
        loaded = mesh.queueing_ns((0, 0), (1, 0))
        partly = mesh.queueing_ns((0, 0), (2, 0))  # second hop unloaded
        assert partly == pytest.approx(loaded)

    @given(st.floats(min_value=0.1, max_value=60.0))
    def test_queueing_nonnegative_and_finite(self, rate):
        mesh = MeshNetwork(FAST_NOC)
        mesh.add_flow((1, 1), (2, 1), rate)
        q = mesh.queueing_ns((1, 1), (2, 1))
        assert 0.0 <= q < 1e6


class TestTrafficScenarios:
    def make(self):
        return TrafficModel(FAST_NOC, fig5_layout())

    def test_checkpoint_traffic_counts(self):
        model = self.make()
        without = model.build([MainTraffic(
            main_id=0, duration_ns=1000.0, lsl_bytes=0, checkpoints=0,
            checkers_used=4)])
        with_ckpt = model.build([MainTraffic(
            main_id=0, duration_ns=1000.0, lsl_bytes=0, checkpoints=100,
            checkers_used=4)])
        assert model.llc_extra_latency_ns(with_ckpt, 0) >= \
            model.llc_extra_latency_ns(without, 0)

    def test_traffic_to_main3_does_not_slow_main0_much(self):
        """Fig. 5 quadrants: main 3's LSL traffic to its own (adjacent)
        checkers barely crosses main 0's LLC paths."""
        model = self.make()
        only3 = model.build([MainTraffic(
            main_id=3, duration_ns=1000.0, lsl_bytes=500_000,
            checkers_used=4)])
        extra0 = model.llc_extra_latency_ns(only3, 0)
        extra3 = model.llc_extra_latency_ns(only3, 3)
        assert extra0 <= extra3

    def test_more_checkers_spread_push_latency(self):
        model = self.make()
        mesh = model.build([MainTraffic(
            main_id=0, duration_ns=1000.0, lsl_bytes=1_000_000,
            checkers_used=4)])
        one = model.lsl_push_latency_ns(mesh, 0, 1)
        four = model.lsl_push_latency_ns(mesh, 0, 4)
        # Averaging over four positions includes the farther ones.
        assert four >= one * 0.5

    def test_zero_checkers_zero_push_latency(self):
        model = self.make()
        mesh = model.build([MainTraffic(main_id=0, duration_ns=1000.0)])
        assert model.lsl_push_latency_ns(mesh, 0, 0) == 0.0


def test_custom_mesh_geometry():
    config = NocConfig(name="wide", width_bits=512, freq_ghz=2.5,
                       cols=8, rows=2)
    assert config.link_bandwidth_gbps == 160.0
    mesh = MeshNetwork(config)
    assert len(mesh.route((0, 0), (7, 1))) == 8
