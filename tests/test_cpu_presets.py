"""Table I presets must match the paper's configuration."""

import pytest

from repro.cpu.config import CoreInstance, CoreKind
from repro.cpu.presets import A35, A510, CORE_CLASSES, X2
from repro.isa.instructions import FUKind


class TestX2:
    def test_pipeline_shape(self):
        assert X2.kind is CoreKind.OUT_OF_ORDER
        assert X2.width == 5          # 5-wide
        assert X2.rob_size == 288     # 288-entry ROB
        assert X2.lq_size == 85       # 85-entry LQ
        assert X2.sq_size == 90       # 90-entry SQ

    def test_frequency_range(self):
        assert X2.max_freq_ghz == 3.0  # 3 GHz in main mode

    def test_caches(self):
        hier = X2.hierarchy
        assert hier.l1i.size_bytes == 64 * 1024 and hier.l1i.ways == 4
        assert hier.l1i.hit_latency == 2
        assert hier.l1d.size_bytes == 64 * 1024 and hier.l1d.hit_latency == 4
        assert hier.l1d.mshrs == 16
        assert hier.l2.size_bytes == 1024 * 1024 and hier.l2.hit_latency == 9
        assert hier.l2.mshrs == 32

    def test_predictor_and_checkpoint(self):
        assert X2.predictor_kib == 64     # 64 KiB MPP-TAGE
        assert X2.checkpoint_latency == 8  # 8-cycle reg. checkpoint

    def test_functional_units(self):
        assert X2.fus[FUKind.BRANCH].units == 2
        assert X2.fus[FUKind.FP].units == 4
        assert X2.fus[FUKind.LOAD].units == 2   # load-only + load-store
        assert X2.fus[FUKind.STORE].units == 1


class TestA510:
    def test_pipeline_shape(self):
        assert A510.kind is CoreKind.IN_ORDER
        assert A510.width == 3        # 3-wide in-order
        assert A510.lq_size == 16     # 16-entry LSQ

    def test_frequency_range(self):
        assert A510.max_freq_ghz == 2.0  # up to 2 GHz

    def test_caches(self):
        hier = A510.hierarchy
        assert hier.l1i.size_bytes == 32 * 1024 and hier.l1i.hit_latency == 1
        assert hier.l1d.size_bytes == 32 * 1024 and hier.l1d.mshrs == 12
        assert hier.l2.size_bytes == 256 * 1024 and hier.l2.mshrs == 16

    def test_predictor(self):
        assert A510.predictor_kib == 8  # 8 KiB MPP-TAGE

    def test_fdiv_is_long_latency(self):
        # The A510 optimisation guide's up-to-22-cycle FP divide: the
        # mechanism behind bwaves in Figs. 6-8.
        fdiv = A510.fus[FUKind.FP_DIV]
        assert fdiv.units == 1
        assert fdiv.latency == 22
        assert fdiv.interval >= 10  # unpipelined

    def test_int_units(self):
        assert A510.fus[FUKind.INT_ALU].units == 3  # 3 Int
        assert A510.fus[FUKind.INT_DIV].units == 1  # 1 Div


class TestA35:
    def test_scalar_in_order(self):
        assert A35.kind is CoreKind.IN_ORDER
        assert A35.width == 1
        for fu in A35.fus.values():
            assert fu.units == 1

    def test_sixteen_checkers_match_paper_area(self):
        # Paper section VII-E: 16 extrapolated A35s ~ 0.84 mm^2.
        assert 16 * A35.area_mm2 == pytest.approx(0.84)


class TestSystem:
    def test_shared_l3(self):
        l3 = X2.hierarchy.l3
        assert l3.size_bytes == 8 * 1024 * 1024
        assert l3.ways == 8
        assert l3.hit_latency == 25
        assert l3.mshrs == 48
        assert A510.hierarchy.l3 == l3

    def test_dram_is_ddr4_2400(self):
        assert X2.hierarchy.dram.peak_bandwidth_gbps == pytest.approx(19.2)

    def test_core_classes_registry(self):
        assert set(CORE_CLASSES) == {"X2", "A510", "A35"}

    def test_area_ratio(self):
        # Die-shot estimates: X2 2.43 mm^2, A510 0.44 mm^2.
        assert X2.area_mm2 == pytest.approx(2.43)
        assert A510.area_mm2 == pytest.approx(0.44)


class TestVoltageCurves:
    def test_voltage_interpolation(self):
        assert X2.voltage_at(3.0) == pytest.approx(1.0)
        assert X2.voltage_at(1.0) == pytest.approx(0.65)
        mid = X2.voltage_at(2.0)
        assert 0.65 < mid < 1.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            X2.voltage_at(4.0)
        with pytest.raises(ValueError):
            A510.voltage_at(0.1)

    def test_core_instance_validates_frequency(self):
        with pytest.raises(ValueError):
            CoreInstance(A510, 3.0)

    def test_core_instance_label(self):
        assert CoreInstance(A510, 2.0).label == "A510@2GHz"
        assert CoreInstance(X2, 1.5).label == "X2@1.5GHz"
