"""Tests for OS-level role scheduling (section IV-A / Fig. 1)."""

import pytest

from repro.core.scheduler import PoolCore, Role, RoleScheduler
from repro.cpu.config import CoreInstance
from repro.cpu.presets import A510, X2


def pool():
    """A Fig. 1-style mix: 2 big + 4 little cores."""
    cores = [PoolCore(f"big{i}", CoreInstance(X2, 3.0)) for i in range(2)]
    cores += [PoolCore(f"little{i}", CoreInstance(A510, 2.0))
              for i in range(4)]
    return cores


def test_empty_pool_rejected():
    with pytest.raises(ValueError):
        RoleScheduler([])


def test_low_load_all_spares_check():
    scheduler = RoleScheduler(pool(), min_checkers_per_main=4)
    plan = scheduler.plan_epoch(0, demand_cores=1)
    assert len(plan.mains) == 1
    assert len(plan.checkers) == 5
    assert scheduler.coverage_mode_for(plan) == "full"


def test_main_work_gets_fast_cores_first():
    scheduler = RoleScheduler(pool())
    plan = scheduler.plan_epoch(0, demand_cores=2)
    assert set(plan.mains) == {"big0", "big1"}


def test_little_cores_preferred_as_checkers():
    scheduler = RoleScheduler(pool())
    plan = scheduler.plan_epoch(0, demand_cores=1)
    # The spare big core is also a checker, but littles exist in the pool.
    assert any(cid.startswith("little") for cid in plan.checkers)


def test_high_load_disables_checking():
    scheduler = RoleScheduler(pool())
    plan = scheduler.plan_epoch(0, demand_cores=6)
    assert not plan.checking_enabled
    assert scheduler.coverage_mode_for(plan) == "disabled"
    assert len(plan.mains) == 6


def test_medium_load_degrades_to_opportunistic():
    scheduler = RoleScheduler(pool(), min_checkers_per_main=4)
    plan = scheduler.plan_epoch(0, demand_cores=4)
    assert plan.checking_enabled
    assert scheduler.coverage_mode_for(plan) == "opportunistic"


def test_demand_trace_drives_mode_transitions():
    scheduler = RoleScheduler(pool(), min_checkers_per_main=2)
    outcome = scheduler.run([1, 2, 6, 6, 2, 1])
    modes = [scheduler.coverage_mode_for(plan) for plan in outcome.plans]
    assert modes[0] == "full"
    assert modes[2] == "disabled"
    assert modes[-1] == "full"  # checking resumes when load recedes
    assert outcome.checking_availability == pytest.approx(4 / 6)


def test_roles_cover_every_core_every_epoch():
    scheduler = RoleScheduler(pool())
    outcome = scheduler.run([0, 1, 3, 6])
    for plan in outcome.plans:
        assert set(plan.roles) == {core.core_id for core in pool()}


def test_zero_demand_means_no_checking_needed():
    scheduler = RoleScheduler(pool())
    plan = scheduler.plan_epoch(0, demand_cores=0)
    assert plan.mains == []
    assert not plan.checking_enabled


def test_demand_clamped_to_pool_size():
    scheduler = RoleScheduler(pool())
    outcome = scheduler.run([99])
    assert len(outcome.plans[0].mains) == 6


def test_role_history_per_core():
    scheduler = RoleScheduler(pool())
    outcome = scheduler.run([1, 6])
    history = outcome.roles_of("little0")
    assert history[0] is Role.CHECKER
    assert history[1] is Role.MAIN  # repurposed under load (section IV-A)
