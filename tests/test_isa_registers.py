"""Tests for the register file and architectural checkpoints."""

import math

from hypothesis import given, strategies as st

from repro.isa.registers import (
    ARCH_CHECKPOINT_BYTES,
    NUM_FP_REGS,
    NUM_INT_REGS,
    RegisterFile,
)


def test_register_file_initial_state():
    regs = RegisterFile()
    assert regs.ints == [0] * NUM_INT_REGS
    assert regs.fps == [0.0] * NUM_FP_REGS


def test_x0_is_hardwired_zero():
    regs = RegisterFile()
    regs.write_int(0, 12345)
    assert regs.read_int(0) == 0


def test_int_writes_mask_to_64_bits():
    regs = RegisterFile()
    regs.write_int(5, 1 << 70)
    assert regs.read_int(5) == 0
    regs.write_int(5, (1 << 64) + 7)
    assert regs.read_int(5) == 7


def test_negative_int_write_wraps():
    regs = RegisterFile()
    regs.write_int(3, -1)
    assert regs.read_int(3) == (1 << 64) - 1


def test_fp_write_and_read():
    regs = RegisterFile()
    regs.write_fp(2, 3.5)
    assert regs.read_fp(2) == 3.5


def test_snapshot_is_immutable_copy():
    regs = RegisterFile()
    regs.write_int(1, 42)
    snap = regs.snapshot(pc=7)
    regs.write_int(1, 99)
    assert snap.ints[1] == 42
    assert snap.pc == 7


def test_restore_round_trips():
    regs = RegisterFile()
    regs.write_int(4, 17)
    regs.write_fp(4, 2.25)
    snap = regs.snapshot(pc=3)
    other = RegisterFile()
    other.restore(snap)
    assert other.read_int(4) == 17
    assert other.read_fp(4) == 2.25


def test_copy_is_independent():
    regs = RegisterFile()
    regs.write_int(2, 5)
    clone = regs.copy()
    clone.write_int(2, 9)
    assert regs.read_int(2) == 5


def test_checkpoint_matches_identical_state():
    regs = RegisterFile()
    regs.write_int(1, 10)
    a = regs.snapshot(0)
    b = regs.snapshot(0)
    assert a.matches(b)
    assert a.diff(b) == []


def test_checkpoint_diff_reports_int_register():
    regs = RegisterFile()
    a = regs.snapshot(0)
    regs.write_int(7, 1)
    b = regs.snapshot(0)
    diff = a.diff(b)
    assert len(diff) == 1
    assert "x7" in diff[0]


def test_checkpoint_diff_reports_fp_register():
    regs = RegisterFile()
    a = regs.snapshot(0)
    regs.write_fp(3, 1.5)
    b = regs.snapshot(0)
    assert any("f3" in item for item in a.diff(b))


def test_checkpoint_diff_reports_pc():
    regs = RegisterFile()
    a = regs.snapshot(1)
    b = regs.snapshot(2)
    assert any("pc" in item for item in a.diff(b))


def test_nan_values_compare_equal():
    # Both replays producing NaN must not be flagged as divergence.
    regs = RegisterFile()
    regs.write_fp(1, math.nan)
    a = regs.snapshot(0)
    b = regs.snapshot(0)
    assert a.matches(b)


def test_nan_vs_number_is_divergence():
    regs = RegisterFile()
    regs.write_fp(1, math.nan)
    a = regs.snapshot(0)
    regs.write_fp(1, 0.0)
    b = regs.snapshot(0)
    assert not a.matches(b)


def test_checkpoint_byte_budget():
    # The paper's RCU ships 776 B per checkpoint (section VII-E).
    assert ARCH_CHECKPOINT_BYTES == 776


@given(st.integers(min_value=1, max_value=31), st.integers())
def test_int_roundtrip_any_value(idx, value):
    regs = RegisterFile()
    regs.write_int(idx, value)
    assert regs.read_int(idx) == value & ((1 << 64) - 1)


@given(
    st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1),
             min_size=32, max_size=32),
    st.integers(min_value=0, max_value=1000),
)
def test_snapshot_restore_property(values, pc):
    regs = RegisterFile()
    for i, value in enumerate(values):
        regs.write_int(i, value)
    snap = regs.snapshot(pc)
    fresh = RegisterFile()
    fresh.restore(snap)
    assert fresh.snapshot(pc).matches(snap)
    assert fresh.read_int(0) == 0  # x0 stays zero through restore+snapshot
