"""Tests for the energy, area and ED2P models (section VII-E)."""

import pytest

from repro.cpu.config import CoreInstance
from repro.cpu.presets import A35, A510, X2
from repro.power.area import dedicated_checker_area, storage_overhead
from repro.power.energy import (
    DEFAULT_POWER_MODEL,
    dynamic_energy_nj,
    energy_report,
    static_energy_nj,
)
from repro.power.ed2p import ed2p_sweep


class TestEnergyPrimitives:
    def test_dynamic_energy_scales_with_v_squared(self):
        low = dynamic_energy_nj(X2, 0.5, 1000)
        high = dynamic_energy_nj(X2, 1.0, 1000)
        assert high == pytest.approx(4 * low)

    def test_dynamic_energy_linear_in_instructions(self):
        one = dynamic_energy_nj(X2, 1.0, 1000)
        two = dynamic_energy_nj(X2, 1.0, 2000)
        assert two == pytest.approx(2 * one)

    def test_checker_mode_discount(self):
        plain = dynamic_energy_nj(X2, 1.0, 1000)
        checker = dynamic_energy_nj(X2, 1.0, 1000, checker_mode=True)
        assert checker == pytest.approx(
            plain * DEFAULT_POWER_MODEL.checker_epi_factor)

    def test_static_energy_scales_with_voltage_and_time(self):
        assert static_energy_nj(X2, 1.0, 200.0) == \
            pytest.approx(2 * static_energy_nj(X2, 1.0, 100.0))
        assert static_energy_nj(X2, 1.0, 100.0) > \
            static_energy_nj(X2, 0.7, 100.0)

    def test_little_core_cheaper_per_instruction(self):
        x2 = dynamic_energy_nj(X2, 1.0, 1000)
        a510 = dynamic_energy_nj(A510, 0.9, 1000)
        a35 = dynamic_energy_nj(A35, 0.85, 1000)
        assert a35 < a510 < x2


class TestStorageOverhead:
    def test_x2_budget_matches_paper(self):
        # Section VII-E: 1064 B per core (we land within a byte or two of
        # the paper's rounding).
        overhead = storage_overhead(X2)
        assert overhead.total_bytes == pytest.approx(1064, abs=2)

    def test_breakdown_components(self):
        overhead = storage_overhead(X2)
        parts = overhead.breakdown()
        assert parts["LSC (2-wide comparator)"] == 48 * 8
        assert parts["LQ/SQ parity (2 bits/entry)"] == 2 * (85 + 90)
        assert parts["LSPU (one cache line)"] == 512
        assert parts["instruction timer"] == 13
        assert parts["RCU (register checkpoint)"] == 776 * 8
        assert sum(parts.values()) == overhead.total_bits

    def test_lsl_tag_bits_one_per_line(self):
        overhead = storage_overhead(X2)
        assert overhead.lsl_tag_bits == 64 * 1024 // 64

    def test_smaller_core_smaller_overhead(self):
        assert storage_overhead(A510).total_bits < \
            storage_overhead(X2).total_bits


class TestArea:
    def test_sixteen_a35_is_35_percent_of_x2(self):
        comparison = dedicated_checker_area(X2, A35, 16)
        assert comparison.overhead_percent == pytest.approx(34.6, abs=1.0)

    def test_twelve_checkers_cost_less(self):
        twelve = dedicated_checker_area(X2, A35, 12)
        sixteen = dedicated_checker_area(X2, A35, 16)
        assert twelve.checkers_area_mm2 < sixteen.checkers_area_mm2


class TestED2P:
    def test_sweep_picks_minimum(self):
        class FakeResult:
            def __init__(self, time, slots):
                self.checked_time_ns = time
                self.baseline_time_ns = time / 1.01
                self.instructions = 1000
                self.checker_slots = slots
                self.workload = "w"
                self.config_label = "c"

        def run_at(freq):
            # Lower frequency -> slower but the (empty-slot) energy is
            # dominated by the main core; craft times so 1.8 wins ED2P.
            times = {2.0: 120.0, 1.8: 100.0, 1.6: 140.0, 1.4: 200.0}
            return FakeResult(times[freq], [])

        selection = ed2p_sweep(run_at, CoreInstance(X2, 3.0))
        assert selection.freq_ghz == 1.8
        assert len(selection.sweep) == 4

    def test_energy_report_structure(self):
        from repro.core.system import ParaVerserConfig, ParaVerserSystem
        from repro.workloads.generator import build_program
        from repro.workloads.profiles import get_profile

        program = build_program(get_profile("exchange2"), seed=1)
        config = ParaVerserConfig(
            main=CoreInstance(X2, 3.0),
            checkers=[CoreInstance(A510, 2.0)] * 4,
            seed=1, timeout_instructions=1000,
        )
        result = ParaVerserSystem(config).run(program,
                                              max_instructions=8_000)
        report = energy_report(result, config.main)
        assert report.baseline_nj > 0
        assert report.checked_nj > report.baseline_nj
        assert report.overhead > 0
        assert report.checker_nj > 0
        # Heterogeneous checking costs less than duplicating the main core.
        assert report.checker_nj < report.main_nj
