"""Telemetry bus: epoch snapshots, deltas, polling, JSONL sinks."""

import io
import json

import pytest

from repro.obs import (
    StatGroup,
    TelemetryBus,
    TelemetrySnapshot,
    write_epoch_jsonl,
)
from repro.obs.bus import flatten_numeric


def tree(**leaves) -> dict:
    return {"group": dict(leaves)}


class TestFlatten:
    def test_nested_numeric_leaves(self):
        flat = flatten_numeric({"a": {"b": 1, "c": 2.5}, "d": True})
        assert flat == {"a.b": 1.0, "a.c": 2.5, "d": 1.0}

    def test_non_numeric_leaves_skipped(self):
        assert flatten_numeric({"name": "cell", "n": 3}) == {"n": 3.0}


class TestPublish:
    def test_epochs_are_monotonic_across_labels(self):
        bus = TelemetryBus()
        first = bus.publish(tree(n=1), label="a")
        second = bus.publish(tree(n=1), label="b")
        third = bus.publish(tree(n=2), label="a")
        assert (first.epoch, second.epoch, third.epoch) == (1, 2, 3)
        assert bus.epoch == 3

    def test_delta_is_per_label(self):
        bus = TelemetryBus()
        bus.publish(tree(n=10), label="a")
        bus.publish(tree(n=99), label="b")
        snapshot = bus.publish(tree(n=13), label="a")
        assert snapshot.delta == {"group.n": 3.0}

    def test_first_snapshot_delta_is_nonzero_leaves(self):
        bus = TelemetryBus()
        snapshot = bus.publish(tree(n=5, zero=0))
        assert snapshot.delta == {"group.n": 5.0}

    def test_vanished_leaf_reports_negative_delta(self):
        bus = TelemetryBus()
        bus.publish(tree(n=5))
        snapshot = bus.publish({"group": {}})
        assert snapshot.delta == {"group.n": -5.0}

    def test_accepts_live_statgroup(self):
        root = StatGroup("root")
        root.count("hits", 3)
        snapshot = TelemetryBus().publish(root)
        assert snapshot.tree["hits"] == 3

    def test_history_must_be_positive(self):
        with pytest.raises(ValueError, match="history"):
            TelemetryBus(history=0)


class TestConsume:
    def test_poll_since_never_rereads(self):
        bus = TelemetryBus()
        for n in range(5):
            bus.publish(tree(n=n), label="a" if n % 2 else "b")
        seen = bus.poll(since=0)
        assert [s.epoch for s in seen] == [1, 2, 3, 4, 5]
        assert bus.poll(since=seen[-1].epoch) == []
        assert [s.epoch for s in bus.poll(since=2, label="b")] == [3, 5]

    def test_poll_resyncs_from_bounded_history(self):
        bus = TelemetryBus(history=2)
        for n in range(5):
            bus.publish(tree(n=n))
        assert [s.epoch for s in bus.poll(since=0)] == [4, 5]

    def test_latest_filters_by_label(self):
        bus = TelemetryBus()
        assert bus.latest() is None
        bus.publish(tree(n=1), label="a")
        bus.publish(tree(n=2), label="b")
        latest = bus.latest(label="a")
        assert latest is not None and latest.epoch == 1

    def test_subscribe_and_unsubscribe(self):
        bus = TelemetryBus()
        seen: list[TelemetrySnapshot] = []
        unsubscribe = bus.subscribe(seen.append)
        bus.publish(tree(n=1))
        unsubscribe()
        bus.publish(tree(n=2))
        assert [s.epoch for s in seen] == [1]


class TestJsonl:
    def test_sink_mirrors_every_snapshot(self):
        sink = io.StringIO()
        bus = TelemetryBus()
        bus.attach_jsonl(sink)
        bus.publish(tree(n=1), label="run")
        bus.publish(tree(n=2), label="run")
        lines = [json.loads(line) for line in
                 sink.getvalue().strip().splitlines()]
        assert [line["epoch"] for line in lines] == [1, 2]
        assert lines[1]["delta"] == {"group.n": 1.0}
        assert lines[0]["label"] == "run"

    def test_write_epoch_jsonl_restarts_epochs(self, tmp_path):
        path = tmp_path / "epochs.jsonl"
        records = [{"n": 1}, {"n": 4}]
        write_epoch_jsonl(path, records, label="fleet.cell")
        lines = [json.loads(line) for line in
                 path.read_text().strip().splitlines()]
        assert [line["epoch"] for line in lines] == [1, 2]
        assert lines[1]["delta"] == {"n": 3.0}
        assert all(line["label"] == "fleet.cell" for line in lines)

    def test_owned_file_sink_closes(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        bus = TelemetryBus()
        bus.attach_jsonl(path)
        bus.publish(tree(n=1))
        bus.close()
        assert path.read_text().count("\n") == 1
