"""Stats-tree diffing: flatten, classification, regression flags, CLI."""

import json

import pytest

from repro.cli import main
from repro.obs.diff import (
    DiffEntry,
    classify,
    diff_stats,
    flatten_tree,
    render_diff,
)


def _tree(wall=10.0, hits=90, misses=10, occupancy=0.8, coverage=0.95,
          lag_mean=120.0):
    return {
        "pipeline": {
            "timing": {"wall_time_ms": wall},
            "trace": {"wall_time_ms": wall / 2},
        },
        "main": {"caches": {"l1d": {"hits": hits, "misses": misses}}},
        "checkers": {"c0": {"occupancy": occupancy},
                     "pool_occupancy": occupancy},
        "schedule": {"coverage": coverage,
                     "checker_lag_ns": {"count": 10, "sum": lag_mean * 10,
                                        "mean": lag_mean, "min": 1.0,
                                        "max": 500.0,
                                        "buckets": {">=0": 10}}},
        "result": {"slowdown": 1.05},
    }


def test_flatten_tree_histograms_and_leaves():
    flat = flatten_tree(_tree())
    assert flat["pipeline.timing.wall_time_ms"] == 10.0
    assert flat["main.caches.l1d.hits"] == 90.0
    assert flat["schedule.checker_lag_ns.mean"] == 120.0
    assert "schedule.checker_lag_ns.buckets.>=0" not in flat


def test_classification():
    assert classify("pipeline.timing.wall_time_ms") == 1
    assert classify("schedule.stall_ns") == 1
    assert classify("result.slowdown") == 1
    assert classify("checkers.c0.occupancy") == -1
    assert classify("schedule.coverage") == -1
    assert classify("main.caches.l1d.hit_rate") == -1
    assert classify("main.caches.l1d.hits") == 0


def test_identical_trees_have_no_regressions():
    entries = diff_stats(_tree(), _tree())
    assert not any(entry.regression for entry in entries)


def test_wall_time_regression_flagged():
    entries = diff_stats(_tree(wall=10.0), _tree(wall=12.0),
                         threshold=0.10)
    flagged = {e.key for e in entries if e.regression}
    assert "pipeline.timing.wall_time_ms" in flagged
    # Within-threshold growth is not a regression.
    entries = diff_stats(_tree(wall=10.0), _tree(wall=10.5),
                         threshold=0.10)
    assert not any(e.regression for e in entries)


def test_hit_rate_regression_derived_from_counters():
    # 90% -> 70% hit rate: a >10% relative drop.
    entries = diff_stats(_tree(hits=90, misses=10),
                         _tree(hits=70, misses=30), threshold=0.10)
    flagged = {e.key for e in entries if e.regression}
    assert "main.caches.l1d.hit_rate" in flagged


def test_occupancy_and_coverage_regressions():
    entries = diff_stats(_tree(occupancy=0.8, coverage=0.95),
                         _tree(occupancy=0.5, coverage=0.6),
                         threshold=0.10)
    flagged = {e.key for e in entries if e.regression}
    assert "checkers.c0.occupancy" in flagged
    assert "checkers.pool_occupancy" in flagged
    assert "schedule.coverage" in flagged


def test_improvements_are_not_regressions():
    entries = diff_stats(_tree(wall=10.0, occupancy=0.5),
                         _tree(wall=5.0, occupancy=0.9))
    assert not any(e.regression for e in entries)


def test_rel_change_handles_zero_baseline():
    entry = DiffEntry(key="x.wall_time_ms", a=0.0, b=1.0, direction=1,
                      regression=True)
    assert entry.rel_change == float("inf")


def test_render_marks_regressions():
    entries = diff_stats(_tree(wall=10.0), _tree(wall=20.0))
    text = render_diff(entries)
    assert "REGRESSION" in text
    assert "regression(s)" in text


class TestCli:
    @pytest.fixture()
    def dumps(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(_tree()))
        return a, b

    def test_exit_zero_when_clean(self, dumps, capsys):
        a, b = dumps
        b.write_text(json.dumps(_tree()))
        assert main(["stats-diff", str(a), str(b)]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_exit_nonzero_on_regression(self, dumps, capsys):
        a, b = dumps
        b.write_text(json.dumps(_tree(wall=30.0)))
        assert main(["stats-diff", str(a), str(b)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_threshold_is_configurable(self, dumps):
        a, b = dumps
        b.write_text(json.dumps(_tree(wall=12.0)))
        assert main(["stats-diff", str(a), str(b),
                     "--threshold", "0.5"]) == 0
        assert main(["stats-diff", str(a), str(b),
                     "--threshold", "0.05"]) == 1

    def test_real_stats_dump_diffs_cleanly(self, tmp_path, capsys):
        a = tmp_path / "runA.json"
        b = tmp_path / "runB.json"
        for path in (a, b):
            code = main(["run", "-w", "exchange2", "-c", "1xA510@2.0",
                         "-n", "6000", "--stats-json", str(path)])
            assert code == 0
        capsys.readouterr()
        # Simulated outcomes are bit-identical; only wall-clock gauges
        # move, and they may move in either direction.  The tool must
        # parse real dumps and compare every simulated leaf cleanly.
        code = main(["stats-diff", str(a), str(b), "--threshold", "1e9"])
        assert code == 0


class TestRouterClassification:
    """Shard-router leaves carry regression directions."""

    def test_router_failure_counters_are_higher_worse(self):
        assert classify("router.re_dispatches") == 1
        assert classify("router.mark_downs") == 1
        assert classify("router.unroutable") == 1
        assert classify("router.shards.shard0.re_dispatched_away") == 1

    def test_locality_ratio_is_lower_worse(self):
        assert classify("router.locality.primary_ratio") == -1

    def test_neutral_router_counters_stay_informational(self):
        assert classify("router.requests_total") == 0
        assert classify("router.locality.primary") == 0
        assert classify("router.campaign.trials_forwarded") == 0

    def _router_tree(self, re_dispatches=0, primary_ratio=1.0):
        return {"router": {
            "re_dispatches": re_dispatches,
            "mark_downs": 0,
            "locality": {"primary_ratio": primary_ratio},
        }}

    def test_re_dispatch_growth_flags_a_regression(self):
        entries = diff_stats(self._router_tree(re_dispatches=0),
                             self._router_tree(re_dispatches=5))
        flagged = {e.key for e in entries if e.regression}
        assert "router.re_dispatches" in flagged

    def test_lost_locality_flags_a_regression(self):
        entries = diff_stats(self._router_tree(primary_ratio=1.0),
                             self._router_tree(primary_ratio=0.6))
        flagged = {e.key for e in entries if e.regression}
        assert "router.locality.primary_ratio" in flagged

    def test_identical_router_trees_are_clean(self):
        entries = diff_stats(self._router_tree(), self._router_tree())
        assert not any(e.regression for e in entries)


class TestControlClassification:
    """Control-plane and power leaves carry regression directions."""

    def test_thrash_and_energy_leaves_are_higher_worse(self):
        assert classify("control.cell.switch_rate") == 1
        assert classify("power.cell.budget_overshoot") == 1
        assert classify("power.cell.energy_overhead") == 1
        assert classify("power.cell.ed2p_j_ms2") == 1
        assert classify("control.cell.residency.disabled_frac") == 1

    def test_full_residency_is_lower_worse(self):
        assert classify("control.cell.residency.full_frac") == -1

    def test_neutral_control_counters_stay_informational(self):
        assert classify("control.cell.epochs") == 0
        assert classify("control.cell.switches") == 0
        assert classify("power.cell.main_j") == 0

    def _control_tree(self, switch_rate=0.1, full_frac=0.8,
                      overhead=0.3):
        return {
            "control": {"cell": {
                "switch_rate": switch_rate,
                "residency": {"full_frac": full_frac,
                              "disabled_frac": 0.0},
            }},
            "power": {"cell": {"energy_overhead": overhead,
                               "budget_overshoot": 0.0}},
        }

    def test_mode_thrash_flags_a_regression(self):
        entries = diff_stats(self._control_tree(switch_rate=0.1),
                             self._control_tree(switch_rate=0.5))
        flagged = {e.key for e in entries if e.regression}
        assert "control.cell.switch_rate" in flagged

    def test_lost_full_coverage_time_flags_a_regression(self):
        entries = diff_stats(self._control_tree(full_frac=0.8),
                             self._control_tree(full_frac=0.4))
        flagged = {e.key for e in entries if e.regression}
        assert "control.cell.residency.full_frac" in flagged

    def test_identical_control_trees_are_clean(self):
        entries = diff_stats(self._control_tree(), self._control_tree())
        assert not any(e.regression for e in entries)
