"""Whole-pipeline determinism: identical inputs give identical numbers.

Everything in the reproduction is seeded; nothing reads wall-clock or
global RNG state.  Determinism is what makes results reviewable, traces
cacheable, and fault campaigns attributable.
"""


from repro.core.system import CheckMode, ParaVerserConfig, ParaVerserSystem
from repro.cpu.config import CoreInstance
from repro.cpu.presets import A510, X2
from repro.faults.campaign import FaultCampaign
from repro.fleet import FleetConfig, FleetSimulator, ParaVerserStrategy
from repro.workloads.generator import build_program
from repro.workloads.profiles import get_profile


def run_once(mode=CheckMode.FULL, seed=21):
    program = build_program(get_profile("xz"), seed=seed)
    config = ParaVerserConfig(
        main=CoreInstance(X2, 3.0),
        checkers=[CoreInstance(A510, 2.0)] * 2,
        mode=mode, seed=seed, timeout_instructions=800,
    )
    return ParaVerserSystem(config).run(program, max_instructions=10_000)


def test_system_run_bit_deterministic():
    a, b = run_once(), run_once()
    assert a.checked_time_ns == b.checked_time_ns
    assert a.baseline_time_ns == b.baseline_time_ns
    assert a.stall_ns == b.stall_ns
    assert a.coverage == b.coverage
    assert a.lsl_bytes == b.lsl_bytes
    assert a.noc_extra_llc_ns == b.noc_extra_llc_ns


def test_opportunistic_deterministic():
    a = run_once(CheckMode.OPPORTUNISTIC)
    b = run_once(CheckMode.OPPORTUNISTIC)
    assert [s.coverage_fraction for s in a.schedule] == \
        [s.coverage_fraction for s in b.schedule]


def test_schedules_identical():
    a, b = run_once(), run_once()
    for entry_a, entry_b in zip(a.schedule, b.schedule):
        assert entry_a.checker_label == entry_b.checker_label
        assert entry_a.checker_finish_ns == entry_b.checker_finish_ns


def test_different_seed_changes_trace_not_validity():
    a = run_once(seed=21)
    b = run_once(seed=22)
    assert a.checked_time_ns != b.checked_time_ns  # different workload body
    assert a.coverage == b.coverage == 1.0          # both fully checked


def test_campaign_trials_reproducible():
    program = build_program(get_profile("leela"), seed=4)
    config = ParaVerserConfig(
        main=CoreInstance(X2, 3.0), checkers=[CoreInstance(A510, 2.0)],
        seed=4, timeout_instructions=500,
    )
    system = ParaVerserSystem(config)
    run = system.execute(program, 5_000)
    segments = system.segment(run)
    campaign = FaultCampaign(program, segments, A510)
    a = campaign.run(trials=10, seed=5)
    b = campaign.run(trials=10, seed=5)
    assert [t.fault.describe() for t in a.trials] == \
        [t.fault.describe() for t in b.trials]
    assert [t.detection_instruction for t in a.trials] == \
        [t.detection_instruction for t in b.trials]


def test_fleet_simulation_reproducible():
    simulator = FleetSimulator(FleetConfig(machines=1000), seed=8)
    a = simulator.run(ParaVerserStrategy())
    b = simulator.run(ParaVerserStrategy())
    assert a.faults == b.faults
    assert a.detection_latencies == b.detection_latencies
