"""Tests for detection forensics (section V) and overhead breakdown."""

from dataclasses import replace

import pytest

from repro.core.forensics import locate_divergence, replay_vote
from repro.core.system import ParaVerserConfig, ParaVerserSystem
from repro.cpu.config import CoreInstance
from repro.cpu.presets import A510, X2
from repro.faults.models import StuckAtFault
from repro.harness.breakdown import breakdown_for, overhead_breakdown
from repro.isa.instructions import FUKind
from repro.workloads.generator import build_program
from repro.workloads.profiles import get_profile


@pytest.fixture(scope="module")
def prepared_case():
    program = build_program(get_profile("exchange2"), seed=13)
    config = ParaVerserConfig(
        main=CoreInstance(X2, 3.0),
        checkers=[CoreInstance(A510, 2.0)],
        seed=13, timeout_instructions=500,
    )
    system = ParaVerserSystem(config)
    run = system.execute(program, 6_000)
    segments = system.segment(run)
    return program, system, run, segments


def corrupt_loaded_value(segment, record_offset=0):
    """Flip a loaded value in the log (a main-core/log-path fault)."""
    count = 0
    for i, record in enumerate(segment.records):
        access = record.accesses[0]
        if access.loaded is not None:
            if count == record_offset:
                new_access = replace(access, loaded=access.loaded ^ 0xF0)
                segment.records[i] = replace(record,
                                             accesses=(new_access,))
                return record.trace_index
            count += 1
    raise AssertionError("no load records in segment")


def corrupt_stored_value(segment, record_offset=0):
    """Flip a logged store's data (detected inline at that store)."""
    count = 0
    for i, record in enumerate(segment.records):
        access = record.accesses[0]
        if access.stored is not None:
            if count == record_offset:
                new_access = replace(access, stored=access.stored ^ 0x0F)
                segment.records[i] = replace(record,
                                             accesses=(new_access,))
                return record.trace_index
            count += 1
    raise AssertionError("no store records in segment")


class TestReplayVote:
    def test_healthy_segment_votes_clean(self, prepared_case):
        program, _, _, segments = prepared_case
        outcome = replay_vote(program, segments[0], [None, None, None])
        assert outcome.votes_clean == 3
        assert outcome.culprit == "transient-or-checker"

    def test_log_corruption_blames_main_or_log(self, prepared_case):
        program, _, _, segments = prepared_case
        import copy
        from repro.core.checker import CheckerCore

        # Find a loaded-value corruption that actually perturbs execution
        # (some are architecturally masked), then vote on it.
        segment = None
        for offset in range(0, 25):
            candidate = copy.deepcopy(segments[1])
            try:
                corrupt_loaded_value(candidate, record_offset=offset)
            except AssertionError:
                break
            if CheckerCore(program).check_segment(candidate).detected:
                segment = candidate
                break
        assert segment is not None, "no detectable corruption found"
        outcome = replay_vote(program, segment, [None, None, None])
        assert outcome.votes_detected == 3
        assert outcome.culprit == "main-core-or-log"

    def test_single_faulty_checker_is_the_minority(self, prepared_case):
        program, _, _, segments = prepared_case
        fault = StuckAtFault(FUKind.INT_ALU, 0, bit=0, stuck_at=1)
        outcome = replay_vote(program, segments[0],
                              [fault, None, None])
        assert outcome.votes_detected == 1
        assert outcome.culprit == "single-checker"

    def test_empty_vote_rejected(self, prepared_case):
        program, _, _, segments = prepared_case
        with pytest.raises(ValueError):
            replay_vote(program, segments[0], [])


class TestLocateDivergence:
    def test_clean_segment_has_no_divergence(self, prepared_case):
        program, _, _, segments = prepared_case
        point = locate_divergence(program, segments[0])
        assert not point.found

    def test_bisection_pinpoints_corrupted_store(self, prepared_case):
        program, _, _, segments = prepared_case
        import copy
        segment = copy.deepcopy(segments[1])
        trace_index = corrupt_stored_value(segment, record_offset=5)
        point = locate_divergence(program, segment)
        assert point.found
        # Store-data comparison is inline: the divergence is at exactly
        # the corrupted store.
        assert point.instruction_offset == trace_index - segment.start
        assert point.event is not None
        assert point.event.kind.value == "store_data"

    def test_earlier_corruption_found_earlier(self, prepared_case):
        program, _, _, segments = prepared_case
        import copy
        early = copy.deepcopy(segments[1])
        late = copy.deepcopy(segments[1])
        corrupt_stored_value(early, record_offset=1)
        corrupt_stored_value(late, record_offset=15)
        early_point = locate_divergence(program, early)
        late_point = locate_divergence(program, late)
        assert early_point.found and late_point.found
        assert early_point.instruction_offset < late_point.instruction_offset

    def test_register_only_divergence_reported_as_not_inline(
            self, prepared_case):
        """A loaded-value corruption that only surfaces in the end
        register checkpoint has no inline divergence to bisect to."""
        program, _, _, segments = prepared_case
        import copy
        from repro.core.checker import CheckerCore

        # A corrupted loaded value may be architecturally dead (masked),
        # dead-by-checkpoint, or propagate inline; scan offsets until one
        # is at least *detected* and classify it.
        detected_point = None
        for offset in range(0, 20):
            segment = copy.deepcopy(segments[1])
            try:
                corrupt_loaded_value(segment, record_offset=offset)
            except AssertionError:
                break
            if CheckerCore(program).check_segment(segment).detected:
                detected_point = locate_divergence(program, segment)
                break
        assert detected_point is not None, \
            "no loaded-value corruption was detectable in this segment"
        # found implies a real inline event; not-found means the
        # divergence only appears at the end register checkpoint.
        if detected_point.found:
            assert detected_point.event is not None


class TestBreakdown:
    def test_components_sum_to_total(self, prepared_case):
        program, system, run, _ = prepared_case
        prepared = system.prepare(program, run_result=run)
        result = system.finalize(prepared, 0.5, 2.0)
        breakdown = overhead_breakdown(system, prepared, result)
        total = (breakdown.checkpointing_percent
                 + breakdown.stalling_percent
                 + breakdown.noc_percent
                 + breakdown.residual_percent)
        assert total == pytest.approx(breakdown.total_percent, abs=1e-6)

    def test_stall_dominates_underprovisioned_fdiv(self):
        program = build_program(get_profile("bwaves"), seed=13)
        config = ParaVerserConfig(
            main=CoreInstance(X2, 3.0),
            checkers=[CoreInstance(A510, 1.0)],
            seed=13, timeout_instructions=1000,
        )
        system = ParaVerserSystem(config)
        breakdown = breakdown_for(system, program, max_instructions=15_000)
        assert breakdown.stalling_percent > breakdown.noc_percent
        assert breakdown.stalling_percent > breakdown.checkpointing_percent
        assert breakdown.total_percent > 5.0

    def test_render_lists_all_causes(self, prepared_case):
        program, system, run, _ = prepared_case
        prepared = system.prepare(program, run_result=run)
        result = system.finalize(prepared, 0.0, 0.0)
        text = overhead_breakdown(system, prepared, result).render()
        for label in ("register checkpointing", "stalling", "NoC",
                      "TOTAL"):
            assert label in text
