"""Tests for the measured-window machinery in the system simulator."""

import pytest

from repro.core.system import (
    BASELINE_GRID,
    ParaVerserConfig,
    ParaVerserSystem,
    _grid_time_at,
    warm_addresses,
)
from repro.cpu.config import CoreInstance
from repro.cpu.presets import A510, X2
from repro.cpu.timing import TimingResult
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.workloads.generator import build_program
from repro.workloads.profiles import get_profile


def fake_baseline(boundaries_ns, instructions):
    return TimingResult(
        label="t", instructions=instructions,
        cycles=boundaries_ns[-1] * 3.0, freq_ghz=3.0,
        boundary_cycles=[t * 3.0 for t in boundaries_ns],
    )


class TestGridInterpolation:
    def test_exact_grid_point(self):
        baseline = fake_baseline([10.0, 20.0, 30.0], 3 * BASELINE_GRID)
        assert _grid_time_at(baseline, BASELINE_GRID) == pytest.approx(10.0)
        assert _grid_time_at(baseline, 2 * BASELINE_GRID) == pytest.approx(20.0)

    def test_interpolates_between_points(self):
        baseline = fake_baseline([10.0, 20.0], 2 * BASELINE_GRID)
        halfway = BASELINE_GRID + BASELINE_GRID // 2
        assert _grid_time_at(baseline, halfway) == pytest.approx(15.0)

    def test_below_first_point(self):
        baseline = fake_baseline([10.0, 20.0], 2 * BASELINE_GRID)
        quarter = BASELINE_GRID // 4
        assert _grid_time_at(baseline, quarter) == pytest.approx(2.5)

    def test_no_grid_falls_back_to_linear(self):
        baseline = TimingResult(label="t", instructions=1000,
                                cycles=3000.0, freq_ghz=3.0)
        assert _grid_time_at(baseline, 500) == pytest.approx(500.0)

    def test_monotone_in_instruction_index(self):
        baseline = fake_baseline([5.0, 11.0, 30.0, 31.0], 4 * BASELINE_GRID)
        previous = 0.0
        for instr in range(0, 4 * BASELINE_GRID, 157):
            value = _grid_time_at(baseline, instr)
            assert value >= previous
            previous = value


class TestWarmAddresses:
    def test_includes_memory_image(self):
        program = Program("t", [Instruction(Opcode.HALT)],
                          memory_image={0x100: 1, 0x200: 2})
        assert {0x100, 0x200} <= set(warm_addresses(program))

    def test_includes_declared_ranges(self):
        program = Program(
            "t", [Instruction(Opcode.HALT)],
            metadata={"warm_ranges": [(0x1000, 256)]},
        )
        addresses = list(warm_addresses(program))
        assert 0x1000 in addresses
        assert 0x1000 + 192 in addresses
        assert 0x1000 + 256 not in addresses


class TestWindowBehaviour:
    def run_with(self, warmup_fraction):
        program = build_program(get_profile("exchange2"), seed=11)
        config = ParaVerserConfig(
            main=CoreInstance(X2, 3.0),
            checkers=[CoreInstance(A510, 2.0)] * 2,
            seed=11, timeout_instructions=500,
            warmup_fraction=warmup_fraction,
        )
        return ParaVerserSystem(config).run(program,
                                            max_instructions=15_000)

    def test_window_drops_cold_prefix(self):
        full = self.run_with(0.0)
        windowed = self.run_with(0.3)
        assert windowed.baseline_time_ns < full.baseline_time_ns
        assert windowed.checked_time_ns < full.checked_time_ns

    def test_windowed_slowdown_not_wilder(self):
        # The window exists to *stabilise* slowdowns, not to change signs.
        full = self.run_with(0.0)
        windowed = self.run_with(0.3)
        assert abs(windowed.slowdown - 1.0) <= abs(full.slowdown - 1.0) + 0.02

    def test_same_window_across_segment_sizes(self):
        """Configs with very different segment sizes must agree on the
        baseline, or cross-config comparisons are meaningless."""
        program = build_program(get_profile("exchange2"), seed=11)

        def run(timeout):
            config = ParaVerserConfig(
                main=CoreInstance(X2, 3.0),
                checkers=[CoreInstance(X2, 3.0)],
                seed=11, timeout_instructions=timeout,
            )
            return ParaVerserSystem(config).run(program,
                                                max_instructions=15_000)

        # Windows stay instruction-aligned within each configuration, so
        # cross-config comparisons remain meaningful: shorter checkpoints
        # cost (weakly) more, never produce sign flips, and the paper's
        # 5000-instruction default is the cheapest.
        results = {timeout: run(timeout) for timeout in (5000, 2500, 1250)}
        assert results[5000].slowdown <= results[2500].slowdown + 0.005
        assert results[2500].slowdown <= results[1250].slowdown + 0.005
        for result in results.values():
            assert result.slowdown >= 0.99
