"""WorkerPool process hygiene: reset must reap, not orphan, workers."""

from repro.serve.workers import WorkerPool


def _spawn_workers(pool):
    """Force the lazy executor to exist and spin up its processes."""
    executor = pool._ensure()
    # A trivial picklable call makes the executor fork its workers.
    for future in [executor.submit(abs, -i) for i in range(pool.workers)]:
        future.result()
    return list(executor._processes.values())


def test_reset_reaps_worker_processes():
    pool = WorkerPool(workers=2)
    try:
        procs = _spawn_workers(pool)
        assert procs
        pool.reset()
        # Every worker the pool ever started must be dead after reset —
        # the crash-retry loop must not accumulate orphans.
        assert all(not p.is_alive() for p in procs)
        assert all(p.exitcode is not None for p in procs)
        assert pool._executor is None
    finally:
        pool.shutdown()


def test_reset_before_first_use_is_a_no_op():
    pool = WorkerPool(workers=2)
    pool.reset()
    assert pool._executor is None


def test_pool_recreates_after_reset():
    pool = WorkerPool(workers=1)
    try:
        first = _spawn_workers(pool)
        pool.reset()
        second = _spawn_workers(pool)
        assert second  # the next batch transparently got a fresh pool
        assert {p.pid for p in first}.isdisjoint({p.pid for p in second})
    finally:
        pool.shutdown()


def test_reap_timeout_is_bounded():
    assert 0 < WorkerPool.REAP_TIMEOUT_S <= 30
