"""Tests for the ASCII chart rendering."""

from repro.harness.plot import bar_chart, sparkline
from repro.harness.report import Table


def make_table():
    table = Table(title="Fig. X — demo", unit="%")
    table.add("bwaves", "cfgA", 10.0)
    table.add("bwaves", "cfgB", 5.0)
    table.add("gcc", "cfgA", 1.0)
    table.add("gcc", "cfgB", 0.5)
    return table


def test_bar_chart_contains_rows_and_bars():
    text = bar_chart(make_table())
    assert "bwaves" in text and "gcc" in text
    assert "█" in text
    assert "10.00" in text


def test_bars_scale_to_maximum():
    text = bar_chart(make_table(), width=20)
    lines = {line.strip() for line in text.splitlines()}
    # The max value gets the full-width bar.
    assert any(line.count("█") == 20 for line in lines)


def test_bar_chart_handles_missing_cells():
    table = Table(title="t")
    table.add("a", "cfgA", 1.0)
    table.add("b", "cfgB", 2.0)
    text = bar_chart(table)
    assert "a" in text and "b" in text


def test_bar_chart_empty_table():
    assert "(empty)" in bar_chart(Table(title="t"))


def test_geomean_footer_optional():
    with_gm = bar_chart(make_table(), include_geomean=True)
    without = bar_chart(make_table(), include_geomean=False)
    assert "geomean" in with_gm
    assert "geomean" not in without


def test_zero_values_render_empty_bars():
    table = Table(title="t")
    table.add("a", "cfg", 0.0)
    table.add("b", "cfg", 4.0)
    text = bar_chart(table)
    assert "0.00" in text


def test_sparkline_shape():
    line = sparkline([1.0, 2.0, 3.0, 2.0, 1.0])
    assert len(line) == 5
    assert line[0] == line[-1]
    assert line[2] > line[0]


def test_sparkline_flat_and_empty():
    assert sparkline([]) == ""
    flat = sparkline([2.0, 2.0, 2.0])
    assert len(set(flat)) == 1
