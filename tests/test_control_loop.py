"""The closed loop end to end: dwell, controlled runs, determinism."""

import json
from dataclasses import replace

import pytest

from repro.control import (
    ControlAction,
    Controller,
    publish_control_stats,
    result_energy_nj,
)
from repro.control.bench import (
    BENCH_CHECKERS,
    DEFAULT_CONTROLLER,
    diurnal_config,
    run_diurnal_bench,
)
from repro.fleet import FleetTrafficConfig, FleetTrafficSim, run_cell, summarize
from repro.obs import StatGroup, write_epoch_jsonl


class FlipFlopPolicy:
    """Worst-case thrasher: demands the other mode every epoch."""

    def __init__(self):
        self.checkers = BENCH_CHECKERS

    def on_epoch(self, obs):
        mode = "opportunistic" if obs.mode == "full" else "full"
        return ControlAction(mode=mode, checkers=self.checkers)


def controlled_config(**overrides) -> FleetTrafficConfig:
    base = diurnal_config(servers=4, duration_s=1.0, epoch_s=0.1)
    return replace(base, controller=dict(DEFAULT_CONTROLLER), **overrides)


class TestDwell:
    def test_dwell_bounds_the_switch_rate(self):
        from repro.control.policy import EpochObservation

        def observe(epoch, mode):
            return EpochObservation(
                epoch=epoch, t_s=epoch * 0.1, epoch_len_s=0.1, servers=1,
                offered=10, completed=10, p50_ms=1.0, p99_ms=1.0,
                utilization=0.5, stall_fraction=0.0, coverage=1.0,
                lag_max_frac=0.1, busy_s=0.05, checked_work_s=0.05,
                mode=mode, checkers=BENCH_CHECKERS)

        controller = Controller(FlipFlopPolicy(), dwell_epochs=4)
        mode, switches = "full", 0
        for epoch in range(1, 21):
            action = controller.on_epoch(observe(epoch, mode))
            if action.mode != mode:
                switches += 1
                mode = action.mode
            else:
                assert action.info.get("held") is True
        # 20 epochs of maximal pressure, at most one switch per dwell.
        assert switches <= 20 // 4 + 1

    def test_dwell_must_be_positive(self):
        with pytest.raises(ValueError, match="dwell_epochs"):
            Controller(FlipFlopPolicy(), dwell_epochs=0)


class TestControlledRuns:
    def test_controller_requires_epochs(self):
        config = replace(diurnal_config(),
                         epoch_s=0.0, controller=DEFAULT_CONTROLLER)
        with pytest.raises(ValueError, match="epoch_s"):
            FleetTrafficSim(config)

    def test_controlled_config_round_trips_through_json(self):
        config = controlled_config()
        assert FleetTrafficConfig.from_json(config.to_json()) == config

    def test_epoch_records_cover_the_run(self):
        config = controlled_config()
        result = FleetTrafficSim(config).run()
        assert len(result.epochs) == 10  # duration 1.0 / epoch 0.1
        assert [r["epoch"] for r in result.epochs] == list(range(1, 11))
        assert all(r["mode"] in ("full", "opportunistic", "disabled")
                   for r in result.epochs)
        switched = sum(1 for r in result.epochs if r["switched"])
        assert switched == result.switches
        assert sum(result.mode_residency_s.values()) == pytest.approx(
            config.duration_s * 1)  # one rep

    def test_fanout_is_bit_identical_with_a_controller(self):
        config = controlled_config()
        serial = run_cell(config, reps=2, jobs=1)
        fanned = run_cell(config, reps=2, jobs=2)
        assert fanned.latencies_s == serial.latencies_s
        assert fanned.epochs == serial.epochs
        assert fanned.switches == serial.switches
        assert fanned.mode_residency_s == serial.mode_residency_s

    def test_epoch_jsonl_is_bit_identical_across_jobs(self, tmp_path):
        config = controlled_config()
        streams = []
        for jobs in (1, 3):
            result = run_cell(config, reps=3, jobs=jobs)
            path = tmp_path / f"epochs_j{jobs}.jsonl"
            write_epoch_jsonl(path, result.epochs,
                              label=f"fleet.{config.label}")
            streams.append(path.read_bytes())
        assert streams[0] == streams[1]
        lines = [json.loads(line) for line in
                 streams[0].decode().strip().splitlines()]
        assert len(lines) == 30  # 3 reps x 10 epochs
        assert [line["epoch"] for line in lines] == list(range(1, 31))

    def test_static_and_controlled_agree_when_policy_never_switches(self):
        # A controller pinned to the static point must not perturb the
        # simulation: control is observation-only until it acts.
        base = diurnal_config(servers=4, duration_s=1.0, epoch_s=0.1)
        static = FleetTrafficSim(replace(base, mode="full")).run()
        pinned = FleetTrafficSim(replace(
            base, controller={"kind": "static", "mode": "full",
                              "checkers": BENCH_CHECKERS})).run()
        assert pinned.latencies_s == static.latencies_s
        assert pinned.switches == 0
        assert set(pinned.mode_residency_s) == {"full"}


class TestStats:
    def test_publish_control_stats_tree(self):
        config = controlled_config()
        result = run_cell(config, reps=1, jobs=1)
        root = StatGroup("root")
        publish_control_stats(root, result, metrics=summarize(result))
        flat = root.flatten()
        label = config.label
        for leaf in ("epochs", "switches", "switch_rate", "coverage",
                     "p99_ms"):
            assert f"control.{label}.{leaf}" in flat
        for leaf in ("main_j", "checker_j", "energy_overhead",
                     "budget_overshoot", "ed2p_j_ms2"):
            assert f"power.{label}.{leaf}" in flat
        fracs = [value for key, value in flat.items()
                 if key.startswith(f"control.{label}.residency.")
                 and key.endswith("_frac")]
        assert sum(fracs) == pytest.approx(1.0)

    def test_energy_accounting_is_epoch_resolved(self):
        config = controlled_config()
        result = run_cell(config, reps=1, jobs=1)
        main_nj, checker_nj = result_energy_nj(result)
        assert main_nj > 0
        # The controlled run spends part of the day degraded, so its
        # checker energy must undercut the always-full pool.
        full = run_cell(replace(config, controller=None, mode="full"),
                        reps=1, jobs=1)
        _, full_checker_nj = result_energy_nj(full)
        assert 0 < checker_nj < full_checker_nj


class TestDiurnalBench:
    def test_controlled_dominates_both_endpoints(self):
        out = run_diurnal_bench(servers=4, duration_s=1.0, epoch_s=0.1)
        assert out["dominates"]["p99_vs_full"]
        assert out["dominates"]["coverage_vs_opportunistic"]
        rows = out["arms"]
        assert rows["always_full"]["coverage"] == 1.0
        assert rows["always_full"]["switches"] == 0
        assert rows["controlled"]["switches"] > 0
        assert set(rows["controlled"]["mode_residency"]) >= {"full"}
