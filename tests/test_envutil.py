"""``REPRO_*`` environment knobs must fail with one-line messages."""

import pytest

from repro.envutil import (
    env_float,
    env_int,
    parse_choice,
    parse_float,
    parse_int,
)
from repro.harness.runner import env_instructions, env_jobs, env_trials
from repro.pipeline.executor import env_stage_jobs


def test_unset_returns_default(monkeypatch):
    monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
    assert env_int("REPRO_TEST_KNOB", 7) == 7


def test_empty_returns_default(monkeypatch):
    monkeypatch.setenv("REPRO_TEST_KNOB", "")
    assert env_int("REPRO_TEST_KNOB", 7) == 7


def test_valid_value_parses(monkeypatch):
    monkeypatch.setenv("REPRO_TEST_KNOB", "42")
    assert env_int("REPRO_TEST_KNOB", 7) == 42


def test_bad_value_names_variable_and_value(monkeypatch):
    monkeypatch.setenv("REPRO_TEST_KNOB", "four")
    with pytest.raises(SystemExit) as excinfo:
        env_int("REPRO_TEST_KNOB", 7)
    message = str(excinfo.value)
    assert "REPRO_TEST_KNOB" in message
    assert "four" in message
    assert "REPRO_TEST_KNOB=7" in message  # suggests a working example


@pytest.mark.parametrize("variable, parser", [
    ("REPRO_JOBS", env_jobs),
    ("REPRO_TRIALS", env_trials),
    ("REPRO_INSTRUCTIONS", env_instructions),
    ("REPRO_STAGE_JOBS", env_stage_jobs),
])
def test_runner_knobs_fail_with_one_liner(monkeypatch, variable, parser):
    monkeypatch.setenv(variable, "20x")
    with pytest.raises(SystemExit) as excinfo:
        parser()
    assert variable in str(excinfo.value)
    assert "20x" in str(excinfo.value)


class TestParseHelpers:
    """CLI flags share the env-var contract (used by `paraverser fleet`)."""

    def test_parse_int_accepts_value_and_default(self):
        assert parse_int("--servers", "12", 8) == 12
        assert parse_int("--servers", None, 8) == 8
        assert parse_int("--servers", "", 8) == 8

    def test_parse_int_names_the_flag(self):
        with pytest.raises(SystemExit) as excinfo:
            parse_int("--servers", "four", 8)
        message = str(excinfo.value)
        assert "--servers" in message and "four" in message
        assert "--servers=8" in message

    def test_parse_float_accepts_value_and_default(self):
        assert parse_float("--duration", "2.5", 2.0) == 2.5
        assert parse_float("--duration", None, 2.0) == 2.0

    def test_parse_float_names_the_flag(self):
        with pytest.raises(SystemExit) as excinfo:
            parse_float("--duration", "2s", 2.0)
        message = str(excinfo.value)
        assert "--duration" in message and "2s" in message

    def test_parse_choice_accepts_member_and_default(self):
        choices = ("threshold", "ed2p_budget", "scheduler")
        assert parse_choice("--policy", "scheduler", "threshold",
                            choices) == "scheduler"
        assert parse_choice("--policy", None, "threshold",
                            choices) == "threshold"
        assert parse_choice("--policy", "", "threshold",
                            choices) == "threshold"

    def test_parse_choice_lists_the_choices(self):
        with pytest.raises(SystemExit) as excinfo:
            parse_choice("--policy", "pid", "threshold",
                         ("threshold", "scheduler"))
        message = str(excinfo.value)
        assert "--policy" in message and "pid" in message
        assert "threshold" in message and "scheduler" in message


class TestEnvFloat:
    """REPRO_CONTROL_* knobs (`paraverser control`) parse as floats."""

    def test_unset_and_valid(self, monkeypatch):
        monkeypatch.delenv("REPRO_CONTROL_EPOCH_S", raising=False)
        assert env_float("REPRO_CONTROL_EPOCH_S", 0.1) == 0.1
        monkeypatch.setenv("REPRO_CONTROL_EPOCH_S", "0.25")
        assert env_float("REPRO_CONTROL_EPOCH_S", 0.1) == 0.25

    def test_bad_value_is_a_one_liner(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONTROL_BUDGET", "40%")
        with pytest.raises(SystemExit) as excinfo:
            env_float("REPRO_CONTROL_BUDGET", 0.4)
        message = str(excinfo.value)
        assert "REPRO_CONTROL_BUDGET" in message and "40%" in message
