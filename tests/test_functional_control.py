"""Control flow, non-repeatable instructions, and run mechanics."""

import pytest

from repro.cpu.functional import (
    ControlFlowEscape,
    DirectMemoryPort,
    FunctionalCore,
    MainNonRepSource,
)
from repro.isa.assembler import assemble
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.mem.memory import Memory

_MASK64 = (1 << 64) - 1


def make_core(text: str, seed: int = 0):
    program = assemble(text)
    return FunctionalCore(
        program,
        DirectMemoryPort(Memory(program.memory_image)),
        nonrep=MainNonRepSource(seed=seed),
    )


def test_loop_executes_expected_count():
    core = make_core(
        """
        addi x1, x0, 10
        loop:
        subi x1, x1, 1
        bne x1, x0, loop
        halt
        """
    )
    result = core.run(1000)
    assert result.halted
    # 1 init + 10 * (subi + bne) + halt
    assert result.instructions == 22


def test_branch_comparisons_are_signed():
    core = make_core(
        """
        addi x1, x0, -1
        addi x2, x0, 1
        blt x1, x2, less
        addi x3, x0, 99
        less:
        halt
        """
    )
    core.run(1000)
    assert core.regs.read_int(3) == 0  # the branch skipped the poison write


def test_bge_taken_when_equal():
    core = make_core(
        """
        bge x0, x0, skip
        addi x3, x0, 1
        skip:
        halt
        """
    )
    core.run(100)
    assert core.regs.read_int(3) == 0


def test_jmp_is_unconditional():
    core = make_core("jmp end\naddi x3, x0, 1\nend:\nhalt")
    core.run(100)
    assert core.regs.read_int(3) == 0


def test_jalr_jumps_and_links():
    core = make_core(
        """
        addi x2, x0, 3
        jalr x1, x2
        nop
        halt
        """
    )
    result = core.run(100)
    assert result.halted
    assert core.regs.read_int(1) == 2  # link = pc + 1


def test_jalr_escape_raises():
    core = make_core("addi x2, x0, 1000\njalr x1, x2\nhalt")
    with pytest.raises(ControlFlowEscape):
        core.run(100)


def test_max_instructions_caps_run():
    core = make_core("loop:\naddi x1, x1, 1\njmp loop\nhalt")
    result = core.run(50)
    assert result.instructions == 50
    assert not result.halted


def test_run_resumes_from_previous_state():
    core = make_core("loop:\naddi x1, x1, 1\njmp loop\nhalt")
    core.run(10)
    first = core.regs.read_int(1)
    core.run(10)
    assert core.regs.read_int(1) == first + 5  # 5 addi per 10 instructions


def test_falling_off_the_end_stops():
    program = Program("t", [Instruction(Opcode.NOP)])
    program.validate()
    core = FunctionalCore(program, DirectMemoryPort(Memory()))
    result = core.run(100)
    assert result.instructions == 1
    assert not result.halted


def test_rdrand_is_deterministic_per_seed():
    a = make_core("rdrand x1\nhalt", seed=42)
    b = make_core("rdrand x1\nhalt", seed=42)
    c = make_core("rdrand x1\nhalt", seed=43)
    a.run(10), b.run(10), c.run(10)
    assert a.regs.read_int(1) == b.regs.read_int(1)
    assert a.regs.read_int(1) != c.regs.read_int(1)


def test_rdtime_monotonic():
    core = make_core("rdtime x1\nrdtime x2\nhalt")
    core.run(10)
    assert core.regs.read_int(2) > core.regs.read_int(1)


def test_sysrd_identifies_core():
    program = assemble("sysrd x1\nhalt")
    core = FunctionalCore(
        program, DirectMemoryPort(Memory()),
        nonrep=MainNonRepSource(core_id=3),
    )
    core.run(10)
    assert core.regs.read_int(1) & 0xFF == 3


def test_nonrep_values_recorded_in_trace():
    core = make_core("rdrand x1\nhalt", seed=1)
    result = core.run(10)
    assert result.trace[0].nonrep == core.regs.read_int(1)


def test_trace_branch_outcomes():
    core = make_core(
        """
        addi x1, x0, 1
        bne x1, x0, taken
        nop
        taken:
        beq x1, x0, 0
        halt
        """
    )
    result = core.run(100)
    branches = [e for e in result.trace if e.instr.spec.is_branch]
    assert branches[0].taken is True
    assert branches[1].taken is False


def test_checkpoints_bracket_run():
    core = make_core("addi x1, x0, 5\nhalt")
    result = core.run(10)
    assert result.start_checkpoint.ints[1] == 0
    assert result.end_checkpoint.ints[1] == 5


def test_class_counts_accumulate():
    core = make_core("addi x1, x0, 2\nfadd f1, f1, f2\nld x2, 0(x1)\nhalt")
    result = core.run(10)
    assert result.class_counts["int_alu"] >= 2  # addi + halt
    assert result.class_counts["fp"] == 1
    assert result.class_counts["load"] == 1


def test_identical_seeds_reproduce_full_trace():
    text = """
        addi x1, x0, 50
        loop:
        rdrand x2
        and x3, x2, x1
        subi x1, x1, 1
        bne x1, x0, loop
        halt
    """
    a, b = make_core(text, seed=9), make_core(text, seed=9)
    ra, rb = a.run(1000), b.run(1000)
    assert [e.nonrep for e in ra.trace] == [e.nonrep for e in rb.trace]
    assert ra.end_checkpoint.matches(rb.end_checkpoint)
