"""Admission queue and batch planning: dedup, trace grouping, shedding."""

import asyncio

from repro.serve.batcher import plan_batches
from repro.serve.protocol import (
    EvalRequest,
    STATUS_SHED,
    STATUS_TIMEOUT,
    shed_response,
)
from repro.serve.queue import AdmissionQueue


def _req(workload="mcf", backend="paraverser-full", instructions=4000,
         **kwargs):
    return EvalRequest(workload=workload, backend=backend,
                       instructions=instructions, **kwargs)


def _submit_all(queue, requests):
    return [queue.submit(request) for request in requests]


class TestAdmissionQueue:
    def test_fifo_and_batch_drain(self):
        async def scenario():
            queue = AdmissionQueue(depth=8)
            pending = _submit_all(queue, [_req(request_id=f"r{i}")
                                          for i in range(3)])
            batch = await queue.next_batch()
            return pending, batch

        pending, batch = asyncio.run(scenario())
        assert [p.request.request_id for p in batch] == ["r0", "r1", "r2"]
        assert pending[0] is batch[0]

    def test_saturation_sheds_immediately(self):
        async def scenario():
            queue = AdmissionQueue(depth=2)
            pending = _submit_all(queue, [_req(request_id=f"r{i}")
                                          for i in range(4)])
            return queue, pending

        queue, pending = asyncio.run(scenario())
        assert not pending[0].future.done()
        assert not pending[1].future.done()
        for entry in pending[2:]:
            assert entry.future.done()
            assert entry.future.result().status == STATUS_SHED
        assert queue.shed == 2
        assert queue.submitted == 4

    def test_expired_entries_answered_with_timeout(self):
        async def scenario():
            queue = AdmissionQueue(depth=8)
            expired = queue.submit(_req(request_id="old", timeout_s=0.01))
            fresh = queue.submit(_req(request_id="new", timeout_s=30.0))
            await asyncio.sleep(0.05)
            batch = await queue.next_batch()
            return queue, expired, fresh, batch

        queue, expired, fresh, batch = asyncio.run(scenario())
        assert [p.request.request_id for p in batch] == ["new"]
        assert expired.future.result().status == STATUS_TIMEOUT
        assert not fresh.future.done()
        assert queue.expired == 1

    def test_drain_resolves_everything(self):
        async def scenario():
            queue = AdmissionQueue(depth=8)
            pending = _submit_all(queue, [_req(request_id=f"r{i}")
                                          for i in range(3)])
            drained = queue.drain(lambda request: shed_response(request, 8))
            return pending, drained, len(queue)

        pending, drained, depth = asyncio.run(scenario())
        assert drained == 3 and depth == 0
        assert all(p.future.result().status == STATUS_SHED for p in pending)


class TestPlanBatches:
    def test_dedup_collapses_identical_sims(self):
        async def scenario():
            queue = AdmissionQueue(depth=16)
            _submit_all(queue, [_req(request_id=f"r{i}") for i in range(5)])
            return plan_batches(await queue.next_batch())

        batches = asyncio.run(scenario())
        assert len(batches) == 1
        assert len(batches[0].groups) == 1          # one unique simulation
        assert len(batches[0].groups[0].waiters) == 5
        assert batches[0].requests == 5

    def test_trace_grouping_shares_one_invocation(self):
        async def scenario():
            queue = AdmissionQueue(depth=16)
            requests = [
                _req(backend="paraverser-full", request_id="a"),
                _req(backend="dual-lockstep", request_id="b"),
                _req(backend="paraverser-full", request_id="c"),
                _req(workload="bwaves", request_id="d"),
                _req(instructions=8000, request_id="e"),
            ]
            _submit_all(queue, requests)
            return plan_batches(await queue.next_batch())

        batches = asyncio.run(scenario())
        # Three trace keys: (mcf,4000), (bwaves,4000), (mcf,8000).
        assert len(batches) == 3
        first = batches[0]
        assert first.trace_key == ("mcf", 4000, 7)
        # Two sim groups share the mcf/4000 trace; the duplicated
        # paraverser-full request rides as a second waiter, not a spec.
        assert len(first.groups) == 2
        assert [len(g.waiters) for g in first.groups] == [2, 1]
        assert first.requests == 3
        assert [b.trace_key for b in batches[1:]] == [
            ("bwaves", 4000, 7), ("mcf", 8000, 7)]

    def test_specs_match_sim_spec(self):
        async def scenario():
            queue = AdmissionQueue(depth=16)
            request = _req(request_id="r", timeout_s=5.0)
            queue.submit(request)
            return request, plan_batches(await queue.next_batch())

        request, batches = asyncio.run(scenario())
        assert batches[0].specs == [request.sim_spec()]
        # Delivery metadata must not leak into worker specs.
        assert "timeout_s" not in batches[0].specs[0]
        assert "request_id" not in batches[0].specs[0]
