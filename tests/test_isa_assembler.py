"""Tests for the two-pass assembler."""

import pytest

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.instructions import Opcode


def test_assemble_empty_program_fails_validation():
    with pytest.raises((AssemblyError, ValueError)):
        assemble("")


def test_simple_arithmetic():
    program = assemble("add x1, x2, x3\nhalt")
    assert program.instructions[0].op is Opcode.ADD
    assert program.instructions[0].rd == 1
    assert program.instructions[0].rs1 == 2
    assert program.instructions[0].rs2 == 3


def test_immediate_forms():
    program = assemble("addi x1, x2, -5\nhalt")
    assert program.instructions[0].op is Opcode.ADDI
    assert program.instructions[0].imm == -5


def test_subi_sugar_negates():
    program = assemble("subi x1, x1, 3\nhalt")
    instr = program.instructions[0]
    assert instr.op is Opcode.ADDI
    assert instr.imm == -3


def test_hex_immediates():
    program = assemble("lui x3, 0x4000\nhalt")
    assert program.instructions[0].imm == 0x4000


def test_load_store_with_offsets():
    program = assemble("ld x1, 8(x2)\nst x3, -16(x4)\nhalt")
    ld, st_ = program.instructions[0], program.instructions[1]
    assert ld.op is Opcode.LD and ld.imm == 8 and ld.rs1 == 2
    assert st_.op is Opcode.ST and st_.imm == -16 and st_.rs2 == 3


@pytest.mark.parametrize("suffix,size", [(".1", 1), (".2", 2), (".4", 4),
                                         (".8", 8)])
def test_sized_loads(suffix, size):
    program = assemble(f"ld{suffix} x1, 0(x2)\nhalt")
    assert program.instructions[0].size == size


def test_bad_size_rejected():
    with pytest.raises(AssemblyError):
        assemble("ld.3 x1, 0(x2)\nhalt")


def test_labels_resolve_forward_and_backward():
    program = assemble(
        """
        start:
            addi x1, x0, 2
        loop:
            subi x1, x1, 1
            bne x1, x0, loop
            jmp end
            nop
        end:
            halt
        """
    )
    bne = program.instructions[2]
    jmp = program.instructions[3]
    assert bne.target == 1
    assert jmp.target == 5


def test_duplicate_label_rejected():
    with pytest.raises(AssemblyError):
        assemble("a:\nnop\na:\nhalt")


def test_unknown_label_rejected():
    with pytest.raises(AssemblyError):
        assemble("jmp nowhere\nhalt")


def test_unknown_mnemonic_rejected():
    with pytest.raises(AssemblyError):
        assemble("frobnicate x1\nhalt")


def test_bad_register_rejected():
    with pytest.raises(AssemblyError):
        assemble("add x1, x2, x99\nhalt")


def test_fp_register_in_int_slot_rejected():
    with pytest.raises(AssemblyError):
        assemble("add x1, f2, x3\nhalt")


def test_fp_ops():
    program = assemble("fadd f1, f2, f3\nfsqrt f4, f5\nfmov f6, f7\nhalt")
    assert program.instructions[0].op is Opcode.FADD
    assert program.instructions[1].op is Opcode.FSQRT
    assert program.instructions[2].op is Opcode.FMOV


def test_conversions():
    program = assemble("fcvt.if f1, x2\nfcvt.fi x3, f4\nhalt")
    assert program.instructions[0].op is Opcode.FCVTIF
    assert program.instructions[1].op is Opcode.FCVTFI


def test_gather_scatter_swap_sc():
    program = assemble(
        """
        ldg x1, x2, (x3), (x4)
        sts x5, (x3), (x4)
        swp x6, x7, (x8)
        sc x9, x10, (x11)
        halt
        """
    )
    ldg, sts, swp, sc = program.instructions[:4]
    assert ldg.op is Opcode.LDG and ldg.rd == 1 and ldg.rd2 == 2
    assert sts.op is Opcode.STS and sts.rs3 == 5
    assert swp.op is Opcode.SWP and swp.rd == 6 and swp.rs2 == 7
    assert sc.op is Opcode.SC and sc.rd == 9


def test_nonrepeatable_instructions():
    program = assemble("rdrand x1\nrdtime x2\nsysrd x3\nhalt")
    assert program.instructions[0].op is Opcode.RDRAND
    assert program.instructions[1].op is Opcode.RDTIME
    assert program.instructions[2].op is Opcode.SYSRD


def test_data_directive_builds_memory_image():
    program = assemble(".data 0x1000 42\n.data 0x1008 7\nhalt")
    assert program.memory_image[0x1000] == 42
    assert program.memory_image[0x1008] == 7


def test_data_directive_bad_arity():
    with pytest.raises(AssemblyError):
        assemble(".data 0x1000\nhalt")


def test_comments_are_ignored():
    program = assemble("# leading comment\nadd x1, x1, x2  # trailing\nhalt")
    assert len(program.instructions) == 2


def test_start_label_sets_entry():
    program = assemble("nop\nstart:\nhalt")
    assert program.entry == 1


def test_jalr():
    program = assemble("jalr x1, x2\nhalt")
    instr = program.instructions[0]
    assert instr.op is Opcode.JALR and instr.rd == 1 and instr.rs1 == 2


def test_branch_out_of_range_target_rejected():
    with pytest.raises(ValueError):
        assemble("jmp 99\nhalt")
