"""Parallel campaign engine: determinism, shards/resume, stats, serve."""

import json

import pytest

from repro.faults.engine import (
    SHARD_GLOB,
    CampaignRunner,
    CampaignSpec,
    TrialRecord,
    load_completed,
    publish_campaign_stats,
    run_campaign,
    run_trial_in_worker,
)
from repro.obs import StatGroup

#: Tiny but non-trivial: enough segments for opportunistic coverage to
#: have holes, small enough for a sub-second trial.
SPEC = CampaignSpec(workload="exchange2", instructions=6000, seed=7,
                    trials=6)


@pytest.fixture(scope="module")
def serial_outcome():
    return run_campaign(SPEC, jobs=1)


class TestDeterminism:
    def test_parallel_matches_serial(self, serial_outcome):
        parallel = run_campaign(SPEC, jobs=4)
        assert parallel.records == serial_outcome.records
        assert parallel.detected == serial_outcome.detected
        assert parallel.masked == serial_outcome.masked
        assert (parallel.mean_detection_latency
                == serial_outcome.mean_detection_latency
                or parallel.detected == 0)

    def test_trial_is_order_independent(self, serial_outcome):
        # A single trial evaluated in isolation must equal its slot in
        # the full campaign — no shared RNG stream to advance.
        lone = TrialRecord.from_json(run_trial_in_worker(SPEC, 3))
        assert lone == serial_outcome.records[3]

    def test_growing_a_campaign_preserves_the_prefix(self, serial_outcome):
        import dataclasses
        bigger = run_campaign(
            dataclasses.replace(SPEC, trials=8), jobs=1)
        assert bigger.records[:6] == serial_outcome.records

    def test_fault_kind_mix_covers_all_sites(self, serial_outcome):
        kinds = {record.kind for record in serial_outcome.records}
        # 6 derived draws over 3 kinds: at least two distinct sites.
        assert len(kinds) >= 2


class TestSpecKey:
    def test_key_ignores_trial_count(self):
        import dataclasses
        assert SPEC.key() == dataclasses.replace(SPEC, trials=500).key()

    def test_key_changes_with_seed(self):
        import dataclasses
        assert SPEC.key() != dataclasses.replace(SPEC, seed=8).key()

    def test_json_round_trip(self):
        assert CampaignSpec.from_json(SPEC.to_json()) == SPEC


class TestShardsAndResume:
    def test_shards_record_every_trial(self, tmp_path, serial_outcome):
        outcome = run_campaign(SPEC, jobs=1, campaign_dir=tmp_path)
        assert outcome.records == serial_outcome.records
        shards = list(tmp_path.glob(SHARD_GLOB))
        assert shards
        completed = load_completed(tmp_path, SPEC)
        assert sorted(completed) == list(range(SPEC.trials))
        assert [completed[t] for t in sorted(completed)] == outcome.records

    def test_resume_skips_completed_trials(self, tmp_path, serial_outcome):
        import dataclasses
        # A campaign killed after 3 trials: the shards hold a prefix.
        partial = dataclasses.replace(SPEC, trials=3)
        run_campaign(partial, jobs=1, campaign_dir=tmp_path)
        resumed = run_campaign(SPEC, jobs=1, campaign_dir=tmp_path,
                               resume=True)
        assert resumed.resumed_trials == 3
        assert resumed.records == serial_outcome.records

    def test_parallel_resume_matches_serial(self, tmp_path, serial_outcome):
        import dataclasses
        partial = dataclasses.replace(SPEC, trials=2)
        run_campaign(partial, jobs=1, campaign_dir=tmp_path)
        resumed = run_campaign(SPEC, jobs=4, campaign_dir=tmp_path,
                               resume=True)
        assert resumed.resumed_trials == 2
        assert resumed.records == serial_outcome.records

    def test_fully_complete_resume_runs_nothing(self, tmp_path,
                                                serial_outcome):
        run_campaign(SPEC, jobs=1, campaign_dir=tmp_path)
        with CampaignRunner(jobs=1, campaign_dir=tmp_path,
                            resume=True) as runner:
            outcome = runner.run(SPEC)
        assert outcome.resumed_trials == SPEC.trials
        assert runner.last_stats["tasks"] == 0
        assert outcome.records == serial_outcome.records

    def test_resume_without_dir_rejected(self):
        with pytest.raises(ValueError):
            CampaignRunner(jobs=1, resume=True).run(SPEC)

    def test_corrupt_and_foreign_lines_skipped(self, tmp_path, caplog):
        good = TrialRecord(trial=0, kind="stuck_at", fault="f",
                           detected=True, masked=False)
        shard = tmp_path / "shard-1.jsonl"
        foreign = json.dumps({"spec": "deadbeef", "trial": 9,
                              "kind": "stuck_at", "fault": "f",
                              "detected": True, "masked": False})
        lines = [
            json.dumps({"spec": SPEC.key(), **good.to_json()}),
            "{not json at all",
            json.dumps({"spec": SPEC.key(), "trial": 1}),  # missing keys
            foreign,
            json.dumps({"spec": SPEC.key(), **good.to_json()})[:-9],
        ]
        shard.write_text("\n".join(lines) + "\n")
        with caplog.at_level("WARNING", logger="repro.faults.engine"):
            completed = load_completed(tmp_path, SPEC)
        assert completed == {0: good}
        assert any("corrupt" in r.getMessage() for r in caplog.records)


class TestStatsPublication:
    def test_faults_tree_leaves(self, serial_outcome):
        stats = StatGroup("root")
        publish_campaign_stats(stats, serial_outcome)
        flat = stats.flatten()
        assert flat["faults.injected"] == SPEC.trials
        assert (flat["faults.detected"] + flat["faults.masked"]
                + flat["faults.missed"] == SPEC.trials)
        assert 0.0 <= flat["faults.detection_rate_all"] <= 1.0
        assert 0.0 <= flat["faults.detection_rate_effective"] <= 1.0
        assert "faults.runtime.elapsed_s" in flat
        per_kind = [k for k in flat if k.startswith("faults.")
                    and k.endswith(".injected") and k.count(".") == 2]
        assert sum(flat[k] for k in per_kind) == SPEC.trials


class TestServeIntegration:
    def test_evaluate_spec_campaign_row(self, serial_outcome):
        from repro.serve.protocol import CampaignRequest
        from repro.serve.workers import evaluate_spec

        request = CampaignRequest(
            workload=SPEC.workload, checkers=SPEC.checkers,
            mode=SPEC.mode, instructions=SPEC.instructions,
            seed=SPEC.seed, trials=SPEC.trials,
            fault_kinds=SPEC.fault_kinds)
        row = evaluate_spec(request.sim_spec())
        assert row["trials"] == SPEC.trials
        assert row["detected"] == serial_outcome.detected
        assert row["masked"] == serial_outcome.masked
        assert row["detection_rate_effective"] == pytest.approx(
            serial_outcome.detection_rate_effective)
        assert row["trace_source"] in ("computed", "memory", "disk")
