"""Evaluation service: deadlines, shedding, retries, end-to-end serving.

The end-to-end tests run the real stack — TCP server, admission queue,
batcher, process pool — on localhost with a tiny instruction budget and
check the acceptance properties: served results are bit-identical to
direct pipeline runs, requests coalesce (unique simulations < requests
served) and the trace cache is hit.
"""

import asyncio
import json
import threading
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor

import pytest

from repro.cli import main
from repro.harness.runner import WorkloadCache
from repro.serve.client import AsyncEvalClient, EvalClient
from repro.serve.protocol import (
    EvalRequest,
    ProtocolError,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    STATUS_TIMEOUT,
)
from repro.serve.service import EvalService
from repro.serve.workers import WorkerPool, evaluate_specs

BUDGET = 4000
SEED = 7


def _req(workload="exchange2", backend="paraverser-full", **kwargs):
    kwargs.setdefault("instructions", BUDGET)
    kwargs.setdefault("seed", SEED)
    return EvalRequest(workload=workload, backend=backend, **kwargs)


# -- fake pools -------------------------------------------------------------

class FakePool:
    """In-process pool stub; evaluates nothing, returns canned rows."""

    def __init__(self, delay_s=0.0, rows=None, fail_times=0):
        self.delay_s = delay_s
        self.rows = rows
        self.fail_times = fail_times
        self.calls = 0
        self.resets = 0

    async def run_group(self, specs):
        self.calls += 1
        if self.fail_times > 0:
            self.fail_times -= 1
            raise BrokenExecutor("worker died")
        if self.delay_s:
            await asyncio.sleep(self.delay_s)
        if self.rows is not None:
            return [dict(self.rows[i % len(self.rows)])
                    for i in range(len(specs))]
        return [{"workload": spec["workload"], "ok": True,
                 "trace_source": "computed"} for spec in specs]

    def reset(self):
        self.resets += 1

    def shutdown(self, wait=True):
        pass


async def _with_service(pool, coro, **kwargs):
    kwargs.setdefault("batch_window_s", 0.01)
    service = EvalService(pool, **kwargs)
    await service.start()
    try:
        return await coro(service)
    finally:
        await service.stop()


class TestServiceBehaviour:
    def test_deadline_expiry_returns_timeout_not_a_hang(self):
        async def scenario(service):
            async with AsyncEvalClient(service.host, service.port) as client:
                return await asyncio.wait_for(
                    client.evaluate(_req(timeout_s=0.15)), timeout=5.0)

        response = asyncio.run(_with_service(FakePool(delay_s=1.0),
                                             scenario))
        assert response.status == STATUS_TIMEOUT
        assert "deadline" in response.error

    def test_saturated_queue_sheds(self):
        async def scenario(service):
            async with AsyncEvalClient(service.host, service.port) as client:
                responses = await asyncio.gather(*[
                    client.evaluate(_req(request_id=f"r{i}",
                                         timeout_s=10.0))
                    for i in range(6)])
            return responses

        # One-deep queue, slow pool, wide batch window: most requests
        # arrive while the queue is still holding the first one.
        responses = asyncio.run(_with_service(
            FakePool(delay_s=0.2), scenario,
            queue_depth=1, batch_window_s=0.3))
        statuses = [r.status for r in responses]
        assert statuses.count(STATUS_SHED) >= 1
        assert statuses.count(STATUS_OK) >= 1
        shed = next(r for r in responses if r.status == STATUS_SHED)
        assert "saturated" in shed.error

    def test_worker_crash_retries_with_backoff(self):
        pool = FakePool(fail_times=1)

        async def scenario(service):
            async with AsyncEvalClient(service.host, service.port) as client:
                return await client.evaluate(_req(timeout_s=10.0))

        response = asyncio.run(_with_service(
            pool, scenario, max_retries=2, retry_backoff_s=0.01))
        assert response.status == STATUS_OK
        assert pool.calls == 2 and pool.resets == 1

    def test_worker_crash_exhausts_retries(self):
        pool = FakePool(fail_times=10)

        async def scenario(service):
            async with AsyncEvalClient(service.host, service.port) as client:
                return await client.evaluate(_req(timeout_s=10.0))

        response = asyncio.run(_with_service(
            pool, scenario, max_retries=1, retry_backoff_s=0.01))
        assert response.status == STATUS_ERROR
        assert "worker pool failed" in response.error
        assert pool.calls == 2

    def test_error_row_maps_to_error_response(self):
        pool = FakePool(rows=[{"error": "ValueError: nope"}])

        async def scenario(service):
            async with AsyncEvalClient(service.host, service.port) as client:
                return await client.evaluate(_req(timeout_s=10.0))

        response = asyncio.run(_with_service(pool, scenario))
        assert response.status == STATUS_ERROR
        assert "ValueError: nope" in response.error

    def test_unknown_names_rejected_at_admission(self):
        pool = FakePool()

        async def scenario(service):
            async with AsyncEvalClient(service.host, service.port) as client:
                bad_workload = await client.evaluate(
                    _req(workload="doom", timeout_s=5.0))
                bad_backend = await client.evaluate(
                    _req(backend="quantum-lockstep", timeout_s=5.0))
            return bad_workload, bad_backend

        bad_workload, bad_backend = asyncio.run(
            _with_service(pool, scenario))
        assert bad_workload.status == STATUS_ERROR
        assert "unknown workload" in bad_workload.error
        assert bad_backend.status == STATUS_ERROR
        assert "quantum-lockstep" in bad_backend.error
        assert pool.calls == 0  # nothing reached the pool


# -- end-to-end over localhost ---------------------------------------------

class ServiceThread:
    """Runs the real service in a daemon thread for sync-client tests."""

    def __init__(self, trace_dir, workers=2, **kwargs):
        self.trace_dir = trace_dir
        self.workers = workers
        self.kwargs = kwargs
        self.host = None
        self.port = None
        self.service = None
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        pool = WorkerPool(workers=self.workers, trace_dir=self.trace_dir)
        self.service = EvalService(pool, **self.kwargs)
        self.host, self.port = await self.service.start()
        self._ready.set()
        await self._stop.wait()
        await self.service.stop()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=30), "service did not start"
        return self

    def __exit__(self, *exc):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)


@pytest.fixture(scope="module")
def live_service(tmp_path_factory):
    trace_dir = tmp_path_factory.mktemp("serve-trace-cache")
    with ServiceThread(str(trace_dir), workers=2,
                       batch_window_s=0.4) as running:
        yield running


def _direct_row(backend_name, workload):
    """The reference result: a direct in-process pipeline evaluation."""
    from repro.detect import get_backend

    cache = WorkloadCache(max_instructions=BUDGET, seed=SEED,
                          trace_cache=None)
    report = get_backend(backend_name).evaluate(cache, workload)
    return {
        "backend": report.backend,
        "workload": report.benchmark,
        "slowdown_percent": report.slowdown_percent,
        "coverage": report.coverage,
        "energy_overhead_percent": report.energy_overhead_percent,
        "area_overhead_percent": report.area_overhead_percent,
        "segments": report.segments,
        "verified_clean": report.verified_clean,
    }


class TestEndToEnd:
    def test_eight_concurrent_clients_bit_identical_and_coalesced(
            self, live_service):
        pairs = [("exchange2", "paraverser-full"),
                 ("mcf", "paraverser-full"),
                 ("exchange2", "dual-lockstep"),
                 ("mcf", "dual-lockstep")] * 2  # 8 requests, 4 unique

        def one_client(index):
            workload, backend = pairs[index]
            with EvalClient(live_service.host, live_service.port) as client:
                return client.evaluate(
                    _req(workload=workload, backend=backend,
                         request_id=f"client-{index}", timeout_s=300.0))

        with ThreadPoolExecutor(max_workers=8) as executor:
            responses = list(executor.map(one_client, range(8)))

        assert all(r.status == STATUS_OK for r in responses)
        # Bit-identical to direct pipeline runs, duplicate included.
        for (workload, backend), response in zip(pairs, responses):
            expected = _direct_row(backend, workload)
            got = {key: response.result[key] for key in expected}
            assert got == expected, (workload, backend)

        with EvalClient(live_service.host, live_service.port) as client:
            serve = client.stats()["serve"]
        assert serve["requests_served"] >= 8
        assert serve["unique_simulations"] < serve["requests_served"]
        assert serve["trace"]["hits"] > 0
        assert serve["batch_requests"]["max"] >= 2

    def test_second_wave_hits_persistent_trace_cache(self, live_service):
        # The module-scoped service already computed this trace; a new
        # request must find it in a worker's memory or on disk, never
        # recompute-and-diverge.
        with EvalClient(live_service.host, live_service.port) as client:
            response = client.evaluate(
                _req(workload="exchange2", backend="paraverser-sampling",
                     timeout_s=300.0))
        assert response.status == STATUS_OK
        assert response.result["trace_source"] in ("memory", "disk")

    def test_checkers_spec_request(self, live_service):
        with EvalClient(live_service.host, live_service.port) as client:
            response = client.evaluate(EvalRequest(
                workload="exchange2", checkers="2xA510@2.0",
                mode="opportunistic", instructions=BUDGET, seed=SEED,
                timeout_s=300.0))
        assert response.status == STATUS_OK
        row = response.result
        assert row["config_label"]
        assert 0.0 <= row["coverage"] <= 1.0
        assert row["verified_clean"] is True

    def test_ping_and_stats_ops(self, live_service):
        client = EvalClient(live_service.host, live_service.port)
        with client:
            assert client.ping()
            tree = client.stats()
        assert "serve" in tree
        assert "queue" in tree["serve"]

    def test_stats_since_streams_epochs(self, live_service):
        with EvalClient(live_service.host, live_service.port) as client:
            first = client.stats(since=0)
            assert set(first) == {"epoch", "stats", "delta"}
            assert first["epoch"] >= 1
            assert "serve" in first["stats"]
            # Each epoch-view query publishes a fresh snapshot, so the
            # stream always advances and deltas never repeat.
            second = client.stats(since=first["epoch"])
            assert second["epoch"] > first["epoch"]
            assert isinstance(second["delta"], dict)
            # A plain call keeps the legacy bare-tree shape.
            bare = client.stats()
            assert "serve" in bare and "epoch" not in bare

    def test_stats_since_rejects_bad_cursor(self, live_service):
        with EvalClient(live_service.host, live_service.port) as client:
            with pytest.raises(ProtocolError, match="since"):
                client.stats(since=-1)

    def test_cli_eval_round_trip(self, live_service, capsys):
        code = main(["eval", "-w", "exchange2",
                     "--backend", "paraverser-full",
                     "-n", str(BUDGET), "--seed", str(SEED),
                     "--host", live_service.host,
                     "--port", str(live_service.port),
                     "--timeout", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "slowdown:" in out and "coverage:" in out
        assert "paraverser-full" in out

    def test_cli_eval_json_output(self, live_service, capsys):
        code = main(["eval", "-w", "exchange2",
                     "--backend", "dual-lockstep",
                     "-n", str(BUDGET), "--seed", str(SEED),
                     "--host", live_service.host,
                     "--port", str(live_service.port),
                     "--timeout", "300", "--json"])
        assert code == 0
        row = json.loads(capsys.readouterr().out)
        assert row["backend"] == "dual-lockstep"
        assert row["workload"] == "exchange2"

    def test_cli_eval_unreachable_server(self, capsys):
        code = main(["eval", "-w", "exchange2",
                     "--backend", "paraverser-full",
                     "--port", "1"])  # nothing listens on port 1
        assert code == 2
        assert "cannot reach" in capsys.readouterr().err


class TestWorkerEntryPoints:
    def test_evaluate_specs_row_error_isolation(self):
        good = _req().sim_spec()
        bad = _req(workload="doom").sim_spec()
        rows = evaluate_specs([bad, good])
        assert set(rows[0]) == {"error"}
        assert "doom" in rows[0]["error"]
        assert rows[1]["workload"] == "exchange2"
        assert rows[1]["trace_source"] in ("computed", "memory", "disk")

    def test_fault_injection_spec(self):
        spec = _req(backend=None, checkers="1xA510@1.0",
                    fault_trials=3).sim_spec()
        spec["mode"] = "opportunistic"
        row = evaluate_specs([spec])[0]
        assert row["injection"]["injected"] == 3
        assert (row["injection"]["detected"]
                + row["injection"]["masked"] <= 3)
