"""Tests for eager checker waking and the checker allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.core.allocator import CheckerAllocator, CheckerSlot
from repro.core.eager import (
    eager_finish_time,
    lazy_finish_time,
    line_arrival_times,
    segment_finish_time,
)
from repro.cpu.config import CoreInstance
from repro.cpu.presets import A510, X2


class TestEagerWaking:
    def test_line_arrivals_spread_across_segment(self):
        arrivals = line_arrival_times(0.0, 100.0, 4)
        assert arrivals == [25.0, 50.0, 75.0, 100.0]

    def test_noc_latency_shifts_arrivals(self):
        arrivals = line_arrival_times(0.0, 100.0, 2, noc_latency_ns=5.0)
        assert arrivals == [55.0, 105.0]

    def test_zero_lines(self):
        assert line_arrival_times(0.0, 100.0, 0) == []

    def test_fast_checker_bound_by_arrivals(self):
        # A checker faster than the producer finishes just after the last
        # push, not earlier.
        arrivals = line_arrival_times(0.0, 100.0, 10)
        finish = eager_finish_time(0.0, arrivals, service_per_line_ns=1.0)
        assert finish == pytest.approx(101.0)

    def test_slow_checker_bound_by_service(self):
        arrivals = line_arrival_times(0.0, 100.0, 10)
        finish = eager_finish_time(0.0, arrivals, service_per_line_ns=20.0)
        assert finish == pytest.approx(10.0 + 10 * 20.0)

    def test_eager_beats_lazy(self):
        arrivals = line_arrival_times(0.0, 100.0, 10)
        eager = eager_finish_time(0.0, arrivals, 5.0)
        lazy = lazy_finish_time(0.0, 100.0, 50.0)
        assert eager < lazy

    def test_lazy_waits_for_segment_end(self):
        assert lazy_finish_time(0.0, 100.0, 30.0) == 130.0
        assert lazy_finish_time(150.0, 100.0, 30.0) == 180.0

    def test_segment_finish_time_eager_vs_lazy(self):
        eager = segment_finish_time(0.0, 0.0, 100.0, 50.0, lines=10,
                                    eager=True)
        lazy = segment_finish_time(0.0, 0.0, 100.0, 50.0, lines=10,
                                   eager=False)
        assert eager < lazy

    def test_busy_checker_delays_start(self):
        free_late = segment_finish_time(500.0, 0.0, 100.0, 50.0, lines=10,
                                        eager=True)
        free_early = segment_finish_time(0.0, 0.0, 100.0, 50.0, lines=10,
                                         eager=True)
        assert free_late > free_early

    @given(
        st.floats(min_value=0, max_value=1e3),
        st.floats(min_value=1, max_value=1e3),
        st.floats(min_value=0.1, max_value=100),
        st.integers(min_value=1, max_value=50),
    )
    def test_finish_after_last_arrival_property(self, start, duration,
                                                service, lines):
        arrivals = line_arrival_times(start, start + duration, lines)
        finish = eager_finish_time(start, arrivals, service)
        assert finish >= arrivals[-1]          # cannot outrun the producer
        assert finish >= start + lines * service  # nor its own service


def slot(freq=2.0, position=0, config=A510):
    return CheckerSlot(
        instance=CoreInstance(config, freq),
        lsl_capacity_bytes=32 * 1024,
        position=position,
    )


class TestAllocator:
    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            CheckerAllocator([])

    def test_full_mode_prefers_idle(self):
        slots = [slot(position=0), slot(position=1)]
        allocator = CheckerAllocator(slots)
        first = allocator.acquire_full(0.0)
        assert first.stalled_ns == 0.0
        first.slot.assign(0.0, 100.0, 10)
        second = allocator.acquire_full(0.0)
        assert second.slot is not first.slot

    def test_full_mode_stalls_when_all_busy(self):
        slots = [slot(position=0), slot(position=1)]
        allocator = CheckerAllocator(slots)
        for s in slots:
            s.free_at_ns = 100.0
        allocation = allocator.acquire_full(40.0)
        assert allocation.stalled_ns == pytest.approx(60.0)
        assert allocation.start_ns == pytest.approx(100.0)

    def test_full_mode_picks_earliest_free(self):
        slots = [slot(position=0), slot(position=1)]
        slots[0].free_at_ns = 200.0
        slots[1].free_at_ns = 120.0
        allocation = CheckerAllocator(slots).acquire_full(50.0)
        assert allocation.slot.position == 1

    def test_opportunistic_returns_none_when_busy(self):
        slots = [slot()]
        slots[0].free_at_ns = 10.0
        allocator = CheckerAllocator(slots)
        assert allocator.acquire_opportunistic(5.0) is None
        assert allocator.acquire_opportunistic(10.0) is not None

    def test_little_cores_preferred_over_big(self):
        mixed = [slot(config=X2, freq=3.0, position=0),
                 slot(config=A510, freq=2.0, position=1)]
        allocator = CheckerAllocator(mixed)
        allocation = allocator.acquire_full(0.0)
        assert allocation.slot.instance.config.name == "A510"

    def test_assignment_accounting(self):
        s = slot()
        s.assign(10.0, 60.0, instructions=500)
        assert s.free_at_ns == 60.0
        assert s.busy_ns == 50.0
        assert s.segments_checked == 1
        assert s.instructions_checked == 500

    def test_totals(self):
        slots = [slot(position=0), slot(position=1)]
        allocator = CheckerAllocator(slots)
        slots[0].assign(0.0, 30.0, 100)
        slots[1].assign(0.0, 20.0, 50)
        assert allocator.total_busy_ns == 50.0
        assert allocator.total_instructions_checked == 150
