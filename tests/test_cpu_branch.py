"""Tests for the tournament branch predictor."""

import random

from repro.cpu.branch import BranchPredictor


def test_learns_always_taken_branch():
    predictor = BranchPredictor(8)
    results = [predictor.predict_conditional(0x40, True) for _ in range(50)]
    assert all(results[2:])  # 2-bit counters train within two outcomes


def test_learns_never_taken_branch():
    predictor = BranchPredictor(8)
    results = [predictor.predict_conditional(0x40, False) for _ in range(50)]
    assert sum(results[4:]) == len(results[4:])


def test_random_branch_mispredicts_about_half():
    predictor = BranchPredictor(8)
    rng = random.Random(1)
    for _ in range(4000):
        predictor.predict_conditional(0x80, rng.random() < 0.5)
    assert 0.35 < predictor.misprediction_rate < 0.65


def test_biased_branches_survive_random_neighbours():
    """A strongly biased branch must stay predictable even when another
    branch injects random outcomes into the global history (the chooser
    should fall back to bimodal)."""
    predictor = BranchPredictor(8)
    rng = random.Random(2)
    correct = 0
    total = 0
    for i in range(4000):
        predictor.predict_conditional(0x100, rng.random() < 0.5)  # noise
        outcome = predictor.predict_conditional(0x200, True)      # biased
        if i > 500:
            total += 1
            correct += outcome
    assert correct / total > 0.95


def test_alternating_pattern_learned_via_history():
    predictor = BranchPredictor(64)
    outcomes = [bool(i % 2) for i in range(3000)]
    correct = 0
    for i, taken in enumerate(outcomes):
        result = predictor.predict_conditional(0x300, taken)
        if i > 1000:
            correct += result
    assert correct / (len(outcomes) - 1001) > 0.9


def test_indirect_predictor_learns_stable_target():
    predictor = BranchPredictor(8)
    results = [predictor.predict_indirect(0x10, 77) for _ in range(10)]
    assert results[0] is False
    assert all(results[1:])


def test_indirect_predictor_tracks_target_changes():
    predictor = BranchPredictor(8)
    predictor.predict_indirect(0x10, 1)
    assert predictor.predict_indirect(0x10, 2) is False
    assert predictor.predict_indirect(0x10, 2) is True


def test_misprediction_rate_empty():
    assert BranchPredictor(8).misprediction_rate == 0.0


def test_storage_budget_scales_tables():
    small = BranchPredictor(2)
    large = BranchPredictor(64)
    assert len(large._bimodal) > len(small._bimodal)


def test_distinct_pcs_do_not_destructively_interfere():
    predictor = BranchPredictor(64)
    correct = 0
    total = 0
    for i in range(2000):
        for pc, taken in ((0x1000, True), (0x2000, False), (0x3000, True)):
            outcome = predictor.predict_conditional(pc, taken)
            if i > 50:
                total += 1
                correct += outcome
    assert correct / total > 0.98
