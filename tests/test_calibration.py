"""Calibration regression guard.

The reproduction's figures depend on the *relative* performance
characteristics of the synthetic workloads staying put: bwaves must stay
fdiv-bound, mcf memory-latency-bound, exchange2 cache-resident, the
checker/main ratios must stay in the regimes that produce the paper's
crossovers.  These tests pin those bands so a profile or timing-model
tweak that silently breaks a figure fails here first, with a message
naming the benchmark.
"""

import pytest

from repro.core.system import ParaVerserConfig, ParaVerserSystem
from repro.cpu.config import CoreInstance
from repro.cpu.presets import A510, X2
from repro.cpu.timing import TimingModel
from repro.workloads.generator import build_program
from repro.workloads.profiles import get_profile

INSTRUCTIONS = 12_000

#: Plausible X2 IPC bands per benchmark (wide on purpose: these guard
#: regimes, not exact values).
IPC_BANDS = {
    # fp / streaming
    "bwaves": (0.7, 2.2),
    "lbm": (1.0, 2.8),
    "fotonik3d": (1.2, 3.2),
    "imagick": (2.0, 4.2),
    # icache / branch heavy int
    "gcc": (0.15, 1.2),
    "perlbench": (0.4, 2.0),
    "deepsjeng": (0.7, 2.5),
    # memory bound
    "mcf": (0.05, 0.6),
    "omnetpp": (0.1, 0.9),
    # cache resident int
    "exchange2": (1.0, 3.0),
    "leela": (0.8, 2.6),
    # GAP
    "bfs": (0.05, 0.6),
    "pr": (0.1, 0.8),
}

_cache: dict[str, tuple] = {}


def measured(name: str):
    if name not in _cache:
        program = build_program(get_profile(name), seed=7)
        config = ParaVerserConfig(
            main=CoreInstance(X2, 3.0),
            checkers=[CoreInstance(A510, 2.0)],
            seed=7,
        )
        system = ParaVerserSystem(config)
        run = system.execute(program, INSTRUCTIONS)
        main = system._main_timing(run, None, 0.0)
        checker = TimingModel(CoreInstance(A510, 2.0), system._uncore(0.0),
                              checker_mode=True)
        checker.warm_code(program)
        checker_t = checker.simulate(program, run.trace)
        _cache[name] = (main, checker_t)
    return _cache[name]


@pytest.mark.parametrize("name", sorted(IPC_BANDS))
def test_main_core_ipc_band(name):
    main, _ = measured(name)
    low, high = IPC_BANDS[name]
    assert low <= main.ipc <= high, \
        f"{name}: X2 IPC {main.ipc:.2f} outside calibrated band {IPC_BANDS[name]}"


def ratio(name: str) -> float:
    main, checker = measured(name)
    return checker.time_ns / main.time_ns


def test_bwaves_needs_more_than_four_a510s():
    # The Fig. 6 worst case: one A510 at 2 GHz must be > 4x slower than
    # the main core, so even four stall it.
    assert ratio("bwaves") > 4.0


def test_imagick_is_the_second_hard_case():
    assert ratio("imagick") > 3.0


def test_memory_bound_codes_check_for_free():
    # Fig. 9's premise: LSL$-fed checkers fly past memory-bound mains.
    for name in ("mcf", "bfs", "pr"):
        assert ratio(name) < 1.0, (name, ratio(name))


def test_cache_resident_int_fits_two_checkers():
    assert ratio("exchange2") < 2.0


def test_checker_ratio_ordering_matches_paper_story():
    # fdiv-heavy > compute-dense > branchy-int > memory-bound.
    assert ratio("bwaves") > ratio("exchange2") > ratio("mcf")


def test_mcf_memory_latency_bound():
    main, _ = measured("mcf")
    # Most cycles come from data misses: DRAM accesses are plentiful.
    assert main.dram_accesses > INSTRUCTIONS * 0.01


def test_gcc_touches_the_icache_hierarchy():
    program = build_program(get_profile("gcc"), seed=7)
    assert program.static_code_bytes > 64 * 1024  # exceeds the X2 L1I
