"""Smoke tests for the per-figure experiment runners (tiny scale)."""

import pytest

from repro.harness.experiments import (
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9_gap,
    run_fig10,
    run_fig11,
    run_sec7e_energy,
    run_sec7f,
)
from repro.harness.runner import WorkloadCache

TINY = ["exchange2", "xz"]


@pytest.fixture(scope="module")
def cache():
    return WorkloadCache(max_instructions=10_000)


def test_fig6_runner(cache):
    table = run_fig6(cache, benchmarks=TINY, include_ed2p=False)
    assert set(table.rows) == set(TINY)
    assert "1xX2@3GHz" in table.columns
    assert "DSN18(12ded)" in table.columns
    rendered = table.render()
    assert "geomean" in rendered


def test_fig7_runner(cache):
    result = run_fig7(cache, benchmarks=["exchange2"])
    assert "exchange2" in result.slowdown.rows
    coverage = result.coverage.rows["exchange2"]
    for value in coverage.values():
        assert 0.0 <= value <= 100.0


def test_fig8_runner(cache):
    result = run_fig8(cache, benchmarks=["exchange2"], trials=4)
    assert result.injected == 4 * 3  # trials x configurations
    for value in result.coverage.rows["exchange2"].values():
        assert 0.0 <= value <= 100.0


def test_fig9_gap_runner():
    table = run_fig9_gap(benchmarks=["bfs"], checker_counts=(1, 2))
    assert "bfs" in table.rows
    assert set(table.rows["bfs"]) == {"1xA510", "2xA510"}


def test_fig10_runner(monkeypatch):
    monkeypatch.setenv("REPRO_INSTRUCTIONS", "8000")
    table = run_fig10(mixes={"mini": ["exchange2", "xz", "leela", "x264"]})
    assert "mini" in table.rows
    assert any("no LSL NoC" in column for column in table.columns)


def test_fig11_runner(cache):
    table = run_fig11(cache, benchmarks=["exchange2"])
    cells = table.rows["exchange2"]
    assert set(cells) == {"slowNoC", "slowNoC+hash", "fastNoC"}


def test_sec7e_runner(cache):
    result = run_sec7e_energy(cache, benchmarks=["exchange2"])
    cells = result.energy.rows["exchange2"]
    assert cells["1xX2@3GHz (lockstep-like)"] > \
        cells["4xA510@2GHz"]
    assert result.ed2p_energy_percent > 0


def test_sec7f_runner(monkeypatch):
    monkeypatch.setenv("REPRO_INSTRUCTIONS", "8000")
    rows = run_sec7f(benchmarks=["cc"], little_count=2)
    assert rows[0].workload == "cc"
    assert rows[0].hetero_speedup > 1.0
