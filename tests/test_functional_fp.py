"""Floating-point semantics of the functional executor."""

import math

from hypothesis import given, strategies as st

from repro.cpu.functional import DirectMemoryPort, FunctionalCore, to_signed
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.mem.memory import Memory


def run_fp(*instructions, ints=None, fps=None):
    instrs = list(instructions) + [Instruction(Opcode.HALT)]
    program = Program("t", instrs)
    program.validate()
    core = FunctionalCore(program, DirectMemoryPort(Memory()))
    for idx, value in (ints or {}).items():
        core.regs.write_int(idx, value)
    for idx, value in (fps or {}).items():
        core.regs.write_fp(idx, value)
    core.run(1000)
    return core


def test_fadd_fsub_fmul():
    core = run_fp(
        Instruction(Opcode.FADD, rd=3, rs1=1, rs2=2),
        Instruction(Opcode.FSUB, rd=4, rs1=1, rs2=2),
        Instruction(Opcode.FMUL, rd=5, rs1=1, rs2=2),
        fps={1: 6.0, 2: 1.5},
    )
    assert core.regs.read_fp(3) == 7.5
    assert core.regs.read_fp(4) == 4.5
    assert core.regs.read_fp(5) == 9.0


def test_fdiv():
    core = run_fp(Instruction(Opcode.FDIV, rd=3, rs1=1, rs2=2),
                  fps={1: 7.0, 2: 2.0})
    assert core.regs.read_fp(3) == 3.5


def test_fdiv_by_zero_gives_signed_infinity():
    pos = run_fp(Instruction(Opcode.FDIV, rd=3, rs1=1, rs2=2),
                 fps={1: 1.0, 2: 0.0})
    neg = run_fp(Instruction(Opcode.FDIV, rd=3, rs1=1, rs2=2),
                 fps={1: -1.0, 2: 0.0})
    assert pos.regs.read_fp(3) == math.inf
    assert neg.regs.read_fp(3) == -math.inf


def test_zero_over_zero_is_nan():
    core = run_fp(Instruction(Opcode.FDIV, rd=3, rs1=1, rs2=2),
                  fps={1: 0.0, 2: 0.0})
    assert math.isnan(core.regs.read_fp(3))


def test_fsqrt():
    core = run_fp(Instruction(Opcode.FSQRT, rd=3, rs1=1), fps={1: 9.0})
    assert core.regs.read_fp(3) == 3.0


def test_fsqrt_negative_is_nan():
    core = run_fp(Instruction(Opcode.FSQRT, rd=3, rs1=1), fps={1: -4.0})
    assert math.isnan(core.regs.read_fp(3))


def test_fmin_fmax():
    core = run_fp(
        Instruction(Opcode.FMIN, rd=3, rs1=1, rs2=2),
        Instruction(Opcode.FMAX, rd=4, rs1=1, rs2=2),
        fps={1: -2.0, 2: 5.0},
    )
    assert core.regs.read_fp(3) == -2.0
    assert core.regs.read_fp(4) == 5.0


def test_fmov():
    core = run_fp(Instruction(Opcode.FMOV, rd=3, rs1=1), fps={1: 1.25})
    assert core.regs.read_fp(3) == 1.25


def test_fcvt_if_signed():
    core = run_fp(Instruction(Opcode.FCVTIF, rd=3, rs1=1),
                  ints={1: (-5) & ((1 << 64) - 1)})
    assert core.regs.read_fp(3) == -5.0


def test_fcvt_fi_truncates():
    core = run_fp(Instruction(Opcode.FCVTFI, rd=3, rs1=1), fps={1: 2.9})
    assert core.regs.read_int(3) == 2


def test_fcvt_fi_nan_gives_zero():
    core = run_fp(Instruction(Opcode.FCVTFI, rd=3, rs1=1), fps={1: math.nan})
    assert core.regs.read_int(3) == 0


def test_fcvt_fi_clamps_infinity():
    core = run_fp(Instruction(Opcode.FCVTFI, rd=3, rs1=1), fps={1: math.inf})
    assert to_signed(core.regs.read_int(3)) == (1 << 63) - 1
    core = run_fp(Instruction(Opcode.FCVTFI, rd=3, rs1=1), fps={1: -math.inf})
    assert to_signed(core.regs.read_int(3)) == -(1 << 63)


@given(st.floats(allow_nan=False, allow_infinity=False, width=64),
       st.floats(allow_nan=False, allow_infinity=False, width=64))
def test_fadd_matches_python(a, b):
    core = run_fp(Instruction(Opcode.FADD, rd=3, rs1=1, rs2=2),
                  fps={1: a, 2: b})
    expected = a + b
    got = core.regs.read_fp(3)
    assert got == expected or (math.isnan(got) and math.isnan(expected))


@given(st.floats(min_value=0.0, allow_nan=False, allow_infinity=False))
def test_fsqrt_matches_python(a):
    core = run_fp(Instruction(Opcode.FSQRT, rd=3, rs1=1), fps={1: a})
    assert core.regs.read_fp(3) == a ** 0.5
