"""Router end-to-end: real spawned serve backends, real simulations.

Three ``paraverser serve`` subprocesses behind one RouterService; the
acceptance properties from the issue are checked directly: routed
results are bit-identical to a single backend answering the same
request, for evals and campaigns, including when one backend is
SIGKILLed mid-campaign (the chaos leg — its windows re-dispatch and
the merged row must not change).
"""

import asyncio
import threading

import pytest

from repro.router.backends import BackendManager
from repro.router.service import RUNTIME_ROW_KEYS, RouterService
from repro.serve.client import EvalClient, RouterClient
from repro.serve.protocol import (
    CampaignRequest,
    EvalRequest,
    STATUS_OK,
)

BUDGET = 4000
SEED = 7
TIMEOUT = 300.0


def _eval_req(workload="exchange2", **kwargs):
    kwargs.setdefault("backend", "paraverser-full")
    kwargs.setdefault("instructions", BUDGET)
    kwargs.setdefault("seed", SEED)
    kwargs.setdefault("timeout_s", TIMEOUT)
    return EvalRequest(workload=workload, **kwargs)


def _campaign_req(workload="exchange2", trials=9, **kwargs):
    kwargs.setdefault("instructions", BUDGET)
    kwargs.setdefault("seed", SEED)
    kwargs.setdefault("timeout_s", TIMEOUT)
    return CampaignRequest(workload=workload, trials=trials, **kwargs)


def _sim_row(row):
    return {k: v for k, v in row.items() if k not in RUNTIME_ROW_KEYS}


class RouterThread:
    """Runs the router in a daemon thread for sync-client tests."""

    def __init__(self, manager):
        self.manager = manager
        self.host = None
        self.port = None
        self.service = None
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        # A fast health loop: a SIGKILLed serve parent leaves its
        # sockets open through forked worker fds, so link EOF never
        # fires — mark-down-on-timeout is what detects the death and
        # re-dispatches the in-flight windows.
        self.service = RouterService(self.manager, health_interval_s=0.5,
                                     health_timeout_s=0.5)
        self.host, self.port = await self.service.start()
        self._ready.set()
        await self._stop.wait()
        await self.service.stop()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=30), "router did not start"
        return self

    def __exit__(self, *exc):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)

    def counter(self, name):
        return self.service._stats.counter(name).value


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    trace_dir = tmp_path_factory.mktemp("router-trace-cache")
    manager = BackendManager()
    manager.spawn_local(3, workers=1, trace_dir=str(trace_dir),
                        batch_window_ms=20.0)
    try:
        with RouterThread(manager) as router:
            yield router
    finally:
        manager.stop_processes()


def _backend_client(stack, name):
    backend = stack.manager.backends[name]
    return EvalClient(backend.host, backend.port)


class TestBitIdentity:
    def test_routed_eval_equals_single_backend(self, stack):
        request = _eval_req()
        with EvalClient(stack.host, stack.port) as client:
            routed = client.evaluate(request)
        assert routed.status == STATUS_OK
        with _backend_client(stack, "shard0") as direct_client:
            direct = direct_client.evaluate(request)
        assert direct.status == STATUS_OK
        for row in (routed.result, direct.result):
            for key in RUNTIME_ROW_KEYS + ("trace_source",):
                row.pop(key, None)
        assert routed.result == direct.result

    def test_routed_campaign_equals_single_backend(self, stack):
        request = _campaign_req()
        with EvalClient(stack.host, stack.port) as client:
            routed = client.campaign(request)
        assert routed.status == STATUS_OK
        with _backend_client(stack, "shard1") as direct_client:
            direct = direct_client.campaign(request)
        assert direct.status == STATUS_OK
        assert _sim_row(routed.result) == _sim_row(direct.result)
        # The fan-out really happened: trials were split across shards.
        stats = stack.service.stats_root.to_dict()
        assert stats["router"]["campaign"]["trials_forwarded"] \
            == request.trials

    def test_router_client_follows_the_ring(self, stack):
        request = _eval_req(workload="mcf")
        with RouterClient(stack.host, stack.port) as rc:
            via_ring = rc.evaluate(request)
            names = rc._ring.nodes
        assert via_ring.status == STATUS_OK
        assert names == ["shard0", "shard1", "shard2"]
        with _backend_client(stack, "shard2") as direct_client:
            direct = direct_client.evaluate(request)
        for row in (via_ring.result, direct.result):
            for key in RUNTIME_ROW_KEYS + ("trace_source",):
                row.pop(key, None)
        assert via_ring.result == direct.result


class TestChaos:
    def test_sigkill_mid_campaign_preserves_the_row(self, stack):
        """Kill one backend while its campaign window is in flight:
        every trial must still complete, bit-identically."""
        request = _campaign_req(workload="xz", trials=9)
        victim_name = stack.service.ring.preference(
            request.trace_key())[0]
        victim = stack.manager.backends[victim_name]

        result = {}

        def send():
            with EvalClient(stack.host, stack.port) as client:
                result["response"] = client.campaign(request)

        sender = threading.Thread(target=send)
        sender.start()
        # The windows are dispatched immediately; the first trial needs
        # a trace build, so the kill lands while they are in flight.
        sender.join(timeout=0.5)
        assert sender.is_alive(), "campaign finished before the kill"
        victim.process.kill()
        victim.process.wait()
        sender.join(timeout=TIMEOUT)
        assert not sender.is_alive()

        response = result["response"]
        assert response.status == STATUS_OK
        assert response.result["trials"] == 9
        assert stack.counter("re_dispatches") >= 1
        assert stack.counter("mark_downs") >= 1
        assert not stack.manager.backends[victim_name].healthy

        # Reference from a survivor: the merged chaos row is the
        # single-backend row, exactly.
        survivor = next(n for n in stack.manager.names
                        if n != victim_name)
        with _backend_client(stack, survivor) as direct_client:
            direct = direct_client.campaign(request)
        assert direct.status == STATUS_OK
        assert _sim_row(response.result) == _sim_row(direct.result)

    def test_surviving_shards_keep_serving(self, stack):
        with EvalClient(stack.host, stack.port) as client:
            response = client.evaluate(_eval_req(workload="xz"))
            stats = client.stats()
        assert response.status == STATUS_OK
        shard_stats = stats["router"]["shards"]
        assert sum(s["healthy"] for s in shard_stats.values()) == 2
