"""Tests for the trace-driven timing model."""

import pytest

from repro.cpu.config import CoreInstance
from repro.cpu.functional import DirectMemoryPort, FunctionalCore
from repro.cpu.presets import A35, A510, X2
from repro.cpu.timing import TimingModel
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.mem.memory import Memory


def run_trace(instructions, max_instructions=20_000, image=None, ints=None):
    program = Program("t", list(instructions), memory_image=image or {})
    program.validate()
    core = FunctionalCore(program, DirectMemoryPort(Memory(image or {})))
    for idx, value in (ints or {}).items():
        core.regs.write_int(idx, value)
    result = core.run(max_instructions)
    return program, result


def loop_body(*body):
    """Wrap instructions into a counted loop for steady-state measurement."""
    instrs = [Instruction(Opcode.LUI, rd=1, imm=100_000)]
    instrs.extend(body)
    instrs.append(Instruction(Opcode.ADDI, rd=1, rs1=1, imm=-1))
    instrs.append(Instruction(Opcode.BNE, rs1=1, rs2=0, target=1))
    instrs.append(Instruction(Opcode.HALT))
    return instrs


def simulate(program, trace, instance=None, warm=False, **kw):
    model = TimingModel(instance or CoreInstance(X2, 3.0), **kw)
    if warm:
        model.warm_code(program)
    return model.simulate(program, trace)


def test_independent_adds_bound_by_alu_count():
    body = [Instruction(Opcode.ADD, rd=6 + (i % 8), rs1=20, rs2=21)
            for i in range(16)]
    program, result = run_trace(loop_body(*body), 10_000)
    timing = simulate(program, result.trace)
    # X2 has 4 INT_ALU units; adds dominate the loop.
    assert 2.5 < timing.ipc <= 5.0


def test_dependency_chain_bound_by_latency():
    # A chain of dependent adds can commit at most one per cycle.
    body = [Instruction(Opcode.ADD, rd=6, rs1=6, rs2=21) for _ in range(16)]
    program, result = run_trace(loop_body(*body), 10_000)
    timing = simulate(program, result.trace)
    assert timing.ipc <= 1.25


def test_fdiv_throughput_bound():
    # FP divides are unpipelined: X2 has 2 units at interval 11.
    body = [Instruction(Opcode.FDIV, rd=i % 4, rs1=4, rs2=5)
            for i in range(8)]
    program, result = run_trace(loop_body(*body), 10_000)
    timing = simulate(program, result.trace)
    interval = X2.fus[Instruction(Opcode.FDIV).spec.fu].interval
    units = X2.fus[Instruction(Opcode.FDIV).spec.fu].units
    # Steady state: 8 divides per iteration at interval/units cycles each.
    cycles_per_iter = timing.cycles / (len(result.trace) / 11)
    assert cycles_per_iter >= 8 * interval / units * 0.8


def test_a510_fdiv_much_slower_than_x2():
    body = [Instruction(Opcode.FDIV, rd=i % 4, rs1=4, rs2=5)
            for i in range(8)]
    program, result = run_trace(loop_body(*body), 10_000)
    x2_time = simulate(program, result.trace,
                       CoreInstance(X2, 3.0)).time_ns
    a510_time = simulate(program, result.trace,
                         CoreInstance(A510, 2.0)).time_ns
    # 1 unpipelined divider at interval 20 vs 2 at interval 11, plus clock.
    assert a510_time > 3 * x2_time


def test_frequency_scales_time_not_cycles():
    body = [Instruction(Opcode.ADD, rd=6, rs1=6, rs2=21)]
    program, result = run_trace(loop_body(*body), 5_000)
    fast = simulate(program, result.trace, CoreInstance(X2, 3.0),
                    warm=True, checker_mode=True)
    slow = simulate(program, result.trace, CoreInstance(X2, 1.5),
                    warm=True, checker_mode=True)
    assert slow.cycles == pytest.approx(fast.cycles, rel=0.01)
    assert slow.time_ns == pytest.approx(2 * fast.time_ns, rel=0.01)


def test_checker_mode_ignores_data_cache():
    # Loads over a huge random footprint: the main core misses, the
    # checker (LSL$-fed) does not.
    body = [
        Instruction(Opcode.MUL, rd=6, rs1=2, rs2=21),
        Instruction(Opcode.ADDI, rd=2, rs1=6, imm=13),
        Instruction(Opcode.SRLI, rd=7, rs1=2, imm=8),
        Instruction(Opcode.ANDI, rd=7, rs1=7, imm=0xFFFFF8),
        Instruction(Opcode.LD, rd=8, rs1=7),
        Instruction(Opcode.ADD, rd=9, rs1=9, rs2=8),
    ]
    program, result = run_trace(loop_body(*body), 20_000,
                                ints={2: 12345, 21: 6364136223846793005})
    main = simulate(program, result.trace, CoreInstance(X2, 3.0))
    checker = simulate(program, result.trace, CoreInstance(X2, 3.0),
                       warm=True, checker_mode=True)
    assert main.dram_accesses > 100
    assert checker.dram_accesses == 0
    assert checker.time_ns < main.time_ns


def test_mispredict_penalty_slows_random_branches():
    # Branch on the low bit of an LCG: unpredictable.
    body_random = [
        Instruction(Opcode.MUL, rd=6, rs1=2, rs2=21),
        Instruction(Opcode.ADDI, rd=2, rs1=6, imm=13),
        Instruction(Opcode.SRLI, rd=7, rs1=2, imm=17),
        Instruction(Opcode.ANDI, rd=7, rs1=7, imm=1),
        Instruction(Opcode.BNE, rs1=7, rs2=0, target=0),  # fixed below
        Instruction(Opcode.XORI, rd=8, rs1=8, imm=1),
    ]
    instrs = loop_body(*body_random)
    instrs[5].target = 7  # skip the xori
    program, result = run_trace(instrs, 20_000,
                                ints={2: 99, 21: 6364136223846793005})
    random_t = simulate(program, result.trace)

    body_biased = list(body_random)
    body_biased[3] = Instruction(Opcode.ANDI, rd=7, rs1=7, imm=0)  # never taken
    instrs = loop_body(*body_biased)
    instrs[5].target = 7
    program2, result2 = run_trace(instrs, 20_000,
                                  ints={2: 99, 21: 6364136223846793005})
    biased_t = simulate(program2, result2.trace)
    assert random_t.mispredicts > 10 * max(biased_t.mispredicts, 1)
    assert random_t.cycles > biased_t.cycles


def test_boundary_cycles_monotonic_and_complete():
    body = [Instruction(Opcode.ADD, rd=6, rs1=6, rs2=21)]
    program, result = run_trace(loop_body(*body), 9_000)
    boundaries = [3000, 6000, len(result.trace)]
    model = TimingModel(CoreInstance(X2, 3.0))
    timing = model.simulate(program, result.trace, boundaries)
    assert len(timing.boundary_cycles) == 3
    assert timing.boundary_cycles[0] < timing.boundary_cycles[1]
    assert timing.boundary_cycles[-1] == pytest.approx(timing.cycles)


def test_checkpoint_overhead_adds_cycles():
    body = [Instruction(Opcode.ADD, rd=6, rs1=6, rs2=21)]
    program, result = run_trace(loop_body(*body), 9_000)
    boundaries = list(range(1000, len(result.trace), 1000))
    base = TimingModel(CoreInstance(X2, 3.0)).simulate(
        program, result.trace, boundaries, checkpoint_overhead=False)
    with_ckpt = TimingModel(CoreInstance(X2, 3.0)).simulate(
        program, result.trace, boundaries, checkpoint_overhead=True)
    assert with_ckpt.cycles > base.cycles


def test_in_order_core_slower_on_dependent_loads():
    image = {0x1000 + i * 8: 0x1000 + ((i + 1) % 64) * 8 for i in range(64)}
    body = [Instruction(Opcode.LD, rd=5, rs1=5)]  # pointer chase
    instrs = loop_body(*body)
    program, result = run_trace(instrs, 10_000, image=image,
                                ints={5: 0x1000})
    ooo = simulate(program, result.trace, CoreInstance(X2, 2.0),
                   checker_mode=True)
    inorder = simulate(program, result.trace, CoreInstance(A510, 2.0),
                       checker_mode=True)
    scalar = simulate(program, result.trace, CoreInstance(A35, 2.0),
                      checker_mode=True)
    assert ooo.cycles <= inorder.cycles <= scalar.cycles * 1.5


def test_scalar_core_ipc_at_most_one():
    body = [Instruction(Opcode.ADD, rd=6 + (i % 8), rs1=20, rs2=21)
            for i in range(8)]
    program, result = run_trace(loop_body(*body), 10_000)
    timing = simulate(program, result.trace, CoreInstance(A35, 2.0),
                      checker_mode=True)
    assert timing.ipc <= 1.0


def test_dram_bandwidth_floor_binds_streaming():
    # Stream every access to a new line with prefetching: latency hidden,
    # but the channel can only move 19.2 GB/s.
    body = [
        Instruction(Opcode.LD, rd=8, rs1=7),
        Instruction(Opcode.ADDI, rd=7, rs1=7, imm=64),
    ] * 4
    program, result = run_trace(loop_body(*body), 40_000,
                                ints={7: 0x100000})
    timing = simulate(program, result.trace)
    lines = timing.dram_accesses
    floor_ns = lines * 64 / 19.2
    assert timing.time_ns >= floor_ns * 0.99


def test_warm_data_removes_cold_misses():
    addresses = [0x8000 + i * 64 for i in range(16)]
    body = [Instruction(Opcode.LD, rd=8, rs1=7, imm=i * 64)
            for i in range(16)]
    program, result = run_trace(loop_body(*body), 5_000,
                                ints={7: 0x8000})
    cold = TimingModel(CoreInstance(X2, 3.0))
    cold_t = cold.simulate(program, result.trace)
    warm = TimingModel(CoreInstance(X2, 3.0))
    warm.warm_data(addresses)
    warm_t = warm.simulate(program, result.trace)
    assert warm_t.dram_accesses < cold_t.dram_accesses


def test_stride_prefetcher_hides_streaming_misses():
    body = [
        Instruction(Opcode.LD, rd=8, rs1=7),
        Instruction(Opcode.ADDI, rd=7, rs1=7, imm=64),
    ]
    program, result = run_trace(loop_body(*body), 30_000,
                                ints={7: 0x100000})
    model = TimingModel(CoreInstance(X2, 3.0))
    timing = model.simulate(program, result.trace)
    assert model.prefetches_issued > 1000
    # Demand accesses mostly hit (the prefetch takes the misses).
    assert timing.level_counts["l1"] + timing.level_counts["l2"] \
        > timing.instructions * 0.2


def test_loads_and_stores_counted():
    body = [
        Instruction(Opcode.LD, rd=8, rs1=7),
        Instruction(Opcode.ST, rs2=8, rs1=7, imm=8),
    ]
    program, result = run_trace(loop_body(*body), 4_004, ints={7: 0x1000})
    timing = simulate(program, result.trace)
    assert timing.loads == pytest.approx(timing.stores, abs=2)
    assert timing.loads > 500


def test_format_stats_reports_fu_utilisation():
    from repro.cpu.timing import format_stats

    body = [Instruction(Opcode.FDIV, rd=i % 4, rs1=4, rs2=5)
            for i in range(8)]
    program, result = run_trace(loop_body(*body), 5_000)
    model = TimingModel(CoreInstance(X2, 3.0))
    timing = model.simulate(program, result.trace)
    text = format_stats(timing, X2)
    assert "simInsts        5000" in text
    assert "fu.fp_div" in text
    # The unpipelined dividers dominate this loop.
    fdiv_line = next(line for line in text.splitlines()
                     if line.startswith("fu.fp_div"))
    assert "util" in fdiv_line


def test_fu_issue_counts_cover_all_instructions():
    body = [Instruction(Opcode.ADD, rd=6, rs1=6, rs2=21)]
    program, result = run_trace(loop_body(*body), 4_000)
    timing = simulate(program, result.trace)
    assert sum(timing.fu_issue_counts.values()) == timing.instructions
