"""Tests for the DRAM timing model."""

from hypothesis import given, strategies as st

from repro.mem.dram import DramConfig, DramModel


def test_unloaded_latency_is_base():
    dram = DramModel()
    assert dram.latency_ns(0.0) == dram.config.base_latency_ns


def test_latency_monotone_in_utilisation():
    dram = DramModel()
    previous = 0.0
    for rho in (0.0, 0.2, 0.5, 0.8, 0.94):
        latency = dram.latency_ns(rho)
        assert latency >= previous
        previous = latency


def test_latency_clamped_near_saturation():
    dram = DramModel()
    assert dram.latency_ns(5.0) == dram.latency_ns(0.95)


def test_service_time():
    dram = DramModel(DramConfig(peak_bandwidth_gbps=19.2, line_bytes=64))
    assert abs(dram.service_time_ns() - 64 / 19.2) < 1e-12


def test_utilisation_from_accesses():
    dram = DramModel(DramConfig(peak_bandwidth_gbps=19.2, line_bytes=64))
    for _ in range(300):
        dram.record_access()
    elapsed = 1000.0  # ns -> 300*64 B over 1 us = 19.2 GB/s = saturation
    assert dram.utilisation(elapsed) == 1.0
    assert dram.utilisation(2 * elapsed) == 0.5


def test_utilisation_zero_elapsed():
    assert DramModel().utilisation(0.0) == 0.0


@given(st.floats(min_value=0.0, max_value=0.94))
def test_latency_at_least_base_property(rho):
    dram = DramModel()
    assert dram.latency_ns(rho) >= dram.config.base_latency_ns
