"""Tests for the Register Checkpointing Unit and Load-Store Comparator."""

import pytest

from repro.core.errors import DetectionKind
from repro.core.lsc import LoadStoreComparator
from repro.core.lsl import LSLAccess
from repro.core.rcu import RegisterCheckpointUnit
from repro.isa.registers import ARCH_CHECKPOINT_BYTES, RegisterFile


class TestRCU:
    def test_take_checkpoint_counts_traffic(self):
        rcu = RegisterCheckpointUnit()
        regs = RegisterFile()
        rcu.take_checkpoint(regs, pc=0)
        rcu.take_checkpoint(regs, pc=1)
        assert rcu.stats.checkpoints_taken == 2
        assert rcu.stats.bytes_forwarded == 2 * ARCH_CHECKPOINT_BYTES

    def test_compare_matching_state(self):
        rcu = RegisterCheckpointUnit()
        regs = RegisterFile()
        regs.write_int(3, 7)
        expected = regs.snapshot(5)
        rcu.arm(expected)
        assert rcu.compare(regs.snapshot(5), segment=0) is None
        assert rcu.stats.mismatches == 0

    def test_compare_detects_register_divergence(self):
        rcu = RegisterCheckpointUnit()
        regs = RegisterFile()
        expected = regs.snapshot(5)
        rcu.arm(expected)
        regs.write_int(9, 1)
        event = rcu.compare(regs.snapshot(5), segment=3)
        assert event is not None
        assert event.kind is DetectionKind.REGISTER_CHECKPOINT
        assert event.segment == 3
        assert "x9" in event.detail

    def test_compare_detects_pc_divergence(self):
        rcu = RegisterCheckpointUnit()
        regs = RegisterFile()
        rcu.arm(regs.snapshot(5))
        event = rcu.compare(regs.snapshot(6), segment=0)
        assert event is not None

    def test_compare_before_arm_is_an_error(self):
        rcu = RegisterCheckpointUnit()
        with pytest.raises(RuntimeError):
            rcu.compare(RegisterFile().snapshot(0), segment=0)

    def test_digest_compare(self):
        rcu = RegisterCheckpointUnit()
        rcu.arm(RegisterFile().snapshot(0), digest=b"\x01" * 32)
        assert rcu.compare_digest(b"\x01" * 32, segment=0) is None
        event = rcu.compare_digest(b"\x02" * 32, segment=0)
        assert event is not None
        assert event.kind is DetectionKind.HASH_MISMATCH

    def test_digest_compare_before_arm_is_an_error(self):
        rcu = RegisterCheckpointUnit()
        rcu.arm(RegisterFile().snapshot(0))
        with pytest.raises(RuntimeError):
            rcu.compare_digest(b"", segment=0)


class TestLSC:
    def make(self):
        return LoadStoreComparator()

    def test_matching_load(self):
        lsc = self.make()
        logged = LSLAccess(0x100, 8, loaded=1)
        assert lsc.compare_load(logged, 0x100, 8, 0, 0) is None
        assert lsc.stats.load_compares == 1

    def test_load_address_mismatch(self):
        lsc = self.make()
        logged = LSLAccess(0x100, 8, loaded=1)
        event = lsc.compare_load(logged, 0x108, 8, 0, 7)
        assert event.kind is DetectionKind.LOAD_ADDRESS
        assert event.trace_index == 7

    def test_load_size_mismatch(self):
        lsc = self.make()
        logged = LSLAccess(0x100, 8, loaded=1)
        event = lsc.compare_load(logged, 0x100, 4, 0, 0)
        assert event is not None

    def test_matching_store(self):
        lsc = self.make()
        logged = LSLAccess(0x200, 8, stored=42)
        assert lsc.compare_store(logged, 0x200, 8, 42, 0, 0) is None

    def test_store_address_mismatch(self):
        lsc = self.make()
        logged = LSLAccess(0x200, 8, stored=42)
        event = lsc.compare_store(logged, 0x208, 8, 42, 0, 0)
        assert event.kind is DetectionKind.STORE_ADDRESS

    def test_store_data_mismatch(self):
        lsc = self.make()
        logged = LSLAccess(0x200, 8, stored=42)
        event = lsc.compare_store(logged, 0x200, 8, 43, 0, 0)
        assert event.kind is DetectionKind.STORE_DATA

    def test_store_data_masked_to_size(self):
        # A 2-byte store of 0x12345 only commits 0x2345.
        lsc = self.make()
        logged = LSLAccess(0x200, 2, stored=0x2345)
        assert lsc.compare_store(logged, 0x200, 2, 0x12345, 0, 0) is None

    def test_mismatch_counter(self):
        lsc = self.make()
        logged = LSLAccess(0x100, 8, loaded=1)
        lsc.compare_load(logged, 0x100, 8, 0, 0)
        lsc.compare_load(logged, 0x999, 8, 0, 0)
        assert lsc.stats.mismatches == 1

    def test_storage_budget(self):
        # Paper section VII-E: 48 B for a 2-wide LSC.
        assert LoadStoreComparator.STORAGE_BYTES == 48
