"""Tests for ECC-protected memory (the sphere-of-replication boundary)."""

import pytest
from hypothesis import given, strategies as st

from repro.cpu.functional import FunctionalCore
from repro.isa.assembler import assemble
from repro.mem.ecc import EccError
from repro.mem.protected import (
    EccMemory,
    EccMemoryPort,
    inject_random_upsets,
)


class TestEccMemory:
    def test_roundtrip(self):
        memory = EccMemory()
        memory.store_word(0x100, 0xDEADBEEF)
        assert memory.load_word(0x100) == 0xDEADBEEF

    def test_unwritten_word_reads_zero(self):
        assert EccMemory().load_word(0x100) == 0

    def test_unaligned_rejected(self):
        with pytest.raises(ValueError):
            EccMemory().store_word(0x101, 1)
        with pytest.raises(ValueError):
            EccMemory().load_word(0x101)

    def test_single_bit_upset_corrected_and_scrubbed(self):
        memory = EccMemory({0x100: 42})
        memory.flip_bit(0x100, 17)
        assert memory.load_word(0x100) == 42
        assert memory.stats.corrected == 1
        memory.load_word(0x100)  # scrubbed: second load is clean
        assert memory.stats.corrected == 1

    def test_double_bit_upset_detected(self):
        memory = EccMemory({0x100: 42})
        memory.flip_two_bits(0x100, 3, 40)
        with pytest.raises(EccError):
            memory.load_word(0x100)
        assert memory.stats.uncorrectable == 1

    def test_background_scrubber(self):
        memory = EccMemory({0x100: 1, 0x108: 2, 0x110: 3})
        memory.flip_bit(0x100, 5)
        memory.flip_bit(0x110, 9)
        assert memory.scrub_all() == 2
        assert memory.load_word(0x100) == 1
        assert memory.load_word(0x110) == 3

    def test_scrubber_leaves_uncorrectable_for_demand_path(self):
        memory = EccMemory({0x100: 1})
        memory.flip_two_bits(0x100, 3, 40)
        assert memory.scrub_all() == 0
        with pytest.raises(EccError):
            memory.load_word(0x100)

    def test_random_upsets_all_corrected(self):
        memory = EccMemory({0x100 + 8 * i: i for i in range(32)})
        struck = inject_random_upsets(memory, 10, seed=1)
        assert len(struck) == 10
        memory.scrub_all()
        for i in range(32):
            # Some words may have taken two hits (uncorrectable); only
            # single-hit words must decode to the original.
            try:
                assert memory.load_word(0x100 + 8 * i) == i
            except EccError:
                pass


class TestEccMemoryPort:
    def test_subword_access(self):
        port = EccMemoryPort(EccMemory())
        port.store(0x100, 2, 0xBEEF)
        assert port.load(0x100, 2) == 0xBEEF
        assert port.load(0x100, 8) == 0xBEEF

    def test_straddling_access(self):
        port = EccMemoryPort(EccMemory())
        port.store(0x106, 4, 0xAABBCCDD)
        assert port.load(0x106, 4) == 0xAABBCCDD

    def test_swap(self):
        port = EccMemoryPort(EccMemory({0x10: 7}))
        assert port.swap(0x10, 8, 9) == 7
        assert port.load(0x10, 8) == 9

    def test_bulk_copy(self):
        port = EccMemoryPort(EccMemory({0x100: 5, 0x108: 6}))
        values = port.bulk_copy(0x100, 0x200, 2)
        assert values == (5, 6)
        assert port.load(0x200, 8) == 5

    def test_executor_runs_on_ecc_memory(self):
        """The whole functional pipeline works over protected memory,
        including transparent correction of a storage upset."""
        program = assemble(
            """
            lui x2, 0x1000
            .data 0x1000 41
            ld x3, 0(x2)
            addi x3, x3, 1
            st x3, 8(x2)
            halt
            """
        )
        ecc = EccMemory(program.memory_image)
        ecc.flip_bit(0x1000, 12)  # storage upset before the program runs
        core = FunctionalCore(program, EccMemoryPort(ecc))
        core.run(100)
        assert core.regs.read_int(3) == 42  # corrected on the load path
        assert ecc.load_word(0x1008) == 42
        assert ecc.stats.corrected >= 1


@given(st.integers(min_value=0, max_value=(1 << 64) - 1),
       st.integers(min_value=1, max_value=71))
def test_any_single_storage_upset_is_transparent(value, position):
    memory = EccMemory({0x8: value})
    memory.flip_bit(0x8, position)
    assert memory.load_word(0x8) == value
