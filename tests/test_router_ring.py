"""Consistent-hash ring invariants the shard router depends on.

Two properties are load-bearing: placement is a pure function of the
shard set (same ring in every process, across restarts — campaign
results cannot depend on which router computed them), and membership
changes move only a bounded slice of the key space (a shard join/leave
does not reshuffle every shard's cache working set).
"""

import os
import pathlib
import subprocess
import sys

import pytest

from repro.router.ring import DEFAULT_REPLICAS, HashRing, hash_key

NODES = ["shard0", "shard1", "shard2", "shard3"]


def _keys(count=2000):
    """Trace-identity-shaped keys: (workload, instructions, seed)."""
    workloads = ["exchange2", "mcf", "xz", "omnetpp"]
    return [(workloads[i % len(workloads)], 4000 + 1000 * (i % 7), i)
            for i in range(count)]


class TestDeterminism:
    def test_placement_is_stable_across_processes(self):
        """A fresh interpreter (fresh PYTHONHASHSEED) places identically.

        This is the restart invariant: ring positions must come from
        sha256, never from Python's per-process randomized hash().
        """
        keys = _keys(64)
        local = [HashRing(NODES).lookup(k) for k in keys]
        script = (
            "from repro.router.ring import HashRing\n"
            f"ring = HashRing({NODES!r})\n"
            f"print('\\n'.join(ring.lookup(k) for k in {keys!r}))\n"
        )
        import repro
        env = dict(os.environ)
        env["PYTHONPATH"] = str(pathlib.Path(repro.__file__).parents[1])
        env["PYTHONHASHSEED"] = "12345"
        out = subprocess.run(
            [sys.executable, "-c", script], capture_output=True,
            text=True, check=True, env=env)
        assert out.stdout.split() == local

    def test_insertion_order_is_irrelevant(self):
        forward = HashRing(NODES)
        backward = HashRing(list(reversed(NODES)))
        for key in _keys(500):
            assert forward.lookup(key) == backward.lookup(key)

    def test_rebuild_equals_incremental(self):
        rebuilt = HashRing(NODES)
        grown = HashRing(NODES[:1])
        for node in NODES[1:]:
            grown.add(node)
        for key in _keys(500):
            assert rebuilt.preference(key) == grown.preference(key)

    def test_hash_key_tuple_and_string_forms(self):
        assert hash_key(("mcf", 20000, 7)) == hash_key("mcf|20000|7")
        assert hash_key("a") != hash_key("b")


class TestPreference:
    def test_preference_is_distinct_and_starts_at_owner(self):
        ring = HashRing(NODES)
        for key in _keys(200):
            chain = ring.preference(key)
            assert chain[0] == ring.lookup(key)
            assert sorted(chain) == sorted(NODES)  # all nodes, no dupes

    def test_preference_n_truncates(self):
        ring = HashRing(NODES)
        full = ring.preference("k")
        assert ring.preference("k", 2) == full[:2]
        assert ring.preference("k", 99) == full

    def test_empty_ring_raises(self):
        ring = HashRing()
        with pytest.raises(LookupError):
            ring.lookup("k")
        with pytest.raises(LookupError):
            ring.preference("k")

    def test_bad_replicas_rejected(self):
        with pytest.raises(ValueError):
            HashRing(NODES, replicas=0)


class TestMembershipChurn:
    def test_leave_moves_only_departed_keys(self):
        """Removing a shard relocates exactly its own keys."""
        before = HashRing(NODES)
        after = HashRing([n for n in NODES if n != "shard2"])
        for key in _keys(3000):
            owner = before.lookup(key)
            if owner != "shard2":
                assert after.lookup(key) == owner

    def test_join_moves_a_bounded_slice(self):
        """Adding one shard to N moves < 2/(N+1) of keys (vs ~1/(N+1)
        ideal; the slack covers vnode arc-length variance)."""
        n = 8
        nodes = [f"shard{i}" for i in range(n)]
        before = HashRing(nodes)
        after = HashRing(nodes + [f"shard{n}"])
        keys = _keys(10_000)
        moved = sum(before.lookup(k) != after.lookup(k) for k in keys)
        assert moved > 0  # the new shard does take keys
        assert moved / len(keys) < 2.0 / (n + 1)
        # ...and every moved key landed on the new shard, nowhere else.
        for key in keys:
            if before.lookup(key) != after.lookup(key):
                assert after.lookup(key) == f"shard{n}"

    def test_leave_moves_a_bounded_slice(self):
        n = 8
        nodes = [f"shard{i}" for i in range(n)]
        before = HashRing(nodes)
        after = HashRing(nodes[:-1])
        keys = _keys(10_000)
        moved = sum(before.lookup(k) != after.lookup(k) for k in keys)
        assert moved / len(keys) < 2.0 / n

    def test_balance_is_reasonable(self):
        """Vnodes keep the worst shard below ~3x the fair share."""
        ring = HashRing(NODES, replicas=DEFAULT_REPLICAS)
        counts = {node: 0 for node in NODES}
        for key in _keys(8000):
            counts[ring.lookup(key)] += 1
        fair = 8000 / len(NODES)
        assert max(counts.values()) < 3 * fair
        assert min(counts.values()) > 0
