"""Tests for multicore (shared-memory) functional execution."""

from repro.cpu.multicore import run_multicore
from repro.isa.assembler import assemble
from repro.mem.memory import Memory


def counter_program(name: str, iterations: int):
    """Each thread atomically increments a shared counter at 0x100."""
    return assemble(
        f"""
        addi x1, x0, {iterations}
        lui x4, 0x100
        loop:
        swp x2, x20, (x4)        # grab current value (lock-free RMW base)
        addi x2, x2, 1
        st x2, 0(x4)
        subi x1, x1, 1
        bne x1, x0, loop
        halt
        """,
        name=name,
    )


def test_threads_interleave_on_shared_memory():
    programs = [counter_program(f"t{i}", 50) for i in range(2)]
    runs = run_multicore(programs, max_instructions_per_thread=10_000,
                         quantum=20)
    assert all(run.result.halted for run in runs)
    # Both threads ran to completion and saw each other's stores: the trace
    # of loads must include values written by the other thread.
    assert runs[0].result.instructions > 0
    assert runs[1].result.instructions > 0


def test_switch_points_recorded_at_quanta():
    programs = [counter_program(f"t{i}", 200) for i in range(2)]
    runs = run_multicore(programs, max_instructions_per_thread=2_000,
                         quantum=100)
    for run in runs:
        assert run.switch_points
        for point in run.switch_points:
            assert point % 100 == 0


def test_checkpoints_captured_at_switches():
    programs = [counter_program(f"t{i}", 200) for i in range(2)]
    runs = run_multicore(programs, max_instructions_per_thread=1_000,
                         quantum=100)
    for run in runs:
        for point in run.switch_points:
            assert point in run.checkpoints


def test_deterministic_given_same_inputs():
    def go():
        programs = [counter_program(f"t{i}", 100) for i in range(2)]
        return run_multicore(programs, max_instructions_per_thread=5_000,
                             quantum=30, seed=3)

    a, b = go(), go()
    for run_a, run_b in zip(a, b):
        assert run_a.result.end_checkpoint.matches(run_b.result.end_checkpoint)
        assert len(run_a.result.trace) == len(run_b.result.trace)


def test_cross_thread_visibility():
    """Thread 1 spins until thread 0 publishes a flag."""
    writer = assemble(
        """
        lui x4, 0x200
        addi x2, x0, 1
        st x2, 0(x4)
        halt
        """,
        name="writer",
    )
    reader = assemble(
        """
        lui x4, 0x200
        wait:
        ld x2, 0(x4)
        beq x2, x0, wait
        halt
        """,
        name="reader",
    )
    runs = run_multicore([writer, reader],
                         max_instructions_per_thread=10_000, quantum=10)
    assert runs[1].result.halted  # the reader saw the flag and stopped


def test_shared_memory_from_combined_images():
    a = assemble(".data 0x100 7\nld x2, 0(x3)\nhalt", name="a")
    a.instructions[0].rs1 = 0  # ld x2, 0(x0)... keep simple below
    programs = [
        assemble(".data 0x100 7\nlui x3, 0x100\nld x2, 0(x3)\nhalt", name="a"),
        assemble("lui x3, 0x100\nld x2, 0(x3)\nhalt", name="b"),
    ]
    runs = run_multicore(programs, max_instructions_per_thread=100)
    # Thread b's load sees thread a's memory image.
    assert runs[1].result.end_checkpoint.ints[2] == 7


def test_explicit_memory_argument():
    memory = Memory({0x100: 9})
    program = assemble("lui x3, 0x100\nld x2, 0(x3)\nhalt", name="p")
    runs = run_multicore([program], memory=memory,
                         max_instructions_per_thread=100)
    assert runs[0].result.end_checkpoint.ints[2] == 9


def test_class_counts_populated():
    programs = [counter_program("t0", 10)]
    runs = run_multicore(programs, max_instructions_per_thread=1_000)
    counts = runs[0].result.class_counts
    assert counts.get("load", 0) > 0  # SWP counts as a load-class op
    assert counts.get("branch", 0) > 0
