"""Tests for the baseline models: lockstep, DSN18/ParaDox, scanners."""

import pytest

from repro.baselines.lockstep import LockstepKind, LockstepModel
from repro.baselines.prior_work import (
    DEDICATED_LSL_BYTES,
    dsn18_config,
    paradox_config,
)
from repro.baselines.swscan import (
    FLEETSCANNER,
    RIPPLE,
    ScannerModel,
    paraverser_detection_days,
)
from repro.cpu.config import CoreInstance
from repro.cpu.presets import X2


class TestLockstep:
    def make(self, kind=LockstepKind.DUAL):
        return LockstepModel(CoreInstance(X2, 3.0), kind)

    def test_dual_area_overhead_is_100_percent(self):
        assert self.make().area_overhead_fraction() == 1.0

    def test_triple_area_overhead_is_200_percent(self):
        assert self.make(LockstepKind.TRIPLE).area_overhead_fraction() == 2.0

    def test_energy_overhead_matches_replication(self):
        model = self.make()
        assert model.energy_overhead_fraction(10_000, 5_000.0) == \
            pytest.approx(1.0)

    def test_negligible_slowdown(self):
        assert self.make().slowdown < 1.01

    def test_correction_capability(self):
        assert not self.make().corrects()
        assert self.make(LockstepKind.TRIPLE).corrects()
        assert self.make().detects_transients()


class TestPriorWorkConfigs:
    def test_dsn18_has_twelve_checkers(self):
        config = dsn18_config(CoreInstance(X2, 3.0))
        assert len(config.checkers) == 12

    def test_paradox_has_sixteen_checkers(self):
        config = paradox_config(CoreInstance(X2, 3.0))
        assert len(config.checkers) == 16

    def test_dedicated_srams_are_3kib(self):
        # The paper contrasts 3 KiB dedicated SRAM vs 64 KiB repurposed L1.
        assert DEDICATED_LSL_BYTES == 3 * 1024
        config = dsn18_config(CoreInstance(X2, 3.0))
        assert config.lsl_capacity() == 3 * 1024

    def test_no_eager_waking_in_prior_work(self):
        # Section IV-H: prior work wakes checkers only at checkpoint end.
        assert dsn18_config(CoreInstance(X2, 3.0)).eager_wake is False

    def test_dedicated_interconnect(self):
        assert paradox_config(CoreInstance(X2, 3.0)).dedicated_interconnect

    def test_checkers_are_scalar_a35s(self):
        config = dsn18_config(CoreInstance(X2, 3.0))
        assert all(c.config.name == "A35" for c in config.checkers)
        assert all(c.config.width == 1 for c in config.checkers)

    def test_timeout_override(self):
        config = dsn18_config(CoreInstance(X2, 3.0),
                              timeout_instructions=777)
        assert config.timeout_instructions == 777


class TestScanners:
    def test_fleetscanner_fit_93_percent_in_six_months(self):
        # Paper section III-A: 93 % of permanent faults within 6 months.
        assert FLEETSCANNER.detection_probability(180) == \
            pytest.approx(0.93, abs=0.02)

    def test_ripple_fit_70_percent(self):
        assert RIPPLE.detection_probability(180) == \
            pytest.approx(0.70, abs=0.03)

    def test_detection_probability_monotone(self):
        previous = 0.0
        for days in (10, 30, 90, 180, 365):
            p = FLEETSCANNER.detection_probability(days)
            assert p >= previous
            previous = p

    def test_zero_days_zero_probability(self):
        assert RIPPLE.detection_probability(0) == 0.0

    def test_expected_detection_days(self):
        # Months for both scanners — the window ParaVerser closes.
        assert FLEETSCANNER.expected_detection_days() > 30
        assert RIPPLE.expected_detection_days() > 30

    def test_zero_coverage_never_detects(self):
        scanner = ScannerModel("null", 0.0, 1.0, True)
        assert scanner.detection_probability(1000) == 0.0
        assert scanner.expected_detection_days() == float("inf")

    def test_paraverser_detection_is_subsecond(self):
        # 100 M instructions at ~10 G instructions/day-equivalent rates.
        instructions_per_day = 10e9 * 86_400
        days = paraverser_detection_days(instructions_per_day, 100e6)
        assert days < 1e-6  # vs months for scanners
