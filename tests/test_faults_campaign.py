"""Tests for the fault-injection campaign driver (Fig. 8 machinery)."""

import pytest

from repro.core.system import CheckMode, ParaVerserConfig, ParaVerserSystem
from repro.cpu.config import CoreInstance
from repro.cpu.presets import A510, X2
from repro.faults.campaign import (
    FaultCampaign,
    checker_fu_counts,
    covered_segments,
)
from repro.faults.models import StuckAtFault
from repro.isa.instructions import FUKind
from repro.workloads.generator import build_program
from repro.workloads.profiles import get_profile


@pytest.fixture(scope="module")
def prepared():
    program = build_program(get_profile("deepsjeng"), seed=5)
    config = ParaVerserConfig(
        main=CoreInstance(X2, 3.0),
        checkers=[CoreInstance(A510, 2.0)],
        mode=CheckMode.OPPORTUNISTIC,
        seed=5,
        timeout_instructions=500,
    )
    system = ParaVerserSystem(config)
    run = system.execute(program, 8_000)
    segments = system.segment(run)
    result = system.run(program, run_result=run)
    return program, segments, result


def test_checker_fu_counts_match_config():
    counts = checker_fu_counts(A510)
    assert counts[FUKind.INT_ALU] == 3
    assert counts[FUKind.FP_DIV] == 1


def test_covered_segments_from_schedule(prepared):
    _, segments, result = prepared
    covered = covered_segments(result)
    assert set(covered) <= {seg.index for seg in segments}


def test_aggressive_fault_detected_quickly(prepared):
    program, segments, _ = prepared
    campaign = FaultCampaign(program, segments, A510)
    fault = StuckAtFault(FUKind.INT_ALU, 0, bit=0, stuck_at=1)
    outcome = campaign.run_trial(fault)
    assert outcome.detected
    assert outcome.detecting_segment >= 0
    assert outcome.detection_instruction > 0
    assert outcome.event is not None


def test_detection_latency_is_segment_end(prepared):
    program, segments, _ = prepared
    campaign = FaultCampaign(program, segments, A510)
    fault = StuckAtFault(FUKind.INT_ALU, 0, bit=1, stuck_at=1)
    outcome = campaign.run_trial(fault)
    if outcome.detected:
        seg = segments[outcome.detecting_segment]
        assert outcome.detection_instruction == seg.end


def test_harmless_fault_classified_masked(prepared):
    program, segments, _ = prepared
    campaign = FaultCampaign(program, segments, A510)
    # Bit 63 of an FP_DIV unit the int-heavy chess workload barely uses.
    fault = StuckAtFault(FUKind.FP_DIV, 0, bit=62, stuck_at=0)
    outcome = campaign.run_trial(fault)
    assert outcome.masked
    assert not outcome.detected


def test_fault_outside_coverage_counted_as_missed(prepared):
    program, segments, _ = prepared
    campaign = FaultCampaign(program, segments, A510)
    fault = StuckAtFault(FUKind.INT_ALU, 0, bit=0, stuck_at=1)
    outcome = campaign.run_trial(fault, covered=[])  # nothing checked
    assert not outcome.detected
    assert not outcome.masked  # full replay shows it was effective


def test_campaign_statistics(prepared):
    program, segments, _ = prepared
    campaign = FaultCampaign(program, segments, A510)
    result = campaign.run(trials=10, seed=1)
    assert result.injected == 10
    assert result.detected + result.masked <= 10
    assert 0.0 <= result.detection_rate_all <= 1.0
    assert 0.0 <= result.detection_rate_effective <= 1.0


def test_full_coverage_detects_all_effective_faults(prepared):
    # With every segment checked, any non-masked fault must be detected.
    program, segments, _ = prepared
    campaign = FaultCampaign(program, segments, A510)
    result = campaign.run(trials=15, seed=2)  # covered=None -> everything
    assert result.detection_rate_effective == pytest.approx(1.0)


def test_campaign_deterministic_by_seed(prepared):
    program, segments, _ = prepared
    campaign = FaultCampaign(program, segments, A510)
    a = campaign.run(trials=8, seed=3)
    b = campaign.run(trials=8, seed=3)
    assert [t.detected for t in a.trials] == [t.detected for t in b.trials]


def test_mean_detection_latency_nan_when_nothing_detected(prepared):
    program, segments, _ = prepared
    campaign = FaultCampaign(program, segments, A510)
    result = campaign.run(trials=0)
    import math
    assert math.isnan(result.mean_detection_latency)
