"""Tests for the cache hierarchy and shared uncore."""

from repro.cpu.presets import big_hierarchy, little_hierarchy
from repro.mem.hierarchy import MemoryHierarchy, SharedUncore


def make_hierarchy():
    config = big_hierarchy()
    return MemoryHierarchy(config)


def test_cold_access_goes_to_dram():
    hier = make_hierarchy()
    result = hier.data_access(0x10000, core_freq_ghz=3.0)
    assert result.level == "dram"


def test_warm_access_hits_l1():
    hier = make_hierarchy()
    hier.data_access(0x10000, 3.0)
    result = hier.data_access(0x10000, 3.0)
    assert result.level == "l1"


def test_latency_strictly_increases_down_the_hierarchy():
    hier = make_hierarchy()
    dram = hier.data_access(0x10000, 3.0)
    l1 = hier.data_access(0x10000, 3.0)
    hier.l1d.flush()
    l2 = hier.data_access(0x10000, 3.0)
    hier.l1d.flush()
    hier.l2.flush()
    l3 = hier.data_access(0x10000, 3.0)
    assert l1.latency_ns < l2.latency_ns < l3.latency_ns < dram.latency_ns


def test_l1_hit_latency_scales_with_core_frequency():
    hier_fast = make_hierarchy()
    hier_slow = make_hierarchy()
    hier_fast.data_access(0x100, 3.0)
    hier_slow.data_access(0x100, 1.5)
    fast = hier_fast.data_access(0x100, 3.0)
    slow = hier_slow.data_access(0x100, 1.5)
    assert slow.latency_ns == 2 * fast.latency_ns


def test_fetch_path_uses_icache():
    hier = make_hierarchy()
    hier.fetch_access(0x5000, 3.0)
    assert hier.l1i.accesses == 1
    assert hier.l1d.accesses == 0


def test_shared_uncore_between_cores():
    uncore = SharedUncore(big_hierarchy().l3, big_hierarchy().dram)
    a = MemoryHierarchy(big_hierarchy(), uncore)
    b = MemoryHierarchy(little_hierarchy(), uncore)
    a.data_access(0x7000, 3.0)  # brings the line into the shared L3
    result = b.data_access(0x7000, 2.0)
    assert result.level == "l3"  # core B's private caches miss; L3 hits


def test_extra_llc_latency_applies():
    hier = make_hierarchy()
    hier.data_access(0x100, 3.0)
    hier.l1d.flush()
    hier.l2.flush()
    base = hier.data_access(0x100, 3.0)
    hier.l1d.flush()
    hier.l2.flush()
    hier.uncore.extra_llc_latency_ns = 5.0
    loaded = hier.data_access(0x100, 3.0)
    assert loaded.latency_ns - base.latency_ns == 5.0


def test_level_counts_accumulate():
    hier = make_hierarchy()
    hier.data_access(0x100, 3.0)
    hier.data_access(0x100, 3.0)
    assert hier.level_counts["dram"] == 1
    assert hier.level_counts["l1"] == 1


def test_reset_stats_clears_counts_not_contents():
    hier = make_hierarchy()
    hier.data_access(0x100, 3.0)
    hier.reset_stats()
    assert hier.level_counts["dram"] == 0
    assert hier.data_access(0x100, 3.0).level == "l1"


def test_uncore_reset_stats():
    hier = make_hierarchy()
    hier.data_access(0x100, 3.0)
    hier.uncore.reset_stats()
    assert hier.uncore.llc_accesses == 0
    assert hier.uncore.dram.accesses == 0


def test_uncore_counts_llc_and_dram_accesses():
    hier = make_hierarchy()
    hier.data_access(0x100, 3.0)     # miss all the way
    hier.l1d.flush()
    hier.l2.flush()
    hier.data_access(0x100, 3.0)     # L3 hit
    assert hier.uncore.llc_accesses == 2
    assert hier.uncore.dram.accesses == 1
