"""Tests for bulk-copy macro-ops (footnote 14) and sampling mode (fn. 18)."""

import pytest

from repro.core.checker import CheckerCore
from repro.core.lsl import RecordKind, record_from_trace
from repro.core.lspu import LoadStorePushUnit
from repro.core.system import CheckMode, ParaVerserConfig, ParaVerserSystem
from repro.cpu.config import CoreInstance
from repro.cpu.functional import DirectMemoryPort, FunctionalCore
from repro.cpu.presets import A510, X2
from repro.faults.models import StuckAtFault
from repro.isa.assembler import assemble
from repro.isa.instructions import FUKind, Opcode
from repro.mem.memory import Memory

BULK_PROGRAM = """
    addi x1, x0, 60
    lui x2, 0x1000
    lui x3, 0x8000
    .data 0x1000 111
    .data 0x1008 222
    .data 0x1010 333
loop:
    st x1, 16(x2)
    bcopy x2, x3, 16
    addi x3, x3, 8
    subi x1, x1, 1
    bne x1, x0, loop
    halt
"""


def run_program(text, max_instructions=2000):
    program = assemble(text, name="bulk")
    memory = Memory(program.memory_image)
    core = FunctionalCore(program, DirectMemoryPort(memory))
    return program, memory, core.run(max_instructions)


class TestBulkFunctional:
    def test_bcopy_moves_words(self):
        _, memory, _ = run_program("""
            lui x2, 0x1000
            lui x3, 0x2000
            .data 0x1000 5
            .data 0x1008 6
            bcopy x2, x3, 2
            halt
        """)
        assert memory.load(0x2000, 8) == 5
        assert memory.load(0x2008, 8) == 6

    def test_bcopy_trace_entry_records_words(self):
        _, _, result = run_program("""
            lui x2, 0x1000
            lui x3, 0x2000
            .data 0x1000 5
            bcopy x2, x3, 4
            halt
        """)
        entry = next(e for e in result.trace
                     if e.instr.op is Opcode.BCOPY)
        assert entry.bulk == (5, 0, 0, 0)
        assert entry.addr == 0x1000 and entry.addr2 == 0x2000

    def test_bcopy_word_count_clamped(self):
        _, _, result = run_program("""
            lui x2, 0x1000
            lui x3, 0x2000
            bcopy x2, x3, 99
            halt
        """)
        entry = next(e for e in result.trace
                     if e.instr.op is Opcode.BCOPY)
        assert len(entry.bulk) == 32  # hardware limit

    def test_bulk_record_is_oversized(self):
        _, _, result = run_program(BULK_PROGRAM, 200)
        entry = next(e for e in result.trace
                     if e.instr.op is Opcode.BCOPY)
        record = record_from_trace(entry, 0)
        assert record.kind is RecordKind.BULK
        # 16 loads + 16 stores at 16 B each: far beyond one 64 B line.
        assert record.entry_bytes() > 64

    def test_lspu_spreads_bulk_entry_over_lines(self):
        _, _, result = run_program(BULK_PROGRAM, 200)
        entry = next(e for e in result.trace
                     if e.instr.op is Opcode.BCOPY)
        record = record_from_trace(entry, 0)
        lspu = LoadStorePushUnit()
        pushed = lspu.record(record)
        assert pushed and pushed[-1].lines > 1


class TestBulkChecking:
    def make_segments(self, text=BULK_PROGRAM, hash_mode=False):
        program = assemble(text, name="bulk")
        config = ParaVerserConfig(
            main=CoreInstance(X2, 3.0),
            checkers=[CoreInstance(A510, 2.0)],
            timeout_instructions=100,
            hash_mode=hash_mode,
        )
        system = ParaVerserSystem(config)
        run = system.execute(program, 1_000)
        return program, system.segment(run)

    def test_healthy_replay_clean(self):
        program, segments = self.make_segments()
        checker = CheckerCore(program)
        for segment in segments:
            result = checker.check_segment(segment)
            assert not result.detected, str(result.first_event)

    def test_healthy_replay_clean_in_hash_mode(self):
        program, segments = self.make_segments(hash_mode=True)
        checker = CheckerCore(program, hash_mode=True)
        for segment in segments:
            assert not checker.check_segment(segment).detected

    def test_address_fault_in_bulk_detected(self):
        program, segments = self.make_segments()
        checker = CheckerCore(program, fault_surface=StuckAtFault(
            FUKind.STORE, 0, bit=5, stuck_at=1, addresses_only=True))
        assert any(checker.check_segment(s).detected for s in segments)

    def test_full_system_run_with_bulk(self):
        program = assemble(BULK_PROGRAM, name="bulk")
        config = ParaVerserConfig(
            main=CoreInstance(X2, 3.0),
            checkers=[CoreInstance(A510, 2.0)] * 2,
            timeout_instructions=100,
        )
        result = ParaVerserSystem(config).run(program, max_instructions=1_000)
        assert result.coverage == 1.0
        assert all(not r.detected for r in result.verify_results)


class TestSamplingMode:
    def run_sampled(self, rate, timeout=500):
        from repro.workloads.generator import build_program
        from repro.workloads.profiles import get_profile

        program = build_program(get_profile("exchange2"), seed=7)
        config = ParaVerserConfig(
            main=CoreInstance(X2, 3.0),
            checkers=[CoreInstance(A510, 2.0)],
            mode=CheckMode.SAMPLING,
            sampling_rate=rate,
            seed=7,
            timeout_instructions=timeout,
        )
        return ParaVerserSystem(config).run(program,
                                            max_instructions=20_000)

    def test_coverage_tracks_sampling_rate(self):
        for rate in (0.25, 0.5):
            result = self.run_sampled(rate)
            assert result.coverage == pytest.approx(rate, abs=0.1)

    def test_sampling_never_stalls(self):
        result = self.run_sampled(0.5)
        assert result.stall_ns == 0.0

    def test_sampling_cheaper_than_full(self):
        from repro.workloads.generator import build_program
        from repro.workloads.profiles import get_profile

        program = build_program(get_profile("bwaves"), seed=7)
        base_config = dict(main=CoreInstance(X2, 3.0),
                           checkers=[CoreInstance(A510, 1.0)],
                           seed=7, timeout_instructions=500)
        full = ParaVerserSystem(ParaVerserConfig(
            mode=CheckMode.FULL, **base_config)).run(
                program, max_instructions=20_000)
        sampled = ParaVerserSystem(ParaVerserConfig(
            mode=CheckMode.SAMPLING, sampling_rate=0.25,
            **base_config)).run(program, max_instructions=20_000)
        assert sampled.checked_time_ns < full.checked_time_ns

    def test_sampled_segments_still_detect_faults(self):
        from repro.faults.campaign import FaultCampaign, covered_segments
        from repro.workloads.generator import build_program
        from repro.workloads.profiles import get_profile

        program = build_program(get_profile("deepsjeng"), seed=7)
        config = ParaVerserConfig(
            main=CoreInstance(X2, 3.0),
            checkers=[CoreInstance(A510, 2.0)],
            mode=CheckMode.SAMPLING, sampling_rate=0.5,
            seed=7, timeout_instructions=500,
        )
        system = ParaVerserSystem(config)
        run = system.execute(program, 10_000)
        result = system.run(program, run_result=run)
        covered = covered_segments(result)
        assert covered  # the sample is non-empty
        segments = system.segment(run)
        campaign = FaultCampaign(program, segments, A510)
        fault = StuckAtFault(FUKind.INT_ALU, 0, bit=0, stuck_at=1)
        outcome = campaign.run_trial(fault, covered=covered)
        assert outcome.detected
