"""Smoke-run the lighter example scripts end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

#: Examples cheap enough to execute in the unit-test suite; the heavier
#: ones (quickstart, fault_injection, noc_and_energy) are exercised by
#: their underlying APIs throughout tests/ and by the benchmark harness.
LIGHT_EXAMPLES = [
    "rollback_recovery.py",
    "adaptive_datacenter.py",
    "fleet_simulation.py",
]


@pytest.mark.parametrize("script", LIGHT_EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_rollback_example_restores_correctness():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "rollback_recovery.py")],
        capture_output=True, text=True, timeout=300,
    )
    assert "matches fault-free run: True" in result.stdout


def test_fleet_example_orders_strategies():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "fleet_simulation.py")],
        capture_output=True, text=True, timeout=300,
    )
    out = result.stdout
    assert "FleetScanner" in out and "ParaVerser" in out
    # ParaVerser's line reports 100 % detection.
    paraverser_line = next(line for line in out.splitlines()
                           if line.startswith("ParaVerser"))
    assert "100.0%" in paraverser_line


def test_adaptive_example_shows_mode_transitions():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "adaptive_datacenter.py")],
        capture_output=True, text=True, timeout=300,
    )
    out = result.stdout
    assert "full" in out and "opportunistic" in out and "disabled" in out
    assert "retire" in out
