"""Columnar traces: bit-identity vs the object path, packing round trips.

The gate for the columnar refactor: every consumer of a
:class:`~repro.cpu.columns.TraceColumns` must produce *exactly* what the
legacy per-``TraceEntry`` path produced, on every bundled benchmark —
same LSL records, same segment cuts, same timing, same bytes on disk.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.counter import SegmentBuilder
from repro.core.lsl import record_from_trace, records_from_columns
from repro.cpu import traceio
from repro.cpu.columns import TraceColumns, pack_column, unpack_column
from repro.cpu.config import CoreInstance
from repro.cpu.presets import A510, X2
from repro.cpu.timing import TimingModel
from repro.harness.runner import WorkloadCache
from repro.workloads.profiles import ALL_PROFILES

BUDGET = 2500
SEED = 7


@pytest.fixture(scope="module")
def cache():
    return WorkloadCache(max_instructions=BUDGET, seed=SEED,
                         trace_cache=None)


@pytest.mark.parametrize("name", sorted(ALL_PROFILES))
def test_columnar_matches_object_path(cache, name):
    """Golden gate, per bundled benchmark: columns == object path."""
    run = cache.get(name).run
    cols = run.columns
    entries = run.trace  # materialised object-path view

    # Entry list <-> columns conversions are lossless inverses.
    assert TraceColumns.from_entries(entries, run.program) == cols
    rebuilt = cols.entries(run.program)
    assert rebuilt == entries

    # Bulk LSL record extraction matches the per-entry extraction.
    want = [r for r in (record_from_trace(e, i)
                        for i, e in enumerate(entries)) if r is not None]
    assert records_from_columns(cols) == want

    # Sparse segmentation matches the dense walk, cut for cut —
    # including forced (interrupt) boundaries and a small timeout.
    builder = SegmentBuilder(2048, timeout_instructions=900)
    forced = {97, len(entries) // 2, len(entries)}
    sparse = builder.split(cols, forced)
    dense = builder.split(entries, forced)
    assert len(sparse) == len(dense)
    for a, b in zip(sparse, dense):
        assert (a.index, a.start, a.end, a.reason, a.lsl_bytes, a.lines) \
            == (b.index, b.start, b.end, b.reason, b.lsl_bytes, b.lines)
        assert a.records == b.records

    # Packed round trip is exact.
    assert TraceColumns.from_payload(cols.to_payload(), run.program) == cols


def test_binary_container_round_trip(cache):
    run = cache.get("x264").run  # includes BCOPY bulk rows
    restored = traceio.run_from_bytes(traceio.run_to_bytes(run))
    assert restored.columns == run.columns
    assert restored.instructions == run.instructions
    assert restored.end_checkpoint == run.end_checkpoint
    assert restored.class_counts == run.class_counts


def test_timing_identical_on_columns_and_entries(cache):
    run = cache.get("gcc").run
    for core in (CoreInstance(X2, 3.0), CoreInstance(A510, 2.0)):
        a = TimingModel(core).simulate(run.program, run.columns)
        b = TimingModel(core).simulate(run.program, run.trace)
        assert a.cycles == b.cycles
        assert a.mispredicts == b.mispredicts
        assert a.level_counts == b.level_counts


@pytest.mark.parametrize("itemsize", [1, 2, 4, 8])
def test_pack_unpack_round_trip(itemsize):
    top = (1 << (8 * itemsize)) - 1
    values = [0, 1, 7, top // 2, top]
    data = pack_column(values, itemsize)
    assert len(data) == len(values) * itemsize
    assert unpack_column(data, itemsize) == values
    assert pack_column([], itemsize) == b""
    assert unpack_column(b"", itemsize) == []


def test_extend_shifts_sparse_indices(cache):
    run = cache.get("x264").run
    cols = run.columns
    n = len(cols)
    merged = TraceColumns(run.program)
    merged.extend(cols)
    merged.extend(cols)
    assert len(merged) == 2 * n
    assert merged.pcs == cols.pcs * 2
    n_mem = len(cols.mem_rows)
    assert merged.mem_rows[:n_mem] == cols.mem_rows
    assert merged.mem_rows[n_mem:] == [(r[0] + n,) + r[1:]
                                       for r in cols.mem_rows]
    assert merged.br_rows[len(cols.br_rows):] == [
        (i + n, nxt, taken) for i, nxt, taken in cols.br_rows]
    assert set(merged.bulks) \
        == set(cols.bulks) | {i + n for i in cols.bulks}


_DIGEST_SCRIPT = """
import hashlib
from repro.harness.runner import WorkloadCache
from repro.cpu import columns

cache = WorkloadCache(max_instructions=%d, seed=%d, trace_cache=None)
payload = cache.get("x264").run.columns.to_payload()
h = hashlib.sha256()
for key in sorted(payload):
    value = payload[key]
    h.update(key.encode())
    h.update(value if isinstance(value, bytes) else str(value).encode())
print(h.hexdigest())
print(int(columns.HAVE_NUMPY))
""" % (BUDGET, SEED)


def _digest_in_subprocess(no_numpy: bool) -> tuple[str, bool]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    if no_numpy:
        env["REPRO_NO_NUMPY"] = "1"
    else:
        env.pop("REPRO_NO_NUMPY", None)
    out = subprocess.run([sys.executable, "-c", _DIGEST_SCRIPT], env=env,
                         capture_output=True, text=True, check=True)
    digest, have_numpy = out.stdout.split()
    return digest, bool(int(have_numpy))


def test_no_numpy_fallback_packs_identical_bytes():
    """REPRO_NO_NUMPY=1 (pure-python arrays) must produce byte-identical
    packed columns — the on-disk format cannot depend on the backend."""
    fallback_digest, have_numpy = _digest_in_subprocess(no_numpy=True)
    assert not have_numpy
    default_digest, _ = _digest_in_subprocess(no_numpy=False)
    assert fallback_digest == default_digest
