"""Tests for Hash Mode (section IV-I)."""

from hypothesis import given, strategies as st

from repro.core.hashmode import DIGEST_BYTES, HashStream, digest_segment
from repro.core.lsl import LSLAccess, LSLRecord, RecordKind


def test_digest_is_sha256_sized():
    stream = HashStream()
    assert len(stream.digest()) == DIGEST_BYTES == 32


def test_same_accesses_same_digest():
    a, b = HashStream(), HashStream()
    for stream in (a, b):
        stream.add_access(0x100, 8, None)
        stream.add_access(0x200, 4, 42)
    assert a.digest() == b.digest()


def test_different_address_different_digest():
    a, b = HashStream(), HashStream()
    a.add_access(0x100, 8, None)
    b.add_access(0x108, 8, None)
    assert a.digest() != b.digest()


def test_different_size_different_digest():
    a, b = HashStream(), HashStream()
    a.add_access(0x100, 8, None)
    b.add_access(0x100, 4, None)
    assert a.digest() != b.digest()


def test_different_store_data_different_digest():
    a, b = HashStream(), HashStream()
    a.add_access(0x100, 8, 1)
    b.add_access(0x100, 8, 2)
    assert a.digest() != b.digest()


def test_store_presence_changes_digest():
    a, b = HashStream(), HashStream()
    a.add_access(0x100, 8, None)
    b.add_access(0x100, 8, 0)
    assert a.digest() != b.digest()


def test_reordering_detected():
    # The paper requires the hash to catch reordering (section IV-I).
    a, b = HashStream(), HashStream()
    a.add_access(0x100, 8, 1)
    a.add_access(0x200, 8, 2)
    b.add_access(0x200, 8, 2)
    b.add_access(0x100, 8, 1)
    assert a.digest() != b.digest()


def test_repeated_same_bit_error_detected():
    # Weak checksums (e.g. XOR) cancel repeated errors; SHA-256 must not.
    a, b = HashStream(), HashStream()
    a.add_access(0x100, 8, 1)
    a.add_access(0x100, 8, 1)
    b.add_access(0x101, 8, 1)  # same bit flipped twice
    b.add_access(0x101, 8, 1)
    assert a.digest() != b.digest()


def test_digest_segment_covers_all_accesses():
    records = [
        LSLRecord(RecordKind.LOAD, (LSLAccess(0x100, 8, loaded=1),), 0),
        LSLRecord(RecordKind.GATHER, (
            LSLAccess(0x200, 8, loaded=1),
            LSLAccess(0x300, 8, loaded=2),
        ), 1),
    ]
    one = digest_segment(records)
    two = digest_segment(records[:1])
    assert one != two


def test_accesses_counted():
    stream = HashStream()
    stream.add_access(0x100, 8, None)
    stream.add_access(0x200, 8, 3)
    assert stream.accesses_digested == 2


@given(st.lists(st.tuples(
    st.integers(min_value=0, max_value=(1 << 64) - 1),
    st.integers(min_value=1, max_value=8),
    st.one_of(st.none(), st.integers(min_value=0, max_value=(1 << 64) - 1)),
), min_size=1, max_size=30))
def test_digest_deterministic_property(accesses):
    a, b = HashStream(), HashStream()
    for addr, size, stored in accesses:
        a.add_access(addr, size, stored)
        b.add_access(addr, size, stored)
    assert a.digest() == b.digest()


@given(
    st.lists(st.tuples(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=1, max_value=8),
    ), min_size=2, max_size=10, unique=True),
)
def test_any_single_perturbation_changes_digest(accesses):
    base = HashStream()
    for addr, size in accesses:
        base.add_access(addr, size, None)
    # Perturb the first access's address by one.
    other = HashStream()
    for i, (addr, size) in enumerate(accesses):
        other.add_access(addr + (1 if i == 0 else 0), size, None)
    assert base.digest() != other.digest()
