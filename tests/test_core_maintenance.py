"""Tests for predictive-maintenance health monitoring."""

import pytest

from repro.core.errors import DetectionEvent, DetectionKind
from repro.core.maintenance import CoreHealth, HealthMonitor


def event(segment=0):
    return DetectionEvent(DetectionKind.STORE_DATA, segment, "boom")


def feed(monitor, main, checker, checks, errors):
    for i in range(checks):
        monitor.observe_check(main, checker,
                              event(i) if i < errors else None)


def test_unknown_core_is_healthy():
    assert HealthMonitor().health_of("cpu9") is CoreHealth.HEALTHY


def test_too_few_checks_stay_healthy():
    monitor = HealthMonitor(min_checks=100)
    feed(monitor, "main0", "chk0", checks=50, errors=10)
    assert monitor.health_of("chk0") is CoreHealth.HEALTHY


def test_clean_core_healthy():
    monitor = HealthMonitor()
    feed(monitor, "main0", "chk0", checks=500, errors=0)
    assert monitor.health_of("main0") is CoreHealth.HEALTHY
    assert monitor.health_of("chk0") is CoreHealth.HEALTHY


def test_error_prone_core_retired_across_partners():
    monitor = HealthMonitor(retire_threshold=0.01, min_partners=2)
    # "bad" is implicated with two different partners: it is the culprit.
    feed(monitor, "bad", "peerA", checks=200, errors=6)
    feed(monitor, "bad", "peerB", checks=200, errors=6)
    assert monitor.health_of("bad") is CoreHealth.RETIRE


def test_single_partner_not_retired():
    # With only one partner the blame is ambiguous (section V): the core
    # stays a suspect rather than being pulled.
    monitor = HealthMonitor(retire_threshold=0.01, min_partners=2)
    feed(monitor, "maybe", "peerA", checks=400, errors=10)
    assert monitor.health_of("maybe") is CoreHealth.SUSPECT


def test_sporadic_implication_is_suspect():
    monitor = HealthMonitor(retire_threshold=0.05,
                            suspect_threshold=0.001)
    feed(monitor, "flaky", "peerA", checks=1000, errors=2)
    feed(monitor, "flaky", "peerB", checks=1000, errors=1)
    assert monitor.health_of("flaky") is CoreHealth.SUSPECT


def test_partner_of_bad_core_not_retired():
    monitor = HealthMonitor(retire_threshold=0.01, min_partners=2)
    feed(monitor, "bad", "innocentA", checks=300, errors=9)
    feed(monitor, "bad", "innocentB", checks=300, errors=9)
    feed(monitor, "innocentA", "cleanPeer", checks=2000, errors=0)
    # innocentA has errors only with "bad" (one partner): not RETIRE.
    assert monitor.health_of("innocentA") is not CoreHealth.RETIRE
    assert monitor.health_of("bad") is CoreHealth.RETIRE


def test_report_covers_all_cores():
    monitor = HealthMonitor()
    feed(monitor, "a", "b", checks=10, errors=0)
    report = monitor.report()
    assert set(report) == {"a", "b"}


def test_retirement_candidates_sorted_by_rate():
    monitor = HealthMonitor(retire_threshold=0.01, min_partners=2,
                            min_checks=10)
    feed(monitor, "worse", "p1", checks=100, errors=20)
    feed(monitor, "worse", "p2", checks=100, errors=20)
    feed(monitor, "bad", "p3", checks=100, errors=5)
    feed(monitor, "bad", "p4", checks=100, errors=5)
    candidates = monitor.retirement_candidates()
    assert [c.core_id for c in candidates][:2] == ["worse", "bad"]


def test_invalid_thresholds_rejected():
    with pytest.raises(ValueError):
        HealthMonitor(retire_threshold=0.001, suspect_threshold=0.01)


def test_implication_rate():
    monitor = HealthMonitor()
    feed(monitor, "x", "y", checks=100, errors=4)
    record = monitor._records["x"]
    assert record.implication_rate == pytest.approx(0.04)
    assert record.partners == {"y"}
