"""Tests for the fleet-scale detection simulation."""

import math

import pytest

from repro.baselines.swscan import FLEETSCANNER, RIPPLE, ScannerModel
from repro.fleet import (
    FleetConfig,
    FleetSimulator,
    ParaVerserStrategy,
    ScannerStrategy,
)


def small_fleet(seed=0, days=365, rate=2e-4):
    return FleetSimulator(
        FleetConfig(machines=5_000, fault_rate_per_machine_day=rate,
                    duration_days=days),
        seed=seed,
    )


class TestScannerStrategy:
    def test_daily_hazard_integrates_to_per_scan_coverage(self):
        strategy = ScannerStrategy(FLEETSCANNER)
        p = strategy.daily_detection_probability(0)
        days = FLEETSCANNER.scan_interval_days
        over_interval = 1.0 - (1.0 - p) ** days
        assert over_interval == pytest.approx(FLEETSCANNER.coverage, rel=1e-9)

    def test_name_comes_from_scanner(self):
        assert ScannerStrategy(RIPPLE).name == "Ripple"


class TestParaVerserStrategy:
    def test_high_daily_probability(self):
        strategy = ParaVerserStrategy()
        assert strategy.daily_detection_probability(0) > 0.8

    def test_detectable_fraction_reflects_masking(self):
        assert ParaVerserStrategy().detectable_fraction == \
            pytest.approx(0.76)


class TestMaskedAccounting:
    def test_masked_faults_counted_separately(self):
        result = small_fleet(seed=7).run(ParaVerserStrategy())
        assert result.masked > 0
        assert result.detectable == result.faults - result.masked
        assert result.detected <= result.detectable
        assert result.detection_fraction == pytest.approx(
            result.detected / result.detectable)

    def test_masked_faults_add_no_zero_latency_detections(self):
        # The old accounting counted masked faults as detections with
        # latency 0, deflating the mean and inflating the fraction.
        result = small_fleet(seed=7).run(ParaVerserStrategy())
        assert len(result.detection_latencies) == result.detected

    def test_all_masked_strategy_is_vacuously_covered(self):
        strategy = ParaVerserStrategy(effective_fraction=0.0)
        result = small_fleet(seed=8).run(strategy)
        assert result.faults > 0
        assert result.masked == result.faults
        assert result.detected == 0
        assert result.detection_fraction == 1.0
        assert result.sdc_events == 0.0
        assert math.isnan(result.mean_detection_days)

    def test_scanners_see_every_fault_as_detectable(self):
        result = small_fleet(seed=9).run(ScannerStrategy(FLEETSCANNER))
        assert result.masked == 0
        assert result.detectable == result.faults


class TestSimulation:
    def test_deterministic_by_seed(self):
        a = small_fleet(seed=3).run(ScannerStrategy(FLEETSCANNER))
        b = small_fleet(seed=3).run(ScannerStrategy(FLEETSCANNER))
        assert a.faults == b.faults
        assert a.sdc_events == b.sdc_events

    def test_fault_count_near_expectation(self):
        sim = small_fleet(seed=1)
        result = sim.run(ParaVerserStrategy())
        expected = (sim.config.machines
                    * sim.config.fault_rate_per_machine_day
                    * sim.config.duration_days)
        assert result.faults == pytest.approx(expected, rel=0.25)

    def test_paraverser_detects_faster_than_scanners(self):
        sim = small_fleet(seed=2)
        scanner = sim.run(ScannerStrategy(FLEETSCANNER))
        paraverser = sim.run(ParaVerserStrategy())
        assert paraverser.mean_detection_days < 1.0
        assert scanner.mean_detection_days > 20.0

    def test_paraverser_collapses_sdc_exposure(self):
        sim = small_fleet(seed=2)
        scanner = sim.run(ScannerStrategy(FLEETSCANNER))
        paraverser = sim.run(ParaVerserStrategy())
        assert paraverser.sdc_events < 0.05 * scanner.sdc_events

    def test_fleetscanner_beats_ripple(self):
        # In-production tests are cheaper but far less sensitive.
        sim = small_fleet(seed=4)
        fleet = sim.run(ScannerStrategy(FLEETSCANNER))
        ripple = sim.run(ScannerStrategy(RIPPLE))
        assert fleet.detection_fraction > ripple.detection_fraction

    def test_zero_coverage_scanner_never_detects(self):
        sim = small_fleet(seed=5, days=100)
        null = ScannerModel("null", coverage=0.0, scan_interval_days=1.0,
                            in_production=True)
        result = sim.run(ScannerStrategy(null))
        assert result.detected == 0
        assert result.detection_fraction == 0.0
        assert result.exposure_days > 0

    def test_compare_runs_same_arrivals(self):
        sim = small_fleet(seed=6)
        results = sim.compare([ScannerStrategy(FLEETSCANNER),
                               ParaVerserStrategy()])
        assert results[0].faults == results[1].faults

    def test_no_faults_edge_case(self):
        sim = FleetSimulator(
            FleetConfig(machines=1, fault_rate_per_machine_day=0.0,
                        duration_days=10))
        result = sim.run(ParaVerserStrategy())
        assert result.faults == 0
        assert result.detection_fraction == 1.0
        assert math.isnan(result.mean_detection_days)
