"""Additional unit coverage: LSL$ bookkeeping and Fig. 3 semantics."""

from hypothesis import given, strategies as st

from repro.core.lsl import LoadStoreLogCache, LSLAccess, LSLRecord, RecordKind
from repro.mem.cache import Cache, CacheConfig


def record(i):
    return LSLRecord(RecordKind.LOAD, (LSLAccess(i * 8, 8, loaded=i),), i)


class TestLogLifecycle:
    def test_bytes_used_tracks_lines(self):
        log = LoadStoreLogCache(1024)
        log.push_line([record(0)], line_count=1)
        log.push_line([record(1)], line_count=2)  # an oversized entry
        assert log.bytes_used == 3 * 64
        assert log.end_register == 2

    def test_capacity_lines(self):
        assert LoadStoreLogCache(4096).capacity_lines == 64

    def test_records_across_multiple_pushes_stay_ordered(self):
        log = LoadStoreLogCache(4096)
        log.push_line([record(0), record(1)])
        log.push_line([record(2)])
        assert [log.record_at(i).trace_index for i in range(3)] == [0, 1, 2]

    def test_checkpoint_armed_flag(self):
        log = LoadStoreLogCache(1024)
        assert log.checkpoint_armed is False
        log.checkpoint_armed = True
        log.reset()
        assert log.checkpoint_armed is False

    @given(st.lists(st.integers(min_value=1, max_value=3),
                    min_size=1, max_size=30))
    def test_end_register_equals_total_lines_minus_one(self, line_counts):
        log = LoadStoreLogCache(64 * 64)
        pushed = 0
        for i, count in enumerate(line_counts):
            if pushed + count >= log.capacity_lines:
                break
            log.push_line([record(i)], line_count=count)
            pushed += count
        assert log.end_register == pushed - 1


class TestRepurposedCacheCoexistence:
    """Fig. 3: log lines claim the data array from index 0; the rest of
    the cache keeps serving as a cache (demonstrated on the raw model)."""

    def test_cache_portion_still_functions(self):
        cache = Cache(CacheConfig("l1d", 4096, 4))
        # Fill some cache lines, then conceptually claim the first half
        # for the log: the cache model itself keeps working for the rest.
        for i in range(8):
            cache.access(0x10000 + i * 64)
        assert cache.probe(0x10000)
        # A checker thread needs no data cache (paper footnote 12): the
        # system flushes when repurposing.
        cache.flush()
        assert not cache.probe(0x10000)


class TestRecordEdgeCases:
    def test_zero_payload_nonrep_record_still_has_header(self):
        rec = LSLRecord(RecordKind.NONREP, (LSLAccess(0, 8, loaded=5),), 0)
        assert rec.entry_bytes() == 16

    def test_narrow_access_payload_rounding(self):
        for size in (1, 2, 4):
            rec = LSLRecord(RecordKind.LOAD,
                            (LSLAccess(0x100, size, loaded=1),), 0)
            assert rec.entry_bytes() == 16  # 8 header + 8 rounded payload

    def test_swap_with_narrow_size(self):
        rec = LSLRecord(RecordKind.SWAP,
                        (LSLAccess(0x100, 4, loaded=1, stored=2),), 0)
        # 4 B loaded + 4 B stored = 8 B payload exactly.
        assert rec.entry_bytes() == 16

    def test_hash_mode_nonrep_keeps_payload(self):
        rec = LSLRecord(RecordKind.NONREP, (LSLAccess(0, 8, loaded=5),), 0)
        assert rec.entry_bytes(hash_mode=True) == 8
