"""The detection-backend registry: lookup, protocol and fleet wiring."""

import pytest

from repro.detect import (
    BackendResult,
    DetectionBackend,
    LockstepBackend,
    ScannerBackend,
    SimulatedBackend,
    all_backends,
    backend_names,
    get_backend,
    register,
)
from repro.fleet import registry_strategies

EXPECTED = {
    "dsn18", "dual-lockstep", "paradox", "paraverser-full",
    "paraverser-opportunistic", "paraverser-sampling", "ripple",
    "swscan", "triple-lockstep",
}


def test_registry_contains_paper_schemes():
    assert EXPECTED <= set(backend_names())


def test_names_sorted_and_round_trip():
    names = backend_names()
    assert names == sorted(names)
    for name in names:
        assert get_backend(name).name == name
    assert [b.name for b in all_backends()] == names


def test_every_backend_satisfies_protocol():
    for backend in all_backends():
        assert isinstance(backend, DetectionBackend)
        assert backend.description


def test_unknown_backend_lists_known_names():
    with pytest.raises(KeyError, match="paraverser-full"):
        get_backend("does-not-exist")


def test_duplicate_registration_rejected():
    existing = get_backend("swscan")
    with pytest.raises(ValueError, match="swscan"):
        register(existing)


def test_backend_kinds():
    assert isinstance(get_backend("paraverser-full"), SimulatedBackend)
    assert isinstance(get_backend("dual-lockstep"), LockstepBackend)
    assert isinstance(get_backend("swscan"), ScannerBackend)


def test_simulated_backend_config_overrides():
    backend = get_backend("paraverser-full")
    config = backend.make_config(timeout_instructions=1234)
    assert config.timeout_instructions == 1234


def test_analytic_evaluation_shape(tmp_path):
    from repro.harness.runner import WorkloadCache

    cache = WorkloadCache(max_instructions=1000, trace_cache=None)
    report = get_backend("triple-lockstep").evaluate(cache, "mcf")
    assert isinstance(report, BackendResult)
    assert report.backend == "triple-lockstep"
    assert report.coverage == 1.0
    assert report.segments == 0 and report.result is None
    scan = get_backend("ripple").evaluate(cache, "mcf")
    assert scan.slowdown_percent == 0.0
    assert 0.0 < scan.coverage < 1.0


def test_fleet_strategies_come_from_registry():
    strategies = registry_strategies()
    # Structurally distinct hazards only; several backends may share one.
    assert len(strategies) == len(set(strategies)) >= 5
    assert {"ParaVerser", "FleetScanner", "Ripple", "dual-lockstep",
            "triple-lockstep"} <= {s.name for s in strategies}
    for strategy in strategies:
        p = strategy.daily_detection_probability(3)
        assert 0.0 <= p <= 1.0
