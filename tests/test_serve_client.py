"""Client-side connection hygiene under flaky servers.

The failure mode these tests pin: a retry loop (RouterClient failover,
scripts polling a restarting service) calling into a client whose
``_round_trip`` lost a socket on the way.  Every failed attempt must
fully tear the connection down — no fd creep across retries, and the
next call reconnects from scratch instead of reusing a broken socket.
"""

import os
import socket
import threading

import pytest

from repro.serve.client import EvalClient
from repro.serve.protocol import EvalRequest


def _req(**kwargs):
    kwargs.setdefault("backend", "paraverser-full")
    kwargs.setdefault("instructions", 4000)
    kwargs.setdefault("seed", 7)
    return EvalRequest(workload="exchange2", **kwargs)


def _open_fds():
    return len(os.listdir("/proc/self/fd"))


class FlappingListener:
    """Accepts connections and immediately closes them, forever."""

    def __init__(self):
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(16)
        self.port = self._sock.getsockname()[1]
        self.accepted = 0
        self._running = True
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        while self._running:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            self.accepted += 1
            conn.close()

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._running = False
        self._sock.close()
        self._thread.join(timeout=5)


requires_procfs = pytest.mark.skipif(
    not os.path.isdir("/proc/self/fd"),
    reason="fd accounting needs procfs")


class TestRetryHygiene:
    def test_flapping_listener_leaves_no_socket_behind(self):
        with FlappingListener() as listener:
            client = EvalClient("127.0.0.1", listener.port)
            with pytest.raises(ConnectionError):
                client.evaluate(_req(timeout_s=5.0))
            # The failed round trip tore the connection down entirely.
            assert client._sock is None
            assert client._file is None
            assert listener.accepted >= 1

    @requires_procfs
    def test_no_fd_creep_across_many_retries(self):
        with FlappingListener() as listener:
            client = EvalClient("127.0.0.1", listener.port)
            # Warm-up covers lazily-created fds (epoll, resolver).
            for _ in range(3):
                with pytest.raises((ConnectionError, OSError)):
                    client.evaluate(_req())
            before = _open_fds()
            for _ in range(50):
                with pytest.raises((ConnectionError, OSError)):
                    client.evaluate(_req())
            assert _open_fds() <= before

    @requires_procfs
    def test_refused_connection_leaks_nothing(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()  # nothing listens here now
        client = EvalClient("127.0.0.1", dead_port)
        with pytest.raises(OSError):
            client.evaluate(_req())
        assert client._sock is None
        before = _open_fds()
        for _ in range(20):
            with pytest.raises(OSError):
                client.evaluate(_req())
        assert _open_fds() <= before

    def test_next_call_reconnects_after_failure(self):
        """After a flap, the same client object works against a healthy
        server — no stale state survives the teardown."""
        with FlappingListener() as listener:
            client = EvalClient("127.0.0.1", listener.port)
            with pytest.raises(ConnectionError):
                client.evaluate(_req())
        # Point the same client at a one-shot healthy responder.
        from repro.serve import protocol

        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        client.port = server.getsockname()[1]

        def answer_ping():
            conn, _ = server.accept()
            line = conn.makefile("rb").readline()
            payload = protocol.decode_message(line)
            conn.sendall(protocol.encode_message(
                {"v": protocol.PROTOCOL_VERSION, "status": "ok",
                 "request_id": payload.get("request_id", ""),
                 "result": {"protocol": 1}}))
            conn.close()

        responder = threading.Thread(target=answer_ping, daemon=True)
        responder.start()
        try:
            assert client.ping() is True
        finally:
            responder.join(timeout=5)
            server.close()
            client.close()
