"""Tests for the hardware fault models."""

import math
import random

from hypothesis import given, strategies as st

from repro.faults.models import (
    INJECTABLE_UNITS,
    StuckAtFault,
    TransientFault,
    bits_to_float,
    float_to_bits,
    random_stuck_at,
)
from repro.isa.instructions import FUKind


class TestFloatBits:
    def test_roundtrip(self):
        for value in (0.0, 1.0, -2.5, 1e300, 5e-324):
            assert bits_to_float(float_to_bits(value)) == value

    def test_infinities(self):
        assert bits_to_float(float_to_bits(math.inf)) == math.inf
        assert bits_to_float(float_to_bits(-math.inf)) == -math.inf

    def test_nan_canonicalised(self):
        assert float_to_bits(math.nan) == 0x7FF8000000000000

    @given(st.floats(allow_nan=False))
    def test_roundtrip_property(self, value):
        assert bits_to_float(float_to_bits(value)) == value


class TestStuckAt:
    def test_sticks_bit_to_one(self):
        fault = StuckAtFault(FUKind.INT_ALU, 0, bit=3, stuck_at=1)
        assert fault.apply(FUKind.INT_ALU, 0, 0) == 8
        assert fault.apply(FUKind.INT_ALU, 0, 8) == 8

    def test_sticks_bit_to_zero(self):
        fault = StuckAtFault(FUKind.INT_ALU, 0, bit=3, stuck_at=0)
        assert fault.apply(FUKind.INT_ALU, 0, 0xF) == 0x7
        assert fault.apply(FUKind.INT_ALU, 0, 0x7) == 0x7

    def test_only_hits_matching_unit(self):
        fault = StuckAtFault(FUKind.INT_ALU, unit=1, bit=0, stuck_at=1)
        assert fault.apply(FUKind.INT_ALU, 0, 0) == 0  # other instance
        assert fault.apply(FUKind.INT_ALU, 1, 0) == 1

    def test_only_hits_matching_kind(self):
        fault = StuckAtFault(FUKind.FP, 0, bit=0, stuck_at=1)
        assert fault.apply(FUKind.INT_ALU, 0, 0) == 0

    def test_float_corruption_is_bitwise(self):
        # Sticking the MSB of the mantissa changes the value subtly — the
        # Meta FPU anecdote in miniature.
        fault = StuckAtFault(FUKind.FP, 0, bit=51, stuck_at=1)
        corrupted = fault.apply(FUKind.FP, 0, 1.0)
        assert corrupted != 1.0
        assert corrupted == 1.5

    def test_addresses_only_spares_data(self):
        fault = StuckAtFault(FUKind.LOAD, 0, bit=2, stuck_at=1,
                             addresses_only=True)
        assert fault.apply(FUKind.LOAD, 0, 0, is_address=False) == 0
        assert fault.apply(FUKind.LOAD, 0, 0, is_address=True) == 4

    def test_describe_mentions_location(self):
        fault = StuckAtFault(FUKind.FP_DIV, 1, bit=7, stuck_at=0)
        text = fault.describe()
        assert "fp_div[1]" in text and "bit 7" in text

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=0, max_value=63),
           st.integers(min_value=0, max_value=1))
    def test_idempotent_property(self, value, bit, stuck):
        fault = StuckAtFault(FUKind.INT_ALU, 0, bit=bit, stuck_at=stuck)
        once = fault.apply(FUKind.INT_ALU, 0, value)
        twice = fault.apply(FUKind.INT_ALU, 0, once)
        assert once == twice
        assert (once >> bit) & 1 == stuck


class TestTransient:
    def test_fires_exactly_once(self):
        fault = TransientFault(FUKind.INT_ALU, 0, bit=0, strike_at_use=3)
        values = [fault.apply(FUKind.INT_ALU, 0, 0) for _ in range(6)]
        assert values == [0, 0, 1, 0, 0, 0]
        assert fault.fired

    def test_other_units_do_not_advance_the_counter(self):
        fault = TransientFault(FUKind.INT_ALU, 0, bit=0, strike_at_use=2)
        fault.apply(FUKind.FP, 0, 0)
        fault.apply(FUKind.INT_ALU, 1, 0)
        assert fault.apply(FUKind.INT_ALU, 0, 0) == 0  # first real use
        assert fault.apply(FUKind.INT_ALU, 0, 0) == 1  # strikes

    def test_flips_float_bit(self):
        fault = TransientFault(FUKind.FP, 0, bit=51, strike_at_use=1)
        assert fault.apply(FUKind.FP, 0, 1.0) == 1.5

    def test_describe(self):
        fault = TransientFault(FUKind.FP, 0, bit=5, strike_at_use=9)
        assert "use 9" in fault.describe()


class TestRandomStuckAt:
    def test_respects_unit_counts(self):
        rng = random.Random(0)
        counts = {kind: 2 for kind in INJECTABLE_UNITS}
        for _ in range(100):
            fault = random_stuck_at(rng, counts)
            assert fault.fu in INJECTABLE_UNITS
            assert 0 <= fault.unit < 2
            assert fault.stuck_at in (0, 1)

    def test_address_faults_use_low_bits(self):
        rng = random.Random(1)
        for _ in range(200):
            fault = random_stuck_at(rng, {})
            if fault.addresses_only:
                assert fault.bit <= 39
            else:
                assert fault.bit <= 63

    def test_lsq_faults_marked_addresses_only(self):
        rng = random.Random(2)
        seen = set()
        for _ in range(300):
            fault = random_stuck_at(rng, {})
            seen.add((fault.fu, fault.addresses_only))
        assert (FUKind.LOAD, True) in seen
        assert (FUKind.STORE, True) in seen
        assert (FUKind.INT_ALU, False) in seen
