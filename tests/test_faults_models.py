"""Tests for the hardware fault models."""

import math
import random

from hypothesis import given, strategies as st

import pytest

from repro.faults.models import (
    FAULT_KINDS,
    FAULT_STUCK_AT,
    FAULT_TRANSIENT_LSQ,
    FAULT_TRANSIENT_REG,
    INJECTABLE_UNITS,
    TRANSIENT_MAX_STRIKE_USE,
    RegisterFault,
    StuckAtFault,
    TransientFault,
    bits_to_float,
    derive_trial_seed,
    fault_for_trial,
    float_to_bits,
    random_register_fault,
    random_stuck_at,
    random_transient_lsq,
)
from repro.isa.instructions import FUKind
from repro.isa.registers import RegisterCheckpoint


class TestFloatBits:
    def test_roundtrip(self):
        for value in (0.0, 1.0, -2.5, 1e300, 5e-324):
            assert bits_to_float(float_to_bits(value)) == value

    def test_infinities(self):
        assert bits_to_float(float_to_bits(math.inf)) == math.inf
        assert bits_to_float(float_to_bits(-math.inf)) == -math.inf

    def test_nan_canonicalised(self):
        assert float_to_bits(math.nan) == 0x7FF8000000000000

    @given(st.floats(allow_nan=False))
    def test_roundtrip_property(self, value):
        assert bits_to_float(float_to_bits(value)) == value


class TestStuckAt:
    def test_sticks_bit_to_one(self):
        fault = StuckAtFault(FUKind.INT_ALU, 0, bit=3, stuck_at=1)
        assert fault.apply(FUKind.INT_ALU, 0, 0) == 8
        assert fault.apply(FUKind.INT_ALU, 0, 8) == 8

    def test_sticks_bit_to_zero(self):
        fault = StuckAtFault(FUKind.INT_ALU, 0, bit=3, stuck_at=0)
        assert fault.apply(FUKind.INT_ALU, 0, 0xF) == 0x7
        assert fault.apply(FUKind.INT_ALU, 0, 0x7) == 0x7

    def test_only_hits_matching_unit(self):
        fault = StuckAtFault(FUKind.INT_ALU, unit=1, bit=0, stuck_at=1)
        assert fault.apply(FUKind.INT_ALU, 0, 0) == 0  # other instance
        assert fault.apply(FUKind.INT_ALU, 1, 0) == 1

    def test_only_hits_matching_kind(self):
        fault = StuckAtFault(FUKind.FP, 0, bit=0, stuck_at=1)
        assert fault.apply(FUKind.INT_ALU, 0, 0) == 0

    def test_float_corruption_is_bitwise(self):
        # Sticking the MSB of the mantissa changes the value subtly — the
        # Meta FPU anecdote in miniature.
        fault = StuckAtFault(FUKind.FP, 0, bit=51, stuck_at=1)
        corrupted = fault.apply(FUKind.FP, 0, 1.0)
        assert corrupted != 1.0
        assert corrupted == 1.5

    def test_addresses_only_spares_data(self):
        fault = StuckAtFault(FUKind.LOAD, 0, bit=2, stuck_at=1,
                             addresses_only=True)
        assert fault.apply(FUKind.LOAD, 0, 0, is_address=False) == 0
        assert fault.apply(FUKind.LOAD, 0, 0, is_address=True) == 4

    def test_describe_mentions_location(self):
        fault = StuckAtFault(FUKind.FP_DIV, 1, bit=7, stuck_at=0)
        text = fault.describe()
        assert "fp_div[1]" in text and "bit 7" in text

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=0, max_value=63),
           st.integers(min_value=0, max_value=1))
    def test_idempotent_property(self, value, bit, stuck):
        fault = StuckAtFault(FUKind.INT_ALU, 0, bit=bit, stuck_at=stuck)
        once = fault.apply(FUKind.INT_ALU, 0, value)
        twice = fault.apply(FUKind.INT_ALU, 0, once)
        assert once == twice
        assert (once >> bit) & 1 == stuck


class TestTransient:
    def test_fires_exactly_once(self):
        fault = TransientFault(FUKind.INT_ALU, 0, bit=0, strike_at_use=3)
        values = [fault.apply(FUKind.INT_ALU, 0, 0) for _ in range(6)]
        assert values == [0, 0, 1, 0, 0, 0]
        assert fault.fired

    def test_other_units_do_not_advance_the_counter(self):
        fault = TransientFault(FUKind.INT_ALU, 0, bit=0, strike_at_use=2)
        fault.apply(FUKind.FP, 0, 0)
        fault.apply(FUKind.INT_ALU, 1, 0)
        assert fault.apply(FUKind.INT_ALU, 0, 0) == 0  # first real use
        assert fault.apply(FUKind.INT_ALU, 0, 0) == 1  # strikes

    def test_flips_float_bit(self):
        fault = TransientFault(FUKind.FP, 0, bit=51, strike_at_use=1)
        assert fault.apply(FUKind.FP, 0, 1.0) == 1.5

    def test_describe(self):
        fault = TransientFault(FUKind.FP, 0, bit=5, strike_at_use=9)
        assert "use 9" in fault.describe()


def _checkpoint() -> RegisterCheckpoint:
    return RegisterCheckpoint(
        ints=tuple(range(32)),
        fps=tuple(float(i) for i in range(32)),
        pc=0x40,
    )


class TestRegisterFault:
    def test_flips_int_register_on_strike_segment(self):
        fault = RegisterFault(is_fp=False, reg=5, bit=3, strike_segment=2)
        checkpoint = _checkpoint()
        assert fault.corrupt_checkpoint(checkpoint, 1) is checkpoint
        struck = fault.corrupt_checkpoint(checkpoint, 2)
        assert struck.ints[5] == 5 ^ 8
        assert struck.ints[:5] == checkpoint.ints[:5]
        assert struck.fps == checkpoint.fps
        assert struck.pc == checkpoint.pc

    def test_flips_fp_register_bitwise(self):
        fault = RegisterFault(is_fp=True, reg=1, bit=51, strike_segment=0)
        struck = fault.corrupt_checkpoint(_checkpoint(), 0)
        assert struck.fps[1] == 1.5  # mantissa MSB of 1.0
        assert struck.ints == _checkpoint().ints

    def test_strikes_exactly_once(self):
        fault = RegisterFault(is_fp=False, reg=1, bit=0, strike_segment=0)
        checkpoint = _checkpoint()
        first = fault.corrupt_checkpoint(checkpoint, 0)
        assert first != checkpoint and fault.fired
        assert fault.corrupt_checkpoint(checkpoint, 0) is checkpoint

    def test_fresh_resets_fired(self):
        fault = RegisterFault(is_fp=False, reg=1, bit=0, strike_segment=0,
                              fired=True)
        assert fault.corrupt_checkpoint(_checkpoint(), 0) is not None
        renewed = fault.fresh()
        assert not renewed.fired
        assert renewed.corrupt_checkpoint(_checkpoint(), 0) != _checkpoint()

    def test_fu_surface_is_a_no_op(self):
        fault = RegisterFault(is_fp=False, reg=1, bit=0, strike_segment=0)
        assert fault.apply(FUKind.INT_ALU, 0, 42) == 42

    def test_describe_names_bank_and_segment(self):
        assert "x7" in RegisterFault(False, 7, 1, 4).describe()
        text = RegisterFault(True, 3, 1, 4).describe()
        assert "f3" in text and "segment 4" in text


class TestRandomDraws:
    def test_transient_lsq_bounds(self):
        rng = random.Random(3)
        for _ in range(200):
            fault = random_transient_lsq(rng, {FUKind.LOAD: 2})
            assert fault.fu in (FUKind.LOAD, FUKind.STORE)
            assert fault.addresses_only
            assert fault.bit < 40
            assert 1 <= fault.strike_at_use <= TRANSIENT_MAX_STRIKE_USE

    def test_register_fault_bounds(self):
        rng = random.Random(4)
        for _ in range(200):
            fault = random_register_fault(rng, segments=5)
            if fault.is_fp:
                assert 0 <= fault.reg < 32
            else:
                assert 1 <= fault.reg < 32  # x0 is hard-wired
            assert 0 <= fault.bit < 64
            assert 0 <= fault.strike_segment < 5

    def test_register_fault_tolerates_zero_segments(self):
        rng = random.Random(5)
        assert random_register_fault(rng, segments=0).strike_segment == 0


class TestTrialSeeding:
    def test_seed_is_stable_across_calls(self):
        assert derive_trial_seed(7, 3) == derive_trial_seed(7, 3)

    def test_seed_varies_with_every_input(self):
        base = derive_trial_seed(7, 3)
        assert derive_trial_seed(8, 3) != base
        assert derive_trial_seed(7, 4) != base
        assert derive_trial_seed(7, 3, site="other") != base

    @given(st.integers(min_value=0, max_value=1 << 32),
           st.integers(min_value=0, max_value=100_000))
    def test_seed_fits_64_bits(self, seed, trial):
        assert 0 <= derive_trial_seed(seed, trial) < 1 << 64

    def test_fault_for_trial_is_pure(self):
        counts = {kind: 2 for kind in INJECTABLE_UNITS}
        a = fault_for_trial(7, 5, counts, kinds=FAULT_KINDS, segments=4)
        b = fault_for_trial(7, 5, counts, kinds=FAULT_KINDS, segments=4)
        assert a == b

    def test_fault_for_trial_matches_kind(self):
        counts = {kind: 1 for kind in INJECTABLE_UNITS}
        seen = set()
        for trial in range(30):
            kind, fault = fault_for_trial(
                7, trial, counts, kinds=FAULT_KINDS, segments=4)
            seen.add(kind)
            expected = {
                FAULT_STUCK_AT: StuckAtFault,
                FAULT_TRANSIENT_LSQ: TransientFault,
                FAULT_TRANSIENT_REG: RegisterFault,
            }[kind]
            assert isinstance(fault, expected)
        assert seen == set(FAULT_KINDS)

    def test_fault_for_trial_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            fault_for_trial(7, 0, {}, kinds=("cosmic_ray",))


class TestRandomStuckAt:
    def test_respects_unit_counts(self):
        rng = random.Random(0)
        counts = {kind: 2 for kind in INJECTABLE_UNITS}
        for _ in range(100):
            fault = random_stuck_at(rng, counts)
            assert fault.fu in INJECTABLE_UNITS
            assert 0 <= fault.unit < 2
            assert fault.stuck_at in (0, 1)

    def test_address_faults_use_low_bits(self):
        rng = random.Random(1)
        for _ in range(200):
            fault = random_stuck_at(rng, {})
            if fault.addresses_only:
                assert fault.bit <= 39
            else:
                assert fault.bit <= 63

    def test_lsq_faults_marked_addresses_only(self):
        rng = random.Random(2)
        seen = set()
        for _ in range(300):
            fault = random_stuck_at(rng, {})
            seen.add((fault.fu, fault.addresses_only))
        assert (FUKind.LOAD, True) in seen
        assert (FUKind.STORE, True) in seen
        assert (FUKind.INT_ALU, False) in seen
