"""Cross-module consistency invariants (property-based)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.counter import SegmentBuilder
from repro.core.lsl import record_from_trace
from repro.core.lspu import LoadStorePushUnit
from repro.core.system import CheckMode, ParaVerserConfig, ParaVerserSystem
from repro.cpu.config import CoreInstance
from repro.cpu.presets import A510, X2
from repro.workloads.generator import build_program
from repro.workloads.profiles import WorkloadProfile, get_profile


def generated_trace(loads, stores, bulk, seed, instructions=2_500):
    profile = WorkloadProfile(
        name="prop", suite="test", loads=loads, stores=stores,
        branches=0.1, fp=0.05, fdiv=0.01, nonrep=0.005, gather=0.03,
        bulk=bulk, branch_entropy=0.2, working_set_kib=64,
        pointer_chase=0.2, stride=0, icache_blocks=4, block_instrs=32,
    )
    program = build_program(profile, seed=seed)
    config = ParaVerserConfig(
        main=CoreInstance(X2, 3.0), checkers=[CoreInstance(A510, 2.0)],
        seed=seed, timeout_instructions=400,
    )
    system = ParaVerserSystem(config)
    return system, program, system.execute(program, instructions)


@settings(max_examples=10, deadline=None)
@given(
    loads=st.floats(min_value=0.1, max_value=0.35),
    stores=st.floats(min_value=0.05, max_value=0.15),
    bulk=st.floats(min_value=0.0, max_value=0.01),
    seed=st.integers(min_value=0, max_value=30),
)
def test_lspu_packing_matches_segment_builder_preview(loads, stores, bulk,
                                                      seed):
    """The SegmentBuilder's line-count preview must equal what the LSPU
    actually pushes for the same records — the main core sizes segments
    for the checker's LSL$ based on this preview."""
    _, _, run = generated_trace(loads, stores, bulk, seed)
    builder = SegmentBuilder(lsl_capacity_bytes=8192,
                             timeout_instructions=300)
    for segment in builder.split(run.trace):
        lspu = LoadStorePushUnit()
        lines = 0
        for record in segment.records:
            for pushed in lspu.record(record):
                lines += pushed.lines
        flush = lspu.flush()
        if flush is not None:
            lines += flush.lines
        assert lines == segment.lines, (segment.index, lines, segment.lines)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=20))
def test_segment_records_equal_trace_records(seed):
    _, _, run = generated_trace(0.25, 0.1, 0.005, seed)
    builder = SegmentBuilder(lsl_capacity_bytes=32 * 1024,
                             timeout_instructions=500)
    segments = builder.split(run.trace)
    from_trace = [record_from_trace(e, i) for i, e in enumerate(run.trace)]
    from_trace = [r for r in from_trace if r is not None]
    from_segments = [r for seg in segments for r in seg.records]
    assert len(from_trace) == len(from_segments)
    for a, b in zip(from_trace, from_segments):
        assert a.kind is b.kind and a.trace_index == b.trace_index


class TestScheduleInvariants:
    def run_system(self, mode, checkers=None, **kw):
        program = build_program(get_profile("exchange2"), seed=9)
        config = ParaVerserConfig(
            main=CoreInstance(X2, 3.0),
            checkers=checkers or [CoreInstance(A510, 1.0)],
            mode=mode, seed=9, timeout_instructions=500, **kw,
        )
        return ParaVerserSystem(config).run(program,
                                            max_instructions=20_000)

    def test_full_mode_schedule_covers_every_segment(self):
        result = self.run_system(CheckMode.FULL)
        assert len(result.schedule) == result.segments
        assert all(s.covered for s in result.schedule)

    def test_slot_instruction_accounting_matches_coverage(self):
        for mode in (CheckMode.FULL, CheckMode.OPPORTUNISTIC,
                     CheckMode.SAMPLING):
            result = self.run_system(mode)
            checked = sum(s.instructions_checked
                          for s in result.checker_slots)
            assert checked == pytest.approx(
                result.coverage * result.instructions, rel=0.02)

    def test_schedule_times_monotonic(self):
        result = self.run_system(CheckMode.FULL)
        previous_end = 0.0
        for entry in result.schedule:
            assert entry.main_start_ns >= previous_end - 1e-6
            assert entry.main_end_ns >= entry.main_start_ns
            previous_end = entry.main_end_ns

    def test_checker_finish_after_segment_start(self):
        result = self.run_system(CheckMode.FULL)
        for entry in result.schedule:
            if entry.covered:
                assert entry.checker_finish_ns >= entry.main_start_ns

    def test_opportunistic_coverage_fraction_bounds(self):
        result = self.run_system(CheckMode.OPPORTUNISTIC)
        for entry in result.schedule:
            assert 0.0 <= entry.coverage_fraction <= 1.0

    def test_stalls_only_in_full_mode(self):
        assert self.run_system(CheckMode.OPPORTUNISTIC).stall_ns == 0.0
        assert self.run_system(CheckMode.SAMPLING).stall_ns == 0.0
