"""Tests for the Load-Store Push Unit."""

from repro.core.lsl import LSLAccess, LSLRecord, RecordKind
from repro.core.lspu import LoadStorePushUnit


def load_record(index=0, size=8):
    return LSLRecord(RecordKind.LOAD,
                     (LSLAccess(0x1000 + index * 8, size, loaded=index),),
                     index)


def big_record(index=0, accesses=5):
    """A scatter/gather record bigger than half a line."""
    return LSLRecord(RecordKind.GATHER, tuple(
        LSLAccess(0x1000 + i * 64, 8, loaded=i) for i in range(accesses)
    ), index)


def test_buffers_until_line_full():
    lspu = LoadStorePushUnit()
    pushed = []
    for i in range(3):
        pushed += lspu.record(load_record(i))
    assert pushed == []  # 3 x 16 B = 48 B < 64 B
    pushed += lspu.record(load_record(3))
    assert len(pushed) == 1  # exactly one full line
    assert pushed[0].bytes_used == 64
    assert len(pushed[0].records) == 4


def test_entry_spills_to_next_line():
    lspu = LoadStorePushUnit()
    lspu.record(load_record(0))
    lspu.record(load_record(1))
    lspu.record(load_record(2))  # 48 B used
    # A 24 B entry does not fit the remaining 16 B: line pushed, entry
    # starts the next one.
    swap = LSLRecord(RecordKind.SWAP,
                     (LSLAccess(0x2000, 8, loaded=1, stored=2),), 3)
    pushed = lspu.record(swap)
    assert len(pushed) == 1
    assert len(pushed[0].records) == 3
    assert lspu.buffered_bytes == swap.entry_bytes()


def test_flush_pushes_partial_line():
    lspu = LoadStorePushUnit()
    lspu.record(load_record(0))
    line = lspu.flush()
    assert line is not None
    assert line.flush is True
    assert line.bytes_used == 16
    assert lspu.buffered_bytes == 0


def test_flush_empty_returns_none():
    assert LoadStorePushUnit().flush() is None


def test_oversized_entry_occupies_multiple_lines():
    lspu = LoadStorePushUnit()
    record = big_record(accesses=5)  # 5 x 16 B = 80 B > 64 B line
    pushed = lspu.record(record)
    assert len(pushed) == 1
    assert pushed[0].lines == 2


def test_stats_account_bytes_and_lines():
    lspu = LoadStorePushUnit()
    for i in range(8):
        lspu.record(load_record(i))
    lspu.flush()
    assert lspu.stats.records == 8
    assert lspu.stats.lines_pushed == 2
    assert lspu.stats.bytes_pushed == 128
    assert lspu.stats.flushes == 0  # both lines were full, no partial flush


def test_hash_mode_stores_push_nothing():
    lspu = LoadStorePushUnit(hash_mode=True)
    store = LSLRecord(RecordKind.STORE,
                      (LSLAccess(0x100, 8, stored=1),), 0)
    assert lspu.record(store) == []
    assert lspu.buffered_bytes == 0
    assert lspu.stats.records == 1


def test_hash_mode_loads_pack_densely():
    # 8 B per load instead of 16: 8 loads per line.
    lspu = LoadStorePushUnit(hash_mode=True)
    pushed = []
    for i in range(8):
        pushed += lspu.record(load_record(i))
    assert len(pushed) == 1
    assert len(pushed[0].records) == 8
