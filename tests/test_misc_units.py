"""Miscellaneous unit coverage: ED2P math, scanners, tables, errors."""

import pytest

from repro.baselines.swscan import RIPPLE, ScannerModel
from repro.core.errors import ParaVerserError
from repro.cpu.config import CoreInstance, FUConfig
from repro.cpu.presets import A510, X2
from repro.harness.report import Table
from repro.power.ed2p import SweepPoint


class TestSweepPointMath:
    class FakeEnergy:
        checked_nj = 100.0

    class FakeResult:
        checked_time_ns = 10.0

    def test_ed2p_is_energy_times_delay_squared(self):
        point = SweepPoint(2.0, self.FakeResult(), self.FakeEnergy())
        assert point.ed2p == pytest.approx(100.0 * 10.0 ** 2)

    def test_lower_delay_wins_quadratically(self):
        class Slow:
            checked_time_ns = 20.0

        fast = SweepPoint(2.0, self.FakeResult(), self.FakeEnergy())
        slow = SweepPoint(1.4, Slow(), self.FakeEnergy())
        assert fast.ed2p < slow.ed2p


class TestScannerEdgeCases:
    def test_detection_within_window_alias(self):
        assert RIPPLE.detection_within_window(90) == \
            RIPPLE.detection_probability(90)

    def test_full_coverage_scanner_detects_first_scan(self):
        perfect = ScannerModel("perfect", 1.0, 7.0, False)
        assert perfect.detection_probability(7.0) == pytest.approx(1.0)
        assert perfect.expected_detection_days() == 7.0


class TestTableExtras:
    def test_notes_rendered(self):
        table = Table(title="t", notes=["a note"])
        table.add("row", "col", 1.0)
        assert "a note" in table.render()

    def test_column_values_for_missing_column(self):
        table = Table(title="t")
        table.add("row", "col", 1.0)
        assert table.column_values("other") == []

    def test_geomean_row_skips_empty_columns(self):
        table = Table(title="t")
        table.columns.append("empty")
        assert "empty" not in table.geomean_row()

    def test_non_percent_geomean(self):
        table = Table(title="t", unit="x")
        table.add("a", "col", 2.0)
        table.add("b", "col", 8.0)
        gm = table.geomean_row(from_percent=False)
        assert gm["col"] == pytest.approx(4.0)


class TestConfigExtras:
    def test_fu_config_defaults_pipelined(self):
        assert FUConfig(units=2, latency=3).interval == 1

    def test_voltage_at_flat_curve(self):
        from dataclasses import replace

        flat = replace(X2, min_freq_ghz=3.0, max_freq_ghz=3.0)
        assert flat.voltage_at(3.0) == flat.voltage_max

    def test_instance_voltage_property(self):
        inst = CoreInstance(A510, 2.0)
        assert inst.voltage == pytest.approx(A510.voltage_max)


def test_paraverser_error_is_an_exception():
    with pytest.raises(ParaVerserError):
        raise ParaVerserError("config problem")
