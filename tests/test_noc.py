"""Tests for the NoC substrate: mesh, Fig. 5 layout, traffic model."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.layout import fig5_layout
from repro.noc.mesh import FAST_NOC, SLOW_NOC, MeshNetwork
from repro.noc.traffic import MainTraffic, TrafficModel

COORDS = st.tuples(st.integers(min_value=0, max_value=3),
                   st.integers(min_value=0, max_value=3))


class TestMesh:
    def test_table1_noc_configs(self):
        assert FAST_NOC.width_bits == 256 and FAST_NOC.freq_ghz == 2.0
        assert SLOW_NOC.width_bits == 128 and SLOW_NOC.freq_ghz == 1.5

    def test_link_bandwidth(self):
        assert FAST_NOC.link_bandwidth_gbps == 64.0  # 32 B x 2 GHz
        assert SLOW_NOC.link_bandwidth_gbps == 24.0

    def test_route_xy_goes_x_first(self):
        links = MeshNetwork.route((0, 0), (2, 1))
        assert links == [((0, 0), (1, 0)), ((1, 0), (2, 0)),
                         ((2, 0), (2, 1))]

    def test_route_to_self_is_empty(self):
        assert MeshNetwork.route((1, 1), (1, 1)) == []

    @given(COORDS, COORDS)
    def test_route_length_is_manhattan_distance(self, src, dst):
        links = MeshNetwork.route(src, dst)
        manhattan = abs(src[0] - dst[0]) + abs(src[1] - dst[1])
        assert len(links) == manhattan

    @given(COORDS, COORDS)
    def test_route_links_are_adjacent(self, src, dst):
        for (a, b) in MeshNetwork.route(src, dst):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    def test_flow_accumulates_utilisation(self):
        mesh = MeshNetwork(FAST_NOC)
        mesh.add_flow((0, 0), (1, 0), 32.0)
        assert mesh.link_utilisation(((0, 0), (1, 0))) == pytest.approx(0.5)
        mesh.add_flow((0, 0), (1, 0), 16.0)
        assert mesh.link_utilisation(((0, 0), (1, 0))) == pytest.approx(0.75)

    def test_zero_or_negative_flow_ignored(self):
        mesh = MeshNetwork(FAST_NOC)
        mesh.add_flow((0, 0), (1, 0), 0.0)
        mesh.add_flow((0, 0), (0, 0), 5.0)
        assert mesh.max_utilisation() == 0.0

    def test_queueing_grows_with_load(self):
        light = MeshNetwork(FAST_NOC)
        heavy = MeshNetwork(FAST_NOC)
        light.add_flow((0, 0), (3, 0), 6.0)
        heavy.add_flow((0, 0), (3, 0), 48.0)
        assert heavy.queueing_ns((0, 0), (3, 0)) > \
            light.queueing_ns((0, 0), (3, 0))

    def test_queueing_clamped_at_saturation(self):
        mesh = MeshNetwork(FAST_NOC)
        mesh.add_flow((0, 0), (1, 0), 1000.0)
        finite = mesh.queueing_ns((0, 0), (1, 0))
        assert finite < 1000.0

    def test_unloaded_queueing_is_zero(self):
        mesh = MeshNetwork(FAST_NOC)
        assert mesh.queueing_ns((0, 0), (3, 3)) == 0.0

    def test_base_latency_counts_hops_and_serialisation(self):
        mesh = MeshNetwork(FAST_NOC)
        one_hop = mesh.base_latency_ns((0, 0), (1, 0))
        three_hops = mesh.base_latency_ns((0, 0), (3, 0))
        assert three_hops > one_hop

    def test_slow_noc_has_higher_latency(self):
        fast = MeshNetwork(FAST_NOC).base_latency_ns((0, 0), (2, 2))
        slow = MeshNetwork(SLOW_NOC).base_latency_ns((0, 0), (2, 2))
        assert slow > fast

    def test_reset(self):
        mesh = MeshNetwork(FAST_NOC)
        mesh.add_flow((0, 0), (1, 0), 10.0)
        mesh.reset()
        assert mesh.max_utilisation() == 0.0


class TestFig5Layout:
    def test_twenty_cores(self):
        layout = fig5_layout()
        counts = layout.cores_per_crosspoint()
        assert sum(counts.values()) == 20  # 4 mains + 16 checkers

    def test_four_llc_slices_in_the_middle(self):
        layout = fig5_layout()
        assert set(layout.llc_positions) == {(1, 1), (2, 1), (1, 2), (2, 2)}

    def test_corners_have_no_cores(self):
        layout = fig5_layout()
        counts = layout.cores_per_crosspoint()
        for corner in ((0, 0), (3, 0), (0, 3), (3, 3)):
            assert counts.get(corner, 0) == 0

    def test_non_corner_crosspoints_have_at_most_two_cores(self):
        layout = fig5_layout()
        for pos, count in layout.cores_per_crosspoint().items():
            if pos in layout.llc_positions:
                assert count == 1  # LLC slice + one core (checker i)
            else:
                assert count == 2

    def test_checker_i_sits_on_an_llc_crosspoint(self):
        # Checker i contends with demand traffic (used first, section VI).
        layout = fig5_layout()
        for main_id in range(4):
            first = layout.checkers_for(main_id, 1)[0]
            assert first in layout.llc_positions

    def test_checkers_adjacent_to_their_main(self):
        layout = fig5_layout()
        for main_id, main_pos in layout.main_positions.items():
            for checker in layout.checkers_for(main_id, 4):
                distance = abs(checker[0] - main_pos[0]) + \
                    abs(checker[1] - main_pos[1])
                assert distance <= 2  # same quadrant of the mesh

    def test_large_pools_cycle_positions(self):
        layout = fig5_layout()
        positions = layout.checkers_for(0, 12)
        assert len(positions) == 12
        assert set(positions) == set(layout.checker_positions[0])


class TestTrafficModel:
    def make(self, noc=FAST_NOC):
        return TrafficModel(noc, fig5_layout())

    def traffic(self, lsl=100_000, llc=5000):
        return MainTraffic(
            main_id=0, duration_ns=10_000.0, llc_accesses=llc,
            checker_llc_accesses=100, lsl_bytes=lsl, checkpoints=10,
            checkers_used=4,
        )

    def test_llc_extra_latency_positive_under_load(self):
        model = self.make()
        mesh = model.build([self.traffic(lsl=10_000_000)])
        assert model.llc_extra_latency_ns(mesh, 0) > 0.0

    def test_lsl_traffic_increases_latency(self):
        model = self.make()
        without = model.build([self.traffic()], include_lsl=False)
        with_lsl = model.build([self.traffic(lsl=2_000_000)])
        assert model.llc_extra_latency_ns(with_lsl, 0) > \
            model.llc_extra_latency_ns(without, 0)

    def test_slow_noc_larger_impact(self):
        fast = self.make(FAST_NOC)
        slow = self.make(SLOW_NOC)
        t = [self.traffic(lsl=1_000_000)]
        assert slow.llc_extra_latency_ns(slow.build(t), 0) > \
            fast.llc_extra_latency_ns(fast.build(t), 0)

    def test_push_latency_positive(self):
        model = self.make()
        mesh = model.build([self.traffic()])
        assert model.lsl_push_latency_ns(mesh, 0, 4) > 0.0

    def test_other_mains_traffic_contends(self):
        model = self.make()
        alone = model.build([self.traffic()])
        both = model.build([
            self.traffic(),
            MainTraffic(main_id=1, duration_ns=10_000.0,
                        llc_accesses=50_000, lsl_bytes=5_000_000,
                        checkpoints=10, checkers_used=4),
        ])
        assert model.llc_extra_latency_ns(both, 0) >= \
            model.llc_extra_latency_ns(alone, 0)

    def test_zero_duration_contributes_nothing(self):
        model = self.make()
        mesh = model.build([MainTraffic(main_id=0, duration_ns=0.0,
                                        llc_accesses=100)])
        assert model.llc_extra_latency_ns(mesh, 0) == 0.0
