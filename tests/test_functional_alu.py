"""Integer-ALU semantics of the functional executor."""

from hypothesis import given, strategies as st

from repro.cpu.functional import DirectMemoryPort, FunctionalCore, to_signed
from repro.isa.assembler import assemble
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.mem.memory import Memory

_MASK64 = (1 << 64) - 1


def run_snippet(text: str, max_instructions: int = 10_000):
    program = assemble(text)
    core = FunctionalCore(program, DirectMemoryPort(Memory(program.memory_image)))
    result = core.run(max_instructions)
    return core, result


def run_ops(*instructions, setup=None):
    """Run raw instructions with optional register setup."""
    instrs = list(instructions) + [Instruction(Opcode.HALT)]
    program = Program("t", instrs)
    program.validate()
    core = FunctionalCore(program, DirectMemoryPort(Memory()))
    if setup:
        for idx, value in setup.items():
            core.regs.write_int(idx, value)
    core.run(10_000)
    return core


def test_add():
    core = run_ops(Instruction(Opcode.ADD, rd=3, rs1=1, rs2=2),
                   setup={1: 5, 2: 7})
    assert core.regs.read_int(3) == 12


def test_add_wraps_64_bits():
    core = run_ops(Instruction(Opcode.ADD, rd=3, rs1=1, rs2=2),
                   setup={1: _MASK64, 2: 1})
    assert core.regs.read_int(3) == 0


def test_sub_wraps():
    core = run_ops(Instruction(Opcode.SUB, rd=3, rs1=1, rs2=2),
                   setup={1: 0, 2: 1})
    assert core.regs.read_int(3) == _MASK64


def test_logic_ops():
    core = run_ops(
        Instruction(Opcode.AND, rd=3, rs1=1, rs2=2),
        Instruction(Opcode.OR, rd=4, rs1=1, rs2=2),
        Instruction(Opcode.XOR, rd=5, rs1=1, rs2=2),
        setup={1: 0b1100, 2: 0b1010},
    )
    assert core.regs.read_int(3) == 0b1000
    assert core.regs.read_int(4) == 0b1110
    assert core.regs.read_int(5) == 0b0110


def test_shifts_mask_amount():
    core = run_ops(
        Instruction(Opcode.SLL, rd=3, rs1=1, rs2=2),
        setup={1: 1, 2: 64},  # shift amount masked to 0
    )
    assert core.regs.read_int(3) == 1


def test_srl_is_logical():
    core = run_ops(Instruction(Opcode.SRL, rd=3, rs1=1, rs2=2),
                   setup={1: 1 << 63, 2: 63})
    assert core.regs.read_int(3) == 1


def test_slt_signed():
    core = run_ops(Instruction(Opcode.SLT, rd=3, rs1=1, rs2=2),
                   setup={1: _MASK64, 2: 1})  # -1 < 1
    assert core.regs.read_int(3) == 1


def test_mul():
    core = run_ops(Instruction(Opcode.MUL, rd=3, rs1=1, rs2=2),
                   setup={1: 1 << 40, 2: 1 << 30})
    assert core.regs.read_int(3) == (1 << 70) & _MASK64


def test_div_truncates_toward_zero():
    core = run_ops(Instruction(Opcode.DIV, rd=3, rs1=1, rs2=2),
                   setup={1: (-7) & _MASK64, 2: 2})
    assert to_signed(core.regs.read_int(3)) == -3


def test_div_by_zero_returns_all_ones():
    core = run_ops(Instruction(Opcode.DIV, rd=3, rs1=1, rs2=2),
                   setup={1: 10, 2: 0})
    assert core.regs.read_int(3) == _MASK64


def test_rem_sign_follows_dividend():
    core = run_ops(Instruction(Opcode.REM, rd=3, rs1=1, rs2=2),
                   setup={1: (-7) & _MASK64, 2: 2})
    assert to_signed(core.regs.read_int(3)) == -1


def test_rem_by_zero_returns_dividend():
    core = run_ops(Instruction(Opcode.REM, rd=3, rs1=1, rs2=2),
                   setup={1: 42, 2: 0})
    assert core.regs.read_int(3) == 42


def test_immediates():
    core = run_ops(
        Instruction(Opcode.ADDI, rd=3, rs1=1, imm=-2),
        Instruction(Opcode.XORI, rd=4, rs1=1, imm=0xFF),
        Instruction(Opcode.SLLI, rd=5, rs1=1, imm=4),
        Instruction(Opcode.SRLI, rd=6, rs1=1, imm=1),
        setup={1: 10},
    )
    assert core.regs.read_int(3) == 8
    assert core.regs.read_int(4) == 10 ^ 0xFF
    assert core.regs.read_int(5) == 160
    assert core.regs.read_int(6) == 5


def test_lui_and_mov():
    core = run_ops(
        Instruction(Opcode.LUI, rd=1, imm=0xABCD0000),
        Instruction(Opcode.MOV, rd=2, rs1=1),
    )
    assert core.regs.read_int(2) == 0xABCD0000


def test_writes_to_x0_discarded():
    core = run_ops(Instruction(Opcode.ADDI, rd=0, rs1=0, imm=5))
    assert core.regs.read_int(0) == 0


@given(st.integers(min_value=0, max_value=_MASK64),
       st.integers(min_value=0, max_value=_MASK64))
def test_add_matches_python_semantics(a, b):
    core = run_ops(Instruction(Opcode.ADD, rd=3, rs1=1, rs2=2),
                   setup={1: a, 2: b})
    assert core.regs.read_int(3) == (a + b) & _MASK64


@given(st.integers(min_value=0, max_value=_MASK64),
       st.integers(min_value=0, max_value=_MASK64))
def test_div_rem_identity(a, b):
    """Property: dividend == divisor * quotient + remainder (signed)."""
    core = run_ops(
        Instruction(Opcode.DIV, rd=3, rs1=1, rs2=2),
        Instruction(Opcode.REM, rd=4, rs1=1, rs2=2),
        setup={1: a, 2: b},
    )
    sa, sb = to_signed(a), to_signed(b)
    q = to_signed(core.regs.read_int(3))
    r = to_signed(core.regs.read_int(4))
    if sb != 0:
        assert (sb * q + r) & _MASK64 == a
        assert abs(r) < abs(sb)
    else:
        assert q == -1 and r == sa


def test_to_signed_boundaries():
    assert to_signed(0) == 0
    assert to_signed(_MASK64) == -1
    assert to_signed(1 << 63) == -(1 << 63)
    assert to_signed((1 << 63) - 1) == (1 << 63) - 1
