"""Tests for the multi-main-core cluster simulation (Figs. 9-10)."""

import pytest

from repro.core.cluster import ClusterSystem
from repro.cpu.config import CoreInstance
from repro.cpu.presets import A510, X2
from repro.workloads.generator import build_parallel_programs, build_program
from repro.workloads.profiles import get_profile


def x2():
    return CoreInstance(X2, 3.0)


def a510s(n, freq=2.0):
    return [CoreInstance(A510, freq)] * n


class TestMultiprocess:
    @pytest.fixture(scope="class")
    def result(self):
        programs = [build_program(get_profile(n), seed=3)
                    for n in ("exchange2", "xz")]
        cluster = ClusterSystem(
            mains=[x2()] * 2,
            checkers_per_main=[a510s(2), a510s(2)],
            seed=3,
        )
        return cluster.run_multiprocess(programs, max_instructions=10_000)

    def test_one_result_per_main(self, result):
        assert len(result.per_main) == 2
        names = {r.workload for r in result.per_main}
        assert names == {"exchange2", "xz"}

    def test_total_slowdown_positive(self, result):
        assert result.slowdown >= 1.0

    def test_no_lsl_variant_not_slower(self, result):
        # Removing LSL NoC traffic can only help.
        assert result.slowdown_no_lsl <= result.slowdown + 1e-9

    def test_full_coverage_everywhere(self, result):
        assert result.coverage == pytest.approx(1.0)

    def test_program_count_must_match_mains(self):
        cluster = ClusterSystem(mains=[x2()], checkers_per_main=[a510s(1)])
        with pytest.raises(ValueError):
            cluster.run_multiprocess([])


class TestParallel:
    @pytest.fixture(scope="class")
    def result(self):
        profile = get_profile("canneal")
        programs = build_parallel_programs(profile, seed=4)
        cluster = ClusterSystem(
            mains=[x2()] * 2,
            checkers_per_main=[a510s(3), a510s(3)],
            seed=4,
        )
        return cluster.run_parallel(programs,
                                    max_instructions_per_thread=8_000,
                                    quantum=1000)

    def test_threads_verified_clean(self, result):
        # Racy shared-memory execution must still replay cleanly.
        for thread in result.per_main:
            assert thread.verify_results
            assert all(not r.detected for r in thread.verify_results)

    def test_interrupt_checkpoints_present(self, result):
        total_interrupts = sum(
            r.cut_reasons.get("interrupt", 0) for r in result.per_main)
        assert total_interrupts > 0

    def test_parallel_slowdown_reasonable(self, result):
        assert 1.0 <= result.parallel_slowdown < 2.0


class TestConstruction:
    def test_mismatched_pools_rejected(self):
        with pytest.raises(ValueError):
            ClusterSystem(mains=[x2()], checkers_per_main=[])

    def test_more_than_four_mains_rejected(self):
        with pytest.raises(ValueError):
            ClusterSystem(mains=[x2()] * 5,
                          checkers_per_main=[a510s(1)] * 5)

    def test_llc_statically_partitioned(self):
        cluster = ClusterSystem(
            mains=[x2()] * 4,
            checkers_per_main=[a510s(1)] * 4,
        )
        for system in cluster.systems:
            assert system.config.llc_share == pytest.approx(0.25)
        uncore = cluster.systems[0]._uncore(0.0)
        assert uncore.l3.config.size_bytes == 2 * 1024 * 1024
