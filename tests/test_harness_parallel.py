"""Parallel sweep engine: jobs>1 must match the serial path exactly."""

from repro.core.system import CheckMode
from repro.harness.experiments import a510, x2
from repro.harness.parallel import SweepCell, SweepRunner
from repro.harness.runner import WorkloadCache, env_jobs, make_config

BUDGET = 4000
SEED = 7


def _cells():
    """2 benchmarks x 2 configs, interleaved like a figure sweep."""
    cells = []
    for bench in ("exchange2", "xz"):
        cells.append(SweepCell(bench, "2xA510",
                               make_config([a510(2.0)] * 2)))
        cells.append(SweepCell(bench, "1xX2-opp",
                               make_config([x2(3.0)],
                                           CheckMode.OPPORTUNISTIC)))
    return cells


def _fingerprint(result):
    return (
        result.baseline_time_ns,
        result.checked_time_ns,
        result.slowdown,
        result.coverage,
        result.stall_ns,
        result.segments,
        result.lsl_bytes,
        result.noc_extra_llc_ns,
        result.main_timing.cycles,
        result.main_timing.mispredicts,
        result.baseline_timing.cycles,
    )


def test_jobs2_matches_serial():
    cells = _cells()
    serial = WorkloadCache(max_instructions=BUDGET, seed=SEED,
                           trace_cache=None, jobs=1)
    want = [_fingerprint(r) for r in serial.sweep(cells)]

    parallel = WorkloadCache(max_instructions=BUDGET, seed=SEED,
                             trace_cache=None, jobs=2)
    try:
        got = [_fingerprint(r) for r in parallel.sweep(cells)]
    finally:
        parallel.close()

    # Same ordering and the same numbers, cell for cell.
    assert got == want


def test_sweep_runner_preserves_cell_order():
    cells = _cells()
    runner = SweepRunner(jobs=2, max_instructions=BUDGET, seed=SEED)
    try:
        results = runner.run(cells)
    finally:
        runner.close()
    assert len(results) == len(cells)
    cache = WorkloadCache(max_instructions=BUDGET, seed=SEED,
                          trace_cache=None, jobs=1)
    for cell, result in zip(cells, results):
        want = cache.run_config(cell.benchmark, cell.config)
        assert _fingerprint(result) == _fingerprint(want)


def test_env_jobs(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert env_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert env_jobs() == 3
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert env_jobs() >= 1  # resolves to the CPU count


def test_sweep_serial_fallback_uses_no_pool():
    cache = WorkloadCache(max_instructions=BUDGET, seed=SEED,
                          trace_cache=None, jobs=1)
    results = cache.sweep(_cells())
    assert cache._runner is None  # never spawned a pool
    assert len(results) == 4
