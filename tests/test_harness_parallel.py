"""Parallel sweep engine: jobs>1 must match the serial path exactly."""

from repro.core.system import CheckMode
from repro.harness.experiments import a510, x2
from repro.harness.parallel import (
    _WORKER_CACHES,
    WORKER_CACHE_LIMIT,
    SweepCell,
    SweepRunner,
    env_stage_overlap,
    worker_cache,
)
from repro.harness.runner import WorkloadCache, env_jobs, make_config

BUDGET = 4000
SEED = 7


def _cells():
    """2 benchmarks x 2 configs, interleaved like a figure sweep."""
    cells = []
    for bench in ("exchange2", "xz"):
        cells.append(SweepCell(bench, "2xA510",
                               make_config([a510(2.0)] * 2)))
        cells.append(SweepCell(bench, "1xX2-opp",
                               make_config([x2(3.0)],
                                           CheckMode.OPPORTUNISTIC)))
    return cells


def _fingerprint(result):
    return (
        result.baseline_time_ns,
        result.checked_time_ns,
        result.slowdown,
        result.coverage,
        result.stall_ns,
        result.segments,
        result.lsl_bytes,
        result.noc_extra_llc_ns,
        result.main_timing.cycles,
        result.main_timing.mispredicts,
        result.baseline_timing.cycles,
    )


def test_jobs2_matches_serial():
    cells = _cells()
    serial = WorkloadCache(max_instructions=BUDGET, seed=SEED,
                           trace_cache=None, jobs=1)
    want = [_fingerprint(r) for r in serial.sweep(cells)]

    parallel = WorkloadCache(max_instructions=BUDGET, seed=SEED,
                             trace_cache=None, jobs=2)
    try:
        got = [_fingerprint(r) for r in parallel.sweep(cells)]
    finally:
        parallel.close()

    # Same ordering and the same numbers, cell for cell.
    assert got == want


def test_sweep_runner_preserves_cell_order():
    cells = _cells()
    runner = SweepRunner(jobs=2, max_instructions=BUDGET, seed=SEED)
    try:
        results = runner.run(cells)
    finally:
        runner.close()
    assert len(results) == len(cells)
    cache = WorkloadCache(max_instructions=BUDGET, seed=SEED,
                          trace_cache=None, jobs=1)
    for cell, result in zip(cells, results):
        want = cache.run_config(cell.benchmark, cell.config)
        assert _fingerprint(result) == _fingerprint(want)


def test_env_jobs(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert env_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert env_jobs() == 3
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert env_jobs() >= 1  # resolves to the CPU count


def test_sweep_serial_fallback_uses_no_pool():
    cache = WorkloadCache(max_instructions=BUDGET, seed=SEED,
                          trace_cache=None, jobs=1)
    results = cache.sweep(_cells())
    assert cache._runner is None  # never spawned a pool
    assert len(results) == 4


def test_staged_matches_grouped():
    """Stage-granular dispatch is a scheduling change, not a numeric one."""
    cells = _cells()
    staged = SweepRunner(jobs=2, max_instructions=BUDGET, seed=SEED,
                         stage_overlap=True)
    grouped = SweepRunner(jobs=2, max_instructions=BUDGET, seed=SEED,
                          stage_overlap=False)
    try:
        got_staged = [_fingerprint(r) for r in staged.run(cells)]
        got_grouped = [_fingerprint(r) for r in grouped.run(cells)]
    finally:
        staged.close()
        grouped.close()
    assert got_staged == got_grouped
    assert staged.last_stats["granularity"] == "stage"
    assert grouped.last_stats["granularity"] == "benchmark"


def test_staged_fills_pool_wider_than_benchmark_count():
    """jobs > #benchmarks: stage tasks outnumber benchmark groups."""
    cells = _cells()  # 2 benchmarks x 2 configs
    runner = SweepRunner(jobs=4, max_instructions=BUDGET, seed=SEED,
                         stage_overlap=True)
    try:
        results = runner.run(cells)
    finally:
        runner.close()
    cache = WorkloadCache(max_instructions=BUDGET, seed=SEED,
                          trace_cache=None, jobs=1)
    for cell, result in zip(cells, results):
        want = cache.run_config(cell.benchmark, cell.config)
        assert _fingerprint(result) == _fingerprint(want)
    stats = runner.last_stats
    # 2 trace tasks + 4 cell tasks, against 2 tasks in grouped mode.
    assert stats["tasks"] == 6
    assert stats["jobs"] == 4
    assert stats["elapsed_s"] > 0.0
    assert stats["busy_s"] > 0.0
    assert 0.0 < stats["occupancy"] <= 1.0


def test_env_stage_overlap(monkeypatch):
    monkeypatch.delenv("REPRO_STAGE_OVERLAP", raising=False)
    assert env_stage_overlap() is True
    monkeypatch.setenv("REPRO_STAGE_OVERLAP", "0")
    assert env_stage_overlap() is False
    monkeypatch.setenv("REPRO_STAGE_OVERLAP", "1")
    assert env_stage_overlap() is True


def test_worker_cache_is_a_bounded_lru():
    saved = dict(_WORKER_CACHES)
    _WORKER_CACHES.clear()
    try:
        for seed in range(WORKER_CACHE_LIMIT):
            worker_cache(100, seed)
        assert len(_WORKER_CACHES) == WORKER_CACHE_LIMIT
        # Touch the oldest entry so it becomes most-recently used...
        keep = worker_cache(100, 0)
        # ...then overflow: the evicted entry is the oldest *untouched*.
        worker_cache(100, WORKER_CACHE_LIMIT)
        assert len(_WORKER_CACHES) == WORKER_CACHE_LIMIT
        assert (100, 1) not in _WORKER_CACHES
        assert _WORKER_CACHES[(100, 0)] is keep
        # A hit returns the same object, not a rebuilt cache.
        assert worker_cache(100, 0) is keep
    finally:
        _WORKER_CACHES.clear()
        _WORKER_CACHES.update(saved)
