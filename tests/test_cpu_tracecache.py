"""Persistent trace cache: round-trip, keying, invalidation, determinism."""

import json

import pytest

from repro.core.system import CheckMode
from repro.cpu import tracecache, traceio
from repro.harness.experiments import a510
from repro.cpu.tracecache import TraceCache, cache_key, env_trace_cache
from repro.harness.runner import WorkloadCache, make_config
from repro.workloads.generator import build_program
from repro.workloads.profiles import get_profile

BENCH = "exchange2"
BUDGET = 4000
SEED = 7


@pytest.fixture()
def run_result():
    cache = WorkloadCache(max_instructions=BUDGET, seed=SEED,
                          trace_cache=None)
    return cache.get(BENCH).run


def test_traceio_round_trip(tmp_path, run_result):
    path = tmp_path / "run.json"
    traceio.save_run(run_result, path)
    loaded = traceio.load_run(path)
    assert loaded.instructions == run_result.instructions
    assert loaded.halted == run_result.halted
    assert loaded.end_checkpoint == run_result.end_checkpoint
    assert len(loaded.trace) == len(run_result.trace)
    assert all(a == b for a, b in zip(loaded.trace, run_result.trace))
    assert loaded.program.instructions == run_result.program.instructions


def test_cache_key_sensitivity():
    base = cache_key(BENCH, SEED, BUDGET)
    assert base == cache_key(BENCH, SEED, BUDGET)  # stable
    assert base != cache_key("gcc", SEED, BUDGET)
    assert base != cache_key(BENCH, SEED + 1, BUDGET)
    assert base != cache_key(BENCH, SEED, BUDGET + 1)


def test_cache_key_tracks_versions(monkeypatch):
    base = cache_key(BENCH, SEED, BUDGET)
    monkeypatch.setattr(tracecache, "CACHE_VERSION", 999)
    bumped = cache_key(BENCH, SEED, BUDGET)
    assert base != bumped
    monkeypatch.setattr(tracecache, "CACHE_VERSION", 1)
    monkeypatch.setattr(traceio, "TRACE_SEMANTICS_VERSION", 999)
    assert cache_key(BENCH, SEED, BUDGET) != base


def test_hit_miss_and_put(tmp_path, run_result):
    tc = TraceCache(tmp_path)
    assert tc.get(BENCH, SEED, BUDGET) is None  # cold miss
    tc.put(BENCH, SEED, BUDGET, run_result)
    hit = tc.get(BENCH, SEED, BUDGET)
    assert hit is not None
    assert hit.instructions == run_result.instructions
    # Different key parameters miss even with an entry on disk.
    assert tc.get(BENCH, SEED + 1, BUDGET) is None
    assert tc.get(BENCH, SEED, BUDGET + 1) is None


def test_corrupt_entry_is_evicted(tmp_path, run_result, caplog):
    tc = TraceCache(tmp_path)
    tc.put(BENCH, SEED, BUDGET, run_result)
    path = tc.path_for(BENCH, SEED, BUDGET)
    path.write_text("{not json")
    with caplog.at_level("WARNING", logger="repro.cpu.tracecache"):
        assert tc.get(BENCH, SEED, BUDGET) is None
    assert not path.exists()  # evicted, next put can repopulate
    # The eviction is observable, not silent: one warning naming the file.
    warning = [r for r in caplog.records if "corrupt" in r.getMessage()]
    assert len(warning) == 1
    assert str(path) in warning[0].getMessage()


def test_stale_format_version_is_evicted(tmp_path, run_result):
    tc = TraceCache(tmp_path)
    path = tc.path_for(BENCH, SEED, BUDGET).with_suffix(".json")
    payload = traceio.run_to_payload(run_result)
    payload = {"version": -1, "program": payload["program"]}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload))
    assert tc.get(BENCH, SEED, BUDGET) is None
    assert not path.exists()


def _legacy_entry_payload(run) -> dict:
    """A v1 JSON cache entry, as the old writer produced it."""
    return {
        "version": 1,
        "program": traceio.program_to_json(run.program),
        "trace": [[e.pc, e.addr, e.addr2, e.size, e.loaded, e.loaded2,
                   e.stored, e.nonrep, 1 if e.taken else 0, e.next_pc,
                   list(e.bulk) if e.bulk is not None else None]
                  for e in run.trace],
        "start_checkpoint": {"ints": list(run.start_checkpoint.ints),
                             "fps": list(run.start_checkpoint.fps),
                             "pc": run.start_checkpoint.pc},
        "end_checkpoint": {"ints": list(run.end_checkpoint.ints),
                           "fps": list(run.end_checkpoint.fps),
                           "pc": run.end_checkpoint.pc},
        "halted": run.halted,
        "instructions": run.instructions,
        "class_counts": run.class_counts,
    }


def test_legacy_json_entry_hits_and_migrates(tmp_path, run_result):
    """Entries written by the JSON-era cache keep hitting; ``migrate``
    rewrites them in the compressed binary format, bit-identically."""
    tc = TraceCache(tmp_path)
    path = tc.path_for(BENCH, SEED, BUDGET).with_suffix(".json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_legacy_entry_payload(run_result)))

    hit = tc.get(BENCH, SEED, BUDGET)
    assert hit is not None
    assert hit.columns == run_result.columns
    assert tc.info()["legacy_entries"] == 1

    assert tc.migrate() == 1
    assert not path.exists()
    assert tc.path_for(BENCH, SEED, BUDGET).exists()
    migrated = tc.get(BENCH, SEED, BUDGET)
    assert migrated is not None
    assert migrated.columns == run_result.columns
    info = tc.info()
    assert info["legacy_entries"] == 0 and info["current_entries"] == 1


def test_new_entry_shadows_legacy(tmp_path, run_result):
    tc = TraceCache(tmp_path)
    path = tc.path_for(BENCH, SEED, BUDGET).with_suffix(".json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("{not json")  # would be evicted if ever read
    tc.put(BENCH, SEED, BUDGET, run_result)
    assert tc.existing_path_for(BENCH, SEED, BUDGET) \
        == tc.path_for(BENCH, SEED, BUDGET)
    assert tc.get(BENCH, SEED, BUDGET) is not None
    assert path.exists()  # the shadowed legacy file was never touched


def test_entries_are_compressed_and_raw_binary_still_loads(tmp_path,
                                                           run_result):
    tc = TraceCache(tmp_path)
    tc.put(BENCH, SEED, BUDGET, run_result)
    path = tc.path_for(BENCH, SEED, BUDGET)
    data = path.read_bytes()
    raw = traceio.run_to_bytes(run_result)
    assert data[0] == 0x78  # zlib magic byte
    assert len(data) < len(raw)
    # A raw (uncompressed) binary container is sniffed and loads too.
    path.write_bytes(raw)
    hit = tc.get(BENCH, SEED, BUDGET)
    assert hit is not None
    assert hit.columns == run_result.columns


def test_stats_counters(tmp_path, run_result):
    from repro.obs import StatGroup

    tc = TraceCache(tmp_path)
    assert tc.get(BENCH, SEED, BUDGET) is None
    assert tc.stats.misses == 1 and tc.stats.hits == 0
    assert tc.stats.hit_rate == 0.0
    tc.put(BENCH, SEED, BUDGET, run_result)
    written = tc.stats.bytes_written
    assert written > 0
    assert tc.get(BENCH, SEED, BUDGET) is not None
    assert tc.stats.hits == 1
    assert tc.stats.bytes_read == written
    assert tc.stats.hit_rate == 0.5
    group = StatGroup("trace_cache")
    tc.stats.export_stats(group)
    flat = group.flatten()
    assert flat["hits"] == 1 and flat["misses"] == 1
    assert flat["bytes_written"] == written


def test_purge_empties_the_cache(tmp_path, run_result):
    tc = TraceCache(tmp_path)
    tc.put(BENCH, SEED, BUDGET, run_result)
    tc.put(BENCH, SEED + 1, BUDGET, run_result)
    assert tc.info()["entries"] == 2
    assert tc.purge() == 2
    assert tc.info()["entries"] == 0
    assert tc.get(BENCH, SEED, BUDGET) is None


def test_env_trace_cache(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
    assert env_trace_cache() is None
    monkeypatch.setenv("REPRO_TRACE_CACHE", "")
    assert env_trace_cache() is None
    monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
    assert env_trace_cache() is None
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
    tc = env_trace_cache()
    assert tc is not None and tc.directory == tmp_path


def test_cached_run_config_is_bit_identical(tmp_path):
    config = make_config([a510(2.0)] * 2, CheckMode.OPPORTUNISTIC)
    uncached = WorkloadCache(max_instructions=BUDGET, seed=SEED,
                             trace_cache=None)
    want = uncached.run_config(BENCH, config)

    tc = TraceCache(tmp_path)
    warm = WorkloadCache(max_instructions=BUDGET, seed=SEED, trace_cache=tc)
    warm.run_config(BENCH, config)  # populates the disk cache
    assert tc.get(BENCH, SEED, BUDGET) is not None

    cold = WorkloadCache(max_instructions=BUDGET, seed=SEED, trace_cache=tc)
    got = cold.run_config(BENCH, config)  # loads the trace from disk

    assert got.baseline_time_ns == want.baseline_time_ns
    assert got.checked_time_ns == want.checked_time_ns
    assert got.slowdown == want.slowdown
    assert got.coverage == want.coverage
    assert got.stall_ns == want.stall_ns
    assert got.segments == want.segments
    assert got.lsl_bytes == want.lsl_bytes
    assert got.main_timing.cycles == want.main_timing.cycles
    assert got.baseline_timing.cycles == want.baseline_timing.cycles


def test_round_tripped_program_reproduces_run():
    """A program loaded from JSON yields the same functional trace."""
    program = build_program(get_profile(BENCH), seed=SEED)
    round_tripped = traceio.program_from_json(
        traceio.program_to_json(program))
    assert round_tripped.instructions == program.instructions
    assert round_tripped.memory_image == program.memory_image


def test_concurrent_writers_never_publish_torn_entries(tmp_path,
                                                       run_result):
    """Same-process concurrent writers (serve pool tasks, threads) must
    each use a unique temp file: readers only ever see complete entries,
    and no temp files survive."""
    import threading

    tc = TraceCache(tmp_path)
    errors = []
    stop = threading.Event()

    def writer():
        try:
            for _ in range(5):
                tc.put(BENCH, SEED, BUDGET, run_result)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def reader():
        try:
            while not stop.is_set():
                hit = tc.get(BENCH, SEED, BUDGET)
                # A miss (not-yet-written) is fine; a torn entry is not.
                if hit is not None:
                    assert hit.instructions == run_result.instructions
                    assert len(hit.trace) == len(run_result.trace)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    writers = [threading.Thread(target=writer) for _ in range(6)]
    readers = [threading.Thread(target=reader) for _ in range(2)]
    for thread in readers + writers:
        thread.start()
    for thread in writers:
        thread.join()
    stop.set()
    for thread in readers:
        thread.join()

    assert not errors
    final = tc.get(BENCH, SEED, BUDGET)
    assert final is not None
    assert final.instructions == run_result.instructions
    leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
    assert leftovers == []


def test_put_failure_leaves_no_temp_files(tmp_path, run_result,
                                          monkeypatch):
    tc = TraceCache(tmp_path)

    def failing_replace(src, dst):
        raise OSError("disk full")

    # Fail at publication time, after the temp file has been written,
    # exercising the cleanup path.
    monkeypatch.setattr(tracecache.os, "replace", failing_replace)
    with pytest.raises(OSError):
        tc.put(BENCH, SEED, BUDGET, run_result)
    assert list(tmp_path.iterdir()) == []
