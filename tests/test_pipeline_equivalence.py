"""Bit-identity of the staged pipeline against pre-refactor goldens.

``tests/golden/backend_equivalence.json`` was captured from the
pre-pipeline monolithic ``ParaVerserSystem`` (commit 8cfb178) at 30 k
instructions: three SPEC profiles under paraverser-full / opportunistic
(at the standard 4xA510@2GHz pool and a stressed 1xA510@1.0 pool) plus
the analytic dual-lockstep and swscan baselines.  The refactor moved
code, not numerics — every float must match exactly, so comparisons use
``==``, not ``pytest.approx``.
"""

import json
from pathlib import Path

import pytest

from repro.core.system import CheckMode
from repro.cpu.config import CoreInstance
from repro.cpu.presets import A510
from repro.detect import get_backend
from repro.harness.runner import WorkloadCache, main_x2, make_config
from repro.power.energy import energy_report

GOLDEN = Path(__file__).parent / "golden" / "backend_equivalence.json"

_DATA = json.loads(GOLDEN.read_text())
CELLS = _DATA["cells"]
PROFILES = sorted({key.split("/")[0] for key in CELLS})
FIELDS = ("slowdown_percent", "coverage", "energy_overhead_percent",
          "segments", "verified_clean")


@pytest.fixture(scope="module")
def cache():
    shared = WorkloadCache(max_instructions=_DATA["max_instructions"],
                           seed=_DATA["seed"], trace_cache=None, jobs=1)
    yield shared
    shared.close()


def _assert_cell(key, measured):
    golden = CELLS[key]
    for field in FIELDS:
        assert measured[field] == golden[field], (
            f"{key}.{field}: measured {measured[field]!r} "
            f"!= golden {golden[field]!r}")


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("backend", ["paraverser-full",
                                     "paraverser-opportunistic"])
def test_registry_backend_matches_golden(cache, profile, backend):
    report = get_backend(backend).evaluate(cache, profile)
    _assert_cell(f"{profile}/{backend}", {
        "slowdown_percent": report.slowdown_percent,
        "coverage": report.coverage,
        "energy_overhead_percent": report.energy_overhead_percent,
        "segments": report.segments,
        "verified_clean": report.verified_clean,
    })


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("mode", [CheckMode.FULL, CheckMode.OPPORTUNISTIC])
def test_stressed_pool_matches_golden(cache, profile, mode):
    """The 1xA510@1.0 cells stress stalls (full) / coverage drops (opp)."""
    backend = ("paraverser-full" if mode is CheckMode.FULL
               else "paraverser-opportunistic")
    config = make_config([CoreInstance(A510, 1.0)], mode,
                         timeout_instructions=_DATA["timeout"])
    result = cache.run_config(profile, config)
    energy = energy_report(result, main_x2())
    _assert_cell(f"{profile}/{backend}/1xA510@1.0", {
        "slowdown_percent": result.overhead_percent,
        "coverage": result.coverage,
        "energy_overhead_percent": energy.overhead_percent,
        "segments": result.segments,
        "verified_clean": all(not r.detected
                              for r in result.verify_results),
    })


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("backend", ["dual-lockstep", "swscan"])
def test_analytic_backend_matches_golden(cache, profile, backend):
    report = get_backend(backend).evaluate(cache, profile)
    _assert_cell(f"{profile}/{backend}", {
        "slowdown_percent": report.slowdown_percent,
        "coverage": report.coverage,
        "energy_overhead_percent": report.energy_overhead_percent,
        "segments": report.segments,
        "verified_clean": report.verified_clean,
    })


def test_golden_covers_every_cell():
    """Every golden cell is exercised by one of the tests above."""
    expected = set()
    for profile in PROFILES:
        for backend in ("paraverser-full", "paraverser-opportunistic"):
            expected.add(f"{profile}/{backend}")
            expected.add(f"{profile}/{backend}/1xA510@1.0")
        expected.update({f"{profile}/dual-lockstep", f"{profile}/swscan"})
    assert expected == set(CELLS)
