#!/usr/bin/env python3
"""NoC sensitivity, Hash Mode, and the energy/area story.

Reproduces the paper's operator-facing trade-off in one script:

* Fig. 11 in miniature: an underprovisioned NoC (128-bit @ 1.5 GHz) hurts
  LSL-heavy workloads; SHA-256 Hash Mode recovers most of it.
* Section VII-E: per-core storage overhead (the 1064 B budget), the 35 %
  area cost of prior work's dedicated checkers, and energy overheads of
  the main checker configurations.
"""

from repro.core import CheckMode, ParaVerserConfig, ParaVerserSystem
from repro.cpu import A35, A510, CoreInstance, X2
from repro.noc import FAST_NOC, SLOW_NOC
from repro.power import dedicated_checker_area, energy_report, storage_overhead
from repro.workloads import build_program, get_profile

INSTRUCTIONS = 40_000


def run(name: str, noc, hash_mode: bool) -> float:
    program = build_program(get_profile(name), seed=3)
    config = ParaVerserConfig(
        main=CoreInstance(X2, 3.0),
        checkers=[CoreInstance(X2, 3.0)],
        mode=CheckMode.FULL,
        hash_mode=hash_mode,
        noc=noc,
        seed=3,
    )
    result = ParaVerserSystem(config).run(program,
                                          max_instructions=INSTRUCTIONS)
    return result.overhead_percent


def main() -> None:
    print("== NoC sensitivity (Fig. 11 in miniature) ==")
    for name in ("lbm", "xz", "exchange2"):
        slow = run(name, SLOW_NOC, hash_mode=False)
        hashed = run(name, SLOW_NOC, hash_mode=True)
        fast = run(name, FAST_NOC, hash_mode=False)
        print(f"  {name:10s} slowNoC {slow:6.2f}%   "
              f"slowNoC+hash {hashed:6.2f}%   fastNoC {fast:6.2f}%")

    print("\n== Per-core storage overhead (section VII-E) ==")
    overhead = storage_overhead(X2)
    for component, bits in overhead.breakdown().items():
        print(f"  {component:32s} {bits:6d} bits")
    print(f"  {'TOTAL':32s} {overhead.total_bytes:6.0f} bytes "
          "(paper: 1064 B)")

    print("\n== Dedicated-checker area (prior work) ==")
    area = dedicated_checker_area(X2, A35, 16)
    print(f"  16 x A35 = {area.checkers_area_mm2:.2f} mm^2 against an "
          f"X2 at {area.main_area_mm2:.2f} mm^2 "
          f"-> {area.overhead_percent:.0f}% area overhead (paper: 35%)")

    print("\n== Energy overhead of checking (section VII-E) ==")
    program = build_program(get_profile("exchange2"), seed=3)
    for label, checkers in [
        ("1xX2@3GHz (lockstep-like)", [CoreInstance(X2, 3.0)]),
        ("2xX2@1.5GHz", [CoreInstance(X2, 1.5)] * 2),
        ("4xA510@2GHz", [CoreInstance(A510, 2.0)] * 4),
        ("4xA510@1.4GHz (toward ED2P)", [CoreInstance(A510, 1.4)] * 4),
    ]:
        config = ParaVerserConfig(main=CoreInstance(X2, 3.0),
                                  checkers=checkers, seed=3)
        result = ParaVerserSystem(config).run(
            program, max_instructions=INSTRUCTIONS)
        report = energy_report(result, config.main)
        print(f"  {label:28s} energy +{report.overhead_percent:5.1f}%   "
              f"slowdown +{result.overhead_percent:.2f}%")


if __name__ == "__main__":
    main()
