#!/usr/bin/env python3
"""Checking a racy 2-thread workload (section IV-J).

PARSEC-style canneal: two threads over shared memory with SWP-based
synchronisation and genuinely racy loads/stores.  Because the main cores
log the *observed* value of every load, the checkers replay every race
exactly as it happened — no synchronisation between checkers is needed,
and a healthy replay always verifies clean.
"""

from repro.core import CheckMode
from repro.core.cluster import ClusterSystem
from repro.cpu import A510, CoreInstance, X2
from repro.workloads import build_parallel_programs, get_profile


def main() -> None:
    profile = get_profile("canneal")
    programs = build_parallel_programs(profile, seed=5)
    print(f"workload: {profile.name} ({profile.threads} threads) — "
          f"{profile.description}")

    cluster = ClusterSystem(
        mains=[CoreInstance(X2, 3.0)] * profile.threads,
        checkers_per_main=[[CoreInstance(A510, 2.0)] * 3] * profile.threads,
        mode=CheckMode.FULL,
        seed=5,
    )
    result = cluster.run_parallel(programs,
                                  max_instructions_per_thread=20_000)

    print(f"parallel slowdown (critical path): "
          f"{(result.parallel_slowdown - 1) * 100:.2f}%")
    print(f"coverage: {result.coverage * 100:.1f}%")
    for thread in result.per_main:
        swaps = sum(
            1 for seg in thread.schedule if seg.covered
        )
        print(f"  {thread.workload}: {thread.segments} segments "
              f"({thread.cut_reasons}), {len(thread.verify_results)} "
              "replayed end-to-end and verified clean")

    # The forced boundaries at context-switch points are what make each
    # register checkpoint single-process (section IV-J).
    interrupts = sum(
        thread.cut_reasons.get("interrupt", 0) for thread in result.per_main
    )
    print(f"checkpoints forced by scheduler interrupts: {interrupts}")


if __name__ == "__main__":
    main()
