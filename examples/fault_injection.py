#!/usr/bin/env python3
"""Fault-injection study on a SPEC-like workload (Fig. 8 in miniature).

Runs deepsjeng (chess) under *opportunistic* checking with a single slow
A510 checker — the cheapest configuration the paper studies — then
injects random stuck-at faults into the checker per the standard
hard-error model and reports detection coverage, masking, and latency,
contrasting against the software scanners deployed in production today.
"""

from repro.baselines import FLEETSCANNER, RIPPLE
from repro.core import CheckMode, ParaVerserConfig, ParaVerserSystem
from repro.cpu import A510, CoreInstance, X2
from repro.faults import FaultCampaign, covered_segments
from repro.workloads import build_program, get_profile

INSTRUCTIONS = 40_000
TRIALS = 30


def main() -> None:
    profile = get_profile("deepsjeng")
    program = build_program(profile, seed=11)

    config = ParaVerserConfig(
        main=CoreInstance(X2, 3.0),
        checkers=[CoreInstance(A510, 1.0)],
        mode=CheckMode.OPPORTUNISTIC,
        seed=11,
    )
    system = ParaVerserSystem(config)
    run = system.execute(program, max_instructions=INSTRUCTIONS)
    result = system.run(program, run_result=run)
    segments = system.segment(run)

    print(f"workload: {profile.name} — {profile.description}")
    print(f"opportunistic slowdown:    {result.overhead_percent:.2f}%")
    print(f"instruction coverage:      {result.coverage * 100:.1f}%")

    campaign = FaultCampaign(program, segments, A510)
    outcome = campaign.run(TRIALS, seed=42, covered=covered_segments(result))

    print(f"\ninjected faults:           {outcome.injected}")
    print(f"detected:                  {outcome.detected}")
    print(f"masked (never perturbed):  {outcome.masked}")
    print(f"detection rate (all):      {outcome.detection_rate_all * 100:.0f}%"
          "   (paper: ~76% detected, rest masked)")
    print("detection rate (effective):"
          f" {outcome.detection_rate_effective * 100:.0f}%")
    if outcome.detected:
        print(f"mean detection latency:    "
              f"{outcome.mean_detection_latency:,.0f} main-core instructions")

    print("\nfirst few injections:")
    for trial in outcome.trials[:8]:
        status = ("DETECTED (" + trial.event.kind.value + ")"
                  if trial.detected else
                  "masked" if trial.masked else "missed by coverage")
        print(f"  {trial.fault.describe():55s} -> {status}")

    # Contrast with the deployed software scanners (section III-A).
    print("\ntime to detect a permanent fault (expected):")
    print(f"  FleetScanner: {FLEETSCANNER.expected_detection_days():.0f} days"
          f" ({FLEETSCANNER.detection_probability(180) * 100:.0f}% within 6 months)")
    print(f"  Ripple:       {RIPPLE.expected_detection_days():.0f} days"
          f" ({RIPPLE.detection_probability(180) * 100:.0f}% within 6 months)")
    print("  ParaVerser:   first checked faulty computation "
          "(sub-second at data-center rates)")


if __name__ == "__main__":
    main()
