#!/usr/bin/env python3
"""Quickstart: check a small program with ParaVerser and catch a fault.

Demonstrates the core loop of the paper in a few lines:

1. write a program (tiny assembly dialect),
2. run it on a simulated X2 main core with four A510 checker cores in
   full-coverage mode,
3. inspect the slowdown/energy the checking cost,
4. inject a stuck-at fault into a checker's FPU and watch it get caught.
"""

from repro.core import CheckMode, CheckerCore, ParaVerserConfig, ParaVerserSystem
from repro.cpu import A510, CoreInstance, X2
from repro.faults import StuckAtFault
from repro.isa import assemble
from repro.isa.instructions import FUKind
from repro.power import energy_report

PROGRAM = assemble(
    """
    # Sum 1/i for i = 20000..1 with a running product, plus memory traffic.
        addi x1, x0, 20000       # loop counter
        lui  x3, 0x4000000       # array base
        addi x4, x0, 1
        fcvt.if f1, x4           # f1 = 1.0
        fmov f2, f1              # accumulator
    loop:
        fcvt.if f3, x1
        fdiv f4, f1, f3          # 1/i
        fadd f2, f2, f4
        st   x1, 0(x3)
        ld   x5, 0(x3)
        add  x6, x6, x5
        addi x3, x3, 8
        subi x1, x1, 1
        bne  x1, x0, loop
        halt
    """,
    name="quickstart",
)


def main() -> None:
    config = ParaVerserConfig(
        main=CoreInstance(X2, 3.0),
        checkers=[CoreInstance(A510, 2.0)] * 4,
        mode=CheckMode.FULL,
    )
    system = ParaVerserSystem(config)
    result = system.run(PROGRAM, max_instructions=60_000)

    print(f"workload:            {result.workload}")
    print(f"instructions:        {result.instructions}")
    print(f"segments checked:    {result.segments} "
          f"(cut by {result.cut_reasons})")
    print(f"slowdown:            {result.overhead_percent:.2f}%")
    print(f"coverage:            {result.coverage * 100:.1f}%")
    print(f"LSL traffic:         {result.lsl_bytes / 1024:.1f} KiB")
    energy = energy_report(result, config.main)
    print(f"energy overhead:     {energy.overhead_percent:.1f}% "
          "(vs. power-gated checkers)")

    # Now inject a hard fault into one checker's FP divider: bit 52 of its
    # output sticks at 1 (compare the Meta anecdote of an FPU returning
    # wrong values for specific inputs).
    run = system.execute(PROGRAM, max_instructions=60_000)
    segments = system.segment(run)
    fault = StuckAtFault(fu=FUKind.FP_DIV, unit=0, bit=52, stuck_at=1)
    faulty_checker = CheckerCore(PROGRAM, fault_surface=fault)
    for segment in segments:
        outcome = faulty_checker.check_segment(segment)
        if outcome.detected:
            print(f"fault injected:      {fault.describe()}")
            print(f"DETECTED in segment {segment.index}: "
                  f"{outcome.first_event}")
            break
    else:
        print("fault was masked by this workload")


if __name__ == "__main__":
    main()
