#!/usr/bin/env python3
"""Adaptive checking under datacenter load (Fig. 1 + sections I, IV-A).

A day in the life of one 6-core big.LITTLE server node: demand rises and
falls; the OS-level role scheduler reassigns cores between main work,
checking and idle at checkpoint boundaries.  Checking runs at full
coverage when spare little cores are plentiful, degrades to
opportunistic under pressure, disables entirely at peak load, and
resumes afterwards.  For representative hours the node's traffic is
replayed through the event-driven fleet model to show what each mode
costs at the tail, while a health monitor accumulates the detection
statistics that drive predictive maintenance.
"""

from repro.core.errors import DetectionEvent, DetectionKind
from repro.core.maintenance import HealthMonitor
from repro.core.scheduler import PoolCore, RoleScheduler
from repro.cpu import A510, CoreInstance, X2
from repro.fleet import FleetTrafficConfig, FleetTrafficSim, summarize

#: Hourly demand (cores of main work wanted), a plausible diurnal curve.
DEMAND = [1, 1, 1, 1, 1, 2, 3, 4, 5, 6, 6, 6,
          5, 5, 6, 6, 5, 4, 4, 3, 2, 2, 1, 1]


def tail_for(mode: str, demand: int) -> str:
    """Replay one hour's traffic in ``mode``; return a tail summary.

    Demand maps onto offered per-server load; disabled hours run
    unchecked, which the traffic model expresses as opportunistic
    checking with the ``"none"`` checker pool (every segment lags past
    the bound and retires unchecked).
    """
    load = 0.15 + 0.13 * demand
    config = FleetTrafficConfig(
        servers=4,
        mode="opportunistic" if mode == "disabled" else mode,
        checkers="none" if mode == "disabled" else "2xA510@2.0",
        load=load, duration_s=0.5, seed=11,
    )
    cell = summarize(FleetTrafficSim(config).run())
    return (f"load {load:.2f}: p99 {cell.p99_ms:6.2f} ms, "
            f"coverage {cell.coverage * 100:5.1f}%")


def main() -> None:
    cores = [PoolCore(f"big{i}", CoreInstance(X2, 3.0)) for i in range(2)]
    cores += [PoolCore(f"little{i}", CoreInstance(A510, 2.0))
              for i in range(4)]
    scheduler = RoleScheduler(cores, min_checkers_per_main=2)
    outcome = scheduler.run(DEMAND)

    print("hour  demand  mains  checkers  mode")
    for plan in outcome.plans:
        mode = scheduler.coverage_mode_for(plan)
        print(f"{plan.epoch:4d} {plan.demand_cores:7.0f} "
              f"{len(plan.mains):6d} {len(plan.checkers):9d}  {mode}")
    print(f"\nchecking available {outcome.checking_availability:.0%} "
          "of the day (disabled only at peak load)")

    # What each hour's mode costs, measured by the traffic model on
    # three representative hours of the diurnal curve.
    print("\ntail latency vs. coverage across the day:")
    for hour in (2, 8, 10):
        plan = outcome.plans[hour]
        mode = scheduler.coverage_mode_for(plan)
        print(f"  hour {hour:2d} ({mode:13s}) "
              f"{tail_for(mode, DEMAND[hour])}")

    # Meanwhile the health monitor digests the day's detection events:
    # little2 develops a hard fault at hour 14 — every checked segment it
    # touches afterwards reports a divergence.
    monitor = HealthMonitor(retire_threshold=0.01, min_checks=50)
    for plan in outcome.plans:
        if not plan.checking_enabled:
            continue
        for main_id in plan.mains:
            for checker_id in plan.checkers:
                event = None
                if checker_id == "little2" and plan.epoch >= 14:
                    event = DetectionEvent(
                        DetectionKind.REGISTER_CHECKPOINT, plan.epoch,
                        "divergence")
                for _ in range(40):  # segments per pairing per hour
                    monitor.observe_check(main_id, checker_id)
                if event is not None:
                    monitor.observe_check(main_id, checker_id, event)

    print("\ncore health after the day:")
    for core_id, health in monitor.report().items():
        marker = {"healthy": " ", "suspect": "?", "retire": "!"}[health.value]
        print(f"  [{marker}] {core_id:8s} {health.value}")
    candidates = monitor.retirement_candidates()
    if candidates:
        print("\nretirement candidates (predictive maintenance):")
        for record in candidates:
            print(f"  {record.core_id}: implicated in {record.implicated} "
                  f"checks across partners {sorted(record.partners)}")


if __name__ == "__main__":
    main()
