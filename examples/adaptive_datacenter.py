#!/usr/bin/env python3
"""Adaptive checking under datacenter load (Fig. 1 + sections I, IV-A).

A day in the life of a checked fleet, in three acts:

1. **Closed loop.**  A diurnal load curve drives the event-driven fleet
   model while a threshold controller re-decides the checking mode at
   epoch boundaries — full coverage off-peak, opportunistic through the
   evening peak.  The same day is replayed with both static endpoints
   to show the frontier: the controller matches always-opportunistic's
   tail while checking more of the day's work.
2. **Role scheduling.**  The OS-level scheduler from section IV-A
   assigns main/checker/idle roles on one big.LITTLE node as demand
   rises and falls; checking degrades to opportunistic under pressure
   and disables entirely at peak load.
3. **Predictive maintenance.**  A health monitor digests the day's
   detection events and retires a little core that developed a hard
   fault mid-afternoon.
"""

from repro.control import PoolCore, RoleScheduler
from repro.control.bench import DEFAULT_CONTROLLER, run_diurnal_bench
from repro.core.errors import DetectionEvent, DetectionKind
from repro.core.maintenance import HealthMonitor
from repro.cpu import A510, CoreInstance, X2

#: Hourly demand (cores of main work wanted), a plausible diurnal curve.
DEMAND = [1, 1, 1, 1, 1, 2, 3, 4, 5, 6, 6, 6,
          5, 5, 6, 6, 5, 4, 4, 3, 2, 2, 1, 1]


def closed_loop_day() -> None:
    """Act 1: the adaptive control plane against the static endpoints."""
    out = run_diurnal_bench(servers=4, duration_s=1.0, epoch_s=0.1,
                            controller=DEFAULT_CONTROLLER)
    controlled = out["results"]["controlled"]

    print("closed-loop day (threshold policy, 0.1 s epochs):")
    print("  epoch  mode           p99 ms  coverage")
    for record in controlled.epochs:
        switched = "  <- switch" if record["switched"] else ""
        print(f"  {record['epoch']:5d}  {record['mode']:13s} "
              f"{record['p99_ms']:7.2f} {record['coverage'] * 100:8.1f}%"
              f"{switched}")

    print("\n  the frontier after one day:")
    print(f"  {'arm':22s} {'p99 ms':>8s} {'coverage':>9s} {'energy+':>8s}")
    for name, row in out["arms"].items():
        print(f"  {name:22s} {row['p99_ms']:8.2f} "
              f"{row['coverage'] * 100:8.2f}% "
              f"{row['energy_overhead'] * 100:7.1f}%")
    won = out["dominates"]
    print(f"  controller beats always-full on p99: "
          f"{won['p99_vs_full']}; beats always-opportunistic on "
          f"coverage: {won['coverage_vs_opportunistic']}")


def scheduled_day() -> HealthMonitor:
    """Acts 2 and 3: role scheduling, then predictive maintenance."""
    cores = [PoolCore(f"big{i}", CoreInstance(X2, 3.0)) for i in range(2)]
    cores += [PoolCore(f"little{i}", CoreInstance(A510, 2.0))
              for i in range(4)]
    scheduler = RoleScheduler(cores, min_checkers_per_main=2)
    outcome = scheduler.run(DEMAND)

    print("\nrole-scheduled node (hourly demand trace):")
    print("  hour  demand  mains  checkers  mode")
    for plan in outcome.plans:
        mode = scheduler.coverage_mode_for(plan)
        print(f"  {plan.epoch:4d} {plan.demand_cores:7.0f} "
              f"{len(plan.mains):6d} {len(plan.checkers):9d}  {mode}")
    print(f"  checking available {outcome.checking_availability:.0%} "
          "of the day (disabled only at peak load)")

    # The health monitor digests the day's detection events: little2
    # develops a hard fault at hour 14 — every checked segment it
    # touches afterwards reports a divergence.
    monitor = HealthMonitor(retire_threshold=0.01, min_checks=50)
    for plan in outcome.plans:
        if not plan.checking_enabled:
            continue
        for main_id in plan.mains:
            for checker_id in plan.checkers:
                event = None
                if checker_id == "little2" and plan.epoch >= 14:
                    event = DetectionEvent(
                        DetectionKind.REGISTER_CHECKPOINT, plan.epoch,
                        "divergence")
                for _ in range(40):  # segments per pairing per hour
                    monitor.observe_check(main_id, checker_id)
                if event is not None:
                    monitor.observe_check(main_id, checker_id, event)
    return monitor


def main() -> None:
    closed_loop_day()
    monitor = scheduled_day()

    print("\ncore health after the day:")
    for core_id, health in monitor.report().items():
        marker = {"healthy": " ", "suspect": "?", "retire": "!"}[health.value]
        print(f"  [{marker}] {core_id:8s} {health.value}")
    candidates = monitor.retirement_candidates()
    if candidates:
        print("\nretirement candidates (predictive maintenance):")
        for record in candidates:
            print(f"  {record.core_id}: implicated in {record.implicated} "
                  f"checks across partners {sorted(record.partners)}")


if __name__ == "__main__":
    main()
