#!/usr/bin/env python3
"""Error *correction* by rollback (the paper's footnote-1 extension).

ParaVerser proper only detects: data-center software is assumed to be
fail-safe. Where synchronous correction is needed, ParaMedic-style
rollback applies. This example injects a transient (cosmic-ray-style)
bit flip into the main core's multiplier mid-run, shows the checker
catching it, and verifies that after rollback + re-execution the final
architectural state is bit-identical to a fault-free run.
"""

from repro.core.rollback import RecoverableSystem
from repro.cpu import DirectMemoryPort, FunctionalCore
from repro.faults import TransientFault
from repro.isa import assemble
from repro.isa.instructions import FUKind
from repro.mem import Memory

PROGRAM = assemble(
    """
        addi x1, x0, 2000
        lui x3, 0x1000
    loop:
        ld x4, 0(x3)
        mul x5, x4, x1
        addi x5, x5, 17
        st x5, 0(x3)
        addi x3, x3, 8
        subi x1, x1, 1
        bne x1, x0, loop
        halt
    """,
    name="rollback-demo",
)
INSTRUCTIONS = 14_000


def main() -> None:
    # Reference: fault-free execution.
    memory = Memory(PROGRAM.memory_image)
    reference = FunctionalCore(PROGRAM, DirectMemoryPort(memory))
    reference_end = reference.run(INSTRUCTIONS).end_checkpoint

    # A single-event upset strikes the multiplier's 23rd output bit on
    # its 900th use.
    fault = TransientFault(FUKind.INT_MUL, unit=0, bit=23,
                           strike_at_use=900)
    system = RecoverableSystem(PROGRAM, segment_instructions=1000,
                               main_fault=fault)
    result = system.run(INSTRUCTIONS)

    print(f"instructions executed:  {result.instructions}")
    print(f"segments verified:      {result.segments}")
    print(f"rollbacks performed:    {result.rolled_back}")
    for recovery in result.recoveries:
        print(f"  segment {recovery.segment_index}, attempt "
              f"{recovery.attempt}: {recovery.detection}")
    matches = result.end_checkpoint.matches(reference_end)
    print(f"final state matches fault-free run: {matches}")
    print(f"final memory matches fault-free run: "
          f"{result.memory == memory}")
    assert matches, "rollback failed to restore correctness"


if __name__ == "__main__":
    main()
