#!/usr/bin/env python3
"""Fleet-scale comparison: software scanners vs. ParaVerser (section III).

Simulates a year of a 10 000-machine fleet developing permanent CPU
faults at hyperscaler-reported rates, and compares the deployed software
scanners against ParaVerser's opportunistic checking on: detection
fraction, mean time to detection, and total silent-data-corruption
exposure — the paper's core motivation, quantified.
"""

from repro.baselines import FLEETSCANNER, RIPPLE
from repro.fleet import (
    FleetConfig,
    FleetSimulator,
    ParaVerserStrategy,
    ScannerStrategy,
)


def main() -> None:
    config = FleetConfig(machines=10_000,
                         fault_rate_per_machine_day=5e-5,
                         sdc_per_faulty_day=3.0,
                         duration_days=365)
    simulator = FleetSimulator(config, seed=1)
    strategies = [
        ScannerStrategy(FLEETSCANNER),
        ScannerStrategy(RIPPLE),
        ParaVerserStrategy(instruction_coverage=0.97),
    ]
    results = simulator.compare(strategies)

    print(f"fleet: {config.machines} machines over "
          f"{config.duration_days} days, "
          f"{results[0].faults} permanent faults arose\n")
    print(f"{'strategy':14s} {'detected':>9s} {'mean days':>10s} "
          f"{'exposure days':>14s} {'SDC events':>11s}")
    for result in results:
        print(f"{result.strategy:14s} "
              f"{result.detection_fraction * 100:8.1f}% "
              f"{result.mean_detection_days:10.2f} "
              f"{result.exposure_days:14.0f} "
              f"{result.sdc_events:11.0f}")
    print("\npaper section III-A: FleetScanner detects 93% of permanent")
    print("faults within 6 months; Ripple ~70%; ParaVerser detects at the")
    print("first checked faulty computation — the exposure window (and the")
    print("silent corruption it admits) collapses by orders of magnitude.")


if __name__ == "__main__":
    main()
