#!/usr/bin/env python3
"""Fleet-scale comparison: software scanners vs. ParaVerser (section III).

Two linked timescales.  First a millisecond-scale traffic simulation
plays datacenter requests through a row of ParaVerser-checked servers:
in full-coverage mode checker lag stalls the main core (a tail-latency
tax); in opportunistic mode lagging segments retire unchecked (a
coverage tax).  Then the measured coverage feeds a year-long hazard
simulation of a 10 000-machine fleet developing permanent CPU faults at
hyperscaler-reported rates, compared against the deployed software
scanners on detection fraction, mean time to detection, and total
silent-data-corruption exposure — the paper's core motivation,
quantified end to end.
"""

from repro.baselines import FLEETSCANNER, RIPPLE
from repro.fleet import (
    FleetConfig,
    FleetSimulator,
    FleetTrafficConfig,
    FleetTrafficSim,
    ScannerStrategy,
    strategy_from_coverage,
    summarize,
)


def main() -> None:
    # -- Timescale 1: milliseconds.  One busy row of checked servers. --
    print("traffic: 8 servers at load 0.92, 4xA510@2GHz checkers")
    print(f"{'mode':14s} {'p50 ms':>7s} {'p99 ms':>7s} {'stall':>6s} "
          f"{'coverage':>9s}")
    coverage = {}
    for mode in ("full", "opportunistic"):
        config = FleetTrafficConfig(servers=8, mode=mode, load=0.92,
                                    duration_s=1.0, seed=7)
        cell = summarize(FleetTrafficSim(config).run())
        coverage[mode] = cell.coverage
        print(f"{mode:14s} {cell.p50_ms:7.2f} {cell.p99_ms:7.2f} "
              f"{cell.stall_fraction * 100:5.1f}% "
              f"{cell.coverage * 100:8.2f}%")
    print("\nfull mode buys 100% coverage with p99 stalls; opportunistic")
    print("trades a few % of coverage for a clean tail (section IV-A).\n")

    # -- Timescale 2: a year.  Coverage becomes detection latency. -----
    config = FleetConfig(machines=10_000,
                         fault_rate_per_machine_day=5e-5,
                         sdc_per_faulty_day=3.0,
                         duration_days=365)
    simulator = FleetSimulator(config, seed=1)
    strategies = [
        ScannerStrategy(FLEETSCANNER),
        ScannerStrategy(RIPPLE),
        strategy_from_coverage(coverage["full"]),
    ]
    results = simulator.compare(strategies)

    print(f"fleet: {config.machines} machines over "
          f"{config.duration_days} days, "
          f"{results[0].faults} permanent faults arose "
          f"({results[0].masked} masked)\n")
    print(f"{'strategy':14s} {'detected':>9s} {'mean days':>10s} "
          f"{'exposure days':>14s} {'SDC events':>11s}")
    for result in results:
        print(f"{result.strategy:14s} "
              f"{result.detection_fraction * 100:8.1f}% "
              f"{result.mean_detection_days:10.2f} "
              f"{result.exposure_days:14.0f} "
              f"{result.sdc_events:11.0f}")
    print("\npaper section III-A: FleetScanner detects 93% of permanent")
    print("faults within 6 months; Ripple ~70%; ParaVerser detects at the")
    print("first checked faulty computation — the exposure window (and the")
    print("silent corruption it admits) collapses by orders of magnitude.")


if __name__ == "__main__":
    main()
