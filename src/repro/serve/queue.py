"""Admission control: a bounded queue with deadlines and load shedding.

The queue is the service's pressure valve, mirroring the paper's
full-coverage-stall vs. opportunistic-drop tradeoff at the serving
layer: a saturated queue answers immediately with a *shed* response
(drop) instead of stalling every caller behind an unbounded backlog,
and a request whose deadline passes while queued is answered with a
*timeout* instead of occupying a worker.

All state lives on the event loop — no locks; only the service's
coroutines touch it.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass

from repro.serve.protocol import (
    EvalRequest,
    EvalResponse,
    shed_response,
    timeout_response,
)


@dataclass
class PendingEval:
    """One admitted request waiting for (or holding) its response."""

    request: EvalRequest
    future: "asyncio.Future[EvalResponse]"
    enqueued_at: float
    deadline: float | None

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline

    def remaining(self, now: float) -> float | None:
        """Seconds until the deadline, or None for no deadline."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - now)

    def resolve(self, response: EvalResponse) -> None:
        if not self.future.done():
            self.future.set_result(response)


class AdmissionQueue:
    """Bounded FIFO of :class:`PendingEval` with shed/expiry semantics."""

    def __init__(self, depth: int = 64,
                 default_timeout_s: float | None = None) -> None:
        if depth <= 0:
            raise ValueError("queue depth must be positive")
        self.depth = depth
        self.default_timeout_s = default_timeout_s
        self._items: deque[PendingEval] = deque()
        self._wakeup = asyncio.Event()
        # Telemetry, published by the service into the stats tree.
        self.submitted = 0
        self.shed = 0
        self.expired = 0

    def __len__(self) -> int:
        return len(self._items)

    def submit(self, request: EvalRequest) -> PendingEval:
        """Admit (or immediately shed) one request.

        Always returns a :class:`PendingEval`; on shed its future is
        already resolved, so callers treat both cases uniformly.
        """
        loop = asyncio.get_running_loop()
        now = loop.time()
        timeout = (request.timeout_s if request.timeout_s is not None
                   else self.default_timeout_s)
        pending = PendingEval(
            request=request,
            future=loop.create_future(),
            enqueued_at=now,
            deadline=now + timeout if timeout is not None else None,
        )
        self.submitted += 1
        if len(self._items) >= self.depth:
            self.shed += 1
            pending.resolve(shed_response(request, self.depth))
            return pending
        self._items.append(pending)
        self._wakeup.set()
        return pending

    async def next_batch(self, window_s: float = 0.0) -> list[PendingEval]:
        """Wait for work, then drain everything currently queued.

        ``window_s`` holds the batch open briefly after the first
        arrival so concurrent clients coalesce into one batch.
        Expired entries are answered with a timeout response and
        excluded.
        """
        while not self._items:
            self._wakeup.clear()
            await self._wakeup.wait()
        if window_s > 0:
            await asyncio.sleep(window_s)
        now = asyncio.get_running_loop().time()
        batch: list[PendingEval] = []
        while self._items:
            pending = self._items.popleft()
            if pending.expired(now):
                self.expired += 1
                pending.resolve(timeout_response(pending.request))
                continue
            batch.append(pending)
        return batch

    def drain(self, response_for) -> int:
        """Resolve everything still queued (shutdown path).

        ``response_for`` maps an :class:`EvalRequest` to the terminal
        response; returns how many entries were drained.
        """
        drained = 0
        while self._items:
            pending = self._items.popleft()
            pending.resolve(response_for(pending.request))
            drained += 1
        return drained
