"""Request/response dataclasses and the newline-JSON wire codec.

One connection carries a sequence of newline-delimited JSON objects.
Requests carry an ``op`` ("eval", "stats", "ping"); responses carry a
``status`` (:data:`STATUS_OK`, :data:`STATUS_TIMEOUT`, :data:`STATUS_SHED`,
:data:`STATUS_ERROR`) plus the echoed ``request_id`` so clients can
pipeline.  The codec is intentionally dumb — plain :mod:`json`, no
pickle — so any language can speak it.

Two derived keys drive the batching layer:

* :meth:`EvalRequest.sim_key` — the canonical identity of one
  simulation; requests with equal sim keys are satisfied by a single
  execution (dedup);
* :meth:`EvalRequest.trace_key` — the identity of the functional trace
  ``(workload, instructions, seed)``; sim groups sharing a trace key are
  shipped to one worker invocation so the in-process
  :class:`~repro.harness.runner.WorkloadCache` computes the trace once.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import ClassVar

PROTOCOL_VERSION = 1

#: Maximum accepted line length (a trace never travels over the wire,
#: so anything bigger than this is a confused or hostile client).
MAX_LINE_BYTES = 1 << 20

OP_EVAL = "eval"
OP_CAMPAIGN = "campaign"
OP_STATS = "stats"
OP_PING = "ping"
#: Router-only op: describe the consistent-hash ring (shard addresses
#: and replica count) so clients can follow it; plain serve backends
#: reject it as unknown.
OP_RING = "ring"
KNOWN_OPS = (OP_EVAL, OP_CAMPAIGN, OP_STATS, OP_PING, OP_RING)

STATUS_OK = "ok"
STATUS_TIMEOUT = "timeout"
STATUS_SHED = "shed"
STATUS_ERROR = "error"
KNOWN_STATUSES = (STATUS_OK, STATUS_TIMEOUT, STATUS_SHED, STATUS_ERROR)

DEFAULT_INSTRUCTIONS = 20_000
DEFAULT_SEED = 7
DEFAULT_MODE = "full"

#: Fields that determine the simulated outcome (everything except
#: delivery metadata such as ``request_id`` and ``timeout_s``).
_SIM_FIELDS = ("workload", "backend", "checkers", "mode", "hash_mode",
               "instructions", "seed", "fault_trials")


class ProtocolError(ValueError):
    """A malformed or unsupported wire message."""


@dataclass(frozen=True)
class EvalRequest:
    """One evaluation query: a workload under one detection scheme.

    Exactly one of ``backend`` (a registry name, see ``paraverser
    backends``) or ``checkers`` (a pool spec such as ``"4xA510@2.0"``,
    interpreted with ``mode``/``hash_mode``) selects the scheme.
    ``fault_trials > 0`` additionally runs a stuck-at injection campaign
    against the scheme's configuration.
    """

    workload: str
    backend: str | None = None
    checkers: str | None = None
    mode: str = DEFAULT_MODE
    hash_mode: bool = False
    instructions: int = DEFAULT_INSTRUCTIONS
    seed: int = DEFAULT_SEED
    fault_trials: int = 0
    #: Per-request deadline in seconds (None: the service default).
    timeout_s: float | None = None
    request_id: str = ""

    def validate(self) -> None:
        if not self.workload or not isinstance(self.workload, str):
            raise ProtocolError("eval request needs a workload name")
        if (self.backend is None) == (self.checkers is None):
            raise ProtocolError(
                "eval request needs exactly one of backend/checkers")
        if self.instructions <= 0:
            raise ProtocolError("instructions must be positive")
        if self.fault_trials < 0:
            raise ProtocolError("fault_trials must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ProtocolError("timeout_s must be positive when given")

    def sim_spec(self) -> dict:
        """The executable subset of the request, as a plain dict."""
        data = asdict(self)
        return {name: data[name] for name in _SIM_FIELDS}

    def sim_key(self) -> str:
        """Canonical identity of the simulation this request asks for."""
        return json.dumps(self.sim_spec(), sort_keys=True)

    def trace_key(self) -> tuple[str, int, int]:
        """Identity of the functional trace the simulation replays."""
        return (self.workload, self.instructions, self.seed)


#: Campaign fields that determine the trial outcomes (``trials`` and
#: ``trial_offset`` are included: the row aggregates over exactly the
#: trial window ``[trial_offset, trial_offset + trials)``).
_CAMPAIGN_SIM_FIELDS = ("workload", "checkers", "mode", "hash_mode",
                        "instructions", "seed", "trials", "trial_offset",
                        "fault_kinds", "scheme")

#: Default fault-site mix for served campaigns (mirrors
#: ``repro.faults.models.FAULT_KINDS`` without importing the simulator
#: into the wire codec).
DEFAULT_FAULT_KINDS = ("stuck_at", "transient_lsq", "transient_reg")

#: Every fault kind a served campaign may request (mirrors
#: ``repro.faults.models.ALL_FAULT_KINDS``).
KNOWN_FAULT_KINDS = DEFAULT_FAULT_KINDS + ("defect",)

#: Detection schemes the campaign engine can run (mirrors
#: ``repro.faults.scenarios.CAMPAIGN_SCHEMES``).
KNOWN_CAMPAIGN_SCHEMES = ("paraverser", "dme", "ithica-sdc", "meek-ro")


@dataclass(frozen=True)
class CampaignRequest:
    """One fault-injection campaign: a workload under one checker pool.

    Flows through the same admission queue and batching layer as
    :class:`EvalRequest` — it exposes the identical ``sim_key`` /
    ``sim_spec`` / ``trace_key`` surface — so long campaigns get the
    service's load-shedding, deadlines and crash-retry for free.
    ``backend`` is fixed at ``None``: campaigns always run against a
    simulated checker configuration.
    """

    workload: str
    checkers: str = "1xA510@1.0"
    mode: str = "opportunistic"
    hash_mode: bool = False
    instructions: int = 40_000
    seed: int = DEFAULT_SEED
    trials: int = 20
    #: First trial id of this request's window.  Trial ``t``'s fault is
    #: a pure function of ``(seed, t)``, so a T-trial campaign split
    #: into offset windows (the shard router's fan-out) reproduces the
    #: unsplit campaign record-for-record.
    trial_offset: int = 0
    fault_kinds: tuple[str, ...] = DEFAULT_FAULT_KINDS
    #: Detection scheme the trials run under (paraverser, dme,
    #: ithica-sdc or meek-ro — see ``repro.faults.scenarios``).
    scheme: str = "paraverser"
    timeout_s: float | None = None
    request_id: str = ""

    backend: ClassVar[None] = None

    def validate(self) -> None:
        if not self.workload or not isinstance(self.workload, str):
            raise ProtocolError("campaign request needs a workload name")
        if not self.checkers or not isinstance(self.checkers, str):
            raise ProtocolError("campaign request needs a checkers spec")
        if self.instructions <= 0:
            raise ProtocolError("instructions must be positive")
        if self.trials <= 0:
            raise ProtocolError("trials must be positive")
        if self.trial_offset < 0:
            raise ProtocolError("trial_offset must be >= 0")
        if not self.fault_kinds:
            raise ProtocolError("fault_kinds must not be empty")
        unknown = [k for k in self.fault_kinds
                   if k not in KNOWN_FAULT_KINDS]
        if unknown:
            raise ProtocolError(
                f"unknown fault kinds {unknown}; "
                f"known: {list(KNOWN_FAULT_KINDS)}")
        if self.scheme not in KNOWN_CAMPAIGN_SCHEMES:
            raise ProtocolError(
                f"unknown campaign scheme {self.scheme!r}; "
                f"known: {list(KNOWN_CAMPAIGN_SCHEMES)}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ProtocolError("timeout_s must be positive when given")

    def sim_spec(self) -> dict:
        """The executable subset, tagged so workers branch on ``op``."""
        data = asdict(self)
        spec = {name: data[name] for name in _CAMPAIGN_SIM_FIELDS}
        spec["fault_kinds"] = list(spec["fault_kinds"])
        spec["op"] = OP_CAMPAIGN
        return spec

    def sim_key(self) -> str:
        """Canonical identity; equal campaigns dedup to one execution."""
        return json.dumps(self.sim_spec(), sort_keys=True)

    def trace_key(self) -> tuple[str, int, int]:
        """Same functional-trace identity as :class:`EvalRequest`, so
        campaigns batch with evals replaying the same trace."""
        return (self.workload, self.instructions, self.seed)


@dataclass(frozen=True)
class EvalResponse:
    """The service's answer to one request."""

    status: str
    request_id: str = ""
    result: dict | None = field(default=None)
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


# -- wire codec -------------------------------------------------------------

def encode_message(payload: dict) -> bytes:
    """One wire message: compact JSON + newline."""
    return json.dumps(payload, separators=(",", ":")).encode() + b"\n"


def decode_message(line: bytes | str) -> dict:
    """Parse one wire line; raises :class:`ProtocolError` on garbage."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError("wire message exceeds MAX_LINE_BYTES")
        try:
            line = line.decode()
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"non-UTF-8 wire message: {exc}") from None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"bad JSON on the wire: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("wire message must be a JSON object")
    return payload


def request_to_wire(request: EvalRequest) -> dict:
    """Serialise a request, tagging op and protocol version."""
    payload = {"op": OP_EVAL, "v": PROTOCOL_VERSION}
    payload.update(asdict(request))
    return payload


def request_from_wire(payload: dict) -> EvalRequest:
    """Rebuild and validate an :class:`EvalRequest` from a wire dict."""
    op = payload.get("op", OP_EVAL)
    if op != OP_EVAL:
        raise ProtocolError(f"expected an eval request, got op {op!r}")
    version = payload.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version!r}")
    kwargs = {}
    for name in EvalRequest.__dataclass_fields__:
        if name in payload:
            kwargs[name] = payload[name]
    try:
        request = EvalRequest(**kwargs)
    except TypeError as exc:
        raise ProtocolError(f"bad eval request: {exc}") from None
    request.validate()
    return request


def campaign_to_wire(request: CampaignRequest) -> dict:
    """Serialise a campaign request, tagging op and protocol version."""
    payload = {"op": OP_CAMPAIGN, "v": PROTOCOL_VERSION}
    payload.update(asdict(request))
    payload["fault_kinds"] = list(request.fault_kinds)
    return payload


def campaign_from_wire(payload: dict) -> CampaignRequest:
    """Rebuild and validate a :class:`CampaignRequest` from a wire dict."""
    op = payload.get("op", OP_CAMPAIGN)
    if op != OP_CAMPAIGN:
        raise ProtocolError(f"expected a campaign request, got op {op!r}")
    version = payload.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version!r}")
    kwargs = {}
    for name in CampaignRequest.__dataclass_fields__:
        if name in payload:
            kwargs[name] = payload[name]
    if "fault_kinds" in kwargs:
        kinds = kwargs["fault_kinds"]
        if not isinstance(kinds, (list, tuple)):
            raise ProtocolError("fault_kinds must be a list of kind names")
        kwargs["fault_kinds"] = tuple(kinds)
    try:
        request = CampaignRequest(**kwargs)
    except TypeError as exc:
        raise ProtocolError(f"bad campaign request: {exc}") from None
    request.validate()
    return request


def response_to_wire(response: EvalResponse) -> dict:
    payload = {"v": PROTOCOL_VERSION, "status": response.status,
               "request_id": response.request_id}
    if response.result is not None:
        payload["result"] = response.result
    if response.error:
        payload["error"] = response.error
    return payload


def response_from_wire(payload: dict) -> EvalResponse:
    status = payload.get("status")
    if status not in KNOWN_STATUSES:
        raise ProtocolError(f"unknown response status {status!r}")
    return EvalResponse(
        status=status,
        request_id=payload.get("request_id", ""),
        result=payload.get("result"),
        error=payload.get("error", ""),
    )


# -- canned responses -------------------------------------------------------

def ok_response(request: EvalRequest, result: dict) -> EvalResponse:
    return EvalResponse(STATUS_OK, request.request_id, result=result)


def shed_response(request: EvalRequest, depth: int) -> EvalResponse:
    return EvalResponse(
        STATUS_SHED, request.request_id,
        error=f"admission queue saturated (depth {depth}); retry later")


def timeout_response(request: EvalRequest) -> EvalResponse:
    return EvalResponse(
        STATUS_TIMEOUT, request.request_id,
        error="request deadline expired before a result was ready")


def error_response(request: EvalRequest, message: str) -> EvalResponse:
    return EvalResponse(STATUS_ERROR, request.request_id, error=message)
