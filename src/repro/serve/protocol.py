"""Request/response dataclasses and the newline-JSON wire codec.

One connection carries a sequence of newline-delimited JSON objects.
Requests carry an ``op`` ("eval", "stats", "ping"); responses carry a
``status`` (:data:`STATUS_OK`, :data:`STATUS_TIMEOUT`, :data:`STATUS_SHED`,
:data:`STATUS_ERROR`) plus the echoed ``request_id`` so clients can
pipeline.  The codec is intentionally dumb — plain :mod:`json`, no
pickle — so any language can speak it.

Two derived keys drive the batching layer:

* :meth:`EvalRequest.sim_key` — the canonical identity of one
  simulation; requests with equal sim keys are satisfied by a single
  execution (dedup);
* :meth:`EvalRequest.trace_key` — the identity of the functional trace
  ``(workload, instructions, seed)``; sim groups sharing a trace key are
  shipped to one worker invocation so the in-process
  :class:`~repro.harness.runner.WorkloadCache` computes the trace once.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

PROTOCOL_VERSION = 1

#: Maximum accepted line length (a trace never travels over the wire,
#: so anything bigger than this is a confused or hostile client).
MAX_LINE_BYTES = 1 << 20

OP_EVAL = "eval"
OP_STATS = "stats"
OP_PING = "ping"
KNOWN_OPS = (OP_EVAL, OP_STATS, OP_PING)

STATUS_OK = "ok"
STATUS_TIMEOUT = "timeout"
STATUS_SHED = "shed"
STATUS_ERROR = "error"
KNOWN_STATUSES = (STATUS_OK, STATUS_TIMEOUT, STATUS_SHED, STATUS_ERROR)

DEFAULT_INSTRUCTIONS = 20_000
DEFAULT_SEED = 7
DEFAULT_MODE = "full"

#: Fields that determine the simulated outcome (everything except
#: delivery metadata such as ``request_id`` and ``timeout_s``).
_SIM_FIELDS = ("workload", "backend", "checkers", "mode", "hash_mode",
               "instructions", "seed", "fault_trials")


class ProtocolError(ValueError):
    """A malformed or unsupported wire message."""


@dataclass(frozen=True)
class EvalRequest:
    """One evaluation query: a workload under one detection scheme.

    Exactly one of ``backend`` (a registry name, see ``paraverser
    backends``) or ``checkers`` (a pool spec such as ``"4xA510@2.0"``,
    interpreted with ``mode``/``hash_mode``) selects the scheme.
    ``fault_trials > 0`` additionally runs a stuck-at injection campaign
    against the scheme's configuration.
    """

    workload: str
    backend: str | None = None
    checkers: str | None = None
    mode: str = DEFAULT_MODE
    hash_mode: bool = False
    instructions: int = DEFAULT_INSTRUCTIONS
    seed: int = DEFAULT_SEED
    fault_trials: int = 0
    #: Per-request deadline in seconds (None: the service default).
    timeout_s: float | None = None
    request_id: str = ""

    def validate(self) -> None:
        if not self.workload or not isinstance(self.workload, str):
            raise ProtocolError("eval request needs a workload name")
        if (self.backend is None) == (self.checkers is None):
            raise ProtocolError(
                "eval request needs exactly one of backend/checkers")
        if self.instructions <= 0:
            raise ProtocolError("instructions must be positive")
        if self.fault_trials < 0:
            raise ProtocolError("fault_trials must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ProtocolError("timeout_s must be positive when given")

    def sim_spec(self) -> dict:
        """The executable subset of the request, as a plain dict."""
        data = asdict(self)
        return {name: data[name] for name in _SIM_FIELDS}

    def sim_key(self) -> str:
        """Canonical identity of the simulation this request asks for."""
        return json.dumps(self.sim_spec(), sort_keys=True)

    def trace_key(self) -> tuple[str, int, int]:
        """Identity of the functional trace the simulation replays."""
        return (self.workload, self.instructions, self.seed)


@dataclass(frozen=True)
class EvalResponse:
    """The service's answer to one request."""

    status: str
    request_id: str = ""
    result: dict | None = field(default=None)
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


# -- wire codec -------------------------------------------------------------

def encode_message(payload: dict) -> bytes:
    """One wire message: compact JSON + newline."""
    return json.dumps(payload, separators=(",", ":")).encode() + b"\n"


def decode_message(line: bytes | str) -> dict:
    """Parse one wire line; raises :class:`ProtocolError` on garbage."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError("wire message exceeds MAX_LINE_BYTES")
        try:
            line = line.decode()
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"non-UTF-8 wire message: {exc}") from None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"bad JSON on the wire: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("wire message must be a JSON object")
    return payload


def request_to_wire(request: EvalRequest) -> dict:
    """Serialise a request, tagging op and protocol version."""
    payload = {"op": OP_EVAL, "v": PROTOCOL_VERSION}
    payload.update(asdict(request))
    return payload


def request_from_wire(payload: dict) -> EvalRequest:
    """Rebuild and validate an :class:`EvalRequest` from a wire dict."""
    op = payload.get("op", OP_EVAL)
    if op != OP_EVAL:
        raise ProtocolError(f"expected an eval request, got op {op!r}")
    version = payload.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version!r}")
    kwargs = {}
    for name in EvalRequest.__dataclass_fields__:
        if name in payload:
            kwargs[name] = payload[name]
    try:
        request = EvalRequest(**kwargs)
    except TypeError as exc:
        raise ProtocolError(f"bad eval request: {exc}") from None
    request.validate()
    return request


def response_to_wire(response: EvalResponse) -> dict:
    payload = {"v": PROTOCOL_VERSION, "status": response.status,
               "request_id": response.request_id}
    if response.result is not None:
        payload["result"] = response.result
    if response.error:
        payload["error"] = response.error
    return payload


def response_from_wire(payload: dict) -> EvalResponse:
    status = payload.get("status")
    if status not in KNOWN_STATUSES:
        raise ProtocolError(f"unknown response status {status!r}")
    return EvalResponse(
        status=status,
        request_id=payload.get("request_id", ""),
        result=payload.get("result"),
        error=payload.get("error", ""),
    )


# -- canned responses -------------------------------------------------------

def ok_response(request: EvalRequest, result: dict) -> EvalResponse:
    return EvalResponse(STATUS_OK, request.request_id, result=result)


def shed_response(request: EvalRequest, depth: int) -> EvalResponse:
    return EvalResponse(
        STATUS_SHED, request.request_id,
        error=f"admission queue saturated (depth {depth}); retry later")


def timeout_response(request: EvalRequest) -> EvalResponse:
    return EvalResponse(
        STATUS_TIMEOUT, request.request_id,
        error="request deadline expired before a result was ready")


def error_response(request: EvalRequest, message: str) -> EvalResponse:
    return EvalResponse(STATUS_ERROR, request.request_id, error=message)
