"""Async batched evaluation service over the detection-backend registry.

The fleet-operator loop the paper motivates — "which detection scheme
should this population run today?" — means many concurrent evaluate
queries against the simulator.  This package serves them:

* :mod:`repro.serve.protocol` — request/response dataclasses and the
  newline-JSON wire codec;
* :mod:`repro.serve.queue` — bounded admission with deadlines and
  load shedding;
* :mod:`repro.serve.batcher` — dedup identical requests and group
  trace-sharing ones into single worker invocations;
* :mod:`repro.serve.workers` — the process pool, reusing the sweep
  engine's per-process caches and ``REPRO_TRACE_CACHE``;
* :mod:`repro.serve.service` — the asyncio TCP server;
* :mod:`repro.serve.client` — sync and async clients.

``paraverser serve`` runs the server; ``paraverser eval`` is the CLI
client.
"""

from repro.serve.client import AsyncEvalClient, EvalClient
from repro.serve.protocol import (
    EvalRequest,
    EvalResponse,
    ProtocolError,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    STATUS_TIMEOUT,
)
from repro.serve.service import EvalService
from repro.serve.workers import WorkerPool

__all__ = [
    "AsyncEvalClient",
    "EvalClient",
    "EvalRequest",
    "EvalResponse",
    "EvalService",
    "ProtocolError",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_SHED",
    "STATUS_TIMEOUT",
    "WorkerPool",
]
