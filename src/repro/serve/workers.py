"""Worker-pool lifecycle and the process-side evaluation entry points.

The pool is a bounded :class:`~concurrent.futures.ProcessPoolExecutor`
whose workers reuse the sweep engine's process-global
:func:`~repro.harness.parallel.worker_cache`, so a worker that serves
the same ``(workload, instructions, seed)`` twice never recomputes the
functional trace — and with ``REPRO_TRACE_CACHE`` set, traces persist
across workers and across service restarts.  Multi-spec batches are
dispatched at stage granularity: one trace task, then per-spec
evaluation tasks carrying the traced run as a serialized artifact, so
the batch's specs spread across the whole pool instead of serialising
on one worker.

Everything a worker returns is a plain JSON-able dict: rows travel back
through the executor, then over the wire, without pickle-sensitive
simulator objects.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

#: Row key set on per-spec evaluation failure (the batch itself is fine).
ROW_ERROR = "error"


# -- worker-side (runs in pool processes) -----------------------------------

def _result_row(result, config) -> dict:
    """Headline numbers of one simulated run, JSON-able."""
    from repro.power.energy import energy_report

    energy = energy_report(result, config.main)
    checker_area = sum(c.config.area_mm2 for c in config.checkers)
    return {
        "workload": result.workload,
        "config_label": result.config_label,
        "instructions": result.instructions,
        "segments": result.segments,
        "slowdown_percent": result.overhead_percent,
        "coverage": result.coverage,
        "energy_overhead_percent": energy.overhead_percent,
        "area_overhead_percent": (
            checker_area / config.main.config.area_mm2 * 100.0),
        "stall_ns": result.stall_ns,
        "verified_clean": all(not r.detected for r in result.verify_results),
    }


def _campaign_row(cache, workload: str, config, trials: int,
                  seed: int) -> dict:
    """Run a stuck-at injection campaign against one configuration."""
    from repro.core.system import ParaVerserSystem
    from repro.faults.campaign import FaultCampaign, covered_segments

    cached = cache.get(workload)
    result = cache.run_config(workload, config)
    system = ParaVerserSystem(config)
    segments = system.segment(cached.run)
    campaign = FaultCampaign(cached.program, segments,
                             config.checkers[0].config)
    outcome = campaign.run(trials, seed=seed,
                           covered=covered_segments(result))
    return {
        "injected": outcome.injected,
        "detected": outcome.detected,
        "masked": outcome.masked,
        "detection_rate_all": outcome.detection_rate_all,
        "detection_rate_effective": outcome.detection_rate_effective,
    }


def _config_for_spec(spec: dict):
    """Build a ParaVerserConfig from a checkers-spec request."""
    from repro.cli import parse_checkers
    from repro.core.system import CheckMode
    from repro.harness.runner import make_config

    return make_config(parse_checkers(spec["checkers"]),
                       CheckMode(spec["mode"]),
                       hash_mode=bool(spec["hash_mode"]))


def _campaign_spec_row(spec: dict) -> dict:
    """Run one campaign spec serially inside this worker process.

    Pool workers must not spawn nested pools, so the trials run inline;
    per-trial derived seeds make the row identical to what any other
    scheduling of the same spec produces (``tests/test_faults_engine``).
    """
    from repro.faults.engine import CampaignSpec, run_campaign

    campaign_spec = CampaignSpec(
        workload=spec["workload"],
        checkers=spec["checkers"],
        mode=spec["mode"],
        hash_mode=bool(spec["hash_mode"]),
        instructions=spec["instructions"],
        seed=spec["seed"],
        trials=int(spec["trials"]),
        trial_offset=int(spec.get("trial_offset", 0)),
        fault_kinds=tuple(spec["fault_kinds"]),
        scheme=spec.get("scheme", "paraverser"),
    )
    return run_campaign(campaign_spec, jobs=1).to_row()


def _cache_traffic_snapshot(cache) -> tuple | None:
    """Current persistent-cache counters, or None when caching is off."""
    tc = cache.trace_cache
    if tc is None:
        return None
    s = tc.stats
    return (s.hits, s.misses, s.bytes_read, s.bytes_written)


def _cache_traffic_delta(cache, before: tuple | None) -> dict | None:
    """What this task added to the persistent-cache counters.

    The worker-process :class:`~repro.cpu.tracecache.TraceCache` counters
    are cumulative and invisible to the service, so each task ships its
    own delta in the row; the service folds them into the stats tree and
    strips the key before the row reaches a client.
    """
    if before is None or cache.trace_cache is None:
        return None
    s = cache.trace_cache.stats
    delta = {
        "hits": s.hits - before[0],
        "misses": s.misses - before[1],
        "bytes_read": s.bytes_read - before[2],
        "bytes_written": s.bytes_written - before[3],
    }
    return delta if any(delta.values()) else None


def evaluate_spec(spec: dict) -> dict:
    """Evaluate one sim spec (see ``EvalRequest.sim_spec``) to a row."""
    from repro.detect import SimulatedBackend, get_backend
    from repro.harness.parallel import worker_cache

    cache = worker_cache(spec["instructions"], spec["seed"])
    workload = spec["workload"]
    traffic_before = _cache_traffic_snapshot(cache)
    source = cache.trace_source(workload)
    if spec.get("op") == "campaign":
        row = _campaign_spec_row(spec)
        row["instructions"] = spec["instructions"]
        row["seed"] = spec["seed"]
        row["trace_source"] = source
        traffic = _cache_traffic_delta(cache, traffic_before)
        if traffic:
            row["trace_cache"] = traffic
        return row
    if spec.get("backend"):
        backend = get_backend(spec["backend"])
        report = backend.evaluate(cache, workload)
        row = {
            "backend": report.backend,
            "workload": report.benchmark,
            "slowdown_percent": report.slowdown_percent,
            "coverage": report.coverage,
            "energy_overhead_percent": report.energy_overhead_percent,
            "area_overhead_percent": report.area_overhead_percent,
            "segments": report.segments,
            "verified_clean": report.verified_clean,
        }
        config = (backend.make_config()
                  if isinstance(backend, SimulatedBackend) else None)
    else:
        config = _config_for_spec(spec)
        row = _result_row(cache.run_config(workload, config), config)
    trials = int(spec.get("fault_trials") or 0)
    if trials:
        if config is None:
            row["injection"] = {
                "error": "fault injection needs a simulated configuration"}
        else:
            row["injection"] = _campaign_row(cache, workload, config,
                                             trials, spec["seed"])
    row["instructions"] = spec["instructions"]
    row["seed"] = spec["seed"]
    row["trace_source"] = source
    traffic = _cache_traffic_delta(cache, traffic_before)
    if traffic:
        row["trace_cache"] = traffic
    return row


def evaluate_specs(specs: list[dict]) -> list[dict]:
    """Pool entry point: evaluate one trace-sharing batch, in order.

    A failing spec yields an ``{"error": ...}`` row instead of poisoning
    the whole batch.
    """
    rows = []
    for spec in specs:
        try:
            rows.append(evaluate_spec(spec))
        except Exception as exc:  # noqa: BLE001 - row-level fault barrier
            rows.append({ROW_ERROR: f"{type(exc).__name__}: {exc}"})
    return rows


def trace_workload(workload: str, instructions: int,
                   seed: int) -> tuple[dict, str, dict | None]:
    """Pool entry point: one batch's trace stage.

    Computes (or fetches) the batch's shared functional run and returns
    it as a :func:`~repro.cpu.traceio.run_to_payload` artifact plus the
    source it came from (``computed``/``disk``/``memory``) and the
    persistent-cache traffic it caused, so the service's trace-reuse
    counters stay truthful when the per-spec rows all report the
    handed-off run as a ``memory`` hit.
    """
    from repro.cpu.traceio import run_to_payload
    from repro.harness.parallel import worker_cache

    cache = worker_cache(instructions, seed)
    traffic_before = _cache_traffic_snapshot(cache)
    source = cache.trace_source(workload)
    cached = cache.get(workload)
    return (run_to_payload(cached.run), source,
            _cache_traffic_delta(cache, traffic_before))


def evaluate_spec_row(spec: dict, run_payload: dict | None = None) -> dict:
    """Pool entry point: evaluate one spec, adopting a handed-off trace.

    The per-spec counterpart of :func:`evaluate_specs`: exceptions become
    an ``{"error": ...}`` row so one bad spec cannot poison its batch.
    """
    from repro.cpu.traceio import run_from_payload
    from repro.harness.parallel import worker_cache

    try:
        if run_payload is not None:
            cache = worker_cache(spec["instructions"], spec["seed"])
            cache.adopt_run(spec["workload"],
                            run_from_payload(run_payload))
        return evaluate_spec(spec)
    except Exception as exc:  # noqa: BLE001 - row-level fault barrier
        return {ROW_ERROR: f"{type(exc).__name__}: {exc}"}


def prime_workload(workload: str, instructions: int, seed: int) -> str:
    """Pool entry point: warm the trace caches for one workload."""
    from repro.harness.parallel import worker_cache

    cache = worker_cache(instructions, seed)
    cache.get(workload)
    return workload


def _init_worker(trace_dir: str | None) -> None:
    """Pool initializer: point workers at the shared persistent cache."""
    if trace_dir:
        os.environ["REPRO_TRACE_CACHE"] = trace_dir


# -- service-side pool handle ----------------------------------------------

class WorkerPool:
    """Bounded process pool executing evaluation batches for the service.

    ``trace_dir`` (or an inherited ``REPRO_TRACE_CACHE``) gives every
    worker the same persistent trace cache, so identical traces are
    computed once across the whole pool — and primed entries survive
    worker crashes and restarts.
    """

    def __init__(self, workers: int = 1,
                 trace_dir: str | os.PathLike | None = None) -> None:
        if workers <= 0:
            workers = os.cpu_count() or 1
        self.workers = workers
        raw = os.environ.get("REPRO_TRACE_CACHE")
        inherited = raw if raw and raw != "0" else None
        self.trace_dir = str(trace_dir) if trace_dir else inherited
        self._executor: ProcessPoolExecutor | None = None

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(self.trace_dir,),
            )
        return self._executor

    async def run_group(self, specs: list[dict]) -> list[dict]:
        """Evaluate one batch on the pool; raises on worker crashes.

        Multi-spec batches run at stage granularity: one trace task
        computes the batch's shared functional run, then every spec
        evaluates concurrently (across workers) against the handed-off
        trace — so a wide pool is not serialised behind one batch.
        Single-spec batches keep the one-task fast path.
        """
        loop = asyncio.get_running_loop()
        executor = self._ensure()
        if len(specs) <= 1 or self.workers <= 1:
            return await loop.run_in_executor(executor, evaluate_specs,
                                              specs)
        first = specs[0]
        trace_key = (first["workload"], first["instructions"],
                     first["seed"])
        try:
            payload, source, trace_traffic = await loop.run_in_executor(
                executor, trace_workload, *trace_key)
        except RETRYABLE_POOL_ERRORS:
            raise
        except Exception as exc:  # noqa: BLE001 - batch-level fault barrier
            error = f"{type(exc).__name__}: {exc}"
            return [{ROW_ERROR: error} for _ in specs]
        rows = list(await asyncio.gather(*[
            loop.run_in_executor(
                executor, evaluate_spec_row, spec,
                payload if (spec["workload"], spec["instructions"],
                            spec["seed"]) == trace_key else None)
            for spec in specs
        ]))
        # The handoff makes every row see a memory hit; attribute the
        # trace stage's real source (and cache traffic) to the first
        # non-error row.
        for row in rows:
            if ROW_ERROR not in row:
                row["trace_source"] = source
                if trace_traffic:
                    merged = row.get("trace_cache", {})
                    for key, value in trace_traffic.items():
                        merged[key] = merged.get(key, 0) + value
                    row["trace_cache"] = merged
                break
        return rows

    async def prime(self, workloads: list[str], instructions: int,
                    seed: int) -> list[str]:
        """Warm trace caches for ``workloads`` across the pool."""
        loop = asyncio.get_running_loop()
        executor = self._ensure()
        futures = [loop.run_in_executor(executor, prime_workload,
                                        workload, instructions, seed)
                   for workload in workloads]
        return list(await asyncio.gather(*futures))

    #: Per-process grace given to a broken pool's workers before they
    #: are killed outright in :meth:`reset`.
    REAP_TIMEOUT_S = 5.0

    def reset(self) -> None:
        """Replace a broken pool (next batch recreates it).

        The broken pool's worker processes are reaped — bounded join,
        then kill — before the handle is dropped, so a crash-retry loop
        cannot accumulate orphaned workers and their fds.
        """
        if self._executor is None:
            return
        old, self._executor = self._executor, None
        # Snapshot before shutdown(): it drops the executor's _processes
        # reference, and a broken pool's own reaping cannot be trusted.
        procs = list((getattr(old, "_processes", None) or {}).values())
        old.shutdown(wait=False, cancel_futures=True)
        for proc in procs:
            proc.join(timeout=self.REAP_TIMEOUT_S)
        for proc in procs:
            if proc.is_alive():
                proc.kill()
                proc.join()

    def shutdown(self, wait: bool = True) -> None:
        """Graceful drain: let running batches finish, then stop."""
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


#: Exception types treated as "worker crashed; retry the batch".
RETRYABLE_POOL_ERRORS = (BrokenExecutor, OSError)
