"""Dedup and batch planning over admitted requests.

Two collapsing steps between the queue and the worker pool:

1. **Dedup** — requests with identical :meth:`EvalRequest.sim_key`
   collapse into one :class:`SimGroup`; a single execution fans its
   result out to every waiter.
2. **Trace grouping** — sim groups sharing a
   :meth:`EvalRequest.trace_key` ``(workload, instructions, seed)``
   ride in one :class:`Batch`, i.e. one worker invocation, so the
   worker's in-process :class:`~repro.harness.runner.WorkloadCache`
   computes the functional trace once and every scheme in the batch
   replays it.

Both steps preserve arrival order, so ``jobs``-style determinism holds:
the first request of a dedup group decides when its simulation runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serve.queue import PendingEval


@dataclass
class SimGroup:
    """One unique simulation and every request waiting on it."""

    sim_key: str
    spec: dict
    waiters: list[PendingEval] = field(default_factory=list)


@dataclass
class Batch:
    """One worker invocation: sim groups sharing a functional trace."""

    trace_key: tuple
    groups: list[SimGroup] = field(default_factory=list)

    @property
    def requests(self) -> int:
        return sum(len(group.waiters) for group in self.groups)

    @property
    def specs(self) -> list[dict]:
        return [group.spec for group in self.groups]


def plan_batches(pending: list[PendingEval]) -> list[Batch]:
    """Collapse admitted requests into per-trace worker batches."""
    groups: dict[str, SimGroup] = {}
    order: list[str] = []
    for entry in pending:
        key = entry.request.sim_key()
        group = groups.get(key)
        if group is None:
            group = SimGroup(sim_key=key, spec=entry.request.sim_spec())
            groups[key] = group
            order.append(key)
        group.waiters.append(entry)

    batches: dict[tuple, Batch] = {}
    batch_order: list[tuple] = []
    for key in order:
        group = groups[key]
        trace_key = group.waiters[0].request.trace_key()
        batch = batches.get(trace_key)
        if batch is None:
            batch = Batch(trace_key=trace_key)
            batches[trace_key] = batch
            batch_order.append(trace_key)
        batch.groups.append(group)
    return [batches[key] for key in batch_order]
