"""Clients for the evaluation service: blocking and asyncio flavours.

The sync :class:`EvalClient` is a plain socket wrapper for scripts and
the ``paraverser eval`` CLI; :class:`AsyncEvalClient` multiplexes many
in-flight requests over one connection for asyncio callers (requests
are matched to responses by ``request_id``).
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import socket

from repro.serve import protocol
from repro.serve.protocol import (
    CampaignRequest,
    EvalRequest,
    EvalResponse,
    ProtocolError,
)

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8347


class EvalClient:
    """Blocking newline-JSON client; one request at a time."""

    def __init__(self, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
                 connect_timeout_s: float = 5.0) -> None:
        self.host = host
        self.port = port
        self.connect_timeout_s = connect_timeout_s
        self._sock: socket.socket | None = None
        self._file = None

    def connect(self) -> "EvalClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout_s)
            # Response waits are governed by the request deadline, not
            # the connect timeout.
            self._sock.settimeout(None)
            self._file = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "EvalClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    def _round_trip(self, payload: dict) -> dict:
        self.connect()
        assert self._sock is not None and self._file is not None
        self._sock.sendall(protocol.encode_message(payload))
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return protocol.decode_message(line)

    def evaluate(self, request: EvalRequest) -> EvalResponse:
        """Send one eval request and wait for its response."""
        request.validate()
        return protocol.response_from_wire(
            self._round_trip(protocol.request_to_wire(request)))

    def campaign(self, request: CampaignRequest) -> EvalResponse:
        """Send one fault-injection campaign and wait for its row."""
        request.validate()
        return protocol.response_from_wire(
            self._round_trip(protocol.campaign_to_wire(request)))

    def stats(self) -> dict:
        """Fetch the service's stats tree (``serve.*`` telemetry)."""
        response = protocol.response_from_wire(
            self._round_trip({"op": protocol.OP_STATS}))
        if not response.ok or response.result is None:
            raise ProtocolError(f"stats query failed: {response.error}")
        return response.result

    def ping(self) -> bool:
        try:
            response = protocol.response_from_wire(
                self._round_trip({"op": protocol.OP_PING}))
        except (OSError, ProtocolError):
            return False
        return response.ok


class AsyncEvalClient:
    """Asyncio client multiplexing pipelined requests by request_id."""

    def __init__(self, host: str = DEFAULT_HOST,
                 port: int = DEFAULT_PORT) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._waiters: dict[str, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._read_task: asyncio.Task | None = None

    async def connect(self) -> "AsyncEvalClient":
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port, limit=protocol.MAX_LINE_BYTES)
            self._read_task = asyncio.create_task(self._read_loop())
        return self

    async def close(self) -> None:
        if self._read_task is not None:
            self._read_task.cancel()
            try:
                await self._read_task
            except asyncio.CancelledError:
                pass
            self._read_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "AsyncEvalClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                payload = protocol.decode_message(line)
                waiter = self._waiters.pop(
                    payload.get("request_id", ""), None)
                if waiter is not None and not waiter.done():
                    waiter.set_result(payload)
        except (ConnectionResetError, BrokenPipeError, ProtocolError) as exc:
            self._fail_waiters(exc)
            return
        self._fail_waiters(ConnectionError("server closed the connection"))

    def _fail_waiters(self, exc: Exception) -> None:
        for waiter in self._waiters.values():
            if not waiter.done():
                waiter.set_exception(exc)
        self._waiters.clear()

    async def _send(self, payload: dict) -> dict:
        await self.connect()
        assert self._writer is not None
        request_id = payload["request_id"]
        future = asyncio.get_running_loop().create_future()
        self._waiters[request_id] = future
        self._writer.write(protocol.encode_message(payload))
        await self._writer.drain()
        return await future

    async def evaluate(self, request: EvalRequest) -> EvalResponse:
        request.validate()
        if not request.request_id:
            request = dataclasses.replace(
                request, request_id=f"r{next(self._ids)}")
        return protocol.response_from_wire(
            await self._send(protocol.request_to_wire(request)))

    async def campaign(self, request: CampaignRequest) -> EvalResponse:
        request.validate()
        if not request.request_id:
            request = dataclasses.replace(
                request, request_id=f"r{next(self._ids)}")
        return protocol.response_from_wire(
            await self._send(protocol.campaign_to_wire(request)))

    async def stats(self) -> dict:
        response = protocol.response_from_wire(await self._send(
            {"op": protocol.OP_STATS,
             "request_id": f"r{next(self._ids)}"}))
        if not response.ok or response.result is None:
            raise ProtocolError(f"stats query failed: {response.error}")
        return response.result
