"""Clients for the evaluation service: blocking and asyncio flavours.

The sync :class:`EvalClient` is a plain socket wrapper for scripts and
the ``paraverser eval`` CLI; :class:`AsyncEvalClient` multiplexes many
in-flight requests over one connection for asyncio callers (requests
are matched to responses by ``request_id``).  :class:`RouterClient`
discovers a shard router's consistent-hash ring (the ``ring`` op) and
then talks straight to the owning backend per request — ring locality
without the extra front-door hop — falling back along the ring's
failover order when a shard is unreachable.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import socket

from repro.serve import protocol
from repro.serve.protocol import (
    CampaignRequest,
    EvalRequest,
    EvalResponse,
    ProtocolError,
)

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8347


class EvalClient:
    """Blocking newline-JSON client; one request at a time."""

    def __init__(self, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
                 connect_timeout_s: float = 5.0) -> None:
        self.host = host
        self.port = port
        self.connect_timeout_s = connect_timeout_s
        self._sock: socket.socket | None = None
        self._file = None

    def connect(self) -> "EvalClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout_s)
            # Response waits are governed by the request deadline, not
            # the connect timeout.
            self._sock.settimeout(None)
            self._file = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "EvalClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    def _round_trip(self, payload: dict) -> dict:
        # Any failure tears the connection down before propagating:
        # retry loops (RouterClient failover, flapping servers) must
        # never accumulate half-dead sockets across attempts, and the
        # next call must reconnect instead of reusing a broken fd.
        try:
            self.connect()
        except OSError:
            self.close()
            raise
        assert self._sock is not None and self._file is not None
        try:
            self._sock.sendall(protocol.encode_message(payload))
            line = self._file.readline()
        except OSError:
            self.close()
            raise
        if not line:
            self.close()
            raise ConnectionError("server closed the connection")
        return protocol.decode_message(line)

    def evaluate(self, request: EvalRequest) -> EvalResponse:
        """Send one eval request and wait for its response."""
        request.validate()
        return protocol.response_from_wire(
            self._round_trip(protocol.request_to_wire(request)))

    def campaign(self, request: CampaignRequest) -> EvalResponse:
        """Send one fault-injection campaign and wait for its row."""
        request.validate()
        return protocol.response_from_wire(
            self._round_trip(protocol.campaign_to_wire(request)))

    def stats(self, since: int | None = None) -> dict:
        """Fetch the service's stats tree (``serve.*`` telemetry).

        Plain call returns the bare tree.  With ``since=<epoch>`` the
        server publishes a telemetry epoch and returns ``{"epoch",
        "stats", "delta"}`` — pass the returned ``epoch`` back as the
        next ``since`` to stream counter changes incrementally
        (``since=0`` starts a stream).
        """
        payload: dict = {"op": protocol.OP_STATS}
        if since is not None:
            payload["since"] = since
        response = protocol.response_from_wire(self._round_trip(payload))
        if not response.ok or response.result is None:
            raise ProtocolError(f"stats query failed: {response.error}")
        return response.result

    def ping(self) -> bool:
        try:
            response = protocol.response_from_wire(
                self._round_trip({"op": protocol.OP_PING}))
        except (OSError, ProtocolError):
            return False
        return response.ok


class AsyncEvalClient:
    """Asyncio client multiplexing pipelined requests by request_id."""

    def __init__(self, host: str = DEFAULT_HOST,
                 port: int = DEFAULT_PORT) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._waiters: dict[str, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._read_task: asyncio.Task | None = None

    async def connect(self) -> "AsyncEvalClient":
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port, limit=protocol.MAX_LINE_BYTES)
            self._read_task = asyncio.create_task(self._read_loop())
        return self

    async def close(self) -> None:
        if self._read_task is not None:
            self._read_task.cancel()
            try:
                await self._read_task
            except asyncio.CancelledError:
                pass
            self._read_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "AsyncEvalClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                payload = protocol.decode_message(line)
                waiter = self._waiters.pop(
                    payload.get("request_id", ""), None)
                if waiter is not None and not waiter.done():
                    waiter.set_result(payload)
        except (ConnectionResetError, BrokenPipeError, ProtocolError) as exc:
            self._fail_waiters(exc)
            return
        self._fail_waiters(ConnectionError("server closed the connection"))

    def _fail_waiters(self, exc: Exception) -> None:
        for waiter in self._waiters.values():
            if not waiter.done():
                waiter.set_exception(exc)
        self._waiters.clear()

    async def _send(self, payload: dict) -> dict:
        await self.connect()
        assert self._writer is not None
        request_id = payload["request_id"]
        future = asyncio.get_running_loop().create_future()
        self._waiters[request_id] = future
        self._writer.write(protocol.encode_message(payload))
        await self._writer.drain()
        return await future

    async def evaluate(self, request: EvalRequest) -> EvalResponse:
        request.validate()
        if not request.request_id:
            request = dataclasses.replace(
                request, request_id=f"r{next(self._ids)}")
        return protocol.response_from_wire(
            await self._send(protocol.request_to_wire(request)))

    async def campaign(self, request: CampaignRequest) -> EvalResponse:
        request.validate()
        if not request.request_id:
            request = dataclasses.replace(
                request, request_id=f"r{next(self._ids)}")
        return protocol.response_from_wire(
            await self._send(protocol.campaign_to_wire(request)))

    async def stats(self, since: int | None = None) -> dict:
        """Stats tree, or epoch view with ``since`` (see
        :meth:`EvalClient.stats`)."""
        payload: dict = {"op": protocol.OP_STATS,
                         "request_id": f"r{next(self._ids)}"}
        if since is not None:
            payload["since"] = since
        response = protocol.response_from_wire(await self._send(payload))
        if not response.ok or response.result is None:
            raise ProtocolError(f"stats query failed: {response.error}")
        return response.result


class RouterClient:
    """Sync client that follows a shard router's ring to the backends.

    On first use it asks the router (``host``/``port``) for its ring —
    shard names, addresses, virtual-node count — then sends each
    request directly to the shard owning its trace key, exactly where
    the router itself would have forwarded it.  A shard that cannot be
    reached is skipped in favour of the next ring replica, mirroring
    the router's failover order, and its connection is closed so retry
    loops never leak sockets.  ``refresh()`` re-reads the ring after
    fleet changes.
    """

    def __init__(self, host: str = DEFAULT_HOST,
                 port: int = DEFAULT_PORT,
                 connect_timeout_s: float = 5.0) -> None:
        self.host = host
        self.port = port
        self.connect_timeout_s = connect_timeout_s
        self._ring = None
        self._addresses: dict[str, tuple[str, int]] = {}
        self._clients: dict[str, EvalClient] = {}

    # -- ring discovery ----------------------------------------------------

    def refresh(self) -> None:
        """(Re-)fetch the ring description from the router."""
        from repro.router.ring import HashRing

        with EvalClient(self.host, self.port,
                        connect_timeout_s=self.connect_timeout_s) as probe:
            payload = probe._round_trip({"op": protocol.OP_RING})
        response = protocol.response_from_wire(payload)
        if not response.ok or response.result is None:
            raise ProtocolError(f"ring query failed: {response.error}")
        ring = response.result
        self._addresses = {
            backend["name"]: (backend["host"], backend["port"])
            for backend in ring.get("backends", [])
        }
        if not self._addresses:
            raise ProtocolError("router reported an empty ring")
        self._ring = HashRing(sorted(self._addresses),
                              replicas=int(ring.get("replicas", 1)))

    def _ensure_ring(self):
        if self._ring is None:
            self.refresh()
        return self._ring

    def _client(self, name: str) -> EvalClient:
        client = self._clients.get(name)
        if client is None:
            host, port = self._addresses[name]
            client = EvalClient(host, port,
                                connect_timeout_s=self.connect_timeout_s)
            self._clients[name] = client
        return client

    def close(self) -> None:
        for client in self._clients.values():
            client.close()
        self._clients.clear()

    def __enter__(self) -> "RouterClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request routing ---------------------------------------------------

    def _route(self, request, send) -> EvalResponse:
        ring = self._ensure_ring()
        last_exc: Exception | None = None
        for name in ring.preference(request.trace_key()):
            client = self._client(name)
            try:
                return send(client)
            except (OSError, ConnectionError) as exc:
                # EvalClient closed its socket already; drop the handle
                # so the next attempt reconnects from scratch.
                client.close()
                last_exc = exc
        raise ConnectionError(
            f"no shard reachable for {request.workload!r}: {last_exc}")

    def evaluate(self, request: EvalRequest) -> EvalResponse:
        request.validate()
        return self._route(request,
                           lambda client: client.evaluate(request))

    def campaign(self, request: CampaignRequest) -> EvalResponse:
        """Send one campaign to the shard owning its trace key.

        Whole-campaign placement (no fan-out): fan-out with failover
        bookkeeping is the router's job; this path is for clients that
        want ring locality without the front-door hop.
        """
        request.validate()
        return self._route(request,
                           lambda client: client.campaign(request))

    def stats(self) -> dict:
        """The *router's* stats tree (``router.*`` telemetry)."""
        with EvalClient(self.host, self.port,
                        connect_timeout_s=self.connect_timeout_s) as probe:
            return probe.stats()

    def shard_stats(self, since: dict[str, int] | None = None,
                    ) -> dict[str, dict]:
        """Live stats from every backend shard, keyed by shard name.

        Walks the discovered ring and issues the ``stats`` op directly
        to each backend — the per-shard view the router's own tree
        cannot give (it only sees what it forwarded).  ``since`` maps
        shard name to the last seen epoch id, switching that shard to
        the incremental ``{"epoch", "stats", "delta"}`` shape.  An
        unreachable shard reports ``{"error": ...}`` instead of taking
        the sweep down.
        """
        self._ensure_ring()
        since = since or {}
        report: dict[str, dict] = {}
        for name in sorted(self._addresses):
            client = self._client(name)
            try:
                report[name] = client.stats(since.get(name))
            except (OSError, ConnectionError, ProtocolError) as exc:
                client.close()
                report[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return report
