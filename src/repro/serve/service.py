"""The asyncio evaluation service: TCP accept → queue → batch → pool.

One dispatcher coroutine pulls admitted requests off the
:class:`~repro.serve.queue.AdmissionQueue`, collapses them with
:func:`~repro.serve.batcher.plan_batches`, and launches one task per
batch against the :class:`~repro.serve.workers.WorkerPool`.  Connection
handlers only parse, admit, and await — all heavy work happens in pool
processes, so the event loop stays responsive at high client counts.

Telemetry is published into a ``serve`` group of a standard
:class:`~repro.obs.StatGroup` tree — the same machinery as
``paraverser run --stats-json`` — and streams through a
:class:`~repro.obs.TelemetryBus`: with ``epoch_s > 0`` the service
publishes an epoch snapshot of the whole tree every period (mirrored to
``--telemetry-jsonl`` when given), and the in-band ``stats`` op both
returns the live tree and, given ``since: <epoch>``, the delta stream
newer than that epoch — a client can follow counters incrementally
instead of re-diffing full dumps.
"""

from __future__ import annotations

import asyncio
import logging
from pathlib import Path

from repro.obs import StatGroup, TelemetryBus
from repro.serve import protocol
from repro.serve.batcher import Batch, plan_batches
from repro.serve.protocol import (
    EvalRequest,
    EvalResponse,
    ProtocolError,
    encode_message,
)
from repro.serve.queue import AdmissionQueue, PendingEval
from repro.serve.workers import RETRYABLE_POOL_ERRORS, ROW_ERROR, WorkerPool

log = logging.getLogger("repro.serve")


class EvalService:
    """Batched evaluation server over the detection-backend registry."""

    def __init__(self, pool: WorkerPool, *,
                 host: str = "127.0.0.1", port: int = 0,
                 queue_depth: int = 64,
                 batch_window_s: float = 0.01,
                 default_timeout_s: float | None = None,
                 max_retries: int = 2,
                 retry_backoff_s: float = 0.25,
                 stats: StatGroup | None = None,
                 telemetry: TelemetryBus | None = None,
                 epoch_s: float = 0.0,
                 telemetry_jsonl: str | Path | None = None) -> None:
        self.pool = pool
        self.host = host
        self.port = port
        self.batch_window_s = batch_window_s
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.queue = AdmissionQueue(depth=queue_depth,
                                    default_timeout_s=default_timeout_s)
        self.stats_root = stats if stats is not None else StatGroup("root")
        self._stats = self.stats_root.group(
            "serve", "evaluation service telemetry")
        self.telemetry = telemetry if telemetry is not None \
            else TelemetryBus()
        self.epoch_s = epoch_s
        if telemetry_jsonl is not None:
            self.telemetry.attach_jsonl(telemetry_jsonl)
        self._server: asyncio.base_events.Server | None = None
        self._dispatcher: asyncio.Task | None = None
        self._publisher: asyncio.Task | None = None
        self._batch_tasks: set[asyncio.Task] = set()
        self._running = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind, start accepting and dispatching; returns (host, port)."""
        self._running = True
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port,
            limit=protocol.MAX_LINE_BYTES)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._dispatcher = asyncio.create_task(self._dispatch_loop(),
                                               name="serve-dispatch")
        if self.epoch_s > 0:
            self._publisher = asyncio.create_task(
                self._publish_loop(), name="serve-telemetry")
        log.info("serve: listening on %s:%d", self.host, self.port)
        return self.host, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, shut the pool down."""
        self._running = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        if self._publisher is not None:
            self._publisher.cancel()
            try:
                await self._publisher
            except asyncio.CancelledError:
                pass
        # Whatever was admitted but never dispatched is shed; batches
        # already in flight run to completion (pool drain).
        self.queue.drain(
            lambda request: protocol.shed_response(request,
                                                   self.queue.depth))
        if self._batch_tasks:
            await asyncio.gather(*self._batch_tasks, return_exceptions=True)
        self.pool.shutdown(wait=True)
        self._publish_queue_stats()
        if self.epoch_s > 0:
            # Final epoch so the stream's last line is the shutdown tree.
            self.telemetry.publish(self.stats_root, label="serve")
        self.telemetry.close()

    # -- connection handling ----------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        # Requests on one connection are served concurrently (pipelining);
        # responses carry request_ids, and writes are serialised by a
        # per-connection lock.
        write_lock = asyncio.Lock()
        in_flight: set[asyncio.Task] = set()
        try:
            while self._running:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._write(writer, {
                        "v": protocol.PROTOCOL_VERSION,
                        "status": protocol.STATUS_ERROR,
                        "request_id": "",
                        "error": "oversized wire message",
                    }, write_lock)
                    break
                if not line:
                    break
                task = asyncio.create_task(
                    self._handle_line(line, writer, write_lock))
                in_flight.add(task)
                task.add_done_callback(in_flight.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Loop teardown while the connection is open: exit quietly
            # (asyncio's stream glue logs cancelled handler tasks).
            pass
        finally:
            if in_flight:
                await asyncio.gather(*in_flight, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _handle_line(self, line: bytes, writer: asyncio.StreamWriter,
                           write_lock: asyncio.Lock) -> None:
        payload: dict | None = None
        try:
            payload = protocol.decode_message(line)
            op = payload.get("op", protocol.OP_EVAL)
            if op == protocol.OP_PING:
                response = EvalResponse(
                    protocol.STATUS_OK,
                    payload.get("request_id", ""),
                    result={"protocol": protocol.PROTOCOL_VERSION})
            elif op == protocol.OP_STATS:
                self._publish_queue_stats()
                response = EvalResponse(
                    protocol.STATUS_OK,
                    payload.get("request_id", ""),
                    result=self._stats_result(payload.get("since")))
            elif op == protocol.OP_EVAL:
                request = protocol.request_from_wire(payload)
                self._validate_names(request)
                response = await self._serve_eval(request)
            elif op == protocol.OP_CAMPAIGN:
                # Campaigns ride the same queue/batch/dispatch path as
                # evals; the request type only changes the worker spec.
                request = protocol.campaign_from_wire(payload)
                self._validate_names(request)
                response = await self._serve_eval(request)
            else:
                raise ProtocolError(f"unknown op {op!r}")
        except ProtocolError as exc:
            self._stats.counter(
                "protocol_errors", "malformed wire messages").inc()
            request_id = (payload.get("request_id", "")
                          if isinstance(payload, dict) else "")
            response = EvalResponse(protocol.STATUS_ERROR, request_id,
                                    error=str(exc))
        await self._write(writer, protocol.response_to_wire(response),
                          write_lock)

    @staticmethod
    def _validate_names(request: EvalRequest) -> None:
        """Reject unknown workloads/backends at admission, not in a worker."""
        from repro.detect import backend_names
        from repro.workloads.profiles import ALL_PROFILES

        if request.workload not in ALL_PROFILES:
            raise ProtocolError(f"unknown workload {request.workload!r}")
        if request.backend is not None \
                and request.backend not in backend_names():
            raise ProtocolError(
                f"unknown detection backend {request.backend!r}; "
                f"known: {', '.join(backend_names())}")

    async def _serve_eval(self, request: EvalRequest) -> EvalResponse:
        self._stats.counter("requests_total",
                            "eval requests received").inc()
        pending = self.queue.submit(request)
        loop = asyncio.get_running_loop()
        remaining = pending.remaining(loop.time())
        done, _ = await asyncio.wait({pending.future}, timeout=remaining)
        if done:
            response = pending.future.result()
        else:
            # Deadline passed while queued/executing; the batch result
            # (if it ever lands) is discarded for this waiter.
            pending.resolve(protocol.timeout_response(request))
            response = pending.future.result()
        self._account_response(pending, response, loop.time())
        return response

    def _account_response(self, pending: PendingEval,
                          response: EvalResponse, now: float) -> None:
        latency_ms = (now - pending.enqueued_at) * 1e3
        self._stats.histogram(
            "latency_ms", "request admission-to-response latency",
        ).record(latency_ms)
        self._stats.group("responses").counter(
            response.status, f"responses with status {response.status}",
        ).inc()

    async def _write(self, writer: asyncio.StreamWriter, payload: dict,
                     write_lock: asyncio.Lock) -> None:
        async with write_lock:
            writer.write(encode_message(payload))
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # -- dispatch ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            pending = await self.queue.next_batch(self.batch_window_s)
            if not pending:
                continue
            for batch in plan_batches(pending):
                task = asyncio.create_task(
                    self._run_batch(batch),
                    name=f"serve-batch-{batch.trace_key[0]}")
                self._batch_tasks.add(task)
                task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(self, batch: Batch) -> None:
        self._stats.counter("batches", "worker invocations").inc()
        self._stats.histogram(
            "batch_requests", "requests coalesced per worker invocation",
        ).record(batch.requests)
        self._stats.histogram(
            "batch_sims", "unique simulations per worker invocation",
        ).record(len(batch.groups))
        self._stats.counter(
            "unique_simulations", "simulations actually executed",
        ).inc(len(batch.groups))
        self._stats.counter(
            "requests_served", "requests answered from batch results",
        ).inc(batch.requests)

        rows: list[dict] | None = None
        failure = ""
        for attempt in range(self.max_retries + 1):
            try:
                rows = await self.pool.run_group(batch.specs)
                break
            except RETRYABLE_POOL_ERRORS as exc:
                failure = f"{type(exc).__name__}: {exc}"
                log.warning("serve: batch failed (%s), attempt %d/%d",
                            failure, attempt + 1, self.max_retries + 1)
                self.pool.reset()
                if attempt < self.max_retries:
                    self._stats.counter(
                        "retries", "batches retried after a crash").inc()
                    await asyncio.sleep(
                        self.retry_backoff_s * (2 ** attempt))
        if rows is None:
            self._stats.counter("errors", "batches abandoned").inc()
            for group in batch.groups:
                for waiter in group.waiters:
                    waiter.resolve(protocol.error_response(
                        waiter.request,
                        f"worker pool failed after "
                        f"{self.max_retries + 1} attempts: {failure}"))
            return

        trace = self._stats.group("trace", "functional-trace reuse")
        for group, row in zip(batch.groups, rows):
            if ROW_ERROR in row and len(row) == 1:
                for waiter in group.waiters:
                    waiter.resolve(protocol.error_response(
                        waiter.request, row[ROW_ERROR]))
                continue
            source = row.get("trace_source", "computed")
            trace.counter(f"{source}", f"evaluations with {source} trace",
                          ).inc()
            if source in ("memory", "disk"):
                trace.counter("hits", "trace-cache hits (memory+disk)").inc()
            traffic = row.pop("trace_cache", None)
            if traffic:
                cache_group = trace.group(
                    "cache", "persistent trace-cache traffic")
                for key, value in traffic.items():
                    cache_group.counter(key).inc(value)
            for waiter in group.waiters:
                waiter.resolve(protocol.ok_response(waiter.request, row))

    # -- stats -------------------------------------------------------------

    def _stats_result(self, since) -> dict:
        """The ``stats`` op result: plain tree, or epoch view for
        ``since``.

        Without ``since`` the result is the bare stats tree (the
        original wire shape, kept for old clients).  With ``since:
        <epoch>`` a fresh epoch is published and the result carries the
        new epoch id, the tree, and the summed numeric delta of every
        retained snapshot newer than ``since`` — counters accumulate
        exactly, so polling clients can integrate changes without
        re-diffing full dumps.  A ``since`` older than the bus history
        yields the delta over the retained window only.
        """
        if since is None:
            return self.stats_root.to_dict()
        if not isinstance(since, int) or isinstance(since, bool) \
                or since < 0:
            raise ProtocolError(
                f"stats 'since' must be a non-negative epoch id, "
                f"got {since!r}")
        snapshot = self.telemetry.publish(self.stats_root, label="serve")
        delta: dict[str, float] = {}
        for past in self.telemetry.poll(since=since, label="serve"):
            for key, change in past.delta.items():
                delta[key] = delta.get(key, 0.0) + change
        return {"epoch": snapshot.epoch, "stats": snapshot.tree,
                "delta": delta}

    async def _publish_loop(self) -> None:
        """Stream the stats tree as telemetry epochs every ``epoch_s``."""
        while True:
            await asyncio.sleep(self.epoch_s)
            self._publish_queue_stats()
            self.telemetry.publish(self.stats_root, label="serve")

    def _publish_queue_stats(self) -> None:
        queue = self._stats.group("queue", "admission control")
        queue.count("submitted", self.queue.submitted)
        queue.count("shed", self.queue.shed)
        queue.count("expired", self.queue.expired)
        queue.scalar("depth", float(len(self.queue)),
                     "entries currently queued")
        queue.scalar("depth_limit", float(self.queue.depth))
