"""Detection scenarios from related work (DME, ITHICA, MEEK).

The campaign engine runs one *scheme* per spec.  A scheme decides how a
trial's fault is exposed to replay and what "detected" means:

* ``paraverser`` — the paper's checker replay
  (:class:`~repro.faults.campaign.FaultCampaign`): full per-access
  LSL/LSC compare plus an end-of-segment register compare.
* ``dme`` — divergent multi-version replay (arXiv:2605.12576).  The
  trace is replayed under ``versions`` deterministic address-space
  decorrelation transforms (a sha256-keyed XOR remap per version,
  version 0 being the canonical identity).  A fault whose effect is
  architecturally masked in the canonical address space cannot mask
  identically in a decorrelated one — data-dependent faults (stuck-ats,
  defect signatures) diverge in at least one version, and detection is
  trace/LSL mismatch in *any* replica.  Pure XOR transients commute
  with the remap, so they behave exactly as in the canonical version —
  decorrelation buys coverage only against correlated faults, which is
  the point of the scheme.
* ``ithica-sdc`` — the SDC screen (arXiv:2605.15638): the standard
  checker replay driven by persistent per-FU-class
  :class:`~repro.faults.models.DefectFault` signatures instead of
  uniform flips; the campaign's ``sdc_escape_rate`` measures the silent
  corruptions that slip through.
* ``meek-ro`` — a reduced-observability checker (arXiv:2504.01347):
  only *retired architectural state* is checked, and only at coarsened
  checkpoint intervals (every ``checkpoint_interval`` segments).  No
  per-access LSL compare runs, so checker compare bandwidth shrinks —
  the trade is coarser detection latency (always reported at the window
  end) and escapes for corruptions invisible in the window-final
  register file.

Every scheme's trial runner is a pure function of ``(spec, trial)``:
faults come from :func:`~repro.faults.models.derive_trial_seed` streams
and the decorrelation masks are sha256-derived from the campaign seed,
so any worker count or trial order is bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.checker import (
    CheckerCore,
    LogReplayInterface,
    ReplayDetection,
)
from repro.core.counter import Segment
from repro.core.lsc import LoadStoreComparator
from repro.core.rcu import RegisterCheckpointUnit
from repro.cpu.config import CoreConfig
from repro.cpu.functional import ControlFlowEscape, FunctionalCore
from repro.faults.campaign import (
    FaultCampaign,
    InjectionResult,
    checker_fu_counts,
)
from repro.faults.models import (
    FAULT_DEFECT,
    FAULT_KINDS,
    FAULT_STUCK_AT,
    derive_trial_seed,
)
from repro.isa.instructions import FUKind
from repro.isa.program import Program
from repro.isa.registers import RegisterFile

SCHEME_PARAVERSER = "paraverser"
SCHEME_DME = "dme"
SCHEME_ITHICA = "ithica-sdc"
SCHEME_MEEK = "meek-ro"

#: Every campaign scheme the engine can run, in presentation order.
CAMPAIGN_SCHEMES = (SCHEME_PARAVERSER, SCHEME_DME, SCHEME_ITHICA,
                    SCHEME_MEEK)

#: Decorrelated replicas per DME trial (version 0 is the canonical one).
DME_VERSIONS = 2

#: Segments per MEEK architectural checkpoint window.
MEEK_CHECKPOINT_INTERVAL = 4

#: Address bits a decorrelation mask may permute — matches the
#: injectable LSQ address width in :mod:`repro.faults.models`.
_ADDRESS_MASK_BITS = 40
_MASK64 = (1 << 64) - 1


def decorrelation_mask(seed: int, version: int) -> int:
    """The sha256-keyed address remap for one DME version.

    Version 0 is the identity (the canonical replica), so a DME trial's
    detections are always a superset of the plain checker's for the
    same fault and coverage.
    """
    if version == 0:
        return 0
    raw = derive_trial_seed(seed, version, site="dme-mask")
    mask = raw & ((1 << _ADDRESS_MASK_BITS) - 1)
    # A zero mask would silently alias the canonical version; pin one
    # bit so every non-zero version is genuinely decorrelated.
    return mask or 1


@dataclass
class DecorrelatedSurface:
    """Wraps a fault surface in an address-space decorrelation remap.

    Address values are XOR-remapped before the fault sees them and
    un-remapped after, so the *same physical fault* acts on a different
    address-bit pattern in every version: a stuck-at that happens to
    agree with the canonical address stream (masked) disagrees with a
    remapped one.  Non-address values pass through untouched, and with
    no fault installed the remap composes to the identity — healthy
    decorrelated replay is bit-identical to canonical replay.
    """

    fault: object
    mask: int

    def apply(self, fu: FUKind, unit: int, value: int | float,
              is_address: bool = False) -> int | float:
        if not is_address:
            return self.fault.apply(fu, unit, value, is_address)
        remapped = (int(value) ^ self.mask) & _MASK64
        out = self.fault.apply(fu, unit, remapped, is_address=True)
        return (int(out) ^ self.mask) & _MASK64

    def describe(self) -> str:
        return (f"{self.fault.describe()} under decorrelation mask "
                f"0x{self.mask:x}")

    def fresh(self) -> "DecorrelatedSurface":
        inner = getattr(self.fault, "fresh", None)
        return DecorrelatedSurface(
            inner() if inner is not None else self.fault, self.mask)

    def __getattr__(self, name: str):
        # Register-file faults expose corrupt_checkpoint; delegate any
        # protocol extensions to the wrapped fault (register state is
        # not address space, the remap does not apply).
        return getattr(self.fault, name)


class DivergentCampaign:
    """DME-style trials: replay every version, detect on any divergence.

    Detection latency is the earliest detecting segment across versions
    (ties break toward the lower version id), so the reported latency is
    never worse than the canonical checker's.
    """

    def __init__(self, program: Program, segments: list[Segment],
                 checker_config: CoreConfig, hash_mode: bool = False,
                 seed: int = 0, versions: int = DME_VERSIONS) -> None:
        self.program = program
        self.segments = segments
        self.fu_counts = checker_fu_counts(checker_config)
        self.hash_mode = hash_mode
        self.masks = tuple(decorrelation_mask(seed, v)
                           for v in range(versions))

    def _surface(self, fault, mask: int):
        base = fault.fresh()
        return base if mask == 0 else DecorrelatedSurface(base, mask)

    def run_trial(self, fault, covered: list[int] | None = None,
                  trial: int = -1,
                  kind: str = FAULT_STUCK_AT) -> InjectionResult:
        covered_set = set(covered) if covered is not None else None
        best: tuple[int, int, int] | None = None  # (end, version, segment)
        for version, mask in enumerate(self.masks):
            checker = CheckerCore(
                self.program, fault_surface=self._surface(fault, mask),
                fu_counts=self.fu_counts, hash_mode=self.hash_mode)
            for seg in self.segments:
                if covered_set is not None and seg.index not in covered_set:
                    continue
                result = checker.check_segment(seg)
                if result.detected:
                    candidate = (seg.end, version, seg.index)
                    if best is None or candidate < best:
                        best = candidate
                    break
        if best is not None:
            return InjectionResult(
                fault=fault, detected=True, masked=False,
                detection_instruction=best[0], detecting_segment=best[2],
                trial=trial, kind=kind)
        # No version diverged on covered segments.  A fault is masked
        # only if *every* version stays clean over the full trace; if
        # any uncovered segment diverges in any version, coverage (not
        # the scheme) missed an effective fault.
        if covered_set is not None and len(covered_set) < len(self.segments):
            for mask in self.masks:
                full = CheckerCore(
                    self.program, fault_surface=self._surface(fault, mask),
                    fu_counts=self.fu_counts, hash_mode=self.hash_mode)
                for seg in self.segments:
                    if seg.index in covered_set:
                        continue
                    if full.check_segment(seg).detected:
                        return InjectionResult(
                            fault=fault, detected=False, masked=False,
                            trial=trial, kind=kind)
        return InjectionResult(fault=fault, detected=False, masked=True,
                               trial=trial, kind=kind)


class ReducedObservabilityCampaign:
    """MEEK-style trials: retired-state checks at coarse checkpoints.

    Per-access LSL compares are disabled (the checker still *consumes*
    the log to replay, so structural divergence — wrong record kind,
    log under/overflow, control-flow escape, instruction-count drift —
    is still visible), and the register-file compare runs only on the
    final segment of each ``checkpoint_interval``-segment window.
    Every detection is reported at the window end: latency is coarsened
    by construction.
    """

    def __init__(self, program: Program, segments: list[Segment],
                 checker_config: CoreConfig, hash_mode: bool = False,
                 interval: int = MEEK_CHECKPOINT_INTERVAL) -> None:
        del hash_mode  # observability is fixed by the scheme itself
        self.program = program
        self.segments = segments
        self.fu_counts = checker_fu_counts(checker_config)
        self.interval = max(1, interval)

    def _windows(self) -> list[list[Segment]]:
        return [self.segments[i:i + self.interval]
                for i in range(0, len(self.segments), self.interval)]

    def _replay_segment(self, seg: Segment, surface,
                        start) -> tuple[bool, object]:
        """Replay one segment with LSL compares off, from ``start``.

        ``start`` is the architectural state carried from the previous
        segment of the window (the golden start checkpoint only for the
        window's first segment), so corruption propagates to the
        window-end compare instead of being wiped at every segment
        boundary.  Returns ``(structurally_diverged, end_checkpoint)``.
        """
        interface = LogReplayInterface(seg, LoadStoreComparator(),
                                       hash_mode=True)
        interface.hash_stream = None  # no digest either: retired state only
        regs = RegisterFile()
        regs.restore(start)
        core = FunctionalCore(
            self.program, interface, registers=regs, nonrep=interface,
            fault_surface=surface, fu_counts=self.fu_counts,
            start_pc=start.pc)
        try:
            run = core.run(seg.instructions, record_trace=False)
        except (ReplayDetection, ControlFlowEscape):
            return True, None
        if run.instructions != seg.instructions or interface.surplus_records:
            return True, None
        return False, run.end_checkpoint

    def _check_window(self, window: list[Segment], surface) -> bool:
        """True if the coarse checker flags this window."""
        state = window[0].start_checkpoint
        for seg in window:
            diverged, state = self._replay_segment(seg, surface, state)
            if diverged:
                return True
            corrupt = getattr(surface, "corrupt_checkpoint", None)
            if corrupt is not None:
                state = corrupt(state, seg.index)
        rcu = RegisterCheckpointUnit()
        rcu.arm(window[-1].end_checkpoint, window[-1].digest)
        return rcu.compare(state, window[-1].index) is not None

    def run_trial(self, fault, covered: list[int] | None = None,
                  trial: int = -1,
                  kind: str = FAULT_STUCK_AT) -> InjectionResult:
        covered_set = set(covered) if covered is not None else None
        surface = fault.fresh()
        for window in self._windows():
            if covered_set is not None and any(
                    seg.index not in covered_set for seg in window):
                # A window can only close if every segment's log was
                # shipped; partially-covered windows go unchecked.
                continue
            if self._check_window(window, surface):
                return InjectionResult(
                    fault=fault, detected=True, masked=False,
                    detection_instruction=window[-1].end,
                    detecting_segment=window[-1].index,
                    trial=trial, kind=kind)
        # Classify with a full-observability replay over *all* segments:
        # reduced observability can itself let an effective fault
        # escape, and those must count as missed, not masked.
        full = CheckerCore(self.program, fault_surface=fault.fresh(),
                           fu_counts=self.fu_counts, hash_mode=False)
        for seg in self.segments:
            if full.check_segment(seg).detected:
                return InjectionResult(fault=fault, detected=False,
                                       masked=False, trial=trial, kind=kind)
        return InjectionResult(fault=fault, detected=False, masked=True,
                               trial=trial, kind=kind)


def default_fault_kinds(scheme: str) -> tuple[str, ...]:
    """The fault-site mix a scheme's campaign defaults to."""
    if scheme == SCHEME_ITHICA:
        # The SDC screen measures defect-induced silent corruption.
        return (FAULT_DEFECT,)
    return FAULT_KINDS


def make_campaign(scheme: str, program: Program, segments: list[Segment],
                  checker_config: CoreConfig, hash_mode: bool = False,
                  seed: int = 0):
    """Build the trial runner for one campaign scheme."""
    if scheme in (SCHEME_PARAVERSER, SCHEME_ITHICA):
        return FaultCampaign(program, segments, checker_config,
                             hash_mode=hash_mode)
    if scheme == SCHEME_DME:
        return DivergentCampaign(program, segments, checker_config,
                                 hash_mode=hash_mode, seed=seed)
    if scheme == SCHEME_MEEK:
        return ReducedObservabilityCampaign(program, segments,
                                            checker_config,
                                            hash_mode=hash_mode)
    raise ValueError(f"unknown campaign scheme {scheme!r}; "
                     f"known: {', '.join(CAMPAIGN_SCHEMES)}")
