"""Fault-injection campaigns (Fig. 8 and the section VII-B numbers).

Errors are injected on the *checker* core (detection is symmetric, and
this keeps the main core's execution pristine, exactly as the paper
does).  A trial:

1. builds a fault and a faulty :class:`~repro.core.checker.CheckerCore`;
2. replays, in order, the segments the opportunistic schedule actually
   covered with the configured checker pool;
3. records the first detection and its latency in main-core instructions;
4. if no covered segment detects, replays *all* segments to classify the
   fault as masked (it never changed execution — the paper's "correctly
   masked" 24 %) or as missed-by-coverage.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Union

from repro.core.checker import CheckerCore
from repro.core.counter import Segment
from repro.core.errors import DetectionEvent
from repro.core.system import SystemResult
from repro.cpu.config import CoreConfig
from repro.faults.models import (
    FAULT_STUCK_AT,
    DefectFault,
    RegisterFault,
    StuckAtFault,
    TransientFault,
    fault_for_trial,
)
from repro.isa.instructions import FUKind
from repro.isa.program import Program

logger = logging.getLogger("repro.faults.campaign")

Fault = Union[StuckAtFault, TransientFault, RegisterFault, DefectFault]


@dataclass
class InjectionResult:
    """Outcome of one injected fault."""

    fault: Fault
    detected: bool
    masked: bool
    detection_instruction: int = -1  # main-core trace index at detection
    detecting_segment: int = -1
    event: DetectionEvent | None = None
    trial: int = -1  # campaign trial index (-1 for ad-hoc injections)
    kind: str = FAULT_STUCK_AT

    @property
    def effective(self) -> bool:
        """An error that actually perturbed execution somewhere."""
        return not self.masked


@dataclass
class CampaignResult:
    """Aggregate of one campaign."""

    workload: str
    trials: list[InjectionResult] = field(default_factory=list)

    @property
    def injected(self) -> int:
        return len(self.trials)

    @property
    def masked(self) -> int:
        return sum(1 for t in self.trials if t.masked)

    @property
    def detected(self) -> int:
        return sum(1 for t in self.trials if t.detected)

    @property
    def detection_rate_all(self) -> float:
        """Detected / injected (the paper's 76 % full-coverage number)."""
        if not self.injected:
            logger.warning("campaign %s: 0 trials injected; "
                           "detection_rate_all reported as 0.0",
                           self.workload)
            return 0.0
        return self.detected / self.injected

    @property
    def detection_rate_effective(self) -> float:
        """Detected / non-masked (Fig. 8's coverage metric)."""
        effective = self.injected - self.masked
        if not effective:
            # 0 trials, or every fault masked: no denominator, so
            # report 0.0 instead of dividing (or claiming coverage).
            logger.warning("campaign %s: no effective faults "
                           "(injected=%d, masked=%d); "
                           "detection_rate_effective reported as 0.0",
                           self.workload, self.injected, self.masked)
            return 0.0
        return self.detected / effective

    @property
    def sdc_escape_rate(self) -> float:
        """Effective-but-undetected faults per injection (silent SDCs)."""
        if not self.injected:
            return 0.0
        return sum(1 for t in self.trials
                   if not t.detected and not t.masked) / self.injected

    @property
    def mean_detection_latency(self) -> float:
        latencies = [t.detection_instruction for t in self.trials
                     if t.detected]
        return sum(latencies) / len(latencies) if latencies else float("nan")


def checker_fu_counts(config: CoreConfig) -> dict[FUKind, int]:
    """Functional-unit instance counts for round-robin fault exposure."""
    return {kind: fu.units for kind, fu in config.fus.items()}


class FaultCampaign:
    """Runs stuck-at injection trials against checked segments."""

    def __init__(self, program: Program, segments: list[Segment],
                 checker_config: CoreConfig,
                 hash_mode: bool = False) -> None:
        self.program = program
        self.segments = segments
        self.fu_counts = checker_fu_counts(checker_config)
        self.hash_mode = hash_mode

    def run_trial(self, fault: Fault,
                  covered: list[int] | None = None,
                  trial: int = -1,
                  kind: str = FAULT_STUCK_AT) -> InjectionResult:
        """Inject ``fault`` on the checker; replay covered segments."""
        covered_set = set(covered) if covered is not None else None
        # Stateful faults (transients) carry use counters; start each
        # replay pass from a pristine copy so a trial's outcome never
        # depends on what ran on the fault object before it.
        checker = CheckerCore(self.program, fault_surface=fault.fresh(),
                              fu_counts=self.fu_counts,
                              hash_mode=self.hash_mode)
        for seg in self.segments:
            if covered_set is not None and seg.index not in covered_set:
                continue
            result = checker.check_segment(seg)
            if result.detected:
                return InjectionResult(
                    fault=fault, detected=True, masked=False,
                    detection_instruction=seg.end,
                    detecting_segment=seg.index,
                    event=result.first_event,
                    trial=trial, kind=kind,
                )
        # Nothing detected among covered segments: was it masked entirely?
        if covered_set is not None and len(covered_set) < len(self.segments):
            full = CheckerCore(self.program, fault_surface=fault.fresh(),
                               fu_counts=self.fu_counts,
                               hash_mode=self.hash_mode)
            for seg in self.segments:
                if seg.index in covered_set:
                    continue
                if full.check_segment(seg).detected:
                    # Effective fault that coverage missed.
                    return InjectionResult(fault=fault, detected=False,
                                           masked=False,
                                           trial=trial, kind=kind)
        return InjectionResult(fault=fault, detected=False, masked=True,
                               trial=trial, kind=kind)

    def run(self, trials: int, seed: int = 0,
            covered: list[int] | None = None,
            kinds: tuple[str, ...] = (FAULT_STUCK_AT,),
            first_trial: int = 0) -> CampaignResult:
        """Run ``trials`` random fault injections.

        Each trial's fault is drawn from its own derived seed
        (:func:`~repro.faults.models.derive_trial_seed`), so any subset
        or reordering of trials — including fan-out over worker
        processes — reproduces exactly the serial campaign.
        """
        result = CampaignResult(workload=self.program.name)
        for trial in range(first_trial, first_trial + trials):
            kind, fault = fault_for_trial(
                seed, trial, self.fu_counts, kinds=kinds,
                segments=len(self.segments))
            result.trials.append(
                self.run_trial(fault, covered, trial=trial, kind=kind))
        return result


def covered_segments(system_result: SystemResult) -> list[int]:
    """Segment indices the (opportunistic) schedule actually checked."""
    return [s.segment for s in system_result.schedule if s.covered]
