"""Fault-injection campaigns (Fig. 8 and the section VII-B numbers).

Errors are injected on the *checker* core (detection is symmetric, and
this keeps the main core's execution pristine, exactly as the paper
does).  A trial:

1. builds a fault and a faulty :class:`~repro.core.checker.CheckerCore`;
2. replays, in order, the segments the opportunistic schedule actually
   covered with the configured checker pool;
3. records the first detection and its latency in main-core instructions;
4. if no covered segment detects, replays *all* segments to classify the
   fault as masked (it never changed execution — the paper's "correctly
   masked" 24 %) or as missed-by-coverage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.checker import CheckerCore
from repro.core.counter import Segment
from repro.core.errors import DetectionEvent
from repro.core.system import SystemResult
from repro.cpu.config import CoreConfig
from repro.faults.models import StuckAtFault, random_stuck_at
from repro.isa.instructions import FUKind
from repro.isa.program import Program


@dataclass
class InjectionResult:
    """Outcome of one injected fault."""

    fault: StuckAtFault
    detected: bool
    masked: bool
    detection_instruction: int = -1  # main-core trace index at detection
    detecting_segment: int = -1
    event: DetectionEvent | None = None

    @property
    def effective(self) -> bool:
        """An error that actually perturbed execution somewhere."""
        return not self.masked


@dataclass
class CampaignResult:
    """Aggregate of one campaign."""

    workload: str
    trials: list[InjectionResult] = field(default_factory=list)

    @property
    def injected(self) -> int:
        return len(self.trials)

    @property
    def masked(self) -> int:
        return sum(1 for t in self.trials if t.masked)

    @property
    def detected(self) -> int:
        return sum(1 for t in self.trials if t.detected)

    @property
    def detection_rate_all(self) -> float:
        """Detected / injected (the paper's 76 % full-coverage number)."""
        return self.detected / self.injected if self.injected else 0.0

    @property
    def detection_rate_effective(self) -> float:
        """Detected / non-masked (Fig. 8's coverage metric)."""
        effective = self.injected - self.masked
        return self.detected / effective if effective else 1.0

    @property
    def mean_detection_latency(self) -> float:
        latencies = [t.detection_instruction for t in self.trials
                     if t.detected]
        return sum(latencies) / len(latencies) if latencies else float("nan")


def checker_fu_counts(config: CoreConfig) -> dict[FUKind, int]:
    """Functional-unit instance counts for round-robin fault exposure."""
    return {kind: fu.units for kind, fu in config.fus.items()}


class FaultCampaign:
    """Runs stuck-at injection trials against checked segments."""

    def __init__(self, program: Program, segments: list[Segment],
                 checker_config: CoreConfig,
                 hash_mode: bool = False) -> None:
        self.program = program
        self.segments = segments
        self.fu_counts = checker_fu_counts(checker_config)
        self.hash_mode = hash_mode

    def run_trial(self, fault: StuckAtFault,
                  covered: list[int] | None = None) -> InjectionResult:
        """Inject ``fault`` on the checker; replay covered segments."""
        covered_set = set(covered) if covered is not None else None
        checker = CheckerCore(self.program, fault_surface=fault,
                              fu_counts=self.fu_counts,
                              hash_mode=self.hash_mode)
        for seg in self.segments:
            if covered_set is not None and seg.index not in covered_set:
                continue
            result = checker.check_segment(seg)
            if result.detected:
                return InjectionResult(
                    fault=fault, detected=True, masked=False,
                    detection_instruction=seg.end,
                    detecting_segment=seg.index,
                    event=result.first_event,
                )
        # Nothing detected among covered segments: was it masked entirely?
        if covered_set is not None and len(covered_set) < len(self.segments):
            full = CheckerCore(self.program, fault_surface=fault,
                               fu_counts=self.fu_counts,
                               hash_mode=self.hash_mode)
            for seg in self.segments:
                if seg.index in covered_set:
                    continue
                if full.check_segment(seg).detected:
                    # Effective fault that coverage missed.
                    return InjectionResult(fault=fault, detected=False,
                                           masked=False)
        return InjectionResult(fault=fault, detected=False, masked=True)

    def run(self, trials: int, seed: int = 0,
            covered: list[int] | None = None) -> CampaignResult:
        """Run ``trials`` random stuck-at injections."""
        rng = random.Random(seed ^ 0xFA17)
        result = CampaignResult(workload=self.program.name)
        for _ in range(trials):
            fault = random_stuck_at(rng, self.fu_counts)
            result.trials.append(self.run_trial(fault, covered))
        return result


def covered_segments(system_result: SystemResult) -> list[int]:
    """Segment indices the (opportunistic) schedule actually checked."""
    return [s.segment for s in system_result.schedule if s.covered]
