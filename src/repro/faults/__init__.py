"""Fault models and injection campaigns (section VII-B, Fig. 8)."""

from repro.faults.campaign import (
    CampaignResult,
    FaultCampaign,
    InjectionResult,
    checker_fu_counts,
    covered_segments,
)
from repro.faults.models import (
    INJECTABLE_UNITS,
    StuckAtFault,
    TransientFault,
    bits_to_float,
    float_to_bits,
    random_stuck_at,
)

__all__ = [
    "CampaignResult",
    "FaultCampaign",
    "INJECTABLE_UNITS",
    "InjectionResult",
    "StuckAtFault",
    "TransientFault",
    "bits_to_float",
    "checker_fu_counts",
    "covered_segments",
    "float_to_bits",
    "random_stuck_at",
]
