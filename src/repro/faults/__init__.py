"""Fault models and injection campaigns (section VII-B, Fig. 8)."""

from repro.faults.campaign import (
    CampaignResult,
    FaultCampaign,
    InjectionResult,
    checker_fu_counts,
    covered_segments,
)
from repro.faults.models import (
    FAULT_KINDS,
    FAULT_STUCK_AT,
    FAULT_TRANSIENT_LSQ,
    FAULT_TRANSIENT_REG,
    INJECTABLE_UNITS,
    RegisterFault,
    StuckAtFault,
    TransientFault,
    bits_to_float,
    derive_trial_seed,
    fault_for_trial,
    float_to_bits,
    random_register_fault,
    random_stuck_at,
    random_transient_lsq,
)

__all__ = [
    "CampaignResult",
    "FAULT_KINDS",
    "FAULT_STUCK_AT",
    "FAULT_TRANSIENT_LSQ",
    "FAULT_TRANSIENT_REG",
    "FaultCampaign",
    "INJECTABLE_UNITS",
    "InjectionResult",
    "RegisterFault",
    "StuckAtFault",
    "TransientFault",
    "bits_to_float",
    "checker_fu_counts",
    "covered_segments",
    "derive_trial_seed",
    "fault_for_trial",
    "float_to_bits",
    "random_register_fault",
    "random_stuck_at",
    "random_transient_lsq",
]
