"""Parallel fault-injection campaign engine (Fig. 8 at scale).

Campaigns are the one evaluation path where the paper's experiment is
embarrassingly parallel *within* a single workload: every trial replays
the same segments under an independent fault.  The
:class:`CampaignRunner` fans trials out over the sweep engine's process
pool (:mod:`repro.harness.parallel`), one picklable ``(spec, trial)``
task each, and merges results as they land.

Determinism does not depend on scheduling.  Trial ``t``'s fault is a
pure function of ``(spec.seed, t)`` via
:func:`~repro.faults.models.derive_trial_seed`, so any worker count,
completion order, or resume split reproduces the serial campaign
bit-for-bit.

Every completed trial is appended to a per-process JSONL shard
(``shard-<pid>.jsonl`` under the campaign directory) and flushed, so a
killed campaign resumes where it stopped: ``resume=True`` scans the
shards, skips records from other specs (each line carries the spec
key) and corrupt/partial lines, and only schedules the missing trial
ids.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable

from repro.faults.models import FAULT_KINDS, fault_for_trial

logger = logging.getLogger("repro.faults.engine")

#: Shard filename pattern; one per writing process.
SHARD_GLOB = "shard-*.jsonl"


@dataclass(frozen=True)
class CampaignSpec:
    """Everything a worker needs to run one trial, picklable/JSON-able."""

    workload: str
    checkers: str = "1xA510@1.0"
    mode: str = "opportunistic"
    hash_mode: bool = False
    instructions: int = 40_000
    seed: int = 7
    trials: int = 20
    #: First trial id of this campaign's window: trials run over
    #: ``[trial_offset, trial_offset + trials)``.  Offset windows let
    #: the shard router fan one campaign out across backends while
    #: every trial stays the same pure function of ``(seed, trial)``.
    trial_offset: int = 0
    fault_kinds: tuple[str, ...] = FAULT_KINDS
    #: Detection scheme the trials run under (see
    #: :mod:`repro.faults.scenarios`): ``paraverser`` (the paper's
    #: checker), ``dme`` divergent multi-version, ``ithica-sdc`` defect
    #: screen, or ``meek-ro`` reduced observability.
    scheme: str = "paraverser"

    def key(self) -> str:
        """Stable identity of the campaign's *trial-defining* fields.

        Shard records carry this so a resume never mixes results from a
        differently-parameterised campaign that shared the directory.
        ``trials`` and ``trial_offset`` are excluded: trial ids are
        global, so growing a campaign from 100 to 500 trials (or
        finishing someone else's window) must reuse recorded results.
        """
        ident = {k: v for k, v in asdict(self).items()
                 if k not in ("trials", "trial_offset")}
        blob = json.dumps(ident, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, payload: dict) -> "CampaignSpec":
        payload = dict(payload)
        payload["fault_kinds"] = tuple(payload.get("fault_kinds",
                                                   FAULT_KINDS))
        # Payloads recorded before the scheme field existed default to
        # the paper's checker.
        payload.setdefault("scheme", "paraverser")
        return cls(**payload)


@dataclass(frozen=True)
class TrialRecord:
    """JSON-able outcome of one trial (what the shards store)."""

    trial: int
    kind: str
    fault: str  # human-readable site description
    detected: bool
    masked: bool
    detection_instruction: int = -1
    detecting_segment: int = -1

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, payload: dict) -> "TrialRecord":
        return cls(
            trial=int(payload["trial"]),
            kind=str(payload["kind"]),
            fault=str(payload["fault"]),
            detected=bool(payload["detected"]),
            masked=bool(payload["masked"]),
            detection_instruction=int(
                payload.get("detection_instruction", -1)),
            detecting_segment=int(payload.get("detecting_segment", -1)),
        )


@dataclass
class CampaignOutcome:
    """Aggregate of one (possibly resumed, possibly parallel) campaign."""

    spec: CampaignSpec
    records: list[TrialRecord] = field(default_factory=list)
    elapsed_s: float = 0.0
    busy_s: float = 0.0
    jobs: int = 1
    resumed_trials: int = 0

    @property
    def injected(self) -> int:
        return len(self.records)

    @property
    def detected(self) -> int:
        return sum(1 for r in self.records if r.detected)

    @property
    def masked(self) -> int:
        return sum(1 for r in self.records if r.masked)

    @property
    def missed(self) -> int:
        """Effective faults the configured coverage never observed."""
        return sum(1 for r in self.records
                   if not r.detected and not r.masked)

    @property
    def detection_rate_all(self) -> float:
        if not self.injected:
            logger.warning(
                "campaign %s/%s: 0 trials injected; "
                "detection_rate_all reported as 0.0",
                self.spec.workload, self.spec.scheme)
            return 0.0
        return self.detected / self.injected

    @property
    def detection_rate_effective(self) -> float:
        effective = self.injected - self.masked
        if not effective:
            # Zero-denominator campaign: 0 trials, or every fault
            # masked (tiny smoke campaigns, --resume from an empty
            # shard dir).  Report 0.0 rather than dividing.
            logger.warning(
                "campaign %s/%s: no effective faults "
                "(injected=%d, masked=%d); "
                "detection_rate_effective reported as 0.0",
                self.spec.workload, self.spec.scheme,
                self.injected, self.masked)
            return 0.0
        return self.detected / effective

    @property
    def sdc_escape_rate(self) -> float:
        """Effective-but-undetected faults per injection (silent SDCs)."""
        return self.missed / self.injected if self.injected else 0.0

    @property
    def detection_latency_sum(self) -> int:
        """Exact integer sum of detection latencies (detected trials).

        Shipped in :meth:`to_row` so a router merging offset windows
        can recompute the mean with one division — bit-identical to an
        unsplit campaign, which floating-point partial means are not.
        """
        return sum(r.detection_instruction for r in self.records
                   if r.detected)

    @property
    def mean_detection_latency(self) -> float:
        if not self.detected:
            return float("nan")
        return self.detection_latency_sum / self.detected

    @property
    def max_detection_latency(self) -> int:
        """Worst-case detection latency in main-core instructions."""
        return max((r.detection_instruction for r in self.records
                    if r.detected), default=0)

    def by_kind(self) -> dict[str, dict[str, int]]:
        """Per fault-kind injected/detected/masked counts."""
        out: dict[str, dict[str, int]] = {}
        for record in self.records:
            bucket = out.setdefault(
                record.kind, {"injected": 0, "detected": 0, "masked": 0})
            bucket["injected"] += 1
            bucket["detected"] += record.detected
            bucket["masked"] += record.masked
        return out

    def to_row(self) -> dict:
        """Headline numbers as a JSON-able dict (CLI/serve payload)."""
        return {
            "workload": self.spec.workload,
            "checkers": self.spec.checkers,
            "mode": self.spec.mode,
            "scheme": self.spec.scheme,
            "trials": self.injected,
            "detected": self.detected,
            "masked": self.masked,
            "missed": self.missed,
            "detection_rate_all": self.detection_rate_all,
            "detection_rate_effective": self.detection_rate_effective,
            "sdc_escape_rate": self.sdc_escape_rate,
            "detection_latency_sum": self.detection_latency_sum,
            "detection_latency_max": self.max_detection_latency,
            "mean_detection_latency": (
                self.mean_detection_latency if self.detected else None),
            "by_kind": self.by_kind(),
            "elapsed_s": self.elapsed_s,
            "jobs": self.jobs,
            "resumed_trials": self.resumed_trials,
        }


# -- worker side (runs in pool processes, and inline for jobs=1) -------------

#: Per-process campaign contexts, keyed by spec key.  Bounded like the
#: sweep worker caches: a long-lived pool cycling through campaigns must
#: not pin every program/segment list forever.
_CONTEXTS: dict = {}
_CONTEXT_LIMIT = 4


@dataclass
class _CampaignContext:
    """The per-process heavy state shared by all of one spec's trials."""

    campaign: object  # FaultCampaign
    covered: list[int]
    segments: int


def _campaign_context(spec: CampaignSpec) -> _CampaignContext:
    """Build-or-fetch this process's context for ``spec``.

    Reuses the sweep engine's process-global
    :func:`~repro.harness.parallel.worker_cache`, so the functional
    trace (and, with ``REPRO_TRACE_CACHE``, its on-disk copy) is shared
    with sweep and serve workloads running in the same pool.
    """
    key = spec.key()
    ctx = _CONTEXTS.get(key)
    if ctx is not None:
        return ctx

    from repro.cli import parse_checkers
    from repro.core.system import CheckMode, ParaVerserSystem
    from repro.faults.campaign import covered_segments
    from repro.faults.scenarios import make_campaign
    from repro.harness.parallel import worker_cache
    from repro.harness.runner import make_config

    cache = worker_cache(spec.instructions, spec.seed)
    config = make_config(parse_checkers(spec.checkers),
                         CheckMode(spec.mode),
                         hash_mode=spec.hash_mode)
    cached = cache.get(spec.workload)
    result = cache.run_config(spec.workload, config)
    segments = ParaVerserSystem(config).segment(cached.run)
    campaign = make_campaign(spec.scheme, cached.program, segments,
                             config.checkers[0].config,
                             hash_mode=spec.hash_mode, seed=spec.seed)
    ctx = _CampaignContext(campaign=campaign,
                           covered=covered_segments(result),
                           segments=len(segments))
    _CONTEXTS[key] = ctx
    while len(_CONTEXTS) > _CONTEXT_LIMIT:
        _CONTEXTS.pop(next(iter(_CONTEXTS)))
    return ctx


def run_trial_in_worker(spec: CampaignSpec, trial: int,
                        shard_dir: str | None = None) -> dict:
    """Run one trial; append its record to this process's shard.

    Returns the :class:`TrialRecord` JSON dict.  Pure function of
    ``(spec, trial)`` — the executing process is irrelevant.
    """
    ctx = _campaign_context(spec)
    kind, fault = fault_for_trial(
        spec.seed, trial, ctx.campaign.fu_counts,
        kinds=spec.fault_kinds, segments=ctx.segments)
    result = ctx.campaign.run_trial(fault, ctx.covered,
                                    trial=trial, kind=kind)
    record = TrialRecord(
        trial=trial,
        kind=kind,
        fault=fault.describe(),
        detected=result.detected,
        masked=result.masked,
        detection_instruction=result.detection_instruction,
        detecting_segment=result.detecting_segment,
    )
    if shard_dir is not None:
        _append_shard(Path(shard_dir), spec.key(), record)
    return record.to_json()


def _append_shard(shard_dir: Path, spec_key: str,
                  record: TrialRecord) -> None:
    """Append-and-flush one record to this process's shard file."""
    shard_dir.mkdir(parents=True, exist_ok=True)
    path = shard_dir / f"shard-{os.getpid()}.jsonl"
    line = json.dumps({"spec": spec_key, **record.to_json()},
                      sort_keys=True)
    with path.open("a", encoding="utf-8") as fh:
        fh.write(line + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def load_completed(shard_dir: str | os.PathLike,
                   spec: CampaignSpec) -> dict[int, TrialRecord]:
    """Completed trial records for ``spec`` found in the shard files.

    Tolerates the realities of killed campaigns: partial trailing
    lines, corrupt JSON, records from other specs that shared the
    directory — all skipped (with a warning for undecodable lines).
    Duplicate ``(spec_key, trial)`` records — a crash between write and
    fsync can replay a line, and a killed worker's trial may be re-run
    into another shard — are deduplicated (first record wins; every
    record is the same pure function of the trial id anyway) so a
    resumed campaign never double-counts a trial.
    """
    shard_dir = Path(shard_dir)
    spec_key = spec.key()
    completed: dict[int, TrialRecord] = {}
    duplicates = 0
    for path in sorted(shard_dir.glob(SHARD_GLOB)):
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError as exc:
            logger.warning("campaign resume: unreadable shard %s (%s)",
                           path, exc)
            continue
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                if payload.get("spec") != spec_key:
                    continue
                record = TrialRecord.from_json(payload)
            except (ValueError, KeyError, TypeError):
                logger.warning(
                    "campaign resume: skipping corrupt record "
                    "%s:%d", path, lineno)
                continue
            if record.trial in completed:
                duplicates += 1
                continue
            completed[record.trial] = record
    if duplicates:
        logger.warning(
            "campaign resume: ignored %d duplicate trial record(s) "
            "for spec %s", duplicates, spec_key)
    return completed


# -- runner side -------------------------------------------------------------

class CampaignRunner:
    """Fans campaign trials across worker processes, merging by trial id.

    ``jobs=1`` (the default via ``REPRO_JOBS``) runs everything
    in-process through the exact same per-trial entry point, so serial
    and parallel campaigns are the same computation scheduled
    differently.
    """

    #: Target tasks per worker when auto-sizing chunks: enough slack
    #: for load balancing across uneven trial durations, few enough
    #: submissions that dispatch overhead stays amortised.
    TASKS_PER_WORKER = 4

    def __init__(self, jobs: int | None = None,
                 campaign_dir: str | os.PathLike | None = None,
                 resume: bool = False,
                 chunk: int | None = None) -> None:
        if jobs is None:
            from repro.harness.runner import env_jobs
            jobs = env_jobs()
        self.jobs = jobs
        self.campaign_dir = str(campaign_dir) if campaign_dir else None
        self.resume = resume
        #: Trials per pool task; ``None`` auto-sizes from the workload.
        self.chunk = chunk
        #: Occupancy/wall-time record of the most recent :meth:`run`.
        self.last_stats: dict | None = None
        self._pool = None

    def _chunk_size(self, todo: int) -> int:
        """Trials per pool task (explicit ``chunk``, else auto)."""
        if self.chunk is not None:
            return max(1, self.chunk)
        return max(1, todo // (self.jobs * self.TASKS_PER_WORKER))

    def run(self, spec: CampaignSpec,
            on_record: Callable[[TrialRecord], None] | None = None,
            ) -> CampaignOutcome:
        """Run (or finish) the campaign; records come back trial-ordered.

        ``on_record`` fires as each trial result lands (completion
        order), for progress reporting.
        """
        completed: dict[int, TrialRecord] = {}
        if self.resume:
            if self.campaign_dir is None:
                raise ValueError("resume requires a campaign directory")
            completed = load_completed(self.campaign_dir, spec)
        window = range(spec.trial_offset, spec.trial_offset + spec.trials)
        todo = [t for t in window if t not in completed]
        resumed = spec.trials - len(todo)
        if resumed:
            logger.info("campaign resume: %d/%d trials already done",
                        resumed, spec.trials)

        started = time.perf_counter()
        if self.jobs <= 1 or len(todo) <= 1:
            fresh, busy = self._run_serial(spec, todo, on_record)
        else:
            fresh, busy = self._run_pooled(spec, todo, on_record)
        elapsed = time.perf_counter() - started

        records = dict(completed)
        records.update(fresh)
        outcome = CampaignOutcome(
            spec=spec,
            records=[records[t] for t in sorted(records)
                     if t in window],
            elapsed_s=elapsed,
            busy_s=busy,
            jobs=self.jobs,
            resumed_trials=resumed,
        )
        chunk = self._chunk_size(len(todo)) if todo else 1
        self.last_stats = {
            "jobs": self.jobs,
            "tasks": len(todo),
            "chunk": chunk,
            "elapsed_s": elapsed,
            "busy_s": busy,
            "occupancy": busy / (elapsed * self.jobs)
            if elapsed > 0 and self.jobs > 0 else 0.0,
        }
        return outcome

    def _run_serial(self, spec, todo, on_record):
        records: dict[int, TrialRecord] = {}
        busy = 0.0
        for trial in todo:
            start = time.perf_counter()
            payload = run_trial_in_worker(spec, trial, self.campaign_dir)
            busy += time.perf_counter() - start
            record = TrialRecord.from_json(payload)
            records[trial] = record
            if on_record is not None:
                on_record(record)
        return records, busy

    def _run_pooled(self, spec, todo, on_record):
        from repro.harness.parallel import _campaign_chunk_task

        size = self._chunk_size(len(todo))
        chunks = [todo[i:i + size] for i in range(0, len(todo), size)]
        pool = self._executor()
        spec_payload = spec.to_json()
        futures = {
            pool.submit(_campaign_chunk_task, spec_payload, chunk,
                        self.campaign_dir): chunk
            for chunk in chunks
        }
        records: dict[int, TrialRecord] = {}
        busy = 0.0
        pending = set(futures)
        while pending:
            finished, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in finished:
                payloads, task_busy = future.result()
                busy += task_busy
                for trial, payload in zip(futures[future], payloads):
                    record = TrialRecord.from_json(payload)
                    records[trial] = record
                    if on_record is not None:
                        on_record(record)
        return records, busy

    def _executor(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def run_campaign(spec: CampaignSpec, jobs: int | None = None,
                 campaign_dir: str | os.PathLike | None = None,
                 resume: bool = False,
                 chunk: int | None = None,
                 on_record: Callable[[TrialRecord], None] | None = None,
                 ) -> CampaignOutcome:
    """One-shot convenience wrapper around :class:`CampaignRunner`."""
    with CampaignRunner(jobs=jobs, campaign_dir=campaign_dir,
                        resume=resume, chunk=chunk) as runner:
        return runner.run(spec, on_record=on_record)


def publish_campaign_stats(stats, outcome: CampaignOutcome,
                           name: str = "faults") -> None:
    """Publish ``faults.*`` telemetry into a stats tree.

    Coverage leaves are deterministic for a given spec; ``elapsed_s``,
    ``busy_s`` and ``occupancy`` are host wall-clock (mask them in
    regression gates, like ``pipeline.*`` timings).  ``name`` lets the
    scenario matrix publish one campaign per scheme under
    ``faults.<scheme>.*``.
    """
    group = stats.group(name, "fault-injection campaign results")
    group.count("injected", outcome.injected, "trials injected")
    group.count("detected", outcome.detected, "trials detected")
    group.count("masked", outcome.masked, "trials masked (no effect)")
    group.count("missed", outcome.missed,
                "effective faults missed by coverage")
    group.scalar("detection_rate_all", outcome.detection_rate_all,
                 "detected / injected")
    group.scalar("detection_rate_effective",
                 outcome.detection_rate_effective,
                 "detected / effective (Fig. 8 coverage)")
    group.scalar("sdc_escape_rate", outcome.sdc_escape_rate,
                 "effective-but-undetected faults / injected")
    group.scalar("detection_latency_mean",
                 outcome.mean_detection_latency
                 if outcome.detected else 0.0,
                 "mean main-core instructions to detection")
    group.scalar("detection_latency_max",
                 float(outcome.max_detection_latency),
                 "worst-case main-core instructions to detection")
    if outcome.detected:
        group.scalar("mean_detection_latency",
                     outcome.mean_detection_latency,
                     "mean main-core instructions to detection")
    group.count("resumed_trials", outcome.resumed_trials,
                "trials recovered from shards")
    for kind, counts in sorted(outcome.by_kind().items()):
        sub = group.group(kind, f"{kind} fault-site results")
        sub.count("injected", counts["injected"])
        sub.count("detected", counts["detected"])
        sub.count("masked", counts["masked"])
    runtime = group.group("runtime", "host wall-clock (non-deterministic)")
    runtime.scalar("elapsed_s", outcome.elapsed_s, "campaign wall time")
    runtime.scalar("busy_s", outcome.busy_s, "summed worker busy time")
    runtime.scalar("jobs", outcome.jobs, "worker processes")
