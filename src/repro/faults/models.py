"""Hardware fault models (section VII-B).

The paper injects hard errors per the standard model of Li et al. [53]:
a single bit stuck at 0 or 1 on the *output of one functional unit*
(integer ALU or FPU), or on a load/store address in the LSQ.  Because
instructions round-robin over multiple unit instances, a fault in one
unit only corrupts the subset of operations that unit executes — the
model preserves that.

Transient (soft) faults flip one bit on one specific dynamic use, then
disappear — the full-coverage mode must catch these too.

Floating-point values are corrupted in their IEEE-754 bit pattern, which
naturally reproduces the Meta anecdote of an FPU returning wrong values
only for particular inputs.
"""

from __future__ import annotations

import math
import random
import struct
from dataclasses import dataclass

from repro.isa.instructions import FUKind

_MASK64 = (1 << 64) - 1


def float_to_bits(value: float) -> int:
    if value != value:  # NaN: canonicalise so corruption is deterministic
        return 0x7FF8000000000000
    if value == math.inf:
        return 0x7FF0000000000000
    if value == -math.inf:
        return 0xFFF0000000000000
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bits_to_float(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits & _MASK64))[0]


def _apply_stuck(bits: int, bit: int, stuck_at: int) -> int:
    if stuck_at:
        return bits | (1 << bit)
    return bits & ~(1 << bit)


@dataclass(frozen=True)
class StuckAtFault:
    """A permanent single-bit stuck-at fault in one functional unit.

    Implements the :class:`~repro.cpu.functional.FaultSurface` protocol.
    """

    fu: FUKind
    unit: int
    bit: int
    stuck_at: int  # 0 or 1
    addresses_only: bool = False  # LSQ address-path fault

    def apply(self, fu: FUKind, unit: int, value: int | float,
              is_address: bool = False) -> int | float:
        if fu is not self.fu or unit != self.unit:
            return value
        if self.addresses_only and not is_address:
            return value
        if isinstance(value, float):
            return bits_to_float(
                _apply_stuck(float_to_bits(value), self.bit, self.stuck_at))
        return _apply_stuck(value, self.bit, self.stuck_at) & _MASK64

    def describe(self) -> str:
        where = f"{self.fu.value}[{self.unit}]"
        if self.addresses_only:
            where += " (LSQ address path)"
        return f"stuck-at-{self.stuck_at} bit {self.bit} on {where}"


@dataclass
class TransientFault:
    """A single-event upset: flips one bit on the Nth use of a unit."""

    fu: FUKind
    unit: int
    bit: int
    strike_at_use: int
    _uses: int = 0
    fired: bool = False

    def apply(self, fu: FUKind, unit: int, value: int | float,
              is_address: bool = False) -> int | float:
        del is_address
        if fu is not self.fu or unit != self.unit or self.fired:
            return value
        self._uses += 1
        if self._uses < self.strike_at_use:
            return value
        self.fired = True
        if isinstance(value, float):
            return bits_to_float(float_to_bits(value) ^ (1 << self.bit))
        return (int(value) ^ (1 << self.bit)) & _MASK64

    def describe(self) -> str:
        return (f"transient bit-{self.bit} flip on {self.fu.value}"
                f"[{self.unit}] at use {self.strike_at_use}")


#: Units the paper injects into: ALU/FPU outputs and LSQ addresses.
INJECTABLE_UNITS = (
    FUKind.INT_ALU, FUKind.INT_MUL, FUKind.INT_DIV,
    FUKind.FP, FUKind.FP_DIV,
    FUKind.LOAD, FUKind.STORE,
)


def random_stuck_at(rng: random.Random,
                    fu_counts: dict[FUKind, int]) -> StuckAtFault:
    """Draw a random stuck-at fault per the paper's injection model."""
    fu = rng.choice(INJECTABLE_UNITS)
    units = fu_counts.get(fu, 1)
    addresses_only = fu in (FUKind.LOAD, FUKind.STORE)
    # Address bit flips above bit ~40 would always escape the program's
    # address space; real LSQs are also narrower than 64 bits.
    max_bit = 39 if addresses_only else 63
    return StuckAtFault(
        fu=fu,
        unit=rng.randrange(units),
        bit=rng.randrange(max_bit + 1),
        stuck_at=rng.randrange(2),
        addresses_only=addresses_only,
    )
