"""Hardware fault models (section VII-B).

The paper injects hard errors per the standard model of Li et al. [53]:
a single bit stuck at 0 or 1 on the *output of one functional unit*
(integer ALU or FPU), or on a load/store address in the LSQ.  Because
instructions round-robin over multiple unit instances, a fault in one
unit only corrupts the subset of operations that unit executes — the
model preserves that.

Transient (soft) faults flip one bit on one specific dynamic use, then
disappear — the full-coverage mode must catch these too.

Floating-point values are corrupted in their IEEE-754 bit pattern, which
naturally reproduces the Meta anecdote of an FPU returning wrong values
only for particular inputs.
"""

from __future__ import annotations

import hashlib
import math
import random
import struct
from dataclasses import dataclass, replace

from repro.isa.instructions import FUKind
from repro.isa.registers import RegisterCheckpoint

_MASK64 = (1 << 64) - 1


def float_to_bits(value: float) -> int:
    if value != value:  # NaN: canonicalise so corruption is deterministic
        return 0x7FF8000000000000
    if value == math.inf:
        return 0x7FF0000000000000
    if value == -math.inf:
        return 0xFFF0000000000000
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bits_to_float(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits & _MASK64))[0]


def _apply_stuck(bits: int, bit: int, stuck_at: int) -> int:
    if stuck_at:
        return bits | (1 << bit)
    return bits & ~(1 << bit)


@dataclass(frozen=True)
class StuckAtFault:
    """A permanent single-bit stuck-at fault in one functional unit.

    Implements the :class:`~repro.cpu.functional.FaultSurface` protocol.
    """

    fu: FUKind
    unit: int
    bit: int
    stuck_at: int  # 0 or 1
    addresses_only: bool = False  # LSQ address-path fault

    def apply(self, fu: FUKind, unit: int, value: int | float,
              is_address: bool = False) -> int | float:
        if fu is not self.fu or unit != self.unit:
            return value
        if self.addresses_only and not is_address:
            return value
        if isinstance(value, float):
            return bits_to_float(
                _apply_stuck(float_to_bits(value), self.bit, self.stuck_at))
        return _apply_stuck(value, self.bit, self.stuck_at) & _MASK64

    def describe(self) -> str:
        where = f"{self.fu.value}[{self.unit}]"
        if self.addresses_only:
            where += " (LSQ address path)"
        return f"stuck-at-{self.stuck_at} bit {self.bit} on {where}"

    def fresh(self) -> "StuckAtFault":
        """A stuck-at fault is stateless; reuse the same instance."""
        return self


@dataclass
class TransientFault:
    """A single-event upset: flips one bit on the Nth use of a unit.

    With ``addresses_only`` set (a LOAD/STORE unit), the use counter
    only advances on LSQ address computations, modelling a particle
    strike on the address path rather than on result data.
    """

    fu: FUKind
    unit: int
    bit: int
    strike_at_use: int
    addresses_only: bool = False
    _uses: int = 0
    fired: bool = False

    def apply(self, fu: FUKind, unit: int, value: int | float,
              is_address: bool = False) -> int | float:
        if fu is not self.fu or unit != self.unit or self.fired:
            return value
        if self.addresses_only and not is_address:
            return value
        self._uses += 1
        if self._uses < self.strike_at_use:
            return value
        self.fired = True
        if isinstance(value, float):
            return bits_to_float(float_to_bits(value) ^ (1 << self.bit))
        return (int(value) ^ (1 << self.bit)) & _MASK64

    def describe(self) -> str:
        where = f"{self.fu.value}[{self.unit}]"
        if self.addresses_only:
            where += " (LSQ address path)"
        return (f"transient bit-{self.bit} flip on {where} "
                f"at use {self.strike_at_use}")

    def fresh(self) -> "TransientFault":
        """A copy with the use counter and fired flag reset."""
        return replace(self, _uses=0, fired=False)


@dataclass
class RegisterFault:
    """A transient flip in the checker's end-of-segment register file.

    Strikes the architectural register state exactly once, on one
    segment's end snapshot — the point the RCU compares against the main
    core's checkpoint (section IV-D).  It implements the
    :class:`~repro.cpu.functional.FaultSurface` protocol as a no-op on
    FU outputs and additionally exposes :meth:`corrupt_checkpoint`,
    which :class:`~repro.core.checker.CheckerCore` applies to the
    replayed end checkpoint before the RCU comparison.
    """

    is_fp: bool
    reg: int
    bit: int
    strike_segment: int
    fired: bool = False

    def apply(self, fu: FUKind, unit: int, value: int | float,
              is_address: bool = False) -> int | float:
        del fu, unit, is_address
        return value

    def corrupt_checkpoint(
            self, checkpoint: RegisterCheckpoint,
            segment_index: int) -> RegisterCheckpoint:
        """Flip the targeted bit if this is the strike segment."""
        if self.fired or segment_index != self.strike_segment:
            return checkpoint
        self.fired = True
        if self.is_fp:
            fps = list(checkpoint.fps)
            fps[self.reg] = bits_to_float(
                float_to_bits(fps[self.reg]) ^ (1 << self.bit))
            return replace(checkpoint, fps=tuple(fps))
        ints = list(checkpoint.ints)
        ints[self.reg] = (ints[self.reg] ^ (1 << self.bit)) & _MASK64
        return replace(checkpoint, ints=tuple(ints))

    def describe(self) -> str:
        bank = "f" if self.is_fp else "x"
        return (f"transient bit-{self.bit} flip in {bank}{self.reg} at "
                f"end of segment {self.strike_segment}")

    def fresh(self) -> "RegisterFault":
        """A copy with the fired flag reset."""
        return replace(self, fired=False)


@dataclass
class DefectFault:
    """A persistent per-FU-class defect signature (ITHICA-style SDC).

    Manufacturing defects do not behave like uniformly random bit flips:
    a marginal circuit corrupts only the results whose operand/result
    bit patterns exercise the weak path, and it does so *persistently*
    (arXiv:2605.15638).  This model corrupts every value produced by a
    functional-unit *class* (all round-robin instances — the defect is
    in the shared cell library, not one unit) whose bit pattern matches
    ``value & trigger_mask == trigger_value``, by XORing ``corruption``
    into it.

    ``latch_after`` models wear-in: the weak path must be exercised that
    many times before the defect starts corrupting.  The match counter is
    *persistent state* and must never leak between replay passes —
    :meth:`fresh` returns a pristine copy (``tests/test_faults_scenarios``
    covers the protocol).
    """

    fus: tuple[FUKind, ...]
    trigger_mask: int
    trigger_value: int  # pre-masked: trigger_value & trigger_mask
    corruption: int     # XOR pattern applied once latched
    latch_after: int = 1
    addresses_only: bool = False
    matches: int = 0    # persistent activation state

    def apply(self, fu: FUKind, unit: int, value: int | float,
              is_address: bool = False) -> int | float:
        del unit  # the defect is in the FU class, every instance has it
        if fu not in self.fus:
            return value
        if self.addresses_only and not is_address:
            return value
        is_float = isinstance(value, float)
        bits = float_to_bits(value) if is_float else int(value) & _MASK64
        if (bits & self.trigger_mask) != self.trigger_value:
            return value
        self.matches += 1
        if self.matches < self.latch_after:
            return value
        corrupted = (bits ^ self.corruption) & _MASK64
        return bits_to_float(corrupted) if is_float else corrupted

    def describe(self) -> str:
        where = "/".join(fu.value for fu in self.fus)
        if self.addresses_only:
            where += " (LSQ address path)"
        return (f"defect on {where}: pattern &0x{self.trigger_mask:x}=="
                f"0x{self.trigger_value:x} xor 0x{self.corruption:x} "
                f"after {self.latch_after} matches")

    def fresh(self) -> "DefectFault":
        """A copy with the persistent match counter reset."""
        return replace(self, matches=0)


#: Units the paper injects into: ALU/FPU outputs and LSQ addresses.
INJECTABLE_UNITS = (
    FUKind.INT_ALU, FUKind.INT_MUL, FUKind.INT_DIV,
    FUKind.FP, FUKind.FP_DIV,
    FUKind.LOAD, FUKind.STORE,
)


def random_stuck_at(rng: random.Random,
                    fu_counts: dict[FUKind, int]) -> StuckAtFault:
    """Draw a random stuck-at fault per the paper's injection model."""
    fu = rng.choice(INJECTABLE_UNITS)
    units = fu_counts.get(fu, 1)
    addresses_only = fu in (FUKind.LOAD, FUKind.STORE)
    # Address bit flips above bit ~40 would always escape the program's
    # address space; real LSQs are also narrower than 64 bits.
    max_bit = 39 if addresses_only else 63
    return StuckAtFault(
        fu=fu,
        unit=rng.randrange(units),
        bit=rng.randrange(max_bit + 1),
        stuck_at=rng.randrange(2),
        addresses_only=addresses_only,
    )


#: Maximum dynamic use index a transient LSQ strike is drawn from; far
#: enough into a segment to exercise warm state, small enough that most
#: strikes land inside typical REPRO_TIMEOUT-sized segments.
TRANSIENT_MAX_STRIKE_USE = 512


def random_transient_lsq(rng: random.Random,
                         fu_counts: dict[FUKind, int]) -> TransientFault:
    """Draw a transient single-bit flip on an LSQ address computation."""
    fu = rng.choice((FUKind.LOAD, FUKind.STORE))
    units = fu_counts.get(fu, 1)
    return TransientFault(
        fu=fu,
        unit=rng.randrange(units),
        bit=rng.randrange(40),  # same address-width bound as stuck-at
        strike_at_use=rng.randrange(1, TRANSIENT_MAX_STRIKE_USE + 1),
        addresses_only=True,
    )


def random_register_fault(rng: random.Random,
                          segments: int) -> RegisterFault:
    """Draw a transient flip in one end-of-segment register snapshot."""
    is_fp = rng.randrange(2) == 1
    # x0 is hard-wired to zero on the real datapath, so integer strikes
    # target x1..x31; the FP bank has no zero register.
    reg = rng.randrange(32) if is_fp else rng.randrange(1, 32)
    return RegisterFault(
        is_fp=is_fp,
        reg=reg,
        bit=rng.randrange(64),
        strike_segment=rng.randrange(max(segments, 1)),
    )


#: Functional-unit classes a defect signature can live in; LSQ-class
#: defects corrupt address computations only (like LSQ stuck-ats).
DEFECT_FU_CLASSES = (
    (FUKind.INT_ALU, FUKind.INT_MUL, FUKind.INT_DIV),
    (FUKind.FP, FUKind.FP_DIV),
    (FUKind.LOAD, FUKind.STORE),
)


def random_defect_fault(rng: random.Random,
                        fu_counts: dict[FUKind, int]) -> DefectFault:
    """Draw a random persistent defect signature (ITHICA SDC model)."""
    del fu_counts  # defects hit every instance of the class
    fus = DEFECT_FU_CLASSES[rng.randrange(len(DEFECT_FU_CLASSES))]
    addresses_only = FUKind.LOAD in fus
    # Trigger on 1-3 low bits so real workload values exercise the weak
    # path; wider masks would make most defects architecturally masked.
    pattern_bits = 12 if addresses_only else 16
    width = rng.randrange(1, 4)
    mask_bits = rng.sample(range(pattern_bits), width)
    trigger_mask = 0
    for bit in mask_bits:
        trigger_mask |= 1 << bit
    trigger_value = rng.getrandbits(64) & trigger_mask
    max_bit = 39 if addresses_only else 63
    return DefectFault(
        fus=fus,
        trigger_mask=trigger_mask,
        trigger_value=trigger_value,
        corruption=1 << rng.randrange(max_bit + 1),
        latch_after=rng.randrange(1, 4),
        addresses_only=addresses_only,
    )


#: Fault-site kinds the campaign engine can mix per trial.
FAULT_STUCK_AT = "stuck_at"
FAULT_TRANSIENT_LSQ = "transient_lsq"
FAULT_TRANSIENT_REG = "transient_reg"
FAULT_DEFECT = "defect"
FAULT_KINDS = (FAULT_STUCK_AT, FAULT_TRANSIENT_LSQ, FAULT_TRANSIENT_REG)
#: Every kind the engine understands; ``FAULT_KINDS`` stays the default
#: campaign mix (defects opt in via ``--fault-kinds`` or the ithica-sdc
#: scenario) so existing campaign baselines are untouched.
ALL_FAULT_KINDS = FAULT_KINDS + (FAULT_DEFECT,)


def derive_trial_seed(seed: int, trial: int, site: str = "fault") -> int:
    """A stable 64-bit RNG seed for one campaign trial.

    Derived by hashing ``(seed, trial, site)`` so every trial owns an
    independent stream: results do not depend on trial execution order,
    worker count, or which process draws the fault — unlike a shared
    sequential ``random.Random`` stream.  ``sha256`` keeps the mapping
    identical across processes and Python versions (no ``PYTHONHASHSEED``
    sensitivity).
    """
    blob = f"{seed}:{trial}:{site}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


def fault_for_trial(seed: int, trial: int, fu_counts: dict[FUKind, int],
                    kinds: tuple[str, ...] = (FAULT_STUCK_AT,),
                    segments: int = 1):
    """Deterministically draw trial ``trial``'s fault.

    Returns ``(kind, fault)``.  The fault-site kind and every site
    parameter come from a per-trial derived RNG, so the draw is a pure
    function of ``(seed, trial, kinds, fu_counts, segments)``.
    """
    for kind in kinds:
        if kind not in ALL_FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; known: {ALL_FAULT_KINDS}")
    rng = random.Random(derive_trial_seed(seed, trial))
    kind = kinds[rng.randrange(len(kinds))]
    if kind == FAULT_TRANSIENT_LSQ:
        return kind, random_transient_lsq(rng, fu_counts)
    if kind == FAULT_TRANSIENT_REG:
        return kind, random_register_fault(rng, segments)
    if kind == FAULT_DEFECT:
        return kind, random_defect_fault(rng, fu_counts)
    return kind, random_stuck_at(rng, fu_counts)
