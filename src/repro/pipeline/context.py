"""The context object threaded through every pipeline stage.

A :class:`SimContext` carries what stages share but must not rebuild:
the run configuration, the tile layout and NoC traffic model, named
deterministic RNG streams, and the :mod:`repro.obs` statistics tree that
every stage and component registers into.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.noc.layout import TileLayout, fig5_layout
from repro.noc.traffic import TrafficModel
from repro.obs import StageTimer, StatGroup

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.core.simconfig import ParaVerserConfig


@dataclass
class SimContext:
    """Shared state for one simulated system's pipeline stages."""

    config: "ParaVerserConfig"
    layout: TileLayout
    traffic_model: TrafficModel
    stats: StatGroup = field(default_factory=lambda: StatGroup("sim"))

    @classmethod
    def create(cls, config: "ParaVerserConfig",
               layout: TileLayout | None = None,
               stats: StatGroup | None = None) -> "SimContext":
        layout = layout or fig5_layout()
        return cls(
            config=config,
            layout=layout,
            traffic_model=TrafficModel(config.noc, layout),
            stats=stats or StatGroup("sim"),
        )

    @property
    def seed(self) -> int:
        return self.config.seed

    def rng(self, stream: str) -> random.Random:
        """A deterministic RNG for a named stream.

        Streams are independent of each other and of call order: the same
        ``(seed, stream)`` pair always produces the same sequence, so
        adding a consumer cannot perturb existing ones.
        """
        return random.Random(f"{self.config.seed}:{stream}")

    def stage_timer(self, stage: str) -> StageTimer:
        """Record a stage's wall time under ``pipeline.<stage>``.

        Times accumulate across entries, so a stage that runs twice (the
        cluster finalises with and without LSL traffic) reports its total.
        """
        gauge = self.stats.group("pipeline").group(stage).gauge(
            "wall_time_ms", "stage wall-clock time (accumulated)")
        return StageTimer(gauge)
