"""Pipeline stage 1-2: functional execution and segmentation.

Runs the workload on the main core to produce the commit trace, splits
the trace into checkpointed segments (LSL-capacity / timeout / forced
boundaries), captures the RCU's boundary register checkpoints by a
genuine second execution pass, and digests segments in Hash Mode.
"""

from __future__ import annotations

from repro.core.checker import LogReplayInterface
from repro.core.counter import Segment, SegmentBuilder
from repro.core.hashmode import digest_segment
from repro.core.lsc import LoadStoreComparator
from repro.core.simconfig import ParaVerserConfig
from repro.cpu.functional import (
    DirectMemoryPort,
    FunctionalCore,
    MainNonRepSource,
    RunResult,
)
from repro.isa.program import Program
from repro.isa.registers import RegisterCheckpoint, RegisterFile
from repro.mem.memory import Memory
from repro.pipeline.context import SimContext


def run_functional(ctx: SimContext, program: Program,
                   max_instructions: int = 100_000) -> RunResult:
    """Run the workload on the main core, producing the commit trace."""
    config = ctx.config
    memory = Memory(program.memory_image)
    core = FunctionalCore(
        program,
        DirectMemoryPort(memory),
        nonrep=MainNonRepSource(seed=config.seed, core_id=config.main_id),
    )
    return core.run(max_instructions)


def segment_trace(
    ctx: SimContext,
    run: RunResult,
    forced_boundaries: set[int] | None = None,
    boundary_checkpoints: dict[int, RegisterCheckpoint] | None = None,
) -> list[Segment]:
    """Split the trace into segments and fill checkpoints (+ digests)."""
    config = ctx.config
    builder = SegmentBuilder(
        lsl_capacity_bytes=config.lsl_capacity(),
        timeout_instructions=config.timeout_instructions,
        hash_mode=config.hash_mode,
    )
    segments = builder.split(run.columns, forced_boundaries)
    fill_checkpoints(config, run, segments, boundary_checkpoints)
    if config.hash_mode:
        for seg in segments:
            seg.digest = digest_segment(seg.records)
    return segments


def fill_checkpoints(
    config: ParaVerserConfig,
    run: RunResult,
    segments: list[Segment],
    known: dict[int, RegisterCheckpoint] | None = None,
) -> None:
    """Capture the RCU's boundary register checkpoints.

    For single-threaded runs this is a second (deterministic) execution
    pass of the main core.  For multicore traces, quantum-boundary
    checkpoints captured during the original run are used where they
    align (``known``), and the remainder are derived by healthy log
    replay, which is exact by construction.
    """
    known = known or {}
    if not segments:
        return
    rerun_core: FunctionalCore | None = None
    if not known:
        memory = Memory(run.program.memory_image)
        rerun_core = FunctionalCore(
            run.program,
            DirectMemoryPort(memory),
            nonrep=MainNonRepSource(seed=config.seed,
                                    core_id=config.main_id),
        )
    previous = run.start_checkpoint
    for seg in segments:
        seg.start_checkpoint = previous
        if seg.end in known:
            seg.end_checkpoint = known[seg.end]
        elif rerun_core is not None:
            chunk = rerun_core.run(seg.instructions, record_trace=False)
            if chunk.instructions != seg.instructions:
                raise RuntimeError(
                    "checkpoint pass diverged from the first run: "
                    f"{chunk.instructions} != {seg.instructions}"
                )
            seg.end_checkpoint = chunk.end_checkpoint
        else:
            seg.end_checkpoint = derive_end_checkpoint(run.program, seg)
        previous = seg.end_checkpoint


def derive_end_checkpoint(program: Program,
                          seg: Segment) -> RegisterCheckpoint:
    """Healthy log replay of one segment to recover its end state."""
    interface = LogReplayInterface(seg, LoadStoreComparator(),
                                   hash_mode=False)
    regs = RegisterFile()
    assert seg.start_checkpoint is not None
    regs.restore(seg.start_checkpoint)
    core = FunctionalCore(program, interface, registers=regs,
                          nonrep=interface,
                          start_pc=seg.start_checkpoint.pc)
    result = core.run(seg.instructions, record_trace=False)
    return result.end_checkpoint
