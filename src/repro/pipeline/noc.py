"""Pipeline stage 4: NoC traffic aggregation and LLC backpropagation.

Estimates this main core's mesh traffic from the first-pass timing and
schedule, then converts per-link M/M/1 queueing into the two knobs the
rest of the pipeline consumes: extra LLC access latency and the LSL push
latency.  Prior-work baselines with dedicated point-to-point LSL wiring
keep their demand traffic on the mesh but push over a single hop.
"""

from __future__ import annotations

from repro.noc.traffic import MainTraffic
from repro.pipeline.artifacts import PreparedRun
from repro.pipeline.context import SimContext
from repro.pipeline.schedule import make_slots, schedule_segments


def estimate_traffic(ctx: SimContext, prepared: PreparedRun) -> MainTraffic:
    """First-pass traffic contribution (coverage-scaled LSL bytes)."""
    config = ctx.config
    slots = make_slots(config)
    _, stall_ns, covered = schedule_segments(
        config, prepared.segments,
        prepared.checked_pass1.boundary_times_ns(),
        prepared.durations_by_class, slots, push_latency_ns=0.0)
    coverage = covered / max(prepared.run.instructions, 1)
    return MainTraffic(
        main_id=config.main_id,
        duration_ns=prepared.checked_pass1.time_ns + stall_ns,
        llc_accesses=prepared.checked_pass1.llc_accesses,
        checker_llc_accesses=prepared.checker_llc,
        lsl_bytes=int(prepared.lsl_bytes * coverage),
        checkpoints=len(prepared.segments) + 1,
        checkers_used=len(config.checkers),
    )


def noc_adjustment(ctx: SimContext,
                   traffic: MainTraffic) -> tuple[float, float]:
    """Build the loaded mesh and return ``(extra_llc_ns, push_latency_ns)``.

    The mesh's per-link utilisation is published under ``noc`` in the
    stats tree as a side effect.
    """
    config = ctx.config
    noc_stats = ctx.stats.group("noc")
    if config.dedicated_interconnect:
        # LSL goes over dedicated adjacent wiring; only demand traffic
        # crosses the mesh, and pushes take a single hop.
        mesh = ctx.traffic_model.build([traffic], include_lsl=False)
        extra_llc = ctx.traffic_model.llc_extra_latency_ns(
            mesh, config.main_id)
        push_latency = config.noc.hop_latency_ns() + \
            config.noc.data_packet_bytes / config.noc.link_bandwidth_gbps
    else:
        mesh = ctx.traffic_model.build([traffic])
        extra_llc = ctx.traffic_model.llc_extra_latency_ns(
            mesh, config.main_id)
        push_latency = ctx.traffic_model.lsl_push_latency_ns(
            mesh, config.main_id, len(config.checkers))
    mesh.export_stats(noc_stats)
    noc_stats.scalar("extra_llc_latency_ns", extra_llc,
                     "queueing backpropagated into each LLC access")
    noc_stats.scalar("lsl_push_latency_ns", push_latency,
                     "latency of one LSL line push to a checker")
    return extra_llc, push_latency
