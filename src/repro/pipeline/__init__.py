"""The staged simulation pipeline.

One ParaVerser run is the composition of seven stages, each a small
module consuming and producing typed artifacts
(:mod:`repro.pipeline.artifacts`), threaded by a
:class:`~repro.pipeline.context.SimContext` that carries the
configuration, seeded RNG streams, and the run's statistics tree:

1. **build** — :func:`SimContext.create` resolves config, tile layout
   and traffic model;
2. **functional trace** — :func:`~repro.pipeline.trace.run_functional`
   and :func:`~repro.pipeline.trace.segment_trace`;
3. **core timing** — :mod:`repro.pipeline.timing` (baseline grid, checked
   main, per-class checkers);
4. **NoC/LLC adjustment** — :mod:`repro.pipeline.noc` (M/M/1 queueing
   backpropagated into LLC latency and LSL push latency);
5. **segment schedule** — :mod:`repro.pipeline.schedule` (discrete-event
   allocation over the checker pool);
6. **check/compare** — :func:`~repro.pipeline.check.verify_sample`
   (end-to-end replay self-check);
7. **report** — :func:`~repro.pipeline.report.finalize` (measured-window
   cut, :class:`SystemResult` assembly, stats export).

:class:`repro.core.system.ParaVerserSystem` is the thin orchestration
shell over these stages and keeps the historical public API.
"""

from repro.pipeline.artifacts import (
    PreparedRun,
    RunPlan,
    RunRequest,
    ScheduledRun,
    SegmentSchedule,
    SystemResult,
)
from repro.pipeline.check import verify_sample
from repro.pipeline.context import SimContext
from repro.pipeline.executor import GraphExecutor, env_stage_jobs, run_graph
from repro.pipeline.graph import RUN_GRAPH, StageGraph, StageNode
from repro.pipeline.noc import estimate_traffic, noc_adjustment
from repro.pipeline.report import assemble, export_run_stats, finalize, \
    run_schedule
from repro.pipeline.schedule import make_slots, schedule_segments
from repro.pipeline.timing import (
    BASELINE_GRID,
    baseline_timing,
    build_uncore,
    checker_durations,
    checker_timing,
    grid_time_at,
    main_timing,
    warm_addresses,
)
from repro.pipeline.trace import (
    derive_end_checkpoint,
    fill_checkpoints,
    run_functional,
    segment_trace,
)

__all__ = [
    "BASELINE_GRID",
    "GraphExecutor",
    "PreparedRun",
    "RUN_GRAPH",
    "RunPlan",
    "RunRequest",
    "ScheduledRun",
    "SegmentSchedule",
    "SimContext",
    "StageGraph",
    "StageNode",
    "SystemResult",
    "assemble",
    "baseline_timing",
    "build_uncore",
    "checker_durations",
    "checker_timing",
    "derive_end_checkpoint",
    "env_stage_jobs",
    "estimate_traffic",
    "export_run_stats",
    "fill_checkpoints",
    "finalize",
    "grid_time_at",
    "main_timing",
    "make_slots",
    "noc_adjustment",
    "run_functional",
    "run_graph",
    "run_schedule",
    "schedule_segments",
    "segment_trace",
    "verify_sample",
    "warm_addresses",
]
