"""Pipeline stage 6: end-to-end functional verification sample.

Replays a sample of segments on a healthy checker core as a self-check
of the logging/replay implementation itself.
"""

from __future__ import annotations

from repro.core.checker import CheckerCore, CheckResult
from repro.core.counter import Segment
from repro.core.simconfig import ParaVerserConfig
from repro.isa.program import Program


def verify_sample(config: ParaVerserConfig, program: Program,
                  segments: list[Segment],
                  mapper=None) -> list[CheckResult]:
    """Replay a sample of segments on a healthy checker.

    A healthy checker must never report an error (no false positives);
    a detection here means the logging/replay implementation itself
    diverged, so it raises rather than returning quietly.

    ``mapper`` is an optional order-preserving ``map(fn, items)`` used to
    replay the sampled segments in parallel.  Each replay restores the
    segment's start checkpoint into a fresh core, so segments are
    independent by construction; the parallel path uses one
    :class:`CheckerCore` per segment (the serial path shares one, which
    only accumulates bookkeeping counters — the per-segment
    :class:`CheckResult` is identical either way).
    """
    count = min(config.verify_segments, len(segments))
    if count <= 0:
        return []
    stride = max(len(segments) // count, 1)
    sample = segments[::stride][:count]
    if mapper is None:
        checker = CheckerCore(program, hash_mode=config.hash_mode)
        results = [checker.check_segment(seg) for seg in sample]
    else:
        results = mapper(
            lambda seg: CheckerCore(
                program, hash_mode=config.hash_mode).check_segment(seg),
            sample)
    for result in results:
        if result.detected:
            raise RuntimeError(
                "healthy checker detected a divergence (implementation "
                f"bug): {result.first_event}"
            )
    return results
