"""Pipeline stage 6: end-to-end functional verification sample.

Replays a sample of segments on a healthy checker core as a self-check
of the logging/replay implementation itself.
"""

from __future__ import annotations

from repro.core.checker import CheckerCore, CheckResult
from repro.core.counter import Segment
from repro.core.simconfig import ParaVerserConfig
from repro.isa.program import Program


def verify_sample(config: ParaVerserConfig, program: Program,
                  segments: list[Segment]) -> list[CheckResult]:
    """Replay a sample of segments on a healthy checker.

    A healthy checker must never report an error (no false positives);
    a detection here means the logging/replay implementation itself
    diverged, so it raises rather than returning quietly.
    """
    count = min(config.verify_segments, len(segments))
    if count <= 0:
        return []
    checker = CheckerCore(program, hash_mode=config.hash_mode)
    stride = max(len(segments) // count, 1)
    results = []
    for seg in segments[::stride][:count]:
        result = checker.check_segment(seg)
        if result.detected:
            raise RuntimeError(
                "healthy checker detected a divergence (implementation "
                f"bug): {result.first_event}"
            )
        results.append(result)
    return results
