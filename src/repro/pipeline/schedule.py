"""Pipeline stage 5: segment-level discrete-event checker scheduling.

Implements the three operating modes over the checker pool: full
coverage (stall when no checker is free), opportunistic (drop or
partially cover instead of stalling), and deterministic stride sampling.
"""

from __future__ import annotations

import operator

from repro.core.allocator import CheckerAllocator, CheckerSlot
from repro.core.counter import Segment
from repro.core.eager import segment_finish_time
from repro.core.simconfig import CheckMode, ParaVerserConfig
from repro.pipeline.artifacts import SegmentSchedule

#: Hoisted out of the per-segment hot loop: a closure-free key for the
#: earliest-free-slot scan in opportunistic mode.
_FREE_AT_NS = operator.attrgetter("free_at_ns")


def make_slots(config: ParaVerserConfig) -> list[CheckerSlot]:
    """Fresh allocatable slots for the configured checker pool."""
    return [
        CheckerSlot(
            instance=inst,
            lsl_capacity_bytes=config.lsl_capacity(),
            position=i,
        )
        for i, inst in enumerate(config.checkers)
    ]


def schedule_segments(
    config: ParaVerserConfig,
    segments: list[Segment],
    boundary_times_ns: list[float],
    durations_by_class: dict[str, list[float]],
    slots: list[CheckerSlot],
    push_latency_ns: float,
) -> tuple[list[SegmentSchedule], float, int]:
    """Discrete-event schedule; returns (per-segment, stall_ns, covered)."""
    allocator = CheckerAllocator(slots)
    schedule: list[SegmentSchedule] = []
    append = schedule.append
    shift = 0.0
    stall_total = 0.0
    covered_instructions = 0
    opportunistic = config.mode is CheckMode.OPPORTUNISTIC
    sampling = config.mode is CheckMode.SAMPLING
    sampling_rate = config.sampling_rate
    eager_wake = config.eager_wake
    acquire_opportunistic = allocator.acquire_opportunistic
    acquire_full = allocator.acquire_full
    sample_accumulator = 0.0
    prev_end_raw = 0.0
    for seg, end_raw in zip(segments, boundary_times_ns):
        start_raw = prev_end_raw
        prev_end_raw = end_raw
        m_start = start_raw + shift
        m_end = end_raw + shift
        if sampling:
            # Deterministic stride sampling: accumulate the rate and
            # check a segment each time it crosses an integer.
            sample_accumulator += sampling_rate
            take = sample_accumulator >= 1.0
            if take:
                sample_accumulator -= 1.0
            allocation = (acquire_opportunistic(m_start)
                          if take else None)
            if allocation is None:
                append(SegmentSchedule(
                    seg.index, m_start, m_end, None, m_end, 0.0, False,
                    0.0))
                continue
        elif opportunistic:
            allocation = acquire_opportunistic(m_start)
            if allocation is None:
                # No checker free at segment start — but one freeing
                # mid-segment immediately resumes checking from a new
                # checkpoint there (section IV-A), covering the tail
                # of the interval.
                earliest = min(allocator.slots, key=_FREE_AT_NS)
                if earliest.free_at_ns < m_end:
                    fraction = (m_end - earliest.free_at_ns) \
                        / max(m_end - m_start, 1e-12)
                    part_start = earliest.free_at_ns
                    duration = durations_by_class[
                        earliest.instance.label][seg.index] * fraction
                    lines = max(int(seg.lines * fraction), 1)
                    finish = segment_finish_time(
                        checker_free_ns=earliest.free_at_ns,
                        segment_start_ns=part_start,
                        segment_end_ns=m_end,
                        check_duration_ns=duration,
                        lines=lines,
                        noc_latency_ns=push_latency_ns,
                        eager=eager_wake,
                    )
                    part_instructions = int(seg.instructions * fraction)
                    earliest.assign(part_start, finish,
                                    part_instructions)
                    covered_instructions += part_instructions
                    append(SegmentSchedule(
                        seg.index, m_start, m_end, earliest.label,
                        finish, 0.0, fraction >= 0.5, fraction))
                    continue
                append(SegmentSchedule(
                    seg.index, m_start, m_end, None, m_end, 0.0, False,
                    0.0))
                continue
        else:
            allocation = acquire_full(m_start)
            if allocation.stalled_ns > 0:
                shift += allocation.stalled_ns
                stall_total += allocation.stalled_ns
                m_start += allocation.stalled_ns
                m_end += allocation.stalled_ns
        slot = allocation.slot
        duration = durations_by_class[slot.instance.label][seg.index]
        finish = segment_finish_time(
            checker_free_ns=slot.free_at_ns,
            segment_start_ns=m_start,
            segment_end_ns=m_end,
            check_duration_ns=duration,
            lines=seg.lines,
            noc_latency_ns=push_latency_ns,
            eager=eager_wake,
        )
        slot.assign(m_start, finish, seg.instructions)
        covered_instructions += seg.instructions
        append(SegmentSchedule(
            seg.index, m_start, m_end, slot.label, finish,
            allocation.stalled_ns if not opportunistic else 0.0, True))
    return schedule, stall_total, covered_instructions
