"""Pipeline stage 7: final timing, measured-window cut, and reporting.

Re-times the checked main core with NoC effects applied, schedules the
segments over the checker pool, cuts the cold warmup prefix from the
measured window, runs the functional verification sample, and assembles
the :class:`SystemResult` plus the run's observability tree.
"""

from __future__ import annotations

from repro.core.allocator import CheckerSlot
from repro.core.checker import CheckResult
from repro.obs import StatGroup
from repro.pipeline.artifacts import PreparedRun, ScheduledRun, SystemResult
from repro.pipeline.check import verify_sample
from repro.pipeline.context import SimContext
from repro.pipeline.schedule import make_slots, schedule_segments
from repro.pipeline.timing import grid_time_at, main_timing


def run_schedule(ctx: SimContext, prepared: PreparedRun, extra_llc: float,
                 push_latency: float) -> ScheduledRun:
    """Re-time the checked main with NoC effects and schedule the pool.

    A stage-graph node of its own so the (expensive) final timing +
    schedule can overlap the verification sample, which depends only on
    the functional segments.
    """
    config = ctx.config
    with ctx.stage_timer("timing"):
        checked = main_timing(config, prepared.run, prepared.boundaries,
                              extra_llc, stats=ctx.stats.group("main"))
    slots = make_slots(config)
    with ctx.stage_timer("schedule"):
        schedule, stall_ns, covered = schedule_segments(
            config, prepared.segments, checked.boundary_times_ns(),
            prepared.durations_by_class, slots,
            push_latency_ns=push_latency)
    return ScheduledRun(checked=checked, slots=slots, schedule=schedule,
                        stall_ns=stall_ns, covered_instructions=covered)


def assemble(ctx: SimContext, prepared: PreparedRun,
             scheduled: ScheduledRun, verify_results: list[CheckResult],
             extra_llc: float, config_label: str = "") -> SystemResult:
    """Measured-window cut, :class:`SystemResult` assembly, stats export."""
    config = ctx.config
    run = prepared.run
    segments = prepared.segments
    checked = scheduled.checked
    schedule = scheduled.schedule
    stall_ns = scheduled.stall_ns
    coverage = scheduled.covered_instructions / max(run.instructions, 1)
    checked_time = checked.time_ns + stall_ns
    baseline_time = prepared.baseline.time_ns

    # Measured window: drop a cold prefix from both sides, like the
    # paper's fast-forwarded measurements.  The cut lands on a segment
    # boundary; the baseline's time there comes from its instruction
    # grid, so windows stay instruction-aligned across configurations.
    target = int(config.warmup_fraction * run.instructions)
    warmup = 0
    while warmup < len(segments) and segments[warmup].end < target:
        warmup += 1
    checked_bt = checked.boundary_times_ns()
    # Bandwidth-floor-bound runs are uniformly dilated, which breaks
    # window alignment — and they have no cold-start transient to drop.
    floor_bound = (checked.floor_scale > 1.0
                   or prepared.baseline.floor_scale > 1.0)
    if floor_bound:
        warmup = 0
    if 0 < warmup <= len(segments) // 2:
        cut_instr = segments[warmup - 1].end
        warm_stall = sum(s.stalled_ns for s in schedule[:warmup])
        checked_time -= checked_bt[warmup - 1] + warm_stall
        baseline_time -= grid_time_at(prepared.baseline, cut_instr)

    cut_reasons: dict[str, int] = {}
    for seg in segments:
        cut_reasons[seg.reason.value] = cut_reasons.get(
            seg.reason.value, 0) + 1

    result = SystemResult(
        workload=run.program.name,
        mode=config.mode,
        config_label=config_label,
        instructions=run.instructions,
        baseline_time_ns=baseline_time,
        checked_time_ns=checked_time,
        segments=len(segments),
        stall_ns=stall_ns,
        coverage=coverage,
        lsl_bytes=prepared.lsl_bytes,
        checkpoints=len(segments) + 1,
        noc_extra_llc_ns=extra_llc,
        baseline_timing=prepared.baseline,
        main_timing=checked,
        checker_slots=scheduled.slots,
        schedule=schedule,
        verify_results=verify_results,
        cut_reasons=cut_reasons,
        stats=ctx.stats,
    )
    with ctx.stage_timer("report"):
        export_run_stats(ctx.stats, result)
    return result


def finalize(ctx: SimContext, prepared: PreparedRun, extra_llc: float,
             push_latency: float, verify: bool = True,
             config_label: str = "") -> SystemResult:
    """Final timing + schedule with NoC effects applied (serial path)."""
    scheduled = run_schedule(ctx, prepared, extra_llc, push_latency)
    with ctx.stage_timer("check"):
        verify_results = verify_sample(
            ctx.config, prepared.run.program, prepared.segments) \
            if verify else []
    return assemble(ctx, prepared, scheduled, verify_results, extra_llc,
                    config_label)


def export_run_stats(stats: StatGroup, result: SystemResult) -> None:
    """Publish the headline, schedule and checker-occupancy stats."""
    prepared_base = result.baseline_timing
    prepared_base.export_stats(stats.group("baseline"))

    sched = stats.group("schedule")
    sched.count("segments", result.segments, "checkpointed segments")
    sched.count("checkpoints", result.checkpoints)
    sched.scalar("stall_ns", result.stall_ns,
                 "main-core stall waiting for a free checker")
    sched.scalar("coverage", result.coverage,
                 "fraction of instructions checked")
    covered = sum(1 for s in result.schedule if s.covered)
    sched.count("segments_covered", covered)
    sched.count("segments_uncovered", len(result.schedule) - covered)
    reasons = sched.group("cut_reasons",
                          "why each segment boundary was cut")
    for reason, n in sorted(result.cut_reasons.items()):
        reasons.count(reason, n)
    lag = sched.histogram(
        "checker_lag_ns",
        desc="checker finish time behind the segment's main-core end")
    lag.reset()  # finalize runs twice per cluster pass (with/without LSL)
    for s in result.schedule:
        if s.checker_label is not None:
            lag.record(max(s.checker_finish_ns - s.main_end_ns, 0.0))

    export_checker_stats(stats.group("checkers"), result.checker_slots,
                         result.checked_time_ns)

    top = stats.group("result")
    top.scalar("baseline_time_ns", result.baseline_time_ns)
    top.scalar("checked_time_ns", result.checked_time_ns)
    top.scalar("slowdown", result.slowdown)
    top.scalar("overhead_percent", result.overhead_percent)
    top.scalar("coverage", result.coverage)
    top.count("instructions", result.instructions)
    top.count("lsl_bytes", result.lsl_bytes)
    top.scalar("noc_extra_llc_ns", result.noc_extra_llc_ns)


def export_checker_stats(group: StatGroup, slots: list[CheckerSlot],
                         run_time_ns: float) -> None:
    """Per-slot busy time, work done, and occupancy over the run."""
    total_busy = 0.0
    for slot in slots:
        sub = group.group(slot.label)
        sub.scalar("busy_ns", slot.busy_ns)
        sub.count("segments_checked", slot.segments_checked)
        sub.count("instructions_checked", slot.instructions_checked)
        sub.scalar("occupancy",
                   slot.busy_ns / run_time_ns if run_time_ns > 0 else 0.0,
                   "fraction of the run this checker was busy")
        total_busy += slot.busy_ns
    group.scalar("pool_occupancy",
                 total_busy / (run_time_ns * len(slots))
                 if run_time_ns > 0 and slots else 0.0,
                 "mean occupancy across the checker pool")
