"""Typed artifacts passed between pipeline stages.

Each stage consumes and produces values of these types; nothing here has
behaviour beyond derived metrics.  ``SegmentSchedule``, ``PreparedRun``
and ``SystemResult`` keep their historical import path via re-exports in
:mod:`repro.core.system`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.allocator import CheckerSlot
from repro.core.checker import CheckResult
from repro.core.counter import Segment
from repro.core.simconfig import CheckMode
from repro.cpu.functional import RunResult
from repro.cpu.timing import TimingResult
from repro.isa.program import Program
from repro.isa.registers import RegisterCheckpoint
from repro.obs import StatGroup

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.core.system import ParaVerserSystem


@dataclass(frozen=True)
class RunRequest:
    """The external input artifact of the stage graph: what to simulate."""

    program: Program
    max_instructions: int = 100_000
    run_result: RunResult | None = None
    forced_boundaries: set[int] | None = None
    boundary_checkpoints: dict[int, RegisterCheckpoint] | None = None
    baseline: TimingResult | None = None
    verify: bool = True


@dataclass(frozen=True)
class RunPlan:
    """Build-stage output: the validated request plus the run's identity."""

    request: RunRequest
    config_label: str


@dataclass(slots=True)
class SegmentSchedule:
    """Scheduling outcome for one segment."""

    segment: int
    main_start_ns: float
    main_end_ns: float
    checker_label: str | None
    checker_finish_ns: float
    stalled_ns: float
    covered: bool
    #: Portion of the segment actually checked (opportunistic mode can
    #: resume mid-segment when a checker frees, section IV-A).
    coverage_fraction: float = 1.0


@dataclass
class PreparedRun:
    """Intermediate state between functional/timing prep and finalisation.

    Produced by :meth:`ParaVerserSystem.prepare`; lets a multi-main
    cluster aggregate NoC traffic across mains before finalising each.
    """

    system: "ParaVerserSystem"
    run: RunResult
    segments: list[Segment]
    boundaries: list[int]
    baseline: TimingResult
    checked_pass1: TimingResult
    durations_by_class: dict[str, list[float]]
    checker_llc: int
    lsl_bytes: int


@dataclass
class ScheduledRun:
    """Schedule-stage output: final main timing + the checker schedule."""

    checked: TimingResult
    slots: list[CheckerSlot]
    schedule: list[SegmentSchedule]
    stall_ns: float
    covered_instructions: int


@dataclass
class SystemResult:
    """Everything one ParaVerser run produced."""

    workload: str
    mode: CheckMode
    config_label: str
    instructions: int
    baseline_time_ns: float
    checked_time_ns: float
    segments: int
    stall_ns: float
    coverage: float              # fraction of instructions checked
    lsl_bytes: int
    checkpoints: int
    noc_extra_llc_ns: float
    baseline_timing: TimingResult
    main_timing: TimingResult
    checker_slots: list[CheckerSlot]
    schedule: list[SegmentSchedule]
    verify_results: list[CheckResult] = field(default_factory=list)
    cut_reasons: dict[str, int] = field(default_factory=dict)
    #: The run's full observability tree (``paraverser run --stats-json``).
    #: Excluded from equality: wall-clock gauges differ across identical
    #: runs while the simulated outcome stays bit-identical.
    stats: StatGroup | None = field(default=None, compare=False, repr=False)

    @property
    def slowdown(self) -> float:
        return self.checked_time_ns / self.baseline_time_ns \
            if self.baseline_time_ns else 1.0

    @property
    def overhead_percent(self) -> float:
        return (self.slowdown - 1.0) * 100.0
