"""Bounded executor scheduling ready stage-graph nodes onto threads.

The :class:`GraphExecutor` walks a :class:`~repro.pipeline.graph.StageGraph`
and runs every node whose input artifacts exist.  With ``stage_jobs <= 1``
(the default) nodes run inline in declaration order — byte-for-byte the
historical serial pipeline.  With ``stage_jobs > 1`` ready nodes are
submitted to a shared bounded thread pool, so independent stages (e.g.
the NoC/schedule chain and the verification sample) overlap in wall
time.  Threads are the right tool here despite the GIL: the verify stage
is interpreter-bound but the timing stages spend much of their time in
tight loops that release the GIL at allocation points, and — more
importantly — the same executor powers ``map_ordered``, the
deterministic intra-stage fan-out used by
:func:`~repro.pipeline.timing.checker_durations`.

Determinism rules (see docs/architecture.md):

* stage functions return artifact dicts; the executor only stores them —
  it never merges or reorders values;
* ``map_ordered`` preserves input order exactly (``pool.map``), so a
  parallel fan-out merges identically to the serial loop;
* stats are published into disjoint subtrees per stage (creation is
  lock-guarded in :class:`~repro.obs.StatGroup`), so registration order
  is the only thing that can differ — never a value.

``REPRO_STAGE_JOBS`` sets the default width (0 or negative = CPU count).
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import TYPE_CHECKING, Callable, Iterable

from repro.envutil import env_int

if TYPE_CHECKING:  # pragma: no cover - type-only imports, avoid cycles
    from repro.core.system import ParaVerserSystem
    from repro.pipeline.graph import StageGraph


def env_stage_jobs() -> int:
    """REPRO_STAGE_JOBS: stage-level worker threads (0/negative = CPUs)."""
    jobs = env_int("REPRO_STAGE_JOBS", 1)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


# Stage threads are shared process-wide, keyed by width: a sweep running
# hundreds of graphs must not pay thread spawn/teardown per run.
_POOLS: dict[int, ThreadPoolExecutor] = {}
_POOL_LOCK = threading.Lock()


def _shared_pool(workers: int) -> ThreadPoolExecutor:
    with _POOL_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(max_workers=workers,
                                      thread_name_prefix="stage")
            _POOLS[workers] = pool
        return pool


class GraphExecutor:
    """Schedules ready stage nodes onto a bounded worker pool."""

    def __init__(self, stage_jobs: int | None = None) -> None:
        self.stage_jobs = env_stage_jobs() if stage_jobs is None \
            else (stage_jobs if stage_jobs > 0 else (os.cpu_count() or 1))

    # -- intra-stage fan-out ----------------------------------------------

    def map_ordered(self, fn: Callable, items: Iterable) -> list:
        """Order-preserving parallel map for intra-stage fan-out.

        Runs on a transient pool rather than the node pool: a stage
        function calling back into the pool that runs it could deadlock
        when every slot is busy.  Serial when the executor is serial or
        there is nothing to overlap.
        """
        items = list(items)
        if self.stage_jobs <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(
                max_workers=min(self.stage_jobs, len(items)),
                thread_name_prefix="stage-map") as pool:
            return list(pool.map(fn, items))

    # -- node scheduling ---------------------------------------------------

    def execute(self, graph: "StageGraph", system: "ParaVerserSystem",
                initial: dict[str, object]) -> dict[str, object]:
        """Run every node of ``graph``; returns the full artifact store."""
        artifacts: dict[str, object] = dict(initial)
        started = time.perf_counter()
        if self.stage_jobs <= 1:
            busy, peak = self._execute_serial(graph, system, artifacts)
        else:
            busy, peak = self._execute_pooled(graph, system, artifacts)
        elapsed = time.perf_counter() - started
        self._publish(system, len(graph.nodes), busy, elapsed, peak)
        return artifacts

    def _execute_serial(self, graph, system, artifacts):
        done: set[str] = set()
        busy = 0.0
        peak = 0
        while len(done) < len(graph.nodes):
            ready = graph.ready(artifacts, done)
            if not ready:
                raise RuntimeError(
                    f"stage graph stalled; done={sorted(done)}, "
                    f"artifacts={sorted(artifacts)}")
            peak = max(peak, len(ready))
            node = ready[0]
            t0 = time.perf_counter()
            produced = node.fn(system, artifacts, self)
            busy += time.perf_counter() - t0
            self._store(node, produced, artifacts)
            done.add(node.name)
        return busy, peak

    def _execute_pooled(self, graph, system, artifacts):
        pool = _shared_pool(self.stage_jobs)
        done: set[str] = set()
        in_flight: dict = {}
        busy = 0.0
        peak = 0

        def run_node(node):
            t0 = time.perf_counter()
            produced = node.fn(system, artifacts, self)
            return produced, time.perf_counter() - t0

        while len(done) < len(graph.nodes):
            launched = {node.name for node in in_flight.values()}
            ready = [node for node in graph.ready(artifacts, done)
                     if node.name not in launched]
            peak = max(peak, len(ready) + len(in_flight))
            for node in ready:
                in_flight[pool.submit(run_node, node)] = node
            if not in_flight:
                raise RuntimeError(
                    f"stage graph stalled; done={sorted(done)}, "
                    f"artifacts={sorted(artifacts)}")
            finished, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            for future in finished:
                node = in_flight.pop(future)
                produced, node_busy = future.result()
                busy += node_busy
                self._store(node, produced, artifacts)
                done.add(node.name)
        return busy, peak

    @staticmethod
    def _store(node, produced, artifacts: dict) -> None:
        produced = produced or {}
        missing = set(node.outputs) - set(produced)
        if missing:
            raise RuntimeError(
                f"stage {node.name!r} did not produce {sorted(missing)}")
        for name in node.outputs:
            artifacts[name] = produced[name]

    def _publish(self, system, stages: int, busy: float, elapsed: float,
                 peak: int) -> None:
        stats = system.ctx.stats.group("pipeline").group(
            "executor", "stage-graph executor occupancy")
        stats.scalar("stage_jobs", float(self.stage_jobs),
                     "worker-pool width for stage nodes")
        stats.count("stages_run", stages)
        stats.scalar("wall_time_ms", elapsed * 1e3,
                     "graph start-to-finish wall time")
        stats.scalar("queue_depth_max", float(peak),
                     "peak ready+running stage nodes")
        # overlap = aggregate stage-busy time / wall time; 1.0 means the
        # graph ran as if serial, >1.0 means stages genuinely overlapped.
        stats.scalar("overlap", busy / elapsed if elapsed > 0 else 0.0,
                     "sum of stage busy times over wall time")
        stats.scalar(
            "occupancy",
            busy / (elapsed * self.stage_jobs) if elapsed > 0 else 0.0,
            "overlap normalised by pool width")


def run_graph(graph: "StageGraph", system: "ParaVerserSystem",
              initial: dict[str, object],
              stage_jobs: int | None = None) -> dict[str, object]:
    """Convenience: execute ``graph`` with a fresh executor."""
    return GraphExecutor(stage_jobs).execute(graph, system, initial)


__all__ = ["GraphExecutor", "env_stage_jobs", "run_graph"]
