"""The declared stage graph of one ParaVerser run.

Each pipeline stage is a :class:`StageNode`: a name, the typed artifact
names it consumes and produces, and a function ``fn(system, artifacts,
executor) -> dict``.  :data:`RUN_GRAPH` declares the seven stages of a
run and their data dependencies explicitly, instead of the implicit call
sequence ``prepare → estimate_traffic → finalize``:

.. code-block:: text

    request ─ build ─ plan ─ trace ─ run/segments/boundaries ─ timing
                                │                                 │
                                │                              prepared
                                │                            ┌────┴────┐
                                └────────── check           noc        │
                                              │              │         │
                                              │          noc_terms     │
                                              │              └── schedule
                                              │                    │
                                              └──── report ── scheduled
                                                       │
                                                    result

``check`` depends only on the functional segments, so with a parallel
:class:`~repro.pipeline.executor.GraphExecutor` it overlaps the whole
noc → schedule chain.  Every stage function calls the same pipeline
helpers with the same :meth:`~repro.pipeline.context.SimContext.stage_timer`
accounting as the historical serial path, so ``pipeline.<stage>.*``
stats are identical between graph and prepare/finalize execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.hashmode import DIGEST_BYTES
from repro.pipeline.artifacts import PreparedRun, RunPlan, RunRequest
from repro.pipeline.check import verify_sample
from repro.pipeline.noc import estimate_traffic, noc_adjustment
from repro.pipeline.report import assemble, run_schedule
from repro.pipeline.timing import (
    baseline_timing,
    checker_durations,
    main_timing,
)
from repro.pipeline.trace import run_functional, segment_trace

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.core.system import ParaVerserSystem

#: Signature of a stage function: consumes the artifact store, returns
#: a dict holding exactly the node's declared outputs.
StageFn = Callable[["ParaVerserSystem", dict, object], dict]


@dataclass(frozen=True)
class StageNode:
    """One declared pipeline stage."""

    name: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    fn: StageFn


class StageGraph:
    """A validated DAG of :class:`StageNode` over named artifacts."""

    def __init__(self, nodes: list[StageNode]) -> None:
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names in {names}")
        producers: dict[str, str] = {}
        for node in nodes:
            for output in node.outputs:
                if output in producers:
                    raise ValueError(
                        f"artifact {output!r} produced by both "
                        f"{producers[output]!r} and {node.name!r}")
                producers[output] = node.name
        self.nodes = list(nodes)
        self.producers = producers
        #: Artifacts no node produces; the caller supplies them.
        self.external_inputs = tuple(sorted({
            name for node in nodes for name in node.inputs
            if name not in producers
        }))
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        by_name = {node.name: node for node in self.nodes}
        state: dict[str, int] = {}  # 0 visiting, 1 done

        def visit(name: str, chain: tuple[str, ...]) -> None:
            if state.get(name) == 1:
                return
            if state.get(name) == 0:
                raise ValueError(
                    f"stage graph cycle through {name!r}: {chain}")
            state[name] = 0
            node = by_name[name]
            for artifact in node.inputs:
                producer = self.producers.get(artifact)
                if producer is not None:
                    visit(producer, chain + (name,))
            state[name] = 1

        for node in self.nodes:
            visit(node.name, ())

    def ready(self, artifacts: dict, done: set[str]) -> list[StageNode]:
        """Nodes whose inputs all exist and that have not yet run."""
        return [
            node for node in self.nodes
            if node.name not in done
            and all(name in artifacts for name in node.inputs)
        ]

    def __len__(self) -> int:
        return len(self.nodes)


# -- the seven stage functions ----------------------------------------------

def _stage_build(system: "ParaVerserSystem", art: dict, executor) -> dict:
    """Stamp the validated request with the run's configuration identity."""
    request: RunRequest = art["request"]
    with system.ctx.stage_timer("build"):
        plan = RunPlan(request=request,
                       config_label=system.config_label())
    return {"plan": plan}


def _stage_trace(system: "ParaVerserSystem", art: dict, executor) -> dict:
    """Functional execution + segmentation (the RCU checkpoint pass)."""
    ctx = system.ctx
    request = art["plan"].request
    with ctx.stage_timer("trace"):
        run = request.run_result or run_functional(
            ctx, request.program, request.max_instructions)
        segments = segment_trace(ctx, run, request.forced_boundaries,
                                 request.boundary_checkpoints)
    return {
        "run": run,
        "segments": segments,
        "boundaries": [seg.end for seg in segments],
    }


def _stage_timing(system: "ParaVerserSystem", art: dict, executor) -> dict:
    """Baseline grid, checked pass 1, per-class checker durations."""
    ctx = system.ctx
    config = ctx.config
    request = art["plan"].request
    run = art["run"]
    segments = art["segments"]
    boundaries = art["boundaries"]
    with ctx.stage_timer("timing"):
        baseline = request.baseline
        if baseline is None:
            baseline = baseline_timing(ctx, run)
        checked_pass1 = main_timing(config, run, boundaries, 0.0)
        durations_by_class, checker_llc = checker_durations(
            ctx, run, boundaries, mapper=executor.map_ordered)

    lsl_bytes = sum(seg.lines for seg in segments) * 64
    if config.hash_mode:
        lsl_bytes += len(segments) * DIGEST_BYTES

    return {"prepared": PreparedRun(
        system=system,
        run=run,
        segments=segments,
        boundaries=boundaries,
        baseline=baseline,
        checked_pass1=checked_pass1,
        durations_by_class=durations_by_class,
        checker_llc=checker_llc,
        lsl_bytes=int(lsl_bytes),
    )}


def _stage_noc(system: "ParaVerserSystem", art: dict, executor) -> dict:
    """M/M/1 mesh contention backpropagated into LLC/LSL latencies."""
    ctx = system.ctx
    with ctx.stage_timer("noc"):
        traffic = estimate_traffic(ctx, art["prepared"])
        extra_llc, push_latency = noc_adjustment(ctx, traffic)
    return {"noc_terms": (extra_llc, push_latency)}


def _stage_schedule(system: "ParaVerserSystem", art: dict, executor) -> dict:
    """Final checked timing + discrete-event schedule over the pool."""
    extra_llc, push_latency = art["noc_terms"]
    scheduled = run_schedule(system.ctx, art["prepared"], extra_llc,
                             push_latency)
    return {"scheduled": scheduled}


def _stage_check(system: "ParaVerserSystem", art: dict, executor) -> dict:
    """End-to-end replay self-check; independent of the noc/schedule arm."""
    ctx = system.ctx
    request = art["plan"].request
    with ctx.stage_timer("check"):
        verify_results = verify_sample(
            ctx.config, art["run"].program, art["segments"],
            mapper=executor.map_ordered) if request.verify else []
    return {"verify_results": verify_results}


def _stage_report(system: "ParaVerserSystem", art: dict, executor) -> dict:
    """Measured-window cut, result assembly, stats export."""
    extra_llc, _push_latency = art["noc_terms"]
    result = assemble(system.ctx, art["prepared"], art["scheduled"],
                      art["verify_results"], extra_llc,
                      config_label=art["plan"].config_label)
    return {"result": result}


#: The declared graph of one checked run.  ``request`` is the single
#: external input; ``result`` is the terminal artifact.
RUN_GRAPH = StageGraph([
    StageNode("build", ("request",), ("plan",), _stage_build),
    StageNode("trace", ("plan",),
              ("run", "segments", "boundaries"), _stage_trace),
    StageNode("timing", ("plan", "run", "segments", "boundaries"),
              ("prepared",), _stage_timing),
    StageNode("noc", ("prepared",), ("noc_terms",), _stage_noc),
    StageNode("schedule", ("prepared", "noc_terms"),
              ("scheduled",), _stage_schedule),
    StageNode("check", ("plan", "run", "segments"),
              ("verify_results",), _stage_check),
    StageNode("report", ("plan", "prepared", "scheduled", "verify_results",
                         "noc_terms"),
              ("result",), _stage_report),
])

__all__ = ["RUN_GRAPH", "StageGraph", "StageNode"]
