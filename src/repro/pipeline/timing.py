"""Pipeline stage 3: trace-driven core timing.

Times the unchecked baseline (against a fixed instruction grid so one
baseline can be cached and window-aligned across configurations), the
checked main core, and each distinct checker class, over a per-main
partition of the shared uncore.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.simconfig import ParaVerserConfig
from repro.cpu.config import CoreInstance
from repro.cpu.functional import RunResult
from repro.cpu.timing import TimingModel, TimingResult
from repro.isa.program import Program
from repro.mem.hierarchy import SharedUncore
from repro.noc.traffic import MainTraffic
from repro.obs import StatGroup
from repro.pipeline.context import SimContext

#: Instruction step of the baseline's measurement grid.
BASELINE_GRID = 1000


def grid_time_at(baseline: TimingResult, instruction: int) -> float:
    """Baseline elapsed time at ``instruction``, from its boundary grid."""
    times = baseline.boundary_times_ns()
    if not times:
        return baseline.time_ns * instruction / max(baseline.instructions, 1)
    idx = min(instruction // BASELINE_GRID, len(times) - 1)
    base = times[idx - 1] if idx > 0 else 0.0
    base_instr = idx * BASELINE_GRID
    span_instr = min((idx + 1) * BASELINE_GRID,
                     baseline.instructions) - base_instr
    if span_instr <= 0:
        return times[idx]
    frac = (instruction - base_instr) / span_instr
    return base + max(min(frac, 1.0), 0.0) * (times[idx] - base)


def warm_addresses(program: Program):
    """Addresses to functionally warm before timing a main core.

    Covers the program's resident memory image (pointer-chase rings, seeded
    pages) plus any profile-declared warm ranges (working sets small enough
    to be LLC-resident in steady state).
    """
    yield from program.memory_image.keys()
    for base, length in program.metadata.get("warm_ranges", []):
        yield from range(base, base + length, 64)


def build_uncore(config: ParaVerserConfig,
                 extra_llc_ns: float) -> SharedUncore:
    """This main core's partition of the shared LLC + DRAM channel."""
    hierarchy = config.main.config.hierarchy
    l3 = hierarchy.l3
    dram = hierarchy.dram
    share = config.llc_share
    if share < 1.0:
        # Static uncore partitioning for multi-main clusters: each main
        # gets its slice of LLC capacity and DRAM bandwidth.
        ways = max(1, round(l3.ways * share))
        sets = int(l3.size_bytes * share) // (ways * l3.line_bytes)
        sets = 1 << max(sets.bit_length() - 1, 0)  # power-of-two sets
        l3 = replace(l3, size_bytes=sets * ways * l3.line_bytes, ways=ways)
        dram = replace(
            dram, peak_bandwidth_gbps=dram.peak_bandwidth_gbps * share)
    uncore = SharedUncore(l3, dram, hierarchy.uncore_clock_ghz)
    uncore.extra_llc_latency_ns = extra_llc_ns
    return uncore


def main_timing(config: ParaVerserConfig, run: RunResult,
                boundaries: list[int] | None,
                extra_llc_ns: float,
                uncore: SharedUncore | None = None,
                checkpoint_overhead: bool | None = None,
                stats: StatGroup | None = None) -> TimingResult:
    """Time the main core over ``run``'s trace.

    With ``stats``, the run's counters and the full cache/DRAM hierarchy
    state are published into that group after simulation.
    """
    model = TimingModel(config.main,
                        uncore or build_uncore(config, extra_llc_ns))
    model.warm_data(warm_addresses(run.program))
    if checkpoint_overhead is None:
        checkpoint_overhead = boundaries is not None
    result = model.simulate(run.program, run.columns, boundaries,
                            checkpoint_overhead=checkpoint_overhead)
    if stats is not None:
        result.export_stats(stats, config.main.config)
        model.hierarchy.export_stats(stats.group("caches"))
        model.hierarchy.uncore.export_stats(stats.group("uncore"))
    return result


def checker_timing(config: ParaVerserConfig, run: RunResult,
                   boundaries: list[int], instance: CoreInstance,
                   uncore: SharedUncore | None = None) -> TimingResult:
    """Time one checker class replaying the segments of ``run``."""
    model = TimingModel(instance, uncore or build_uncore(config, 0.0),
                        checker_mode=True)
    model.warm_code(run.program)
    return model.simulate(run.program, run.columns, boundaries,
                          checkpoint_overhead=True)


def baseline_timing(ctx: SimContext, run: RunResult) -> TimingResult:
    """Unchecked baseline over the fixed instruction grid.

    Demand traffic alone still contends on the mesh, so the baseline's
    own NoC-induced LLC latency is backpropagated before the gridded
    timing pass.
    """
    config = ctx.config
    base_pass = main_timing(config, run, None, 0.0)
    base_traffic = MainTraffic(
        main_id=config.main_id,
        duration_ns=base_pass.time_ns,
        llc_accesses=base_pass.llc_accesses,
        checkers_used=len(config.checkers),
    )
    mesh = ctx.traffic_model.build([base_traffic], include_lsl=False)
    base_extra = ctx.traffic_model.llc_extra_latency_ns(
        mesh, config.main_id)
    grid = list(range(BASELINE_GRID, len(run.columns), BASELINE_GRID))
    grid.append(len(run.columns))
    return main_timing(config, run, grid, base_extra,
                       checkpoint_overhead=False)


def checker_durations(
    ctx: SimContext, run: RunResult, boundaries: list[int],
    mapper=None,
) -> tuple[dict[str, list[float]], int]:
    """Per-segment check durations for each distinct checker class.

    ``mapper`` is an optional order-preserving ``map(fn, items)`` (the
    stage-graph executor's ``map_ordered``) used to time the classes in
    parallel.  Classes are the fan-out axis because each class's
    simulation is self-contained: a fresh :class:`TimingModel` over a
    fresh uncore, reading the shared trace.  Segments within one class
    must NOT be chunked — the timing model carries microarchitectural
    state (branch predictor, ROB, MSHRs, cache contents) across segment
    boundaries, so splitting the trace would change the numbers.  The
    merge is input-order (first-seen class order), so results are
    bit-identical to the serial loop.
    """
    config = ctx.config
    distinct: dict[str, CoreInstance] = {
        inst.label: inst for inst in config.checkers
    }

    def time_class(item: tuple[str, CoreInstance]):
        label, inst = item
        return label, checker_timing(config, run, boundaries, inst)

    timed = (mapper or _serial_map)(time_class, list(distinct.items()))
    durations_by_class: dict[str, list[float]] = {}
    checker_llc = 0
    for label, timing in timed:
        times = timing.boundary_times_ns()
        durations = [times[0]] + [
            times[i] - times[i - 1] for i in range(1, len(times))
        ]
        durations_by_class[label] = durations
        checker_llc = max(checker_llc, timing.llc_accesses)
    return durations_by_class, checker_llc


def _serial_map(fn, items):
    return [fn(item) for item in items]
