"""Pluggable dispatch policies for the fleet traffic simulator.

A policy maps an arriving request to a server index given each server's
current occupancy (queued + in service).  Policies are deliberately
load-balancer-shaped — the set mirrors what datacenter front-ends
actually deploy:

* ``random`` — uniform random spraying (the request's own dispatch coin,
  so the choice is independent of event-processing order);
* ``rr`` — round robin in arrival order;
* ``shortest`` — join-the-shortest-queue over all servers;
* ``jbsq(d)`` — bounded shortest queue: servers accept at most ``d``
  requests in system; overflow waits in a central queue that drains to
  the first server with a free slot (the policy the key-value-store
  literature calls JBSQ(d));
* ``affinity`` — key-affinity hashing: equal keys always land on equal
  servers, keeping per-key state (and the ParaVerser trace/checker
  warmth it stands in for) hot.

``choose`` returns ``None`` when no server may accept the request right
now (only JBSQ does this); the simulator parks it in the central queue
and calls :meth:`DispatchPolicy.admit_on_free` when a slot frees.
"""

from __future__ import annotations

import re
from typing import Protocol, Sequence

from repro.fleet.traffic import Request, stable_key_hash


class DispatchPolicy(Protocol):
    """Maps one arriving request to a server (or defers it)."""

    name: str

    def choose(self, request: Request,
               occupancy: Sequence[int]) -> int | None: ...

    def admit_on_free(self, server: int,
                      occupancy: Sequence[int]) -> bool:
        """May the central queue's head enter ``server`` right now?"""
        ...


class RandomPolicy:
    """Uniform random spraying, using the request's dispatch coin."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def choose(self, request: Request,
               occupancy: Sequence[int]) -> int | None:
        from repro.fleet.traffic import stream_rng

        return stream_rng(self.seed, request.rid,
                          "dispatch").randrange(len(occupancy))

    def admit_on_free(self, server: int,
                      occupancy: Sequence[int]) -> bool:
        return True


class RoundRobinPolicy:
    """Cycle through servers in arrival order."""

    name = "rr"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, request: Request,
               occupancy: Sequence[int]) -> int | None:
        server = self._next % len(occupancy)
        self._next += 1
        return server

    def admit_on_free(self, server: int,
                      occupancy: Sequence[int]) -> bool:
        return True


class ShortestQueuePolicy:
    """Join the shortest queue; ties break to the lowest index."""

    name = "shortest"

    def choose(self, request: Request,
               occupancy: Sequence[int]) -> int | None:
        return min(range(len(occupancy)), key=lambda i: (occupancy[i], i))

    def admit_on_free(self, server: int,
                      occupancy: Sequence[int]) -> bool:
        return True


class JBSQPolicy:
    """JBSQ(d): bounded shortest queue with a central overflow queue."""

    def __init__(self, bound: int) -> None:
        if bound < 1:
            raise ValueError(f"JBSQ bound must be >= 1, got {bound}")
        self.bound = bound
        self.name = f"jbsq{bound}"

    def choose(self, request: Request,
               occupancy: Sequence[int]) -> int | None:
        eligible = [i for i, n in enumerate(occupancy) if n < self.bound]
        if not eligible:
            return None
        return min(eligible, key=lambda i: (occupancy[i], i))

    def admit_on_free(self, server: int,
                      occupancy: Sequence[int]) -> bool:
        return occupancy[server] < self.bound


class KeyAffinityPolicy:
    """Hash the key: equal keys route to equal servers, always."""

    name = "affinity"

    def choose(self, request: Request,
               occupancy: Sequence[int]) -> int | None:
        return stable_key_hash(request.key) % len(occupancy)

    def admit_on_free(self, server: int,
                      occupancy: Sequence[int]) -> bool:
        return True


_JBSQ_RE = re.compile(r"^jbsq(\d+)$")

#: The fixed policies; JBSQ is parameterised and parsed by name.
POLICY_NAMES = ("random", "rr", "shortest", "jbsq2", "affinity")


def make_policy(name: str, seed: int = 0) -> DispatchPolicy:
    """Build a policy from its CLI name (``jbsq<d>`` parameterises d)."""
    match = _JBSQ_RE.match(name)
    if match:
        return JBSQPolicy(int(match.group(1)))
    if name == "random":
        return RandomPolicy(seed)
    if name == "rr":
        return RoundRobinPolicy()
    if name == "shortest":
        return ShortestQueuePolicy()
    if name == "affinity":
        return KeyAffinityPolicy()
    raise ValueError(
        f"unknown dispatch policy {name!r}; known: "
        f"{', '.join(POLICY_NAMES)} (jbsq<d> for other bounds)")
