"""Fleet-scale hazard-model simulation (the section III-A motivation).

Models a fleet of machines developing permanent CPU faults over time and
compares detection strategies:

* **scanners** (FleetScanner/Ripple): periodic probabilistic tests —
  each scan of a faulty machine detects with the scanner's per-scan
  coverage (faults are data-dependent and intermittent, so coverage is
  well below 1);
* **ParaVerser opportunistic checking**: a faulty core is caught the
  first time a *checked* computation exercises the broken unit — the
  per-day detection probability is derived from instruction coverage and
  the fraction of injected faults that are effective (Fig. 8).

Every day a machine spends undetected-faulty, it produces silent data
corruptions at a configurable rate; the simulator reports total SDC
exposure, mean time-to-detection and detection fraction, reproducing the
paper's argument that months-long scanner windows are the real cost.

The per-day Monte Carlo here is the *slow* (months) timescale of the
fleet model; :mod:`repro.fleet.sim` is the *fast* (milliseconds)
timescale — an event-driven traffic simulator whose measured coverage
fraction feeds :func:`strategy_from_coverage`, so the hazard inputs are
derived from simulated load rather than assumed constants.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.detect.strategies import (
    DetectionStrategy,
    LockstepStrategy,
    ParaVerserStrategy,
    ScannerStrategy,
)

__all__ = [
    "DetectionStrategy",
    "FleetConfig",
    "FleetResult",
    "FleetSimulator",
    "LockstepStrategy",
    "ParaVerserStrategy",
    "ScannerStrategy",
    "registry_strategies",
    "strategy_from_coverage",
]


def registry_strategies() -> list[DetectionStrategy]:
    """The fleet strategies of the registered detection backends.

    Backends without a fleet-level model are skipped, and backends that
    share one hazard model (e.g. every opportunistic-checking scheme)
    contribute it once; the simulator itself stays scheme-agnostic.
    """
    from repro.detect import all_backends

    strategies: list[DetectionStrategy] = []
    for backend in all_backends():
        strategy = backend.fleet_strategy()
        if strategy is not None and strategy not in strategies:
            strategies.append(strategy)
    return strategies


def strategy_from_coverage(coverage: float,
                           effective_fraction: float = 0.76,
                           exercise_probability_per_day: float = 0.95,
                           ) -> ParaVerserStrategy:
    """A ParaVerser hazard whose coverage input is *measured*, not assumed.

    ``coverage`` is the run-time checked-work fraction reported by the
    traffic simulator (:class:`repro.fleet.metrics.TrafficMetrics`), so
    the per-day detection probability reflects what checking actually
    survived the load — opportunistic mode under pressure detects slower
    than the section VII-B constants suggest.
    """
    return ParaVerserStrategy(
        instruction_coverage=coverage,
        effective_fraction=effective_fraction,
        exercise_probability_per_day=exercise_probability_per_day,
    )


@dataclass
class FleetConfig:
    """Fleet and fault-arrival parameters."""

    machines: int = 10_000
    #: Expected permanent faults per machine-day (Meta/Google-scale rates
    #: are order 1e-5..1e-4).
    fault_rate_per_machine_day: float = 5e-5
    #: Silent corruptions per undetected-faulty machine-day.
    sdc_per_faulty_day: float = 3.0
    duration_days: int = 365


@dataclass
class FleetResult:
    """Outcome of one simulated fleet-year."""

    strategy: str
    faults: int = 0
    detected: int = 0
    #: Architecturally masked faults: never observable by any scheme and
    #: harmless by definition.  Counted separately — *not* as detections
    #: with zero latency — so they neither deflate
    #: :attr:`mean_detection_days` nor inflate :attr:`detection_fraction`.
    masked: int = 0
    exposure_days: float = 0.0
    sdc_events: float = 0.0
    detection_latencies: list[int] = field(default_factory=list)

    @property
    def detectable(self) -> int:
        """Faults that could ever be observed (arrivals minus masked)."""
        return self.faults - self.masked

    @property
    def detection_fraction(self) -> float:
        """Fraction of detectable faults detected within the horizon."""
        return self.detected / self.detectable if self.detectable else 1.0

    @property
    def mean_detection_days(self) -> float:
        """Mean days from fault arrival to detection (NaN if none)."""
        if not self.detection_latencies:
            return math.nan
        return sum(self.detection_latencies) / len(self.detection_latencies)


class FleetSimulator:
    """Monte-Carlo simulation of fault arrival and detection."""

    def __init__(self, config: FleetConfig | None = None,
                 seed: int = 0) -> None:
        self.config = config or FleetConfig()
        self.seed = seed

    def _fault_days(self, rng: random.Random) -> list[int]:
        """Days on which new permanent faults appear, over the fleet."""
        rate = self.config.fault_rate_per_machine_day * self.config.machines
        days = []
        for day in range(self.config.duration_days):
            # Poisson thinning: small per-day fleet rate.
            count = 0
            threshold = math.exp(-rate)
            product = rng.random()
            while product > threshold:
                count += 1
                product *= rng.random()
            days.extend([day] * count)
        return days

    def run(self, strategy: DetectionStrategy) -> FleetResult:
        """Simulate one fleet horizon under ``strategy``."""
        rng = random.Random(self.seed ^ 0xF1EE7)
        result = FleetResult(strategy=strategy.name)
        detectable_fraction = getattr(strategy, "detectable_fraction", 1.0)
        for fault_day in self._fault_days(rng):
            result.faults += 1
            if rng.random() > detectable_fraction:
                # Architecturally masked everywhere: produces no SDCs and
                # is never observable — excluded from exposure by nature.
                result.masked += 1
                continue
            detected_on = None
            for day in range(fault_day, self.config.duration_days):
                p = strategy.daily_detection_probability(day - fault_day)
                if rng.random() < p:
                    detected_on = day
                    break
            horizon = detected_on if detected_on is not None \
                else self.config.duration_days
            exposure = horizon - fault_day
            result.exposure_days += exposure
            result.sdc_events += exposure * self.config.sdc_per_faulty_day
            if detected_on is not None:
                result.detected += 1
                result.detection_latencies.append(detected_on - fault_day)
        return result

    def compare(self, strategies: list[DetectionStrategy]) -> list[FleetResult]:
        """Run every strategy against the same fault arrivals (same seed)."""
        return [self.run(strategy) for strategy in strategies]
