"""Tail-latency and coverage accounting for fleet traffic runs.

Turns one (possibly rep-merged) :class:`~repro.fleet.sim.TrafficResult`
into the numbers the paper's fleet argument is about — p50/p95/p99/p999
latency, utilisation, coverage fraction, and SDC exposure — and
publishes them into the shared ``repro.obs`` stats tree under
``fleet.<cell>``, where the CI ``stats-diff`` gate can watch them.

SDC exposure closes the loop between the two fleet timescales: the
measured coverage fraction parameterises the per-day hazard model
(:func:`repro.fleet.hazard.strategy_from_coverage`), and the expected
silent-corruption count of a standard fleet-year under that hazard is
reported per cell.  Full-coverage mode pays in ``p999``; opportunistic
mode pays here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fleet.hazard import FleetConfig, FleetSimulator, \
    strategy_from_coverage
from repro.fleet.sim import TrafficResult
from repro.obs import StatGroup

#: The standard fleet-year the per-cell SDC exposure is quoted for.
EXPOSURE_FLEET = FleetConfig(machines=10_000,
                             fault_rate_per_machine_day=5e-5,
                             sdc_per_faulty_day=3.0,
                             duration_days=365)


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


@dataclass(frozen=True)
class TrafficMetrics:
    """One cell's summary (latencies in milliseconds)."""

    label: str
    offered: int
    completed: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    p999_ms: float
    max_ms: float
    utilization: float
    #: Fraction of main-core work that was actually checked.
    coverage: float
    #: Main-core stall time as a fraction of service time (full mode).
    stall_fraction: float
    max_lag_ms: float
    #: Expected SDCs over :data:`EXPOSURE_FLEET` under the hazard
    #: derived from the measured coverage.
    sdc_events: float
    mean_detection_days: float


def sdc_exposure(coverage: float, seed: int = 0):
    """Run the hazard model under a measured-coverage strategy."""
    simulator = FleetSimulator(EXPOSURE_FLEET, seed=seed)
    return simulator.run(strategy_from_coverage(coverage))


def summarize(result: TrafficResult) -> TrafficMetrics:
    """Collapse one traffic result into its reportable metrics."""
    config = result.config
    ordered = sorted(result.latencies_s)
    n = len(ordered)
    mean_s = sum(result.latencies_s) / n if n else 0.0
    busy = sum(s.busy_s for s in result.server_stats)
    stall = sum(s.stall_s for s in result.server_stats)
    checked = sum(s.checked_work_s for s in result.server_stats)
    unchecked = sum(s.unchecked_work_s for s in result.server_stats)
    work = checked + unchecked
    coverage = checked / work if work else 1.0
    horizon = result.makespan_s * max(config.servers, 1)
    hazard = sdc_exposure(coverage, seed=config.seed)
    return TrafficMetrics(
        label=config.label,
        offered=result.offered,
        completed=result.completed,
        mean_ms=mean_s * 1e3,
        p50_ms=percentile(ordered, 0.50) * 1e3,
        p95_ms=percentile(ordered, 0.95) * 1e3,
        p99_ms=percentile(ordered, 0.99) * 1e3,
        p999_ms=percentile(ordered, 0.999) * 1e3,
        max_ms=(ordered[-1] if ordered else 0.0) * 1e3,
        utilization=busy / horizon if horizon else 0.0,
        coverage=coverage,
        stall_fraction=stall / busy if busy else 0.0,
        max_lag_ms=max((s.max_lag_s for s in result.server_stats),
                       default=0.0) * 1e3,
        sdc_events=hazard.sdc_events,
        mean_detection_days=hazard.mean_detection_days,
    )


def publish_fleet_stats(root: StatGroup,
                        metrics: list[TrafficMetrics],
                        elapsed_s: float | None = None) -> StatGroup:
    """Publish a matrix of cell metrics as ``fleet.<cell>.*``.

    Every leaf is a pure function of the configs, so two runs of the
    same matrix produce identical trees regardless of worker count —
    only ``fleet.runtime.*`` is host wall-clock (CI masks it).
    """
    fleet = root.group("fleet", "fleet traffic model")
    for cell in metrics:
        group = fleet.group(cell.label)
        group.count("offered", cell.offered, "requests offered")
        group.count("completed", cell.completed, "requests completed")
        latency = group.group("latency_ms")
        latency.scalar("mean", cell.mean_ms)
        latency.scalar("p50", cell.p50_ms)
        latency.scalar("p95", cell.p95_ms)
        latency.scalar("p99", cell.p99_ms)
        latency.scalar("p999", cell.p999_ms)
        latency.scalar("max", cell.max_ms)
        group.scalar("utilization", cell.utilization,
                     "mean per-server core utilisation")
        group.scalar("coverage", cell.coverage,
                     "checked fraction of main-core work")
        group.scalar("stall_fraction", cell.stall_fraction,
                     "stall time / service time")
        group.scalar("max_lag_ms", cell.max_lag_ms,
                     "worst checker lag observed")
        group.scalar("sdc_events", cell.sdc_events,
                     "expected fleet-year SDCs at measured coverage")
        group.scalar("mean_detection_days", cell.mean_detection_days)
    if elapsed_s is not None:
        fleet.group("runtime").scalar("elapsed_s", elapsed_s,
                                      "host wall time (not simulated)")
    return fleet
