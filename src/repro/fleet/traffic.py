"""Request generators for the datacenter traffic model.

Two load shapes, matching how datacenter services are actually driven:

* **open loop** — requests arrive in a Poisson stream at a configured
  offered load, regardless of how the fleet is coping (the "millions of
  independent users" regime where overload shows up as queueing, not as
  back-pressure);
* **closed loop** — a fixed population of clients, each issuing its next
  request one think time after the previous response (the internal-RPC
  regime, self-limiting under overload).

Keys follow a Zipf popularity law and service demands are bimodal,
both standard findings for datacenter key-value traffic; the bimodal
split is *derived from the existing workload profiles*
(:func:`service_model_for`), so ``--workload mcf`` produces
heavier-tailed service demands than ``--workload imagick``.

Every stochastic value a request carries (arrival gap, key, service
demand, dispatch coin, think time) is drawn from an RNG seeded by
``sha256(seed, request-id, site)`` — the same per-trial derivation the
fault-campaign engine uses — so a request's identity fully determines
its randomness.  Nothing is drawn from a shared stream during event
processing, which is what makes simulation results independent of
event-processing order and worker count.
"""

from __future__ import annotations

import bisect
import hashlib
import random
from dataclasses import dataclass

from repro.workloads.profiles import WorkloadProfile, get_profile


def stream_rng(seed: int, rid: int, site: str) -> random.Random:
    """The private RNG of one (request, site) pair.

    sha256 keeps the mapping identical across processes and Python
    versions (no ``PYTHONHASHSEED`` sensitivity), exactly like
    :func:`repro.faults.models.derive_trial_seed`.
    """
    blob = f"fleet:{seed}:{rid}:{site}".encode()
    return random.Random(int.from_bytes(
        hashlib.sha256(blob).digest()[:8], "big"))


def stable_key_hash(key: int) -> int:
    """A process-independent hash for key-affinity dispatch."""
    blob = f"fleetkey:{key}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


class ZipfKeys:
    """Zipf(alpha) popularity over ``n_keys`` keys (key 0 is hottest)."""

    def __init__(self, n_keys: int, alpha: float) -> None:
        if n_keys < 1:
            raise ValueError(f"n_keys must be >= 1, got {n_keys}")
        self.n_keys = n_keys
        self.alpha = alpha
        weights = [1.0 / (i + 1) ** alpha for i in range(n_keys)]
        total = sum(weights)
        self._cdf = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against float undershoot

    def key_for(self, u: float) -> int:
        """Map one uniform draw to a key index."""
        return bisect.bisect_left(self._cdf, u)


@dataclass(frozen=True)
class ServiceModel:
    """Per-request service demand distribution (seconds of main-core work).

    ``bimodal``: a light request of ``small_s`` with probability
    ``1 - heavy_fraction``, else a heavy request of ``heavy_s``.
    ``exponential``: memoryless with mean ``small_s`` — the M/M/1 shape
    the analytic sanity tests compare against.
    """

    kind: str = "bimodal"
    small_s: float = 0.8e-3
    heavy_s: float = 4e-3
    heavy_fraction: float = 0.05

    @property
    def mean_s(self) -> float:
        if self.kind == "exponential":
            return self.small_s
        return ((1.0 - self.heavy_fraction) * self.small_s
                + self.heavy_fraction * self.heavy_s)

    def sample(self, rng: random.Random) -> float:
        if self.kind == "exponential":
            return rng.expovariate(1.0 / self.small_s)
        if rng.random() < self.heavy_fraction:
            return self.heavy_s
        return self.small_s


def service_model_for(workload: str | WorkloadProfile,
                      mean_service_s: float = 1e-3) -> ServiceModel:
    """Derive a bimodal service model from a workload profile.

    The heavy-mode fraction rises with the profile's irregularity
    (pointer chasing, bulk copies, branch entropy) and the heavy/light
    ratio with its working set: memory-bound requests are the long ones.
    The light/heavy pair is then solved so the model's mean equals
    ``mean_service_s`` — load factors stay comparable across workloads.
    """
    profile = workload if isinstance(workload, WorkloadProfile) \
        else get_profile(workload)
    heavy_fraction = min(
        0.30, max(0.02, 0.04 + 0.4 * profile.pointer_chase
                  + 2.0 * profile.bulk + 0.2 * profile.branch_entropy))
    heavy_ratio = min(20.0, 4.0 + profile.working_set_kib / 2048.0)
    small = mean_service_s / (
        (1.0 - heavy_fraction) + heavy_fraction * heavy_ratio)
    return ServiceModel(kind="bimodal", small_s=small,
                        heavy_s=small * heavy_ratio,
                        heavy_fraction=heavy_fraction)


@dataclass(frozen=True)
class Request:
    """One unit of offered work."""

    rid: int
    arrival_s: float
    key: int
    service_s: float
    #: Issuing client index (closed loop) or -1 (open loop).
    client: int = -1


@dataclass(frozen=True)
class TrafficConfig:
    """Shape of the offered load."""

    kind: str = "open"                # "open" | "closed"
    #: Open loop: offered requests/second across the fleet.
    rate_rps: float = 1000.0
    #: Closed loop: client population and mean think time.
    clients: int = 64
    think_s: float = 10e-3
    n_keys: int = 1024
    zipf_alpha: float = 1.1
    service: ServiceModel = ServiceModel()
    duration_s: float = 1.0
    #: Piecewise-constant load multipliers over the duration (a diurnal
    #: curve): phase ``k`` of ``len(rate_curve)`` equal phases offers
    #: ``rate_rps * rate_curve[k]``.  ``None`` keeps the rate flat —
    #: bit-identical to the pre-curve generator.
    rate_curve: tuple[float, ...] | None = None


class OpenLoopGenerator:
    """Poisson arrivals at ``rate_rps`` until the duration elapses.

    Arrival gaps are exponential, each drawn from the owning request's
    private stream; the arrival *time* is the running sum in rid order,
    which is fixed by construction.
    """

    def __init__(self, config: TrafficConfig, seed: int) -> None:
        self.config = config
        self.seed = seed
        if config.rate_curve is not None and (
                not config.rate_curve
                or any(m <= 0.0 for m in config.rate_curve)):
            raise ValueError("rate_curve needs at least one positive "
                             f"multiplier, got {config.rate_curve!r}")

    def _rate_at(self, t: float) -> float:
        """Offered rate at sim time ``t`` (piecewise diurnal curve)."""
        curve = self.config.rate_curve
        if curve is None:
            return self.config.rate_rps
        phase = min(len(curve) - 1,
                    int(t / self.config.duration_s * len(curve)))
        return self.config.rate_rps * curve[phase]

    def initial_requests(self) -> list[Request]:
        zipf = ZipfKeys(self.config.n_keys, self.config.zipf_alpha)
        requests = []
        t = 0.0
        rid = 0
        while True:
            mean_gap = 1.0 / self._rate_at(t)
            t += stream_rng(self.seed, rid, "gap").expovariate(1.0 / mean_gap)
            if t >= self.config.duration_s:
                break
            requests.append(Request(
                rid=rid,
                arrival_s=t,
                key=zipf.key_for(stream_rng(self.seed, rid, "key").random()),
                service_s=self.config.service.sample(
                    stream_rng(self.seed, rid, "service")),
            ))
            rid += 1
        return requests

    def next_request(self, completed: Request,
                     finish_s: float) -> Request | None:
        del completed, finish_s
        return None  # open loop never reacts to completions


class ClosedLoopGenerator:
    """A fixed client population with exponential think times.

    Client ``c``'s ``k``-th request has rid ``k * clients + c`` — a
    stable identity independent of the order completions are processed
    in, so its key/service/think draws are too.
    """

    def __init__(self, config: TrafficConfig, seed: int) -> None:
        self.config = config
        self.seed = seed
        self._zipf = ZipfKeys(config.n_keys, config.zipf_alpha)
        self._next_seq = [1] * config.clients

    def _make(self, client: int, seq: int, arrival_s: float) -> Request:
        rid = seq * self.config.clients + client
        return Request(
            rid=rid,
            arrival_s=arrival_s,
            key=self._zipf.key_for(stream_rng(self.seed, rid,
                                              "key").random()),
            service_s=self.config.service.sample(
                stream_rng(self.seed, rid, "service")),
            client=client,
        )

    def initial_requests(self) -> list[Request]:
        # Every client starts with one think time, staggering the herd.
        requests = []
        for client in range(self.config.clients):
            arrival = stream_rng(self.seed, client, "think").expovariate(
                1.0 / self.config.think_s)
            if arrival < self.config.duration_s:
                requests.append(self._make(client, 0, arrival))
        return requests

    def next_request(self, completed: Request,
                     finish_s: float) -> Request | None:
        client = completed.client
        seq = self._next_seq[client]
        self._next_seq[client] = seq + 1
        rid = seq * self.config.clients + client
        think = stream_rng(self.seed, rid, "think").expovariate(
            1.0 / self.config.think_s)
        arrival = finish_s + think
        if arrival >= self.config.duration_s:
            return None
        return self._make(client, seq, arrival)


def make_generator(config: TrafficConfig, seed: int):
    """Build the generator for ``config.kind``."""
    if config.kind == "open":
        return OpenLoopGenerator(config, seed)
    if config.kind == "closed":
        return ClosedLoopGenerator(config, seed)
    raise ValueError(f"unknown traffic kind {config.kind!r}; "
                     "expected 'open' or 'closed'")


def poisson_rate_for_load(load: float, servers: int,
                          mean_service_s: float) -> float:
    """Offered arrival rate giving utilisation ``load`` per server."""
    if mean_service_s <= 0:
        raise ValueError("mean service time must be positive")
    return load * servers / mean_service_s
