"""Event-driven fleet simulator (arrivals, dispatch, service, checking).

One :class:`FleetTrafficSim` run plays a stream of requests from
:mod:`repro.fleet.traffic` through a dispatch policy
(:mod:`repro.fleet.dispatch`) onto a row of checking servers
(:mod:`repro.fleet.server`), using a single event heap holding arrivals
and departures.  Determinism contract:

* every stochastic value is a pure function of ``(seed, request id,
  site)`` (see :func:`repro.fleet.traffic.stream_rng`) — event
  *processing* never draws randomness, so results do not depend on heap
  implementation details;
* heap entries carry a scheduling sequence number, so equal-time events
  pop in the order they were scheduled;
* replications are pure functions of ``(config, rep)`` with sha256-mixed
  per-rep seeds and are merged in rep order — ``--jobs 4`` output is
  bit-identical to ``--jobs 1``.

**Epochs and runtime reconfiguration.**  With ``epoch_s > 0`` the run is
divided into fixed control epochs.  At each boundary the simulator
closes the window (per-window latencies, lag, coverage, energy proxy),
hands the observation to an optional closed-loop controller
(:mod:`repro.control`), and applies the returned action — mode
(``full``/``opportunistic``/``disabled``), checker pool spec, and DVFS
point all swap exactly at the boundary via
:meth:`~repro.fleet.server.Server.reconfigure`.  Controllers are built
from a plain-dict spec carried by the config, so a controlled cell
fans over worker processes like any other: the controller is a
deterministic function of the (deterministic) epoch observations, and
the epoch stream is bit-identical at any ``--jobs``.
"""

from __future__ import annotations

import hashlib
import heapq
from collections import deque
from dataclasses import asdict, dataclass, field, replace

from repro.fleet.dispatch import make_policy
from repro.fleet.server import Server, ServerConfig, ServerStats
from repro.fleet.traffic import (
    Request,
    ServiceModel,
    TrafficConfig,
    make_generator,
    poisson_rate_for_load,
    service_model_for,
)

_ARRIVAL, _DEPART = 0, 1


def rep_seed(seed: int, rep: int) -> int:
    """The independent seed of replication ``rep`` (sha256-mixed)."""
    blob = f"fleetrep:{seed}:{rep}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


@dataclass(frozen=True)
class FleetTrafficConfig:
    """One cell of the fleet matrix: (policy, mode, load) over a fleet.

    All fields are plain values, so a config round-trips through
    :meth:`to_json`/:meth:`from_json` for the process-pool fan-out.
    """

    servers: int = 8
    policy: str = "shortest"
    mode: str = "full"          # "full" | "opportunistic" | "disabled"
    checkers: str = "4xA510@2.0"
    lag_bound_s: float = 4e-3
    #: Offered per-server utilisation; the open-loop arrival rate is
    #: derived from it (closed loop instead uses clients/think_s).
    load: float = 0.7
    traffic_kind: str = "open"          # "open" | "closed"
    clients: int = 64
    think_s: float = 10e-3
    #: Workload profile the bimodal service split is derived from;
    #: "exponential" selects the memoryless M/M/1 shape instead.
    workload: str = "mcf"
    mean_service_s: float = 1e-3
    n_keys: int = 1024
    zipf_alpha: float = 1.1
    duration_s: float = 2.0
    seed: int = 7
    #: Control-epoch length; 0 disables the epoch machinery entirely
    #: (the run takes the exact pre-epoch fast path).
    epoch_s: float = 0.0
    #: Plain-dict controller spec (see :func:`repro.control.
    #: make_controller`); ``None`` keeps the configured mode static.
    controller: dict | None = None
    #: Piecewise load multipliers over the duration (diurnal curve);
    #: ``None`` keeps the offered rate flat.
    load_curve: tuple[float, ...] | None = None

    @property
    def label(self) -> str:
        """The stats-tree cell name."""
        if self.controller is not None:
            kind = self.controller.get("kind", "ctl")
            return f"{self.policy}_{kind}_load{self.load:g}"
        return f"{self.policy}_{self.mode}_load{self.load:g}"

    def service_model(self) -> ServiceModel:
        if self.workload == "exponential":
            return ServiceModel(kind="exponential",
                                small_s=self.mean_service_s)
        return service_model_for(self.workload, self.mean_service_s)

    def traffic_config(self) -> TrafficConfig:
        service = self.service_model()
        return TrafficConfig(
            kind=self.traffic_kind,
            rate_rps=poisson_rate_for_load(self.load, self.servers,
                                           service.mean_s),
            clients=self.clients,
            think_s=self.think_s,
            n_keys=self.n_keys,
            zipf_alpha=self.zipf_alpha,
            service=service,
            duration_s=self.duration_s,
            rate_curve=self.load_curve,
        )

    def server_config(self) -> ServerConfig:
        return ServerConfig(checkers=self.checkers, mode=self.mode,
                            lag_bound_s=self.lag_bound_s)

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, payload: dict) -> "FleetTrafficConfig":
        payload = dict(payload)
        curve = payload.get("load_curve")
        if curve is not None:
            payload["load_curve"] = tuple(curve)
        return cls(**payload)


@dataclass
class TrafficResult:
    """Everything one (or several merged) simulation runs produced."""

    config: FleetTrafficConfig
    #: Sojourn times in completion order (then rep order when merged).
    latencies_s: list[float] = field(default_factory=list)
    offered: int = 0
    completed: int = 0
    server_stats: list[ServerStats] = field(default_factory=list)
    #: Wall of the simulated horizon (max of duration and last finish).
    makespan_s: float = 0.0
    reps: int = 1
    #: Per-epoch records (plain dicts) in epoch order, then rep order
    #: when merged; empty when the epoch machinery is off.
    epochs: list[dict] = field(default_factory=list)
    #: Simulated seconds spent in each checking mode (all servers share
    #: one mode; summed across merged reps).
    mode_residency_s: dict = field(default_factory=dict)
    #: Controller mode/pool switches actually applied.
    switches: int = 0

    def merge(self, other: "TrafficResult") -> None:
        """Fold another replication in (call in rep order)."""
        self.latencies_s.extend(other.latencies_s)
        self.offered += other.offered
        self.completed += other.completed
        self.makespan_s += other.makespan_s  # summed: utilisation divides
        self.reps += other.reps
        self.epochs.extend(other.epochs)
        for mode, seconds in other.mode_residency_s.items():
            self.mode_residency_s[mode] = \
                self.mode_residency_s.get(mode, 0.0) + seconds
        self.switches += other.switches
        for mine, theirs in zip(self.server_stats, other.server_stats):
            mine.completions += theirs.completions
            mine.busy_s += theirs.busy_s
            mine.stall_s += theirs.stall_s
            mine.checked_work_s += theirs.checked_work_s
            mine.unchecked_work_s += theirs.unchecked_work_s
            mine.max_in_system = max(mine.max_in_system,
                                     theirs.max_in_system)
            mine.max_lag_s = max(mine.max_lag_s, theirs.max_lag_s)


class _EpochWindow:
    """Accumulates one control epoch's deltas between boundaries."""

    __slots__ = ("latencies_s", "offered", "completed",
                 "busy_s", "stall_s", "checked_s", "unchecked_s")

    def __init__(self) -> None:
        self.latencies_s: list[float] = []
        self.offered = 0
        self.completed = 0
        self.busy_s = 0.0
        self.stall_s = 0.0
        self.checked_s = 0.0
        self.unchecked_s = 0.0


def _window_percentile(ordered: list[float], q: float) -> float:
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1,
                      int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


class FleetTrafficSim:
    """One event-driven run of one fleet configuration."""

    def __init__(self, config: FleetTrafficConfig,
                 seed: int | None = None, policy=None,
                 controller=None) -> None:
        self.config = config
        self.seed = config.seed if seed is None else seed
        #: Injectable for tests (e.g. a recording wrapper).
        self.policy = policy or make_policy(config.policy, self.seed)
        if config.controller is not None and config.epoch_s <= 0.0:
            raise ValueError("a controller needs epoch_s > 0 "
                             "(epoch boundaries are where it acts)")
        #: Injectable for tests; otherwise built from the config spec.
        self.controller = controller
        if self.controller is None and config.controller is not None:
            from repro.control import make_controller

            self.controller = make_controller(config.controller)

    def run(self) -> TrafficResult:
        config = self.config
        server_config = config.server_config()
        servers = [Server(i, server_config) for i in range(config.servers)]
        generator = make_generator(config.traffic_config(), self.seed)
        occupancy = [0] * config.servers

        events: list = []
        seq = 0
        for request in generator.initial_requests():
            heapq.heappush(events,
                           (request.arrival_s, seq, _ARRIVAL, request, -1))
            seq += 1

        #: Per-server FIFO of requests waiting for the core.
        waiting: list[deque] = [deque() for _ in range(config.servers)]
        #: When each server's core frees up (running request finish).
        running: list[Request | None] = [None] * config.servers
        central: deque = deque()  # JBSQ overflow
        result = TrafficResult(config=config,
                               server_stats=[s.stats for s in servers])
        last_finish = 0.0

        # -- epoch machinery (inactive unless epoch_s > 0) ------------------
        epoch_s = config.epoch_s
        epochs_on = epoch_s > 0.0
        window = _EpochWindow() if epochs_on else None
        epoch_index = 0
        next_epoch_t = epoch_s if epochs_on else float("inf")
        current = server_config
        mode_since = 0.0

        def snapshot_work() -> tuple[float, float, float, float]:
            return (sum(s.stats.busy_s for s in servers),
                    sum(s.stats.stall_s for s in servers),
                    sum(s.stats.checked_work_s for s in servers),
                    sum(s.stats.unchecked_work_s for s in servers))

        def close_epoch(boundary: float) -> None:
            """Close the window ending at ``boundary``; apply control."""
            nonlocal epoch_index, current, mode_since, window
            epoch_index += 1
            busy, stall, checked, unchecked = snapshot_work()
            window.busy_s = busy - window.busy_s
            window.stall_s = stall - window.stall_s
            window.checked_s = checked - window.checked_s
            window.unchecked_s = unchecked - window.unchecked_s
            lags = [s.lag_at(boundary) for s in servers]
            ordered = sorted(window.latencies_s)
            work = window.checked_s + window.unchecked_s
            record = {
                "epoch": epoch_index,
                "t_s": round(boundary, 9),
                "mode": current.mode,
                "checkers": current.checkers,
                "offered": window.offered,
                "completed": window.completed,
                "p50_ms": _window_percentile(ordered, 0.50) * 1e3,
                "p99_ms": _window_percentile(ordered, 0.99) * 1e3,
                "utilization": (window.busy_s
                                / (epoch_s * config.servers)),
                "stall_fraction": (window.stall_s / window.busy_s
                                   if window.busy_s else 0.0),
                "coverage": window.checked_s / work if work else 1.0,
                "busy_s": round(window.busy_s, 9),
                "checked_s": round(window.checked_s, 9),
                "lag_max_frac": (max(lags) / config.lag_bound_s
                                 if lags else 0.0),
                "switched": False,
            }
            if self.controller is not None:
                from repro.control import EpochObservation

                action = self.controller.on_epoch(EpochObservation(
                    epoch=epoch_index,
                    t_s=boundary,
                    epoch_len_s=epoch_s,
                    servers=config.servers,
                    offered=window.offered,
                    completed=window.completed,
                    p50_ms=record["p50_ms"],
                    p99_ms=record["p99_ms"],
                    utilization=record["utilization"],
                    stall_fraction=record["stall_fraction"],
                    coverage=record["coverage"],
                    lag_max_frac=record["lag_max_frac"],
                    busy_s=window.busy_s,
                    checked_work_s=window.checked_s,
                    mode=current.mode,
                    checkers=current.checkers,
                ))
                if action is not None and action.info:
                    record["policy"] = dict(action.info)
                if action is not None and (
                        action.mode != current.mode
                        or action.checkers != current.checkers):
                    result.mode_residency_s[current.mode] = \
                        result.mode_residency_s.get(current.mode, 0.0) \
                        + (boundary - mode_since)
                    mode_since = boundary
                    current = ServerConfig(
                        checkers=action.checkers, mode=action.mode,
                        lag_bound_s=config.lag_bound_s)
                    for server in servers:
                        server.reconfigure(boundary, current)
                    result.switches += 1
                    record["switched"] = True
                    record["next_mode"] = current.mode
                    record["next_checkers"] = current.checkers
            result.epochs.append(record)
            # Re-arm the window with the post-boundary cumulative work.
            fresh = _EpochWindow()
            fresh.busy_s, fresh.stall_s, fresh.checked_s, \
                fresh.unchecked_s = snapshot_work()
            window = fresh

        def assign(request: Request, index: int, t: float) -> None:
            servers[index].admit(t)
            occupancy[index] = servers[index].in_system
            if running[index] is None:
                begin(request, index, t)
            else:
                waiting[index].append(request)

        def begin(request: Request, index: int, t: float) -> None:
            nonlocal seq
            running[index] = request
            finish = servers[index].start(t, request.service_s)
            heapq.heappush(events, (finish, seq, _DEPART, request, index))
            seq += 1

        while events:
            t, _, kind, request, index = heapq.heappop(events)
            # Close every epoch boundary at or before this event, so
            # reconfigurations land exactly at k * epoch_s regardless of
            # event spacing.
            while epochs_on and t >= next_epoch_t \
                    and next_epoch_t <= config.duration_s:
                close_epoch(next_epoch_t)
                next_epoch_t = (epoch_index + 1) * epoch_s
            if kind == _ARRIVAL:
                result.offered += 1
                if window is not None:
                    window.offered += 1
                chosen = self.policy.choose(request, occupancy)
                if chosen is None:
                    central.append(request)
                else:
                    assign(request, chosen, t)
                continue
            # Departure from `index`.
            server = servers[index]
            server.depart(t)
            occupancy[index] = server.in_system
            result.completed += 1
            latency = t - request.arrival_s
            result.latencies_s.append(latency)
            if window is not None:
                window.completed += 1
                window.latencies_s.append(latency)
            last_finish = t
            follow_up = generator.next_request(request, t)
            if follow_up is not None:
                heapq.heappush(
                    events,
                    (follow_up.arrival_s, seq, _ARRIVAL, follow_up, -1))
                seq += 1
            running[index] = None
            if waiting[index]:
                begin(waiting[index].popleft(), index, t)
            # A slot freed either way; the central (JBSQ) queue drains
            # into it even when a waiting request took the core.
            if central and self.policy.admit_on_free(index, occupancy):
                assign(central.popleft(), index, t)

        result.makespan_s = max(config.duration_s, last_finish)
        if epochs_on:
            # Flush any boundaries the event stream never reached, then
            # account the final mode's residency over the whole horizon.
            while next_epoch_t <= config.duration_s:
                close_epoch(next_epoch_t)
                next_epoch_t = (epoch_index + 1) * epoch_s
            result.mode_residency_s[current.mode] = \
                result.mode_residency_s.get(current.mode, 0.0) \
                + (config.duration_s - mode_since)
        return result


def run_cell(config: FleetTrafficConfig, reps: int = 1,
             jobs: int = 1) -> TrafficResult:
    """Run ``reps`` replications of one cell, optionally over a pool.

    Replication ``r`` runs with :func:`rep_seed` ``(config.seed, r)``
    and results are merged in rep order — the merged result is a pure
    function of ``(config, reps)``, independent of ``jobs``.
    """
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    results: list[TrafficResult | None] = [None] * reps
    if jobs <= 1 or reps == 1:
        for rep in range(reps):
            results[rep] = FleetTrafficSim(
                config, seed=rep_seed(config.seed, rep)).run()
    else:
        from concurrent.futures import ProcessPoolExecutor

        from repro.harness.parallel import _fleet_rep_task

        payload = config.to_json()
        with ProcessPoolExecutor(max_workers=min(jobs, reps)) as pool:
            futures = {rep: pool.submit(_fleet_rep_task, payload, rep)
                       for rep in range(reps)}
            for rep in range(reps):
                results[rep] = _result_from_payload(config,
                                                   futures[rep].result())
    merged = results[0]
    for extra in results[1:]:
        merged.merge(extra)
    return merged


def run_replication(payload: dict, rep: int) -> dict:
    """Worker-side entry: one replication of one cell, as plain data."""
    config = FleetTrafficConfig.from_json(payload)
    result = FleetTrafficSim(config, seed=rep_seed(config.seed, rep)).run()
    return _result_to_payload(result)


def _result_to_payload(result: TrafficResult) -> dict:
    return {
        "latencies_s": result.latencies_s,
        "offered": result.offered,
        "completed": result.completed,
        "makespan_s": result.makespan_s,
        "reps": result.reps,
        "server_stats": [asdict(s) for s in result.server_stats],
        "epochs": result.epochs,
        "mode_residency_s": result.mode_residency_s,
        "switches": result.switches,
    }


def _result_from_payload(config: FleetTrafficConfig,
                         payload: dict) -> TrafficResult:
    return TrafficResult(
        config=config,
        latencies_s=payload["latencies_s"],
        offered=payload["offered"],
        completed=payload["completed"],
        makespan_s=payload["makespan_s"],
        reps=payload["reps"],
        server_stats=[ServerStats(**s) for s in payload["server_stats"]],
        epochs=payload.get("epochs", []),
        mode_residency_s=payload.get("mode_residency_s", {}),
        switches=payload.get("switches", 0),
    )


def matrix(policies: list[str], modes: list[str], loads: list[float],
           base: FleetTrafficConfig | None = None,
           ) -> list[FleetTrafficConfig]:
    """The (policy, mode, load) cell grid for one sweep."""
    base = base or FleetTrafficConfig()
    return [replace(base, policy=policy, mode=mode, load=load)
            for policy in policies
            for mode in modes
            for load in loads]
