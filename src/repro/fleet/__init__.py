"""Fleet-scale modelling: traffic, dispatch, checking, and hazards.

Two timescales, one package:

* :mod:`repro.fleet.hazard` — the section III-A Monte Carlo over
  months: fault arrival, per-day detection hazards, SDC exposure.
  ``from repro.fleet import FleetSimulator`` keeps meaning this.
* :mod:`repro.fleet.sim` (+ :mod:`~repro.fleet.traffic`,
  :mod:`~repro.fleet.dispatch`, :mod:`~repro.fleet.server`,
  :mod:`~repro.fleet.metrics`) — an event-driven datacenter traffic
  model over milliseconds: open/closed-loop generators with Zipf key
  popularity, pluggable dispatch policies, and per-server ParaVerser
  checking whose lag either stalls the main core (full coverage) or
  drops coverage (opportunistic).  Its measured coverage parameterises
  the hazard model via :func:`strategy_from_coverage`, replacing the
  assumed-constant detection inputs.
"""

from repro.fleet.dispatch import (
    DispatchPolicy,
    JBSQPolicy,
    KeyAffinityPolicy,
    POLICY_NAMES,
    RandomPolicy,
    RoundRobinPolicy,
    ShortestQueuePolicy,
    make_policy,
)
from repro.fleet.hazard import (
    DetectionStrategy,
    FleetConfig,
    FleetResult,
    FleetSimulator,
    LockstepStrategy,
    ParaVerserStrategy,
    ScannerStrategy,
    registry_strategies,
    strategy_from_coverage,
)
from repro.fleet.metrics import (
    TrafficMetrics,
    publish_fleet_stats,
    summarize,
)
from repro.fleet.server import Server, ServerConfig, checker_relative_rate
from repro.fleet.sim import (
    FleetTrafficConfig,
    FleetTrafficSim,
    TrafficResult,
    matrix,
    run_cell,
)
from repro.fleet.traffic import (
    Request,
    ServiceModel,
    TrafficConfig,
    ZipfKeys,
    service_model_for,
)

__all__ = [
    "DetectionStrategy",
    "DispatchPolicy",
    "FleetConfig",
    "FleetResult",
    "FleetSimulator",
    "FleetTrafficConfig",
    "FleetTrafficSim",
    "JBSQPolicy",
    "KeyAffinityPolicy",
    "LockstepStrategy",
    "POLICY_NAMES",
    "ParaVerserStrategy",
    "RandomPolicy",
    "Request",
    "RoundRobinPolicy",
    "ScannerStrategy",
    "Server",
    "ServerConfig",
    "ServiceModel",
    "ShortestQueuePolicy",
    "TrafficConfig",
    "TrafficMetrics",
    "TrafficResult",
    "ZipfKeys",
    "checker_relative_rate",
    "make_policy",
    "matrix",
    "publish_fleet_stats",
    "registry_strategies",
    "run_cell",
    "service_model_for",
    "strategy_from_coverage",
    "summarize",
]
