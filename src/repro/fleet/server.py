"""Per-server queue plus the ParaVerser checking model.

Each fleet server is one ParaVerser node: a big main core running
requests FIFO, shadowed by a checker pool replaying its segments.  The
checker pool's relative throughput comes from the ``repro.cpu`` core
presets (:func:`checker_relative_rate`), so ``2xA510@2.0`` genuinely
cannot keep up with an X2 at 3 GHz while ``1xX2@3.0`` can.

Checking work is tracked as a *lag*: seconds of committed main-core work
the checkers have not yet replayed.  The load-store-log capacity bounds
how far the main core may run ahead (``lag_bound_s``); what happens at
the bound is the mode split the paper's section III argues about:

* **full** coverage — the main core stalls until the checkers drain back
  to the bound.  Every request is checked; the cost lands in the tail of
  the latency distribution.
* **opportunistic** coverage — a request arriving at a saturated lag is
  executed *unchecked* (its work never enters the lag).  Latency is
  clean; the cost is coverage, i.e. SDC exposure.

The lag drains whether the main core is busy or idle — checkers are
independent cores — and every state change happens at event times the
simulator controls, so the model is exact, not time-stepped.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.cpu.presets import CORE_CLASSES

_CHECKER_SPEC = re.compile(r"^(\d+)x([A-Za-z0-9]+)@([\d.]+)$")

#: In-order cores sustain a lower fraction of their issue width than the
#: big out-of-order core; 0.6 calibrates a single 2 GHz A510 to roughly
#: the keep-up behaviour the paper reports for memory-bound codes.
IN_ORDER_EFFICIENCY = 0.6

#: The main core every fleet server runs (Table I): X2 at 3 GHz.
MAIN_THROUGHPUT = CORE_CLASSES["X2"].width * 3.0


def checker_relative_rate(spec: str) -> float:
    """Checker-pool replay throughput relative to the main core.

    ``spec`` is the CLI checker syntax (``"2xA510@2.0"``, comma-joined
    groups allowed).  Per class, throughput scales with issue width and
    frequency, derated by :data:`IN_ORDER_EFFICIENCY` for in-order
    cores — the same presets the cycle-level model uses, collapsed to
    one number for the fleet timescale.
    """
    from repro.cpu.config import CoreKind

    if spec.strip().lower() == "none":
        # Checking disabled (e.g. peak-load hours in the role
        # scheduler): the pool replays nothing, only valid with
        # opportunistic mode where every request runs unchecked.
        return 0.0
    total = 0.0
    for part in spec.split(","):
        match = _CHECKER_SPEC.match(part.strip())
        if not match:
            raise ValueError(
                f"bad checker spec {part!r}; expected e.g. 2xA510@2.0")
        count, name, freq = match.groups()
        config = CORE_CLASSES.get(name)
        if config is None:
            raise ValueError(
                f"unknown core class {name!r}; known: "
                f"{sorted(CORE_CLASSES)}")
        efficiency = 1.0 if config.kind == CoreKind.OUT_OF_ORDER \
            else IN_ORDER_EFFICIENCY
        total += int(count) * config.width * float(freq) * efficiency
    if total <= 0.0:
        raise ValueError(f"empty checker specification {spec!r}")
    return total / MAIN_THROUGHPUT


#: The checking modes a server can run in (Fig. 1's spectrum).
MODES = ("full", "opportunistic", "disabled")


@dataclass(frozen=True)
class ServerConfig:
    """One server's checking arrangement."""

    #: Checker pool spec, e.g. ``"4xA510@2.0"`` (the paper's standard
    #: pool; its replay rate is 0.96 of the main core, so full coverage
    #: is stable below that load and pays tail stalls near it).
    checkers: str = "4xA510@2.0"
    #: ``"full"`` stalls at the lag bound; ``"opportunistic"`` drops
    #: coverage instead; ``"disabled"`` runs every request unchecked
    #: (checking scaled to zero at peak load, section I / Fig. 1).
    mode: str = "full"
    #: Seconds of main-core work the LSL lets the checkers lag behind.
    lag_bound_s: float = 4e-3

    def relative_rate(self) -> float:
        return checker_relative_rate(self.checkers)

    def validate_rate(self) -> float:
        """Replay rate, rejecting inconsistent (mode, pool) pairs."""
        if self.mode not in MODES:
            raise ValueError(f"unknown server mode {self.mode!r}; "
                             f"pick from {', '.join(MODES)}")
        rate = self.relative_rate()
        if self.mode == "full" and rate <= 0.0:
            raise ValueError(
                "full coverage needs a live checker pool; "
                f"got checkers={self.checkers!r}")
        return rate


@dataclass
class ServerStats:
    """Per-server accounting over one simulation."""

    completions: int = 0
    busy_s: float = 0.0
    stall_s: float = 0.0
    checked_work_s: float = 0.0
    unchecked_work_s: float = 0.0
    max_in_system: int = 0
    max_lag_s: float = 0.0


class Server:
    """FIFO server with lazy checker-lag integration.

    The simulator owns time; the server only ever moves its clocks
    forward.  ``in_system`` counts queued + running requests (what the
    dispatch policies see).
    """

    def __init__(self, index: int, config: ServerConfig) -> None:
        self.index = index
        self.config = config
        self.check_rate = config.validate_rate()
        self.in_system = 0
        self.stats = ServerStats()
        self._lag_s = 0.0
        self._lag_at = 0.0  # sim time the lag was last integrated at
        self._free_at = 0.0  # when the core finishes its current work

    def reconfigure(self, t: float, config: ServerConfig) -> None:
        """Swap mode/pool/DVFS point at an epoch boundary (time ``t``).

        The lag is integrated up to ``t`` under the *old* pool first, so
        a reconfiguration is exact: work committed before the switch
        drains at the old rate, work after at the new one.  Unreplayed
        lag survives the switch — the LSL's content does not vanish when
        the controller reshapes the pool (it keeps draining under the
        new rate, or sits inert if the new pool is ``"none"``).
        """
        rate = config.validate_rate()
        self._drain_to(t)
        self.config = config
        self.check_rate = rate

    def _drain_to(self, t: float) -> None:
        """Integrate checker progress up to sim time ``t``."""
        if t > self._lag_at:
            self._lag_s = max(
                0.0, self._lag_s - (t - self._lag_at) * self.check_rate)
            self._lag_at = t

    def lag_at(self, t: float) -> float:
        """Current checker lag (seconds of unreplayed work) at ``t``."""
        self._drain_to(t)
        return self._lag_s

    def admit(self, t: float) -> None:
        """A request was routed here (it may still queue)."""
        self.in_system += 1
        if self.in_system > self.stats.max_in_system:
            self.stats.max_in_system = self.in_system

    def start(self, t: float, service_s: float) -> float:
        """Begin serving one request; returns its finish time.

        ``t`` is when the core gets to it (max of arrival and the
        previous finish — the simulator passes the later of the two).
        """
        self._drain_to(t)
        start = t
        checked = self.config.mode != "disabled"
        if checked and self._lag_s > self.config.lag_bound_s:
            if self.config.mode == "full":
                # Stall the main core until the checkers catch back up
                # to the bound; the lag drains at check_rate meanwhile.
                stall = (self._lag_s - self.config.lag_bound_s) \
                    / self.check_rate
                self.stats.stall_s += stall
                start += stall
                self._drain_to(start)
            else:
                # Opportunistic: run now, give up on checking this one.
                checked = False
        finish = start + service_s
        self._drain_to(finish)
        if checked:
            self._lag_s += service_s
            if self._lag_s > self.stats.max_lag_s:
                self.stats.max_lag_s = self._lag_s
            self.stats.checked_work_s += service_s
        else:
            self.stats.unchecked_work_s += service_s
        self.stats.busy_s += service_s
        self._free_at = finish
        return finish

    def depart(self, t: float) -> None:
        """A request finished and left."""
        del t
        self.in_system -= 1
        self.stats.completions += 1
