"""Instruction-set architecture for the ParaVerser reproduction.

This package defines a small, RISC-style register machine that stands in
for AArch64 in the paper's evaluation.  It deliberately includes every
instruction *class* ParaVerser's mechanisms care about:

* plain integer and floating-point arithmetic (including long-latency
  divide/sqrt, which drive the bwaves results in the paper),
* loads and stores of 1/2/4/8-byte values,
* multi-address accesses (gather/scatter) that produce multi-entry
  load-store-log records,
* atomic swaps (load *and* store data in one log entry),
* non-repeatable instructions (random numbers, timers, system registers,
  store-conditional results) whose values must be logged for replay,
* direct and indirect control flow.
"""

from repro.isa.instructions import (
    FUKind,
    Instruction,
    Opcode,
    OpSpec,
    OP_SPECS,
    spec_of,
)
from repro.isa.registers import (
    ARCH_CHECKPOINT_BYTES,
    NUM_FP_REGS,
    NUM_INT_REGS,
    RegisterCheckpoint,
    RegisterFile,
)
from repro.isa.program import Program
from repro.isa.assembler import AssemblyError, assemble

__all__ = [
    "ARCH_CHECKPOINT_BYTES",
    "AssemblyError",
    "FUKind",
    "Instruction",
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "OP_SPECS",
    "Opcode",
    "OpSpec",
    "Program",
    "RegisterCheckpoint",
    "RegisterFile",
    "assemble",
    "spec_of",
]
