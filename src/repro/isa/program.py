"""Program container: instruction list plus an initial memory image."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Instruction


@dataclass
class Program:
    """A runnable program.

    Attributes:
        name: Identifier (typically the workload name, e.g. ``"bwaves"``).
        instructions: The static instruction stream; the ``target`` field of
            branch instructions is an absolute index into this list.
        memory_image: Initial contents of memory, as a mapping from 8-byte
            aligned addresses to 64-bit values.
        entry: Index of the first instruction to execute.
        static_code_bytes: Estimated static code footprint, used by the
            instruction-cache model (each instruction is 4 bytes, as on Arm).
        metadata: Free-form annotations (workload profile name, thread id...).
    """

    name: str
    instructions: list[Instruction]
    memory_image: dict[int, int] = field(default_factory=dict)
    entry: int = 0
    metadata: dict = field(default_factory=dict)

    #: Bytes per encoded instruction (fixed-width, as on AArch64).
    INSTRUCTION_BYTES = 4

    #: Base virtual address of the code segment, used to derive instruction
    #: fetch addresses for the icache model.
    CODE_BASE = 0x100000

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def static_code_bytes(self) -> int:
        return len(self.instructions) * self.INSTRUCTION_BYTES

    def fetch_address(self, pc: int) -> int:
        """Virtual address of the instruction at index ``pc``."""
        return self.CODE_BASE + pc * self.INSTRUCTION_BYTES

    def validate(self) -> None:
        """Raise ``ValueError`` for out-of-range branch targets."""
        n = len(self.instructions)
        for i, instr in enumerate(self.instructions):
            if instr.spec.is_branch and instr.op.value != "jalr":
                if not 0 <= instr.target < n:
                    raise ValueError(
                        f"{self.name}: instruction {i} ({instr.op.value}) "
                        f"branches to {instr.target}, outside [0, {n})"
                    )
        if not 0 <= self.entry < n:
            raise ValueError(f"{self.name}: entry point {self.entry} out of range")
