"""Instruction definitions and static per-opcode metadata."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Opcode(enum.Enum):
    """Every opcode in the reproduction ISA."""

    # Integer arithmetic.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SLT = "slt"
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLLI = "slli"
    SRLI = "srli"
    LUI = "lui"
    MOV = "mov"
    # Floating point.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FSQRT = "fsqrt"
    FMIN = "fmin"
    FMAX = "fmax"
    FCVTIF = "fcvt.if"  # int register -> fp register
    FCVTFI = "fcvt.fi"  # fp register -> int register
    FMOV = "fmov"
    # Memory.
    LD = "ld"  # load, size in Instruction.size
    ST = "st"  # store, size in Instruction.size
    LDG = "ldg"  # gather: two loads from two base registers
    STS = "sts"  # scatter: two stores to two base registers
    SWP = "swp"  # atomic swap: load old value, store new value
    BCOPY = "bcopy"  # bulk copy (REP MOVS-like): imm words from [rs1] to [rs2]
    # Non-repeatable instructions (values must be logged for replay).
    RDRAND = "rdrand"
    RDTIME = "rdtime"
    SYSRD = "sysrd"
    SC = "sc"  # store-conditional: stores and writes a success flag
    # Control flow.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    JMP = "jmp"
    JALR = "jalr"  # indirect jump through register
    # Misc.
    NOP = "nop"
    HALT = "halt"


class FUKind(enum.Enum):
    """Functional-unit classes used by the timing models (Table I)."""

    BRANCH = "branch"
    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP = "fp"
    FP_DIV = "fp_div"
    LOAD = "load"
    STORE = "store"


@dataclass(frozen=True)
class OpSpec:
    """Static properties of an opcode."""

    fu: FUKind
    is_load: bool = False
    is_store: bool = False
    is_branch: bool = False
    is_fp: bool = False
    is_nonrepeatable: bool = False
    is_multi_address: bool = False
    reads_fp: bool = False
    writes_fp: bool = False


_INT = OpSpec(FUKind.INT_ALU)
_FP2 = OpSpec(FUKind.FP, is_fp=True, reads_fp=True, writes_fp=True)

OP_SPECS: dict[Opcode, OpSpec] = {
    Opcode.ADD: _INT,
    Opcode.SUB: _INT,
    Opcode.MUL: OpSpec(FUKind.INT_MUL),
    Opcode.DIV: OpSpec(FUKind.INT_DIV),
    Opcode.REM: OpSpec(FUKind.INT_DIV),
    Opcode.AND: _INT,
    Opcode.OR: _INT,
    Opcode.XOR: _INT,
    Opcode.SLL: _INT,
    Opcode.SRL: _INT,
    Opcode.SLT: _INT,
    Opcode.ADDI: _INT,
    Opcode.ANDI: _INT,
    Opcode.ORI: _INT,
    Opcode.XORI: _INT,
    Opcode.SLLI: _INT,
    Opcode.SRLI: _INT,
    Opcode.LUI: _INT,
    Opcode.MOV: _INT,
    Opcode.FADD: _FP2,
    Opcode.FSUB: _FP2,
    Opcode.FMUL: _FP2,
    Opcode.FDIV: OpSpec(FUKind.FP_DIV, is_fp=True, reads_fp=True, writes_fp=True),
    Opcode.FSQRT: OpSpec(FUKind.FP_DIV, is_fp=True, reads_fp=True, writes_fp=True),
    Opcode.FMIN: _FP2,
    Opcode.FMAX: _FP2,
    Opcode.FCVTIF: OpSpec(FUKind.FP, is_fp=True, writes_fp=True),
    Opcode.FCVTFI: OpSpec(FUKind.FP, is_fp=True, reads_fp=True),
    Opcode.FMOV: _FP2,
    Opcode.LD: OpSpec(FUKind.LOAD, is_load=True),
    Opcode.ST: OpSpec(FUKind.STORE, is_store=True),
    Opcode.LDG: OpSpec(FUKind.LOAD, is_load=True, is_multi_address=True),
    Opcode.STS: OpSpec(FUKind.STORE, is_store=True, is_multi_address=True),
    Opcode.SWP: OpSpec(FUKind.LOAD, is_load=True, is_store=True),
    Opcode.BCOPY: OpSpec(FUKind.LOAD, is_load=True, is_store=True,
                         is_multi_address=True),
    Opcode.RDRAND: OpSpec(FUKind.INT_ALU, is_nonrepeatable=True),
    Opcode.RDTIME: OpSpec(FUKind.INT_ALU, is_nonrepeatable=True),
    Opcode.SYSRD: OpSpec(FUKind.INT_ALU, is_nonrepeatable=True),
    Opcode.SC: OpSpec(FUKind.STORE, is_store=True, is_nonrepeatable=True),
    Opcode.BEQ: OpSpec(FUKind.BRANCH, is_branch=True),
    Opcode.BNE: OpSpec(FUKind.BRANCH, is_branch=True),
    Opcode.BLT: OpSpec(FUKind.BRANCH, is_branch=True),
    Opcode.BGE: OpSpec(FUKind.BRANCH, is_branch=True),
    Opcode.JMP: OpSpec(FUKind.BRANCH, is_branch=True),
    Opcode.JALR: OpSpec(FUKind.BRANCH, is_branch=True),
    Opcode.NOP: _INT,
    Opcode.HALT: _INT,
}


def spec_of(op: Opcode) -> OpSpec:
    """Return the static spec for ``op``."""
    return OP_SPECS[op]


@dataclass(slots=True)
class Instruction:
    """A single decoded instruction.

    Register operand meaning by opcode family:

    * arithmetic: ``rd = rs1 OP rs2`` (or ``imm`` when the opcode is an
      immediate form);
    * ``LD rd, [rs1 + imm]``; ``ST rs2, [rs1 + imm]``;
    * ``LDG rd, rd2, [rs1], [rs2]`` — two independent loads (gather);
    * ``STS rs3, [rs1], [rs2]`` — stores ``rs3`` to both addresses (scatter);
    * ``SWP rd, rs2, [rs1]`` — loads old value into ``rd``, stores ``rs2``;
    * ``SC rs2, [rs1] -> rd`` — store-conditional with success flag in ``rd``;
    * branches: ``Bcc rs1, rs2, target``; ``JALR rd, rs1``.
    """

    op: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    rs3: int = 0
    rd2: int = 0
    imm: int = 0
    target: int = 0
    size: int = 8
    label: str = ""

    @property
    def spec(self) -> OpSpec:
        return OP_SPECS[self.op]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op.value]
        parts.append(
            f"rd={self.rd} rs1={self.rs1} rs2={self.rs2} imm={self.imm} "
            f"target={self.target} size={self.size}"
        )
        return " ".join(parts)


# Sizes used by the load-store log (section IV-B of the paper).
LSL_ADDRESS_BYTES = 7
LSL_SIZE_FIELD_BYTES = 1
CACHE_LINE_BYTES = 64
