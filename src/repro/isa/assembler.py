"""A tiny two-pass assembler for the reproduction ISA.

The assembler exists so that examples and tests can express programs
readably.  Syntax, one instruction per line::

    # comment
    .data 0x1000 42          # initial memory word
    start:
        addi x1, x0, 10
    loop:
        ld x2, 0(x3)         # ld.4 / ld.2 / ld.1 select narrower sizes
        st x2, 8(x3)
        fadd f1, f2, f3
        swp x4, x2, (x3)
        ldg x5, x6, (x3), (x7)
        sts x2, (x3), (x7)
        sc x8, x2, (x3)
        rdrand x9
        beq x1, x0, done
        subi x1, x1, 1       # sugar for addi with negated immediate
        jmp loop
    done:
        halt
"""

from __future__ import annotations

import re

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program


class AssemblyError(ValueError):
    """Raised on malformed assembly input."""


_MEM_OPERAND = re.compile(r"^(-?\w*)\s*\(\s*(\w+)\s*\)$")


def _parse_reg(token: str, want_fp: bool | None = None) -> int:
    token = token.strip()
    match = re.fullmatch(r"([xf])(\d+)", token)
    if not match:
        raise AssemblyError(f"bad register {token!r}")
    kind, idx = match.group(1), int(match.group(2))
    if idx >= 32:
        raise AssemblyError(f"register index out of range: {token!r}")
    if want_fp is True and kind != "f":
        raise AssemblyError(f"expected fp register, got {token!r}")
    if want_fp is False and kind != "x":
        raise AssemblyError(f"expected int register, got {token!r}")
    return idx


def _parse_int(token: str) -> int:
    try:
        return int(token.strip(), 0)
    except ValueError as exc:
        raise AssemblyError(f"bad integer {token!r}") from exc


def _split_operands(rest: str) -> list[str]:
    # Split on commas that are not inside parentheses.
    out, depth, cur = [], 0, []
    for ch in rest:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        out.append(tail)
    return out


_THREE_REG_INT = {
    "add": Opcode.ADD, "sub": Opcode.SUB, "mul": Opcode.MUL, "div": Opcode.DIV,
    "rem": Opcode.REM, "and": Opcode.AND, "or": Opcode.OR, "xor": Opcode.XOR,
    "sll": Opcode.SLL, "srl": Opcode.SRL, "slt": Opcode.SLT,
}
_IMM_INT = {
    "addi": Opcode.ADDI, "andi": Opcode.ANDI, "ori": Opcode.ORI,
    "xori": Opcode.XORI, "slli": Opcode.SLLI, "srli": Opcode.SRLI,
}
_THREE_REG_FP = {
    "fadd": Opcode.FADD, "fsub": Opcode.FSUB, "fmul": Opcode.FMUL,
    "fdiv": Opcode.FDIV, "fmin": Opcode.FMIN, "fmax": Opcode.FMAX,
}
_BRANCHES = {
    "beq": Opcode.BEQ, "bne": Opcode.BNE, "blt": Opcode.BLT, "bge": Opcode.BGE,
}


def assemble(text: str, name: str = "program") -> Program:
    """Assemble ``text`` into a :class:`Program`."""
    labels: dict[str, int] = {}
    memory_image: dict[int, int] = {}
    # First pass: collect labels and raw instruction lines.
    lines: list[tuple[int, str]] = []
    pc = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".data"):
            parts = line.split()
            if len(parts) != 3:
                raise AssemblyError(f"line {lineno}: .data needs address and value")
            memory_image[_parse_int(parts[1])] = _parse_int(parts[2])
            continue
        while ":" in line:
            label, _, line = line.partition(":")
            label = label.strip()
            if not label.isidentifier():
                raise AssemblyError(f"line {lineno}: bad label {label!r}")
            if label in labels:
                raise AssemblyError(f"line {lineno}: duplicate label {label!r}")
            labels[label] = pc
            line = line.strip()
        if line:
            lines.append((lineno, line))
            pc += 1

    def resolve(token: str, lineno: int) -> int:
        token = token.strip()
        if token in labels:
            return labels[token]
        try:
            return int(token, 0)
        except ValueError:
            raise AssemblyError(f"line {lineno}: unknown label {token!r}") from None

    instructions: list[Instruction] = []
    for lineno, line in lines:
        mnemonic, _, rest = line.partition(" ")
        mnemonic = mnemonic.strip().lower()
        ops = _split_operands(rest) if rest.strip() else []
        size = 8
        if "." in mnemonic and mnemonic.split(".", 1)[0] in ("ld", "st"):
            mnemonic, suffix = mnemonic.split(".", 1)
            size = int(suffix)
            if size not in (1, 2, 4, 8):
                raise AssemblyError(f"line {lineno}: bad access size {size}")
        try:
            instructions.append(
                _assemble_one(mnemonic, ops, size, lineno, resolve)
            )
        except AssemblyError:
            raise
        except Exception as exc:  # pragma: no cover - defensive
            raise AssemblyError(f"line {lineno}: {exc}") from exc

    program = Program(
        name=name,
        instructions=instructions,
        memory_image=memory_image,
        entry=labels.get("start", 0),
    )
    program.validate()
    return program


def _parse_mem(token: str, lineno: int) -> tuple[int, int]:
    """Parse ``imm(reg)`` or ``(reg)`` into ``(imm, reg_idx)``."""
    match = _MEM_OPERAND.match(token.strip())
    if not match:
        raise AssemblyError(f"line {lineno}: bad memory operand {token!r}")
    imm_text = match.group(1)
    imm = int(imm_text, 0) if imm_text else 0
    return imm, _parse_reg(match.group(2), want_fp=False)


def _assemble_one(mnemonic, ops, size, lineno, resolve) -> Instruction:
    if mnemonic in _THREE_REG_INT:
        return Instruction(
            _THREE_REG_INT[mnemonic],
            rd=_parse_reg(ops[0], False), rs1=_parse_reg(ops[1], False),
            rs2=_parse_reg(ops[2], False),
        )
    if mnemonic in _IMM_INT:
        return Instruction(
            _IMM_INT[mnemonic],
            rd=_parse_reg(ops[0], False), rs1=_parse_reg(ops[1], False),
            imm=_parse_int(ops[2]),
        )
    if mnemonic == "subi":
        return Instruction(
            Opcode.ADDI, rd=_parse_reg(ops[0], False),
            rs1=_parse_reg(ops[1], False), imm=-_parse_int(ops[2]),
        )
    if mnemonic in _THREE_REG_FP:
        return Instruction(
            _THREE_REG_FP[mnemonic],
            rd=_parse_reg(ops[0], True), rs1=_parse_reg(ops[1], True),
            rs2=_parse_reg(ops[2], True),
        )
    if mnemonic == "fsqrt":
        return Instruction(
            Opcode.FSQRT, rd=_parse_reg(ops[0], True), rs1=_parse_reg(ops[1], True)
        )
    if mnemonic == "fmov":
        return Instruction(
            Opcode.FMOV, rd=_parse_reg(ops[0], True), rs1=_parse_reg(ops[1], True)
        )
    if mnemonic == "fcvt.if":
        return Instruction(
            Opcode.FCVTIF, rd=_parse_reg(ops[0], True), rs1=_parse_reg(ops[1], False)
        )
    if mnemonic == "fcvt.fi":
        return Instruction(
            Opcode.FCVTFI, rd=_parse_reg(ops[0], False), rs1=_parse_reg(ops[1], True)
        )
    if mnemonic == "lui":
        return Instruction(
            Opcode.LUI, rd=_parse_reg(ops[0], False), imm=_parse_int(ops[1])
        )
    if mnemonic == "mov":
        return Instruction(
            Opcode.MOV, rd=_parse_reg(ops[0], False), rs1=_parse_reg(ops[1], False)
        )
    if mnemonic == "ld":
        imm, base = _parse_mem(ops[1], lineno)
        return Instruction(
            Opcode.LD, rd=_parse_reg(ops[0], False), rs1=base, imm=imm, size=size
        )
    if mnemonic == "st":
        imm, base = _parse_mem(ops[1], lineno)
        return Instruction(
            Opcode.ST, rs2=_parse_reg(ops[0], False), rs1=base, imm=imm, size=size
        )
    if mnemonic == "ldg":
        _, base1 = _parse_mem(ops[2], lineno)
        _, base2 = _parse_mem(ops[3], lineno)
        return Instruction(
            Opcode.LDG, rd=_parse_reg(ops[0], False), rd2=_parse_reg(ops[1], False),
            rs1=base1, rs2=base2,
        )
    if mnemonic == "sts":
        _, base1 = _parse_mem(ops[1], lineno)
        _, base2 = _parse_mem(ops[2], lineno)
        return Instruction(
            Opcode.STS, rs3=_parse_reg(ops[0], False), rs1=base1, rs2=base2
        )
    if mnemonic == "bcopy":
        return Instruction(
            Opcode.BCOPY, rs1=_parse_reg(ops[0], False),
            rs2=_parse_reg(ops[1], False), imm=_parse_int(ops[2]),
        )
    if mnemonic == "swp":
        _, base = _parse_mem(ops[2], lineno)
        return Instruction(
            Opcode.SWP, rd=_parse_reg(ops[0], False),
            rs2=_parse_reg(ops[1], False), rs1=base,
        )
    if mnemonic == "sc":
        _, base = _parse_mem(ops[2], lineno)
        return Instruction(
            Opcode.SC, rd=_parse_reg(ops[0], False),
            rs2=_parse_reg(ops[1], False), rs1=base,
        )
    if mnemonic in ("rdrand", "rdtime", "sysrd"):
        op = {"rdrand": Opcode.RDRAND, "rdtime": Opcode.RDTIME,
              "sysrd": Opcode.SYSRD}[mnemonic]
        return Instruction(op, rd=_parse_reg(ops[0], False))
    if mnemonic in _BRANCHES:
        return Instruction(
            _BRANCHES[mnemonic],
            rs1=_parse_reg(ops[0], False), rs2=_parse_reg(ops[1], False),
            target=resolve(ops[2], lineno),
        )
    if mnemonic == "jmp":
        return Instruction(Opcode.JMP, target=resolve(ops[0], lineno))
    if mnemonic == "jalr":
        return Instruction(
            Opcode.JALR, rd=_parse_reg(ops[0], False), rs1=_parse_reg(ops[1], False)
        )
    if mnemonic == "nop":
        return Instruction(Opcode.NOP)
    if mnemonic == "halt":
        return Instruction(Opcode.HALT)
    raise AssemblyError(f"line {lineno}: unknown mnemonic {mnemonic!r}")
