"""Architectural register file and checkpoints.

The Register Checkpointing Unit (RCU, section IV-D of the paper) copies the
architectural register file at segment boundaries.  The paper budgets 776 B
per checkpoint; we mirror that constant for area/traffic accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

NUM_INT_REGS = 32
NUM_FP_REGS = 32

#: Bytes per architectural register checkpoint (paper section VII-E).
ARCH_CHECKPOINT_BYTES = 776

_MASK64 = (1 << 64) - 1


@dataclass(frozen=True, slots=True)
class RegisterCheckpoint:
    """An immutable snapshot of the architectural register state."""

    ints: tuple[int, ...]
    fps: tuple[float, ...]
    pc: int

    def diff(self, other: "RegisterCheckpoint") -> list[str]:
        """Return a human-readable list of mismatching fields."""
        mismatches: list[str] = []
        if self.pc != other.pc:
            mismatches.append(f"pc: {self.pc} != {other.pc}")
        for i, (a, b) in enumerate(zip(self.ints, other.ints)):
            if a != b:
                mismatches.append(f"x{i}: {a:#x} != {b:#x}")
        for i, (a, b) in enumerate(zip(self.fps, other.fps)):
            # NaNs never compare equal; treat bit-identical NaNs as matching.
            if a != b and not (a != a and b != b):
                mismatches.append(f"f{i}: {a!r} != {b!r}")
        return mismatches

    def matches(self, other: "RegisterCheckpoint") -> bool:
        # Wholesale tuple comparison is the common case (checkpoints agree).
        # Tuple equality short-circuits per element on identity, so a
        # replayed NaN that is the *same object* still passes here; any
        # False (including distinct-but-bit-identical NaNs) falls through
        # to the per-register diff, which applies the NaN rule.
        if (self.pc == other.pc and self.ints == other.ints
                and self.fps == other.fps):
            return True
        return not self.diff(other)


class RegisterFile:
    """Architectural register file: 32 integer + 32 floating-point registers.

    Integer register x0 is hard-wired to zero, like RISC-V, which gives the
    workload generator a convenient always-zero source.
    """

    __slots__ = ("ints", "fps")

    def __init__(self) -> None:
        self.ints: list[int] = [0] * NUM_INT_REGS
        self.fps: list[float] = [0.0] * NUM_FP_REGS

    def read_int(self, idx: int) -> int:
        return self.ints[idx]

    def write_int(self, idx: int, value: int) -> None:
        if idx != 0:
            self.ints[idx] = value & _MASK64

    def read_fp(self, idx: int) -> float:
        return self.fps[idx]

    def write_fp(self, idx: int, value: float) -> None:
        self.fps[idx] = float(value)

    def snapshot(self, pc: int) -> RegisterCheckpoint:
        """Copy the architectural state (what the RCU ships over the NoC)."""
        return RegisterCheckpoint(tuple(self.ints), tuple(self.fps), pc)

    def restore(self, checkpoint: RegisterCheckpoint) -> None:
        """Overwrite the register file from a checkpoint."""
        self.ints = list(checkpoint.ints)
        self.fps = list(checkpoint.fps)

    def copy(self) -> "RegisterFile":
        clone = RegisterFile()
        clone.ints = list(self.ints)
        clone.fps = list(self.fps)
        return clone
