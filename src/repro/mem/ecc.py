"""ECC and parity codecs.

ParaVerser's sphere of replication is the core (section V): caches and the
NoC payloads are protected by conventional ECC/parity instead.  The paper
also forwards per-entry parity from the cache into the load queue before
data reaches the LSPU (section IV-C) so that a load error is isolated to
exactly one side.  This module provides:

* a single parity bit (:func:`parity_bit` / :func:`check_parity`), used on
  load/store-queue entries, and
* a SEC-DED Hamming(72,64) codec (:func:`encode_secded` /
  :func:`decode_secded`), used for cache lines and DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

_DATA_BITS = 64
# Hamming positions 1..71 with parity bits at powers of two (1..64) plus an
# overall parity bit for double-error detection => SEC-DED (72, 64).
_PARITY_POSITIONS = [1 << i for i in range(7)]
_TOTAL_POSITIONS = _DATA_BITS + len(_PARITY_POSITIONS)  # 71 code positions


class EccError(Exception):
    """Raised when an uncorrectable (double-bit) error is detected."""


class ParityError(Exception):
    """Raised when a parity check fails."""


def parity_bit(value: int) -> int:
    """Even-parity bit over all bits of ``value``."""
    return bin(value).count("1") & 1


def check_parity(value: int, stored_parity: int) -> None:
    """Raise :class:`ParityError` when ``value`` mismatches its parity bit."""
    if parity_bit(value) != stored_parity:
        raise ParityError(f"parity mismatch on value {value:#x}")


def _data_positions() -> list[int]:
    return [p for p in range(1, _TOTAL_POSITIONS + 1) if p not in _PARITY_POSITIONS]


_DATA_POSITIONS = _data_positions()


@dataclass(frozen=True)
class EccWord:
    """A 64-bit word with its SEC-DED check bits.

    ``codeword`` holds the Hamming code positions 1..71 packed into an int
    (bit ``i`` of codeword = position ``i+1``); ``overall`` is the extra
    whole-word parity bit used to distinguish single from double errors.
    """

    codeword: int
    overall: int

    def flip(self, bit_position: int) -> "EccWord":
        """Return a copy with code position ``bit_position`` (1-based) flipped."""
        if not 1 <= bit_position <= _TOTAL_POSITIONS:
            raise ValueError(f"bit position {bit_position} out of range")
        return EccWord(self.codeword ^ (1 << (bit_position - 1)), self.overall)

    def flip_overall(self) -> "EccWord":
        return EccWord(self.codeword, self.overall ^ 1)


def encode_secded(value: int) -> EccWord:
    """Encode a 64-bit ``value`` into a SEC-DED codeword."""
    value &= (1 << _DATA_BITS) - 1
    codeword = 0
    for i, pos in enumerate(_DATA_POSITIONS):
        if (value >> i) & 1:
            codeword |= 1 << (pos - 1)
    for parity_pos in _PARITY_POSITIONS:
        parity = 0
        for pos in range(1, _TOTAL_POSITIONS + 1):
            if pos & parity_pos and (codeword >> (pos - 1)) & 1:
                parity ^= 1
        if parity:
            codeword |= 1 << (parity_pos - 1)
    return EccWord(codeword, parity_bit(codeword))


def decode_secded(word: EccWord) -> tuple[int, bool]:
    """Decode a codeword, correcting up to one flipped bit.

    Returns ``(value, corrected)``.  Raises :class:`EccError` on a detected
    double-bit error.
    """
    syndrome = 0
    for parity_pos in _PARITY_POSITIONS:
        parity = 0
        for pos in range(1, _TOTAL_POSITIONS + 1):
            if pos & parity_pos and (word.codeword >> (pos - 1)) & 1:
                parity ^= 1
        if parity:
            syndrome |= parity_pos
    overall_ok = parity_bit(word.codeword) == word.overall
    corrected = False
    codeword = word.codeword
    if syndrome:
        if overall_ok:
            # Non-zero syndrome but overall parity consistent: two flips.
            raise EccError(f"double-bit error (syndrome {syndrome:#x})")
        if syndrome > _TOTAL_POSITIONS:
            raise EccError(f"invalid syndrome {syndrome:#x}")
        codeword ^= 1 << (syndrome - 1)
        corrected = True
    elif not overall_ok:
        # Only the overall parity bit itself flipped.
        corrected = True
    value = 0
    for i, pos in enumerate(_DATA_POSITIONS):
        if (codeword >> (pos - 1)) & 1:
            value |= 1 << i
    return value, corrected
