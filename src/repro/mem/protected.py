"""ECC-protected memory (section V: outside the sphere of replication).

ParaVerser replicates *computation*; caches and DRAM are protected by
conventional SEC-DED ECC instead.  The paper's load path depends on it:
ECC/parity bits are forwarded with loaded data into the load queue and
checked before data reaches the LSPU, so a memory error is corrected (or
isolated) rather than silently logged — guaranteeing at least one of
main/checker sees the correct value (section IV-C).

:class:`EccMemory` wraps the flat functional memory with a per-word
SEC-DED codeword store, fault injection on the *storage* bits, and
correction/detection statistics.  :class:`EccMemoryPort` adapts it to the
executor's MemoryPort protocol, scrubbing on every load.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.mem.ecc import EccError, EccWord, decode_secded, encode_secded


@dataclass
class EccStats:
    """Correction/detection accounting."""

    loads: int = 0
    corrected: int = 0
    uncorrectable: int = 0


class EccMemory:
    """Word-granular memory where every stored word carries SEC-DED bits.

    Words never written through this interface decode as zero (like the
    underlying sparse memory).  ``flip_bit``/``flip_two_bits`` model
    storage-cell upsets; loads transparently correct single-bit errors and
    raise :class:`~repro.mem.ecc.EccError` on double-bit ones.
    """

    def __init__(self, image: dict[int, int] | None = None) -> None:
        self._codewords: dict[int, EccWord] = {}
        self.stats = EccStats()
        if image:
            for addr, value in image.items():
                self.store_word(addr, value)

    def store_word(self, addr: int, value: int) -> None:
        if addr & 7:
            raise ValueError("EccMemory stores aligned 64-bit words")
        self._codewords[addr] = encode_secded(value)

    def load_word(self, addr: int) -> int:
        if addr & 7:
            raise ValueError("EccMemory loads aligned 64-bit words")
        self.stats.loads += 1
        word = self._codewords.get(addr)
        if word is None:
            return 0
        try:
            value, corrected = decode_secded(word)
        except EccError:
            self.stats.uncorrectable += 1
            raise
        if corrected:
            # Scrub: rewrite the corrected codeword.
            self.stats.corrected += 1
            self._codewords[addr] = encode_secded(value)
        return value

    def flip_bit(self, addr: int, position: int) -> None:
        """Upset one storage cell of the codeword at ``addr`` (1-based)."""
        word = self._codewords.get(addr)
        if word is None:
            word = encode_secded(0)
        self._codewords[addr] = word.flip(position)

    def flip_two_bits(self, addr: int, first: int, second: int) -> None:
        self.flip_bit(addr, first)
        self.flip_bit(addr, second)

    def scrub_all(self) -> int:
        """Background scrubber: correct every single-bit error in place."""
        corrected = 0
        for addr in list(self._codewords):
            try:
                value, was_corrected = decode_secded(self._codewords[addr])
            except EccError:
                continue  # uncorrectable: left for the demand path to trap
            if was_corrected:
                self._codewords[addr] = encode_secded(value)
                corrected += 1
        return corrected


class EccMemoryPort:
    """MemoryPort over :class:`EccMemory` (sub-word via read-modify-write)."""

    __slots__ = ("ecc",)

    def __init__(self, ecc: EccMemory) -> None:
        self.ecc = ecc

    def _word_addr(self, addr: int) -> tuple[int, int]:
        return addr & ~7, (addr & 7) * 8

    def load(self, addr: int, size: int) -> int:
        base, shift = self._word_addr(addr)
        word = self.ecc.load_word(base)
        if size == 8 and shift == 0:
            return word
        if shift + size * 8 > 64:  # straddling: decode the next word too
            upper = self.ecc.load_word(base + 8)
            word |= upper << 64
        return (word >> shift) & ((1 << (size * 8)) - 1)

    def store(self, addr: int, size: int, value: int) -> None:
        value &= (1 << (size * 8)) - 1
        base, shift = self._word_addr(addr)
        if size == 8 and shift == 0:
            self.ecc.store_word(base, value)
            return
        span = shift + size * 8
        current = self.ecc.load_word(base)
        if span > 64:
            current |= self.ecc.load_word(base + 8) << 64
        mask = ((1 << (size * 8)) - 1) << shift
        combined = (current & ~mask) | (value << shift)
        self.ecc.store_word(base, combined & ((1 << 64) - 1))
        if span > 64:
            self.ecc.store_word(base + 8, combined >> 64)

    def swap(self, addr: int, size: int, value: int) -> int:
        old = self.load(addr, size)
        self.store(addr, size, value)
        return old

    def bulk_copy(self, src: int, dst: int, words: int) -> tuple[int, ...]:
        values = tuple(self.load(src + 8 * i, 8) for i in range(words))
        for i, value in enumerate(values):
            self.store(dst + 8 * i, 8, value)
        return values


def inject_random_upsets(ecc: EccMemory, count: int,
                         seed: int = 0) -> list[int]:
    """Flip ``count`` random storage bits across resident words."""
    rng = random.Random(seed)
    addresses = sorted(ecc._codewords)
    struck: list[int] = []
    if not addresses:
        return struck
    for _ in range(count):
        addr = rng.choice(addresses)
        ecc.flip_bit(addr, rng.randint(1, 71))
        struck.append(addr)
    return struck
