"""Memory substrate: functional memory, caches, ECC and DRAM models."""

from repro.mem.memory import Memory
from repro.mem.cache import Cache, CacheConfig
from repro.mem.hierarchy import AccessResult, HierarchyConfig, MemoryHierarchy
from repro.mem.dram import DramConfig, DramModel
from repro.mem.ecc import (
    EccError,
    EccWord,
    ParityError,
    check_parity,
    decode_secded,
    encode_secded,
    parity_bit,
)

__all__ = [
    "AccessResult",
    "Cache",
    "CacheConfig",
    "DramConfig",
    "DramModel",
    "EccError",
    "EccWord",
    "HierarchyConfig",
    "Memory",
    "MemoryHierarchy",
    "ParityError",
    "check_parity",
    "decode_secded",
    "encode_secded",
    "parity_bit",
]
