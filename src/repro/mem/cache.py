"""Set-associative cache model with LRU replacement.

Used trace-driven by the timing models: the cache tracks which lines are
resident and reports hits/misses; latency accounting lives in
:mod:`repro.mem.hierarchy`.  The same structure is repurposed by the
Load-Store Log Cache (:mod:`repro.core.lsl`), which linearly indexes the
data array instead of tag-matching it — exactly the paper's Fig. 3 trick.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    ways: int
    line_bytes: int = 64
    hit_latency: int = 1  # cycles, in the owning clock domain
    mshrs: int = 8

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.ways * self.line_bytes)
        if sets <= 0:
            raise ValueError(f"{self.name}: cache too small for geometry")
        return sets

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes


class Cache:
    """A set-associative LRU cache.

    Each set is an ordered list of tags (most recently used last).  The model
    tracks hit/miss/eviction statistics; it stores no data, because the
    functional layer owns correctness and the timing layer only needs
    residency.
    """

    __slots__ = ("config", "_sets", "_set_mask", "_line_shift", "_ways",
                 "hits", "misses", "evictions")

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        num_sets = config.num_sets
        if num_sets & (num_sets - 1):
            raise ValueError(f"{config.name}: set count {num_sets} not a power of two")
        self._sets: list[list[int]] = [[] for _ in range(num_sets)]
        self._set_mask = num_sets - 1
        self._line_shift = config.line_bytes.bit_length() - 1
        self._ways = config.ways
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _index(self, addr: int) -> tuple[int, int]:
        line = addr >> self._line_shift
        return line & self._set_mask, line

    def access(self, addr: int) -> bool:
        """Access ``addr``; return True on hit.  Misses allocate the line."""
        tag = addr >> self._line_shift
        ways = self._sets[tag & self._set_mask]
        if tag in ways:
            # MRU hit on the MRU line is an LRU no-op — skip the reorder.
            if ways[-1] != tag:
                ways.remove(tag)
                ways.append(tag)
            self.hits += 1
            return True
        self.misses += 1
        ways.append(tag)
        if len(ways) > self._ways:
            ways.pop(0)
            self.evictions += 1
        return False

    def probe(self, addr: int) -> bool:
        """Check residency without updating LRU state or statistics."""
        set_idx, tag = self._index(addr)
        return tag in self._sets[set_idx]

    def invalidate(self, addr: int) -> bool:
        """Drop the line holding ``addr`` if present; return whether it was."""
        set_idx, tag = self._index(addr)
        ways = self._sets[set_idx]
        if tag in ways:
            ways.remove(tag)
            return True
        return False

    def flush(self) -> None:
        """Invalidate every line (e.g. when a cache becomes an LSL$)."""
        for ways in self._sets:
            ways.clear()

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = 0

    def export_stats(self, group) -> None:
        """Publish hit/miss/eviction counters into an obs StatGroup."""
        group.count("hits", self.hits)
        group.count("misses", self.misses)
        group.count("evictions", self.evictions)
        group.scalar("miss_rate", self.miss_rate)
