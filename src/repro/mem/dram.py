"""DRAM timing model (DDR4-2400 8x8 channel, as in Table I).

A closed-form model: fixed device latency plus an M/M/1-style queueing
term that grows with channel utilisation.  This mirrors the paper's use of
an analytic queueing model for shared resources (section VI).

The model additionally tracks row-buffer locality as an *observation
point*: per-bank open rows, hit/miss/conflict counts.  These counters
feed the :mod:`repro.obs` statistics tree only — latency stays the
closed-form expression above, so registering the stats cannot perturb
simulated timing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import StatGroup


@dataclass(frozen=True)
class DramConfig:
    """Channel parameters."""

    base_latency_ns: float = 60.0
    #: DDR4-2400, 8 bytes wide -> 2400 MT/s * 8 B = 19.2 GB/s.
    peak_bandwidth_gbps: float = 19.2
    line_bytes: int = 64
    #: Row-buffer (DRAM page) size per bank and bank count — observation
    #: granularity for the row-locality statistics.
    row_bytes: int = 2048
    banks: int = 16


class DramModel:
    """Latency/bandwidth model for one memory channel."""

    def __init__(self, config: DramConfig | None = None) -> None:
        self.config = config or DramConfig()
        self.accesses = 0
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0
        #: Open row per bank (bank index -> row number).
        self._open_rows: dict[int, int] = {}

    def record_access(self, addr: int | None = None) -> None:
        self.accesses += 1
        if addr is None:
            return
        cfg = self.config
        row_addr = addr // cfg.row_bytes
        bank = row_addr % cfg.banks
        row = row_addr // cfg.banks
        open_row = self._open_rows.get(bank)
        if open_row == row:
            self.row_hits += 1
        else:
            self.row_misses += 1
            if open_row is not None:
                self.row_conflicts += 1
            self._open_rows[bank] = row

    def service_time_ns(self) -> float:
        """Time to transfer one line at peak bandwidth."""
        return self.config.line_bytes / self.config.peak_bandwidth_gbps

    def latency_ns(self, utilisation: float = 0.0) -> float:
        """Access latency at the given channel utilisation in [0, 1).

        M/M/1 waiting time: ``rho / (1 - rho)`` service times of queueing on
        top of the unloaded latency.  Utilisation is clamped below 1 so a
        saturated channel degrades smoothly instead of diverging.
        """
        rho = min(max(utilisation, 0.0), 0.95)
        queueing = (rho / (1.0 - rho)) * self.service_time_ns()
        return self.config.base_latency_ns + queueing

    def utilisation(self, elapsed_ns: float) -> float:
        """Fraction of peak bandwidth consumed by recorded accesses."""
        if elapsed_ns <= 0:
            return 0.0
        bytes_moved = self.accesses * self.config.line_bytes
        return min((bytes_moved / elapsed_ns) / self.config.peak_bandwidth_gbps, 1.0)

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.accesses = 0
        self.row_hits = self.row_misses = self.row_conflicts = 0
        self._open_rows.clear()

    def export_stats(self, group: StatGroup) -> StatGroup:
        """Publish a snapshot of the channel counters into ``group``."""
        group.count("accesses", self.accesses, "line fetches from DRAM")
        group.count("row_hits", self.row_hits,
                    "accesses hitting the open row buffer")
        group.count("row_misses", self.row_misses,
                    "accesses opening a new row")
        group.count("row_conflicts", self.row_conflicts,
                    "row misses that closed another open row")
        group.scalar("row_hit_rate", self.row_hit_rate)
        return group
