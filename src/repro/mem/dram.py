"""DRAM timing model (DDR4-2400 8x8 channel, as in Table I).

A closed-form model: fixed device latency plus an M/M/1-style queueing
term that grows with channel utilisation.  This mirrors the paper's use of
an analytic queueing model for shared resources (section VI).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramConfig:
    """Channel parameters."""

    base_latency_ns: float = 60.0
    #: DDR4-2400, 8 bytes wide -> 2400 MT/s * 8 B = 19.2 GB/s.
    peak_bandwidth_gbps: float = 19.2
    line_bytes: int = 64


class DramModel:
    """Latency/bandwidth model for one memory channel."""

    def __init__(self, config: DramConfig | None = None) -> None:
        self.config = config or DramConfig()
        self.accesses = 0

    def record_access(self) -> None:
        self.accesses += 1

    def service_time_ns(self) -> float:
        """Time to transfer one line at peak bandwidth."""
        return self.config.line_bytes / self.config.peak_bandwidth_gbps

    def latency_ns(self, utilisation: float = 0.0) -> float:
        """Access latency at the given channel utilisation in [0, 1).

        M/M/1 waiting time: ``rho / (1 - rho)`` service times of queueing on
        top of the unloaded latency.  Utilisation is clamped below 1 so a
        saturated channel degrades smoothly instead of diverging.
        """
        rho = min(max(utilisation, 0.0), 0.95)
        queueing = (rho / (1.0 - rho)) * self.service_time_ns()
        return self.config.base_latency_ns + queueing

    def utilisation(self, elapsed_ns: float) -> float:
        """Fraction of peak bandwidth consumed by recorded accesses."""
        if elapsed_ns <= 0:
            return 0.0
        bytes_moved = self.accesses * self.config.line_bytes
        return min((bytes_moved / elapsed_ns) / self.config.peak_bandwidth_gbps, 1.0)
