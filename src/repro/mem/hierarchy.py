"""Per-core cache hierarchy with a shared uncore (LLC + DRAM).

Latency bookkeeping is in nanoseconds so that cores in different clock
domains (DVFS, section VII-A) can share the uncore: L1/L2 latencies are
expressed in core cycles and converted by the owning core's frequency,
while the L3 runs in the 2 GHz uncore domain and DRAM in absolute time.

The uncore exposes ``extra_llc_latency_ns``: the paper backpropagates the
average added latency from LSL NoC traffic into the LLC access latency
(section VI), and :mod:`repro.noc` sets this knob the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mem.cache import Cache, CacheConfig
from repro.mem.dram import DramConfig, DramModel


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache geometry for one core plus the shared uncore."""

    l1i: CacheConfig
    l1d: CacheConfig
    l2: CacheConfig
    l3: CacheConfig
    dram: DramConfig = field(default_factory=DramConfig)
    uncore_clock_ghz: float = 2.0


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one memory access."""

    latency_ns: float
    level: str  # "l1", "l2", "l3", "dram"


class SharedUncore:
    """The L3 slice set and memory channel shared by all cores."""

    def __init__(self, l3_config: CacheConfig, dram_config: DramConfig,
                 clock_ghz: float = 2.0) -> None:
        self.l3 = Cache(l3_config)
        self.dram = DramModel(dram_config)
        self.clock_ghz = clock_ghz
        self._l3_hit_cycles = l3_config.hit_latency
        #: Added by the NoC model to every LLC access (paper section VI).
        self.extra_llc_latency_ns = 0.0
        #: Utilisation fed into the DRAM queueing model.
        self.dram_utilisation = 0.0
        self.llc_accesses = 0

    def l3_hit_latency_ns(self) -> float:
        return self.l3.config.hit_latency / self.clock_ghz

    def reset_stats(self) -> None:
        self.l3.reset_stats()
        self.llc_accesses = 0
        self.dram.reset_stats()

    def access_fast(self, addr: int) -> tuple[float, str]:
        """Hot-path LLC access: ``(latency_ns, level)`` without the
        AccessResult wrapper allocation."""
        self.llc_accesses += 1
        latency = self._l3_hit_cycles / self.clock_ghz \
            + self.extra_llc_latency_ns
        if self.l3.access(addr):
            return latency, "l3"
        self.dram.record_access(addr)
        latency += self.dram.latency_ns(self.dram_utilisation)
        return latency, "dram"

    def access(self, addr: int) -> AccessResult:
        """Access the LLC, falling through to DRAM on a miss."""
        latency, level = self.access_fast(addr)
        return AccessResult(latency, level)

    def export_stats(self, group) -> None:
        """Publish LLC and DRAM counters into an obs StatGroup."""
        group.count("llc_accesses", self.llc_accesses,
                    "requests reaching the shared LLC")
        group.scalar("extra_llc_latency_ns", self.extra_llc_latency_ns,
                     "NoC queueing backpropagated into LLC latency")
        self.l3.export_stats(group.group("l3"))
        self.dram.export_stats(group.group("dram"))


class MemoryHierarchy:
    """One core's private L1I/L1D/L2 in front of a shared uncore."""

    def __init__(self, config: HierarchyConfig,
                 uncore: SharedUncore | None = None) -> None:
        self.config = config
        self.l1i = Cache(config.l1i)
        self.l1d = Cache(config.l1d)
        self.l2 = Cache(config.l2)
        self._l1i_hit_cycles = config.l1i.hit_latency
        self._l1d_hit_cycles = config.l1d.hit_latency
        self._l2_hit_cycles = config.l2.hit_latency
        self.uncore = uncore or SharedUncore(
            config.l3, config.dram, config.uncore_clock_ghz
        )
        self.level_counts = {"l1": 0, "l2": 0, "l3": 0, "dram": 0}

    def _cycles_ns(self, cycles: int, core_freq_ghz: float) -> float:
        return cycles / core_freq_ghz

    def data_access_fast(self, addr: int,
                         core_freq_ghz: float) -> tuple[float, str]:
        """Hot-path load/store walk: ``(latency_ns, level)`` tuples
        instead of AccessResult allocations.  Latency accumulation keeps
        the per-level division structure of the object path, so results
        are bit-identical."""
        counts = self.level_counts
        latency = self._l1d_hit_cycles / core_freq_ghz
        if self.l1d.access(addr):
            counts["l1"] += 1
            return latency, "l1"
        latency += self._l2_hit_cycles / core_freq_ghz
        if self.l2.access(addr):
            counts["l2"] += 1
            return latency, "l2"
        uncore_latency, level = self.uncore.access_fast(addr)
        counts[level] += 1
        return latency + uncore_latency, level

    def fetch_access_fast(self, addr: int,
                          core_freq_ghz: float) -> tuple[float, str]:
        """Hot-path instruction-fetch walk (see ``data_access_fast``)."""
        counts = self.level_counts
        latency = self._l1i_hit_cycles / core_freq_ghz
        if self.l1i.access(addr):
            counts["l1"] += 1
            return latency, "l1"
        latency += self._l2_hit_cycles / core_freq_ghz
        if self.l2.access(addr):
            counts["l2"] += 1
            return latency, "l2"
        uncore_latency, level = self.uncore.access_fast(addr)
        counts[level] += 1
        return latency + uncore_latency, level

    def data_access(self, addr: int, core_freq_ghz: float,
                    is_write: bool = False) -> AccessResult:
        """A load or store (write-allocate) from this core's pipeline."""
        del is_write  # write-allocate: identical residency behaviour
        latency, level = self.data_access_fast(addr, core_freq_ghz)
        return AccessResult(latency, level)

    def fetch_access(self, addr: int, core_freq_ghz: float) -> AccessResult:
        """An instruction fetch."""
        latency, level = self.fetch_access_fast(addr, core_freq_ghz)
        return AccessResult(latency, level)

    def reset_stats(self) -> None:
        for cache in (self.l1i, self.l1d, self.l2):
            cache.reset_stats()
        self.level_counts = {k: 0 for k in self.level_counts}

    def export_stats(self, group) -> None:
        """Publish per-level cache counters into an obs StatGroup."""
        for name, cache in (("l1i", self.l1i), ("l1d", self.l1d),
                            ("l2", self.l2)):
            cache.export_stats(group.group(name))
        hits = group.group("data_hits_by_level")
        for level, count in self.level_counts.items():
            hits.count(level, count)
