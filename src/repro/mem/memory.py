"""Flat functional memory.

Backing store for the functional executor: a sparse, word-granular map from
8-byte-aligned addresses to 64-bit values.  Sub-word and straddling accesses
are supported because the load-store log stores ISA-level accesses of any
size (section IV-B).
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1


class Memory:
    """Sparse byte-addressable memory with 64-bit word backing."""

    __slots__ = ("_words",)

    def __init__(self, image: dict[int, int] | None = None) -> None:
        if not image:
            self._words: dict[int, int] = {}
        elif all(addr & 7 == 0 for addr in image):
            # Aligned images (the generator always emits these) settle in
            # one dict comprehension instead of a store() call per word.
            self._words = {addr: value & _MASK64
                           for addr, value in image.items()}
        else:
            self._words = {}
            for addr, value in image.items():
                self.store(addr, 8, value)

    def load(self, addr: int, size: int = 8) -> int:
        """Read ``size`` bytes starting at ``addr`` (little-endian)."""
        if size == 8 and addr & 7 == 0:
            return self._words.get(addr, 0)
        value = 0
        for i in range(size):
            byte_addr = addr + i
            word = self._words.get(byte_addr & ~7, 0)
            value |= ((word >> ((byte_addr & 7) * 8)) & 0xFF) << (i * 8)
        return value

    def store(self, addr: int, size: int, value: int) -> None:
        """Write the low ``size`` bytes of ``value`` at ``addr``."""
        if size == 8 and addr & 7 == 0:
            self._words[addr] = value & _MASK64
            return
        value &= (1 << (size * 8)) - 1
        for i in range(size):
            byte_addr = addr + i
            base = byte_addr & ~7
            shift = (byte_addr & 7) * 8
            word = self._words.get(base, 0)
            word = (word & ~(0xFF << shift)) | (((value >> (i * 8)) & 0xFF) << shift)
            self._words[base] = word & _MASK64

    def swap(self, addr: int, size: int, value: int) -> int:
        """Atomically exchange ``value`` with the current contents."""
        old = self.load(addr, size)
        self.store(addr, size, value)
        return old

    def load_range(self, addr: int, words: int) -> tuple[int, ...]:
        """Read ``words`` consecutive 8-byte words starting at ``addr``.

        Single ranged path for macro-ops (BCOPY): one dict lookup per word
        on the aligned fast path instead of a full ``load`` call each.
        """
        if addr & 7 == 0:
            get = self._words.get
            return tuple(get(addr + 8 * i, 0) for i in range(words))
        return tuple(self.load(addr + 8 * i, 8) for i in range(words))

    def store_range(self, addr: int, values: tuple[int, ...]) -> None:
        """Write consecutive 8-byte words starting at ``addr``."""
        if addr & 7 == 0:
            backing = self._words
            for i, value in enumerate(values):
                backing[addr + 8 * i] = value & _MASK64
            return
        for i, value in enumerate(values):
            self.store(addr + 8 * i, 8, value)

    def copy(self) -> "Memory":
        clone = Memory()
        clone._words = dict(self._words)
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Memory):
            return NotImplemented
        # Ignore zero words: absent and explicit zero are equivalent.
        mine = {a: v for a, v in self._words.items() if v}
        theirs = {a: v for a, v in other._words.items() if v}
        return mine == theirs

    def __len__(self) -> int:
        return len(self._words)
