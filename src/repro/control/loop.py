"""The closed loop: dwell hysteresis, energy roll-ups, control stats.

:class:`Controller` is the one object the fleet simulator talks to.  It
wraps any :class:`~repro.control.policy.Policy` with a *dwell*: once a
switch is applied, further switches are held for ``dwell_epochs``
epochs.  Policies already carry watermark hysteresis (no switch while
the signal sits inside the band); the dwell covers the remaining thrash
mode — a load that swings across *both* watermarks every epoch — by
bounding the switch rate outright.

The roll-up side turns a finished
:class:`~repro.fleet.sim.TrafficResult` into ``control.*`` and
``power.*`` stats: mode residency, switch counts and rate, energy
overhead of checking against the power-gated baseline, worst budget
overshoot, and a fleet-timescale ED2P figure (total energy times
squared tail latency — the same merit function the per-core DVFS sweep
minimises, lifted to the datacenter scale).
"""

from __future__ import annotations

from repro.control.policy import (
    ControlAction,
    EpochObservation,
    Policy,
    fleet_energy_nj,
)
from repro.fleet.metrics import TrafficMetrics, percentile
from repro.fleet.sim import TrafficResult
from repro.obs import StatGroup


class Controller:
    """A policy plus dwell-time hysteresis on applied switches."""

    def __init__(self, policy: Policy, dwell_epochs: int = 1) -> None:
        if dwell_epochs < 1:
            raise ValueError(
                f"dwell_epochs must be >= 1, got {dwell_epochs}")
        self.policy = policy
        self.dwell_epochs = dwell_epochs
        self._last_switch_epoch: int | None = None

    def on_epoch(self, obs: EpochObservation) -> ControlAction | None:
        action = self.policy.on_epoch(obs)
        if action is None:
            return None
        changed = (action.mode != obs.mode
                   or action.checkers != obs.checkers)
        if changed and self._last_switch_epoch is not None \
                and obs.epoch - self._last_switch_epoch \
                < self.dwell_epochs:
            # Inside the dwell window: hold the current operating point
            # (the policy's internal state still advances, so a demand
            # that persists through the dwell is acted on immediately
            # after it expires).
            info = dict(action.info or {})
            info["held"] = True
            return ControlAction(mode=obs.mode, checkers=obs.checkers,
                                 info=info)
        if changed:
            self._last_switch_epoch = obs.epoch
        return action


# ---------------------------------------------------------------------------
# Result roll-ups.
# ---------------------------------------------------------------------------

def result_energy_nj(result: TrafficResult) -> tuple[float, float]:
    """``(main_nj, checker_nj)`` over a whole (possibly merged) run.

    Epoch-resolved when the run recorded epochs (each window costed
    under the pool it actually ran — a mid-run DVFS change is priced
    correctly); otherwise the static pool covers the whole run.
    """
    if result.epochs:
        main = checker = 0.0
        for record in result.epochs:
            m, c = fleet_energy_nj(record["busy_s"], record["checked_s"],
                                   record["checkers"])
            main += m
            checker += c
        return main, checker
    busy = sum(s.busy_s for s in result.server_stats)
    checked = sum(s.checked_work_s for s in result.server_stats)
    return fleet_energy_nj(busy, checked, result.config.checkers)


def result_ed2p(result: TrafficResult) -> float:
    """Fleet-scale ED2P: total energy (J) times squared p99 (ms²).

    The per-core sweep minimises ``energy x delay²`` over one checked
    run; at the fleet timescale the delay that matters is the tail, so
    the figure of merit is joules burned times the square of the p99
    sojourn time.  Lower is better on both axes at once.
    """
    main_nj, checker_nj = result_energy_nj(result)
    ordered = sorted(result.latencies_s)
    p99_ms = percentile(ordered, 0.99) * 1e3
    return (main_nj + checker_nj) * 1e-9 * p99_ms ** 2


def budget_overshoot(result: TrafficResult) -> float:
    """Worst per-epoch excess of energy overhead above the budget.

    Zero when no epoch reported an overshoot (no budget policy ran, or
    the budget held throughout).
    """
    worst = 0.0
    for record in result.epochs:
        policy = record.get("policy") or {}
        worst = max(worst, float(policy.get("overshoot", 0.0)))
    return worst


def publish_control_stats(root: StatGroup, result: TrafficResult,
                          metrics: TrafficMetrics | None = None,
                          ) -> StatGroup:
    """Publish one controlled cell as ``control.<cell>.*``/``power.*``.

    Every leaf is a pure function of the result (no wall clock), so the
    CI golden gate can watch all of them.
    """
    label = result.config.label
    control = root.group("control", "adaptive control plane")
    cell = control.group(label)
    n_epochs = len(result.epochs)
    cell.count("epochs", n_epochs, "control epochs closed")
    cell.count("switches", result.switches,
               "operating-point switches applied")
    cell.scalar("switch_rate", result.switches / n_epochs
                if n_epochs else 0.0,
                "switches per epoch (thrash indicator)")
    residency = cell.group("residency", "simulated seconds per mode")
    total = sum(result.mode_residency_s.values())
    for mode in sorted(result.mode_residency_s):
        seconds = result.mode_residency_s[mode]
        residency.scalar(f"{mode}_s", seconds)
        residency.scalar(f"{mode}_frac", seconds / total if total
                         else 0.0)
    main_nj, checker_nj = result_energy_nj(result)
    power = root.group("power", "fleet-timescale energy accounting")
    pcell = power.group(label)
    pcell.scalar("main_j", main_nj * 1e-9, "main-core energy")
    pcell.scalar("checker_j", checker_nj * 1e-9,
                 "checker-pool energy (the overhead the paper bounds)")
    pcell.scalar("energy_overhead", checker_nj / main_nj
                 if main_nj else 0.0,
                 "checker / main energy fraction")
    pcell.scalar("budget_overshoot", budget_overshoot(result),
                 "worst epoch excess over the energy budget")
    pcell.scalar("ed2p_j_ms2", result_ed2p(result),
                 "energy x p99^2 (lower is better)")
    if metrics is not None:
        cell.scalar("coverage", metrics.coverage,
                    "checked fraction under control")
        cell.scalar("p99_ms", metrics.p99_ms)
    return control
