"""The diurnal bench: closed loop versus the static endpoints.

A datacenter's load is not flat — it breathes over the day.  This bench
drives the fleet with a diurnal load curve (trough at night, peak in
the evening) and compares three ways of running the checkers:

* **always full** — the static safety endpoint.  Coverage is total;
  the peak hours pay for it in p99 (checker stalls at saturation).
* **always opportunistic** — the static latency endpoint.  The tail is
  clean; coverage is whatever the lag bound leaves, all day.
* **controlled** — a closed-loop policy switching at epoch boundaries.

The paper's claim (section I / Fig. 1) is that the control plane makes
the trade a *schedule* instead of a choice: full coverage off-peak,
degraded coverage only while the peak lasts.  Won means the controlled
point dominates always-full on p99 *and* always-opportunistic on
coverage simultaneously; ``BENCH_throughput.json`` records the measured
frontier and CI gates the controlled cell's stats.
"""

from __future__ import annotations

from dataclasses import replace

from repro.control.loop import (
    budget_overshoot,
    result_ed2p,
    result_energy_nj,
)
from repro.fleet.metrics import summarize
from repro.fleet.sim import FleetTrafficConfig, run_cell

#: Twelve two-hour phases of a standard day, as load multipliers around
#: the configured base: a 03:00 trough at 0.5x and a 19:00 peak at
#: 1.35x.  At the default base load 0.7 the peak offers 0.945
#: utilisation — right where a 0.96-relative checker pool saturates.
DIURNAL_CURVE = (0.55, 0.5, 0.55, 0.7, 0.85, 1.0,
                 1.1, 1.2, 1.3, 1.35, 1.1, 0.8)

#: The bench's checker pool: 3 A510s replay at 0.72 of the main core,
#: so the diurnal peak (0.945 offered utilisation) saturates them —
#: always-full pays stalls there, always-opportunistic sheds coverage
#: from the first shoulder hour onward.  The paper's standard 4-core
#: pool (0.96 relative) barely saturates and makes all three arms
#: near-identical; the interesting regime is the under-provisioned one.
BENCH_CHECKERS = "3xA510@2.0"

#: The default closed-loop spec the bench and CLI use.
DEFAULT_CONTROLLER = {
    "kind": "threshold",
    "checkers": BENCH_CHECKERS,
    "dwell": 2,
}


def diurnal_config(servers: int = 8, load: float = 0.7,
                   duration_s: float = 2.0, epoch_s: float = 0.1,
                   seed: int = 7,
                   checkers: str = BENCH_CHECKERS) -> FleetTrafficConfig:
    """The shared base cell every bench arm derives from."""
    return FleetTrafficConfig(
        servers=servers,
        checkers=checkers,
        load=load,
        duration_s=duration_s,
        epoch_s=epoch_s,
        load_curve=DIURNAL_CURVE,
        seed=seed,
    )


def _arm_row(result) -> dict:
    metrics = summarize(result)
    main_nj, checker_nj = result_energy_nj(result)
    total_res = sum(result.mode_residency_s.values())
    return {
        "p50_ms": round(metrics.p50_ms, 4),
        "p99_ms": round(metrics.p99_ms, 4),
        "coverage": round(metrics.coverage, 6),
        "sdc_events": round(metrics.sdc_events, 3),
        "energy_overhead": round(checker_nj / main_nj, 6)
        if main_nj else 0.0,
        "ed2p_j_ms2": round(result_ed2p(result), 6),
        "switches": result.switches,
        "budget_overshoot": round(budget_overshoot(result), 6),
        "mode_residency": {
            mode: round(seconds / total_res, 4)
            for mode, seconds in sorted(result.mode_residency_s.items())
        } if total_res else {},
    }


def run_diurnal_bench(servers: int = 8, load: float = 0.7,
                      duration_s: float = 2.0, epoch_s: float = 0.1,
                      reps: int = 1, jobs: int = 1, seed: int = 7,
                      controller: dict | None = None) -> dict:
    """Run the three arms and report the frontier.

    Returns ``{"arms": {...}, "dominates": {...}}`` where the
    ``dominates`` flags are the acceptance criterion: the controlled
    arm must beat always-full on p99 and always-opportunistic on
    coverage in the same run.
    """
    base = diurnal_config(servers=servers, load=load,
                          duration_s=duration_s, epoch_s=epoch_s,
                          seed=seed)
    controller = controller or DEFAULT_CONTROLLER
    arms = {
        "always_full": replace(base, mode="full"),
        "always_opportunistic": replace(base, mode="opportunistic"),
        "controlled": replace(base, controller=controller),
    }
    results = {name: run_cell(config, reps=reps, jobs=jobs)
               for name, config in arms.items()}
    rows = {name: _arm_row(result) for name, result in results.items()}
    controlled = rows["controlled"]
    return {
        "curve": list(DIURNAL_CURVE),
        "arms": rows,
        "dominates": {
            "p99_vs_full": controlled["p99_ms"]
            < rows["always_full"]["p99_ms"],
            "coverage_vs_opportunistic": controlled["coverage"]
            > rows["always_opportunistic"]["coverage"],
        },
        "results": results,
    }
