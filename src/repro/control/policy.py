"""Control policies: epoch observations in, (mode, pool) actions out.

A policy is a pure-ish object: given the stream of deterministic
:class:`EpochObservation` records a fleet run produces, it emits
:class:`ControlAction` decisions.  Policies carry no wall-clock state
and draw no randomness, so a controlled run is exactly as deterministic
as an uncontrolled one — the whole adaptive control plane rides on the
simulator's existing ``sha256(seed, rid, site)`` contract.

Policies are constructed from *plain-dict specs* via
:func:`make_controller`, because controlled cells fan out over worker
processes exactly like static ones: the spec travels through
``FleetTrafficConfig.to_json``, and each worker builds its own policy
instance.  Anything a policy needs must therefore round-trip through
JSON.

Two operating-point ladders, matching the paper's Fig. 1 spectrum:

* the **mode ladder** ``full -> opportunistic -> disabled`` trades
  coverage for tail latency (:class:`ThresholdPolicy`);
* the **DVFS ladder** walks the A510 sweep frequencies before touching
  the mode at all, trading energy for lag headroom
  (:class:`ED2PBudgetPolicy`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Protocol

from repro.cpu.config import CoreInstance, CoreKind
from repro.cpu.presets import CORE_CLASSES
from repro.fleet.server import (
    IN_ORDER_EFFICIENCY,
    MAIN_THROUGHPUT,
    MODES,
)
from repro.power.ed2p import A510_SWEEP_GHZ
from repro.power.energy import dynamic_energy_nj, static_energy_nj

#: The big core every fleet server runs (Table I), pinned at 3 GHz.
_MAIN = CoreInstance(config=CORE_CLASSES["X2"], freq_ghz=3.0)

_CHECKER_SPEC = re.compile(r"^(\d+)x([A-Za-z0-9]+)@([\d.]+)$")


@dataclass(frozen=True)
class EpochObservation:
    """What the simulator saw during one control epoch (one window)."""

    epoch: int
    t_s: float                  # boundary time the window closed at
    epoch_len_s: float
    servers: int
    offered: int
    completed: int
    p50_ms: float
    p99_ms: float
    utilization: float          # busy_s / (epoch_len_s * servers)
    stall_fraction: float       # stall_s / busy_s
    coverage: float             # checked / (checked + unchecked) work
    lag_max_frac: float         # max server lag / lag bound
    busy_s: float               # main-core busy seconds, all servers
    checked_work_s: float       # seconds of work the checkers replayed
    mode: str                   # the mode the window ran under
    checkers: str               # the pool spec the window ran under


@dataclass(frozen=True)
class ControlAction:
    """The operating point to run the *next* epoch at.

    ``info`` is free-form diagnostics the simulator folds into the
    epoch record (budget headroom, ladder position, ...); it never
    influences behaviour.
    """

    mode: str
    checkers: str
    info: dict | None = None


class Policy(Protocol):
    """The contract every control policy implements."""

    def on_epoch(self, obs: EpochObservation) -> ControlAction | None:
        """Decide the next epoch's operating point (None = no opinion)."""
        ...


# ---------------------------------------------------------------------------
# Fleet-timescale energy accounting (repro.power at datacenter scale).
# ---------------------------------------------------------------------------

def fleet_energy_nj(busy_s: float, checked_s: float,
                    checkers: str) -> tuple[float, float]:
    """``(main_nj, checker_nj)`` for one window of fleet work.

    Seconds of main-core work become instructions through the same
    X2@3 GHz throughput constant the lag model uses
    (:data:`~repro.fleet.server.MAIN_THROUGHPUT`, instructions per
    nanosecond), then flow through the calibrated :mod:`repro.power`
    primitives.  Checked work is replayed once by the pool: each class
    group replays its throughput share of the instructions, in checker
    mode (no-tag LSL$ loads), with leakage over the replay time.
    """
    busy_ns = busy_s * 1e9
    main_inst = int(busy_ns * MAIN_THROUGHPUT)
    main_nj = (dynamic_energy_nj(_MAIN.config, _MAIN.voltage, main_inst)
               + static_energy_nj(_MAIN.config, _MAIN.voltage, busy_ns))
    if checked_s <= 0.0 or checkers.strip().lower() == "none":
        return main_nj, 0.0
    groups = []  # (count, config, instance, throughput inst/ns)
    for part in checkers.split(","):
        match = _CHECKER_SPEC.match(part.strip())
        if not match:
            raise ValueError(
                f"bad checker spec {part!r}; expected e.g. 2xA510@2.0")
        count, name, freq = match.groups()
        config = CORE_CLASSES[name]
        efficiency = 1.0 if config.kind == CoreKind.OUT_OF_ORDER \
            else IN_ORDER_EFFICIENCY
        instance = CoreInstance(config=config, freq_ghz=float(freq))
        groups.append((int(count), config, instance,
                       int(count) * config.width * float(freq)
                       * efficiency))
    pool_rate = sum(g[3] for g in groups)
    checked_inst = checked_s * 1e9 * MAIN_THROUGHPUT
    replay_ns = checked_inst / pool_rate if pool_rate else 0.0
    checker_nj = 0.0
    for count, config, instance, rate in groups:
        share = int(checked_inst * (rate / pool_rate))
        checker_nj += dynamic_energy_nj(config, instance.voltage, share,
                                        checker_mode=True)
        checker_nj += static_energy_nj(config, instance.voltage,
                                       replay_ns * count)
    return main_nj, checker_nj


# ---------------------------------------------------------------------------
# Policies.
# ---------------------------------------------------------------------------

class StaticPolicy:
    """Pin one operating point (the do-nothing controller, for A/Bs)."""

    def __init__(self, mode: str = "full",
                 checkers: str = "4xA510@2.0") -> None:
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; "
                             f"pick from {', '.join(MODES)}")
        self.mode = mode
        self.checkers = checkers

    def on_epoch(self, obs: EpochObservation) -> ControlAction | None:
        del obs
        return ControlAction(mode=self.mode, checkers=self.checkers)


class ThresholdPolicy:
    """Watermark controller on checker stalls, lag, and tail latency.

    The degrade trigger is deliberately *not* raw p99: under pure
    overload (arrivals beyond capacity) the tail is queueing delay that
    no checking mode can fix, and a p99-chasing controller would ratchet
    itself to ``disabled`` for nothing.  Instead:

    * ``full -> opportunistic`` when checking is demonstrably the
      problem — the stall fraction (main-core time lost waiting at the
      saturated lag bound, a full-mode-only signal) crosses its *high*
      watermark.  Raw lag is *not* a degrade trigger: bursty arrivals
      brush the lag bound even at trough load, where full coverage is
      still nearly free;
    * ``-> disabled`` only past the separate overload watermark
      ``p99_high_ms``, i.e. when the fleet is drowning and even the
      bookkeeping of opportunistic checking is worth shedding
      (section I: fault detection never steals throughput the
      datacenter needs);
    * one restore step when stalls and p99 sit below the *low*
      watermarks and the worst lag is back under ``lag_low_frac`` of
      the bound (restoring full coverage onto a saturated LSL would
      stall immediately).

    The gap between the watermark pairs is the hysteresis band — a load
    oscillating inside it never causes a switch, so the fleet cannot
    thrash between modes on noise (the dwell in
    :class:`~repro.control.loop.Controller` guards the residual case of
    load swinging across both watermarks every epoch).  The pool spec is
    kept even while disabled: the checkers stop *accepting* new work but
    keep draining the LSL backlog, so recovery is observable.
    """

    LADDER = MODES  # full -> opportunistic -> disabled

    def __init__(self, stall_high: float = 0.05, stall_low: float = 0.01,
                 lag_low_frac: float = 0.95,
                 p99_high_ms: float = 25.0, p99_low_ms: float = 5.0,
                 checkers: str = "4xA510@2.0") -> None:
        for label, low, high in (("stall", stall_low, stall_high),
                                 ("p99", p99_low_ms, p99_high_ms)):
            if low >= high:
                raise ValueError(
                    f"{label} watermarks must satisfy low < high, got "
                    f"low={low} high={high}")
        if lag_low_frac <= 0.0:
            raise ValueError(
                f"lag_low_frac must be positive, got {lag_low_frac}")
        self.stall_high = stall_high
        self.stall_low = stall_low
        self.lag_low_frac = lag_low_frac
        self.p99_high_ms = p99_high_ms
        self.p99_low_ms = p99_low_ms
        self.checkers = checkers
        self._step = 0  # index into LADDER

    def on_epoch(self, obs: EpochObservation) -> ControlAction | None:
        hot = obs.stall_fraction > self.stall_high
        overload = obs.p99_ms > self.p99_high_ms
        cool = (obs.stall_fraction < self.stall_low
                and obs.lag_max_frac < self.lag_low_frac
                and obs.p99_ms < self.p99_low_ms)
        if overload and self._step < len(self.LADDER) - 1:
            self._step += 1
        elif hot and self._step < 1:
            self._step = 1
        elif cool and self._step > 0:
            self._step -= 1
        return ControlAction(
            mode=self.LADDER[self._step],
            checkers=self.checkers,
            info={"step": self._step, "hot": hot,
                  "overload": overload, "cool": cool},
        )


class ED2PBudgetPolicy:
    """Hold checker energy overhead under a budget via the DVFS ladder.

    Tracks cumulative main-core and checker energy with the calibrated
    :mod:`repro.power` model and compares the running overhead fraction
    (checker / main) against ``budget``.  Over budget, it walks the
    operating-point ladder *down*: first the paper's A510 DVFS sweep
    (2.0 -> 1.4 GHz — slower checkers burn less energy per replayed
    instruction at lower voltage), then opportunistic coverage, then
    off.  Under ``budget * low_margin`` it walks back up.  The margin
    is the hysteresis band; overshoot is reported per epoch so the
    stats tree can expose the worst excursion.
    """

    def __init__(self, budget: float = 0.40, low_margin: float = 0.85,
                 pool: int = 4, core: str = "A510",
                 freqs_ghz: tuple[float, ...] = A510_SWEEP_GHZ) -> None:
        if budget <= 0.0:
            raise ValueError(f"budget must be positive, got {budget}")
        if not 0.0 < low_margin < 1.0:
            raise ValueError(
                f"low_margin must be in (0, 1), got {low_margin}")
        self.budget = budget
        self.low_margin = low_margin
        # The ladder, best coverage first: full at each DVFS point,
        # then opportunistic at the slowest point, then disabled.
        self.ladder: list[tuple[str, str]] = [
            ("full", f"{pool}x{core}@{f:g}") for f in freqs_ghz]
        self.ladder.append(("opportunistic", f"{pool}x{core}@{freqs_ghz[-1]:g}"))
        self.ladder.append(("disabled", "none"))
        self._step = 0
        self._main_nj = 0.0
        self._checker_nj = 0.0

    def on_epoch(self, obs: EpochObservation) -> ControlAction | None:
        main_nj, checker_nj = fleet_energy_nj(
            obs.busy_s, obs.checked_work_s, obs.checkers)
        self._main_nj += main_nj
        self._checker_nj += checker_nj
        overhead = (self._checker_nj / self._main_nj
                    if self._main_nj else 0.0)
        if overhead > self.budget and self._step < len(self.ladder) - 1:
            self._step += 1
        elif overhead < self.budget * self.low_margin and self._step > 0:
            self._step -= 1
        mode, checkers = self.ladder[self._step]
        return ControlAction(mode=mode, checkers=checkers, info={
            "step": self._step,
            "overhead": round(overhead, 6),
            "overshoot": round(max(0.0, overhead - self.budget), 6),
        })


#: Spec ``kind`` -> policy class; :mod:`repro.control.roles` registers
#: the scheduler-backed policy here on import.
POLICY_KINDS: dict[str, type] = {
    "static": StaticPolicy,
    "threshold": ThresholdPolicy,
    "ed2p_budget": ED2PBudgetPolicy,
}


def make_controller(spec: dict):
    """Build a dwell-wrapped controller from a plain-dict spec.

    ``spec`` carries ``kind`` (one of :data:`POLICY_KINDS`), an optional
    ``dwell`` epoch count, and the policy's keyword arguments.  Specs
    are JSON-safe by construction, which is what lets a controlled
    fleet cell fan out over worker processes.
    """
    from repro.control import roles  # registers "scheduler"  # noqa: F401
    from repro.control.loop import Controller

    spec = dict(spec)
    kind = spec.pop("kind", None)
    if kind not in POLICY_KINDS:
        raise ValueError(
            f"unknown controller kind {kind!r}; "
            f"known: {sorted(POLICY_KINDS)}")
    dwell = spec.pop("dwell", 1)
    freqs = spec.get("freqs_ghz")
    if freqs is not None:
        spec["freqs_ghz"] = tuple(freqs)
    return Controller(POLICY_KINDS[kind](**spec), dwell_epochs=dwell)
