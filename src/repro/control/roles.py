"""OS-level core-role scheduling under varying load (section IV-A).

The operating system decides which cores run workloads and which act as
checkers, re-deciding at checkpoint boundaries (checkpoints are bounded,
so there is no starvation).  The paper's operational claims:

* preference for checker duty goes to idle cores, and among those to
  lower-performance cores;
* under high system load, checking is automatically scaled down (to
  opportunistic coverage) or disabled entirely, so fault detection never
  steals throughput the datacenter needs (section I / Fig. 1);
* when load recedes, checking resumes.

:class:`RoleScheduler` simulates that control loop over a demand trace,
and :class:`SchedulerPolicy` adapts it to the fleet control plane: each
epoch's observed utilisation becomes the demand the scheduler plans
against, and the plan's spare-core arithmetic becomes the next epoch's
(mode, checker pool) operating point.  This module absorbed
``repro.core.scheduler`` (which now re-exports it) when the control
plane grew from an offline demand-trace study into the closed loop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.cpu.config import CoreInstance
from repro.cpu.presets import CORE_CLASSES

from repro.control.policy import (
    POLICY_KINDS,
    ControlAction,
    EpochObservation,
)


class Role(enum.Enum):
    """What a core is doing during an epoch."""

    MAIN = "main"
    CHECKER = "checker"
    IDLE = "idle"


@dataclass(frozen=True)
class PoolCore:
    """One schedulable core."""

    core_id: str
    instance: CoreInstance

    @property
    def is_little(self) -> bool:
        return self.instance.config.area_mm2 < 1.0

    @property
    def compute_capacity(self) -> float:
        """Relative single-thread capacity (area as a crude proxy would be
        wrong — use width x frequency)."""
        return self.instance.config.width * self.instance.freq_ghz


@dataclass
class EpochPlan:
    """The scheduler's decision for one epoch."""

    epoch: int
    demand_cores: float
    roles: dict[str, Role]
    #: Checker capacity per main core actually running checked work.
    checkers_per_main: float
    checking_enabled: bool

    @property
    def mains(self) -> list[str]:
        return [cid for cid, role in self.roles.items() if role is Role.MAIN]

    @property
    def checkers(self) -> list[str]:
        return [cid for cid, role in self.roles.items()
                if role is Role.CHECKER]


@dataclass
class ScheduleOutcome:
    """Aggregate over a demand trace."""

    plans: list[EpochPlan] = field(default_factory=list)

    @property
    def epochs_with_checking(self) -> int:
        return sum(1 for plan in self.plans if plan.checking_enabled)

    @property
    def checking_availability(self) -> float:
        if not self.plans:
            return 0.0
        return self.epochs_with_checking / len(self.plans)

    def roles_of(self, core_id: str) -> list[Role]:
        return [plan.roles[core_id] for plan in self.plans]


class RoleScheduler:
    """Assigns main/checker/idle roles to a core pool per epoch.

    ``min_checkers_per_main`` is the pool needed for full coverage
    (e.g. 4 little cores per big main, section VII-A); when spare cores
    fall below it, checking degrades to opportunistic; when demand wants
    every core, checking disables.
    """

    def __init__(self, cores: list[PoolCore],
                 min_checkers_per_main: float = 1.0) -> None:
        if not cores:
            raise ValueError("empty core pool")
        self.cores = cores
        self.min_checkers_per_main = min_checkers_per_main

    def plan_epoch(self, epoch: int, demand_cores: float) -> EpochPlan:
        """Assign roles for one epoch of ``demand_cores`` of main work.

        Demand is satisfied with the *fastest* cores first (main work
        needs single-thread performance); remaining cores become
        checkers, littlest first (paper's preference), or stay idle when
        there is nothing to check.
        """
        by_speed = sorted(self.cores, key=lambda c: -c.compute_capacity)
        roles: dict[str, Role] = {}
        need = demand_cores
        mains: list[PoolCore] = []
        for core in by_speed:
            if need > 0:
                roles[core.core_id] = Role.MAIN
                mains.append(core)
                need -= 1
            else:
                roles[core.core_id] = Role.IDLE
        spare = [core for core in self.cores
                 if roles[core.core_id] is Role.IDLE]
        # Littlest spare cores become checkers (energy preference).
        spare.sort(key=lambda c: c.instance.config.area_mm2)
        checking_enabled = bool(mains) and bool(spare)
        checkers = 0
        if checking_enabled:
            for core in spare:
                roles[core.core_id] = Role.CHECKER
                checkers += 1
        return EpochPlan(
            epoch=epoch,
            demand_cores=demand_cores,
            roles=roles,
            checkers_per_main=checkers / len(mains) if mains else 0.0,
            checking_enabled=checking_enabled,
        )

    def run(self, demand_trace: list[float]) -> ScheduleOutcome:
        """Plan every epoch of a demand trace."""
        outcome = ScheduleOutcome()
        for epoch, demand in enumerate(demand_trace):
            clamped = max(0.0, min(demand, len(self.cores)))
            outcome.plans.append(self.plan_epoch(epoch, clamped))
        return outcome

    def coverage_mode_for(self, plan: EpochPlan) -> str:
        """The checking mode the plan supports (Fig. 1's spectrum)."""
        if not plan.checking_enabled:
            return "disabled"
        if plan.checkers_per_main >= self.min_checkers_per_main:
            return "full"
        return "opportunistic"


def standard_pool(mains: int = 1, littles: int = 6,
                  little_ghz: float = 2.0) -> list[PoolCore]:
    """The per-server pool the fleet models: X2 mains plus A510 spares."""
    cores = [PoolCore(core_id=f"big{i}",
                      instance=CoreInstance(config=CORE_CLASSES["X2"],
                                            freq_ghz=3.0))
             for i in range(mains)]
    cores += [PoolCore(core_id=f"little{i}",
                       instance=CoreInstance(config=CORE_CLASSES["A510"],
                                             freq_ghz=little_ghz))
              for i in range(littles)]
    return cores


class SchedulerPolicy:
    """The role scheduler driven by live utilisation instead of a trace.

    Each epoch, observed main-core utilisation is scaled to a core
    demand over one server's pool (1 X2 + ``littles`` A510 spares with
    ``headroom`` slack for burst absorption); the resulting plan's
    coverage mode and spare-checker count become the fleet-wide
    operating point.  This is the paper's section IV-A loop closed over
    the simulator's own telemetry rather than an offline demand trace.
    """

    def __init__(self, littles: int = 6, little_ghz: float = 2.0,
                 min_checkers_per_main: float = 4.0,
                 headroom: float = 1.25) -> None:
        if littles < 1:
            raise ValueError(f"littles must be >= 1, got {littles}")
        self.littles = littles
        self.little_ghz = little_ghz
        self.headroom = headroom
        self.scheduler = RoleScheduler(
            standard_pool(mains=1, littles=littles,
                          little_ghz=little_ghz),
            min_checkers_per_main=min_checkers_per_main)
        self._epoch = 0

    def on_epoch(self, obs: EpochObservation) -> ControlAction | None:
        self._epoch += 1
        # One main core of demand per unit utilisation, plus headroom:
        # at high load the burst reserve spills onto the little cores,
        # stealing them from checker duty exactly as section IV-A says.
        pool = 1 + self.littles
        demand = min(float(pool),
                     obs.utilization * self.headroom * pool)
        plan = self.scheduler.plan_epoch(self._epoch, demand)
        mode = self.scheduler.coverage_mode_for(plan)
        n_checkers = len(plan.checkers)
        checkers = ("none" if mode == "disabled" or n_checkers == 0
                    else f"{n_checkers}xA510@{self.little_ghz:g}")
        return ControlAction(mode=mode, checkers=checkers, info={
            "demand_cores": round(demand, 4),
            "spare_checkers": n_checkers,
        })


POLICY_KINDS["scheduler"] = SchedulerPolicy
