"""The adaptive control plane (section I / Fig. 1, section IV-A).

Closed-loop policies that re-decide the fleet's checking arrangement —
coverage mode, checker pool, DVFS point — at epoch boundaries, from the
same deterministic telemetry the stats tree publishes.  The package
splits along the loop:

* :mod:`repro.control.policy` — observation/action types, the
  watermark-threshold and ED2P-budget policies, fleet-scale energy
  accounting, and the :func:`make_controller` spec factory;
* :mod:`repro.control.roles` — the OS core-role scheduler (absorbed
  from ``repro.core.scheduler``) and its policy adapter;
* :mod:`repro.control.loop` — the dwell-hysteresis
  :class:`Controller` wrapper and ``control.*``/``power.*`` stats;
* :mod:`repro.control.bench` — the diurnal frontier bench.
"""

from repro.control.loop import (
    Controller,
    budget_overshoot,
    publish_control_stats,
    result_ed2p,
    result_energy_nj,
)
from repro.control.policy import (
    POLICY_KINDS,
    ControlAction,
    ED2PBudgetPolicy,
    EpochObservation,
    Policy,
    StaticPolicy,
    ThresholdPolicy,
    fleet_energy_nj,
    make_controller,
)
from repro.control.roles import (
    EpochPlan,
    PoolCore,
    Role,
    RoleScheduler,
    ScheduleOutcome,
    SchedulerPolicy,
    standard_pool,
)

__all__ = [
    "ControlAction",
    "Controller",
    "ED2PBudgetPolicy",
    "EpochObservation",
    "EpochPlan",
    "POLICY_KINDS",
    "Policy",
    "PoolCore",
    "Role",
    "RoleScheduler",
    "ScheduleOutcome",
    "SchedulerPolicy",
    "StaticPolicy",
    "ThresholdPolicy",
    "budget_overshoot",
    "fleet_energy_nj",
    "make_controller",
    "publish_control_stats",
    "result_ed2p",
    "result_energy_nj",
    "standard_pool",
]
