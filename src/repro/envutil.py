"""Friendly parsing for ``REPRO_*`` environment knobs and CLI numerics.

Scale knobs are set by hand in shells and CI files, where a stray
``REPRO_JOBS=four`` or ``--servers four`` is easy to type.  A bare
``ValueError`` traceback from deep inside a runner hides which knob was
wrong; :func:`parse_int`/:func:`parse_float` fail with a one-line
message naming the knob and the offending value instead, and
:func:`env_int` applies the same contract to environment variables.
"""

from __future__ import annotations

import os


def parse_int(name: str, raw: str | None, default: int) -> int:
    """``int(raw)`` with a one-line failure mode.

    Exits (via :class:`SystemExit`, so no traceback reaches the
    terminal) when ``raw`` is not an integer; ``None``/empty falls back
    to ``default``.  ``name`` is whatever the user typed the value
    against — an environment variable or a CLI flag.
    """
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError:
        raise SystemExit(
            f"{name}={raw!r} is not an integer; "
            f"unset it or use e.g. {name}={default}") from None


def parse_float(name: str, raw: str | None, default: float) -> float:
    """``float(raw)`` with the same one-line failure mode."""
    if raw is None or raw == "":
        return default
    try:
        return float(raw)
    except ValueError:
        raise SystemExit(
            f"{name}={raw!r} is not a number; "
            f"unset it or use e.g. {name}={default}") from None


def env_int(name: str, default: int) -> int:
    """``int(os.environ[name])`` with a one-line failure mode."""
    return parse_int(name, os.environ.get(name), default)


def env_float(name: str, default: float) -> float:
    """``float(os.environ[name])`` with a one-line failure mode."""
    return parse_float(name, os.environ.get(name), default)


def parse_choice(name: str, raw: str | None, default: str,
                 choices: tuple[str, ...]) -> str:
    """Validate an enumerated knob with a one-line failure mode."""
    if raw is None or raw == "":
        return default
    if raw not in choices:
        raise SystemExit(
            f"{name}={raw!r} is not one of {', '.join(choices)}; "
            f"unset it or use e.g. {name}={default}")
    return raw
