"""Friendly parsing for ``REPRO_*`` environment knobs.

Scale knobs are set by hand in shells and CI files, where a stray
``REPRO_JOBS=four`` or ``REPRO_TRIALS=20x`` is easy to type.  A bare
``ValueError`` traceback from deep inside a runner hides which variable
was wrong; :func:`env_int` fails with a one-line message naming the
variable and the offending value instead.
"""

from __future__ import annotations

import os


def env_int(name: str, default: int) -> int:
    """``int(os.environ[name])`` with a one-line failure mode.

    Exits (via :class:`SystemExit`, so no traceback reaches the
    terminal) when the variable is set to something that is not an
    integer.
    """
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError:
        raise SystemExit(
            f"{name}={raw!r} is not an integer; "
            f"unset it or use e.g. {name}={default}") from None
