"""Multicore functional execution over shared memory.

Runs several programs (threads) round-robin in fixed quanta against one
shared :class:`~repro.mem.memory.Memory`.  Because the main cores log the
*observed* value of every load at the time it executed, any cross-thread
communication — including races — replays on the checkers exactly as it
happened (paper section IV-J); this executor produces exactly those
per-thread traces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.columns import TraceColumns
from repro.cpu.functional import (
    DirectMemoryPort,
    FunctionalCore,
    MainNonRepSource,
    RunResult,
    _program_tables,
)
from repro.isa.program import Program
from repro.isa.registers import RegisterCheckpoint
from repro.mem.memory import Memory


@dataclass
class ThreadRun:
    """One thread's outcome of a multicore run."""

    program: Program
    result: RunResult
    #: Trace indices where the scheduler switched this thread out; these
    #: become forced checkpoint boundaries (interrupts, section IV-J).
    switch_points: list[int]
    #: Register checkpoints captured at each switch point (trace index ->
    #: snapshot); segments aligned to interrupts use these directly, since
    #: a shared-memory run cannot be re-executed per thread.
    checkpoints: dict[int, RegisterCheckpoint]


def run_multicore(
    programs: list[Program],
    memory: Memory | None = None,
    max_instructions_per_thread: int = 100_000,
    quantum: int = 500,
    seed: int = 0,
) -> list[ThreadRun]:
    """Execute ``programs`` round-robin over shared memory."""
    if not programs:
        raise ValueError("no programs to run")
    if memory is None:
        memory = Memory()
        for program in programs:
            for addr, value in program.memory_image.items():
                memory.store(addr, 8, value)
    port = DirectMemoryPort(memory)
    cores = [
        FunctionalCore(
            program, port,
            nonrep=MainNonRepSource(seed=seed + tid, core_id=tid),
        )
        for tid, program in enumerate(programs)
    ]
    starts = [core.regs.snapshot(core.pc) for core in cores]
    traces = [TraceColumns(program) for program in programs]
    switch_points: list[list[int]] = [[] for _ in cores]
    checkpoints: list[dict[int, RegisterCheckpoint]] = [{} for _ in cores]
    remaining = [max_instructions_per_thread] * len(cores)
    active = [True] * len(cores)

    while any(active):
        progressed = False
        for tid, core in enumerate(cores):
            if not active[tid]:
                continue
            chunk = core.run(min(quantum, remaining[tid]))
            traces[tid].extend(chunk.columns)
            remaining[tid] -= chunk.instructions
            if chunk.instructions:
                progressed = True
            checkpoints[tid][len(traces[tid])] = chunk.end_checkpoint
            if core.halted or remaining[tid] <= 0 or chunk.instructions == 0:
                active[tid] = False
            else:
                switch_points[tid].append(len(traces[tid]))
        if not progressed:
            break

    runs: list[ThreadRun] = []
    for tid, core in enumerate(cores):
        columns = traces[tid]
        class_counts = columns.class_counts(
            _program_tables(programs[tid])[1])
        runs.append(ThreadRun(
            program=programs[tid],
            result=RunResult(
                program=programs[tid],
                columns=columns,
                start_checkpoint=starts[tid],
                end_checkpoint=core.regs.snapshot(core.pc),
                halted=core.halted,
                instructions=len(columns),
                class_counts=class_counts,
            ),
            switch_points=switch_points[tid],
            checkpoints=checkpoints[tid],
        ))
    return runs
