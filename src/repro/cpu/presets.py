"""Table I core and memory presets.

Three core classes, matching the paper's evaluation:

* ``X2`` — the big out-of-order main core (Arm Cortex-X2-like, 5-wide,
  3 GHz in main mode, down-clockable as a checker);
* ``A510`` — the little in-order core (3-wide, up to 2 GHz);
* ``A35`` — the dedicated scalar in-order checker used to model the prior
  works DSN18 (12 checkers) and ParaDox (16 checkers).

Latency values follow the Arm software-optimisation guides the paper cites:
in particular the A510's up-to-22-cycle floating-point divide, which is the
mechanism behind bwaves' behaviour in Figs. 6-8.
"""

from __future__ import annotations

from repro.cpu.config import CoreConfig, CoreKind, FUConfig
from repro.isa.instructions import FUKind
from repro.mem.cache import CacheConfig
from repro.mem.dram import DramConfig
from repro.mem.hierarchy import HierarchyConfig

#: Shared last-level cache (Table I "System").
L3_CONFIG = CacheConfig("l3", size_bytes=8 * 1024 * 1024, ways=8,
                        hit_latency=25, mshrs=48)

DRAM_CONFIG = DramConfig()


def big_hierarchy() -> HierarchyConfig:
    """X2 cache hierarchy (Table I, big cores)."""
    return HierarchyConfig(
        l1i=CacheConfig("l1i", 64 * 1024, 4, hit_latency=2, mshrs=16),
        l1d=CacheConfig("l1d", 64 * 1024, 4, hit_latency=4, mshrs=16),
        l2=CacheConfig("l2", 1024 * 1024, 8, hit_latency=9, mshrs=32),
        l3=L3_CONFIG,
        dram=DRAM_CONFIG,
    )


def little_hierarchy() -> HierarchyConfig:
    """A510 cache hierarchy (Table I, little cores)."""
    return HierarchyConfig(
        l1i=CacheConfig("l1i", 32 * 1024, 4, hit_latency=1, mshrs=12),
        l1d=CacheConfig("l1d", 32 * 1024, 4, hit_latency=1, mshrs=12),
        l2=CacheConfig("l2", 256 * 1024, 8, hit_latency=9, mshrs=16),
        l3=L3_CONFIG,
        dram=DRAM_CONFIG,
    )


def tiny_hierarchy() -> HierarchyConfig:
    """Dedicated-checker hierarchy: a small icache, no useful dcache.

    Prior works' dedicated checkers have no data caches (section III-B);
    loads are always served from the (dedicated SRAM) load-store log.
    """
    return HierarchyConfig(
        l1i=CacheConfig("l1i", 16 * 1024, 2, hit_latency=1, mshrs=4),
        l1d=CacheConfig("l1d", 4 * 1024, 2, hit_latency=1, mshrs=2),
        l2=CacheConfig("l2", 64 * 1024, 4, hit_latency=9, mshrs=4),
        l3=L3_CONFIG,
        dram=DRAM_CONFIG,
    )


X2 = CoreConfig(
    name="X2",
    kind=CoreKind.OUT_OF_ORDER,
    width=5,
    commit_width=5,
    rob_size=288,
    lq_size=85,
    sq_size=90,
    fus={
        FUKind.BRANCH: FUConfig(units=2, latency=1),
        # 2 simple-int pipes plus the 2 complex-int pipes' simple-op paths.
        FUKind.INT_ALU: FUConfig(units=4, latency=1),
        FUKind.INT_MUL: FUConfig(units=2, latency=3),
        FUKind.INT_DIV: FUConfig(units=1, latency=12, interval=12),
        FUKind.FP: FUConfig(units=4, latency=3),
        FUKind.FP_DIV: FUConfig(units=2, latency=13, interval=11),
        FUKind.LOAD: FUConfig(units=2, latency=1),
        FUKind.STORE: FUConfig(units=1, latency=1),
    },
    hierarchy=big_hierarchy(),
    predictor_kib=64,
    mispredict_penalty=12,
    max_freq_ghz=3.0,
    min_freq_ghz=1.0,
    voltage_max=1.0,
    voltage_min=0.65,
    epi_scale=1.0,
    static_scale=1.0,
    area_mm2=2.43,
)

A510 = CoreConfig(
    name="A510",
    kind=CoreKind.IN_ORDER,
    width=3,
    commit_width=3,
    rob_size=16,  # 16-entry LSQ bounds the in-order window
    lq_size=16,
    sq_size=16,
    fus={
        FUKind.BRANCH: FUConfig(units=1, latency=1),
        FUKind.INT_ALU: FUConfig(units=3, latency=1),
        FUKind.INT_MUL: FUConfig(units=1, latency=3),
        FUKind.INT_DIV: FUConfig(units=1, latency=12, interval=12),
        FUKind.FP: FUConfig(units=2, latency=4),
        FUKind.FP_DIV: FUConfig(units=1, latency=22, interval=20),
        FUKind.LOAD: FUConfig(units=2, latency=1),
        FUKind.STORE: FUConfig(units=1, latency=1),
    },
    hierarchy=little_hierarchy(),
    predictor_kib=8,
    mispredict_penalty=8,
    max_freq_ghz=2.0,
    min_freq_ghz=0.5,
    voltage_max=0.90,
    voltage_min=0.55,
    epi_scale=0.66,
    static_scale=0.18,
    area_mm2=0.44,
)

A35 = CoreConfig(
    name="A35",
    kind=CoreKind.IN_ORDER,
    width=1,
    commit_width=1,
    rob_size=8,
    lq_size=8,
    sq_size=8,
    fus={
        FUKind.BRANCH: FUConfig(units=1, latency=1),
        FUKind.INT_ALU: FUConfig(units=1, latency=1),
        FUKind.INT_MUL: FUConfig(units=1, latency=4),
        FUKind.INT_DIV: FUConfig(units=1, latency=18, interval=18),
        FUKind.FP: FUConfig(units=1, latency=5),
        FUKind.FP_DIV: FUConfig(units=1, latency=22, interval=22),
        FUKind.LOAD: FUConfig(units=1, latency=1),
        FUKind.STORE: FUConfig(units=1, latency=1),
    },
    hierarchy=tiny_hierarchy(),
    predictor_kib=2,
    mispredict_penalty=6,
    max_freq_ghz=2.0,
    min_freq_ghz=0.5,
    voltage_max=0.85,
    voltage_min=0.55,
    epi_scale=0.35,
    static_scale=0.10,
    area_mm2=0.84 / 16,  # paper: 16 extrapolated A35s ~= 0.84 mm^2
)

CORE_CLASSES = {"X2": X2, "A510": A510, "A35": A35}
