"""Core configuration records shared by the timing and power models."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isa.instructions import FUKind
from repro.mem.hierarchy import HierarchyConfig


class CoreKind(enum.Enum):
    """Pipeline style."""

    OUT_OF_ORDER = "ooo"
    IN_ORDER = "inorder"


@dataclass(frozen=True)
class FUConfig:
    """One functional-unit class: instance count, latency, issue interval.

    ``interval`` is the initiation interval: 1 for fully pipelined units,
    equal to the latency for unpipelined dividers.
    """

    units: int
    latency: int
    interval: int = 1


@dataclass(frozen=True)
class CoreConfig:
    """Microarchitectural parameters of one core class (Table I)."""

    name: str
    kind: CoreKind
    width: int
    commit_width: int
    rob_size: int  # instruction window; LSQ depth for in-order cores
    lq_size: int
    sq_size: int
    fus: dict[FUKind, FUConfig]
    hierarchy: HierarchyConfig
    predictor_kib: int
    mispredict_penalty: int
    max_freq_ghz: float
    min_freq_ghz: float
    #: Voltage at max/min frequency, linearly interpolated in between.
    voltage_max: float
    voltage_min: float
    #: Register-checkpoint copy latency in cycles (Table I: 8 cycles).
    checkpoint_latency: int = 8
    #: Relative dynamic energy per instruction at nominal voltage (unitless,
    #: calibrated against the paper's McPAT results in repro.power).
    epi_scale: float = 1.0
    #: Relative static (leakage) power (unitless).
    static_scale: float = 1.0
    #: Area in mm^2 (paper section VII-E die-shot estimates).
    area_mm2: float = 1.0

    def voltage_at(self, freq_ghz: float) -> float:
        """Linear V/f curve between the min and max operating points."""
        if not self.min_freq_ghz <= freq_ghz <= self.max_freq_ghz + 1e-9:
            raise ValueError(
                f"{self.name}: frequency {freq_ghz} GHz outside "
                f"[{self.min_freq_ghz}, {self.max_freq_ghz}]"
            )
        if self.max_freq_ghz == self.min_freq_ghz:
            return self.voltage_max
        frac = (freq_ghz - self.min_freq_ghz) / (self.max_freq_ghz - self.min_freq_ghz)
        return self.voltage_min + frac * (self.voltage_max - self.voltage_min)


@dataclass(frozen=True)
class CoreInstance:
    """A core class pinned to an operating frequency."""

    config: CoreConfig
    freq_ghz: float

    def __post_init__(self) -> None:
        self.config.voltage_at(self.freq_ghz)  # validates the range

    @property
    def voltage(self) -> float:
        return self.config.voltage_at(self.freq_ghz)

    @property
    def label(self) -> str:
        return f"{self.config.name}@{self.freq_ghz:g}GHz"
