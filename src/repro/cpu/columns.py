"""Columnar commit-trace representation.

The functional core commits tens of thousands of instructions per run;
holding each as a :class:`~repro.cpu.functional.TraceEntry` heap object
made every downstream pass (segmentation, timing replay, serialization)
pay per-object allocation and attribute-dispatch costs.  A
:class:`TraceColumns` keeps the same information as parallel columns:

* a **dense** program-counter column (one element per committed
  instruction), from which opcode, functional unit and fetch address are
  recovered through per-program static tables;
* a **sparse memory plane** — one row per instruction that produced a
  load-store-log record (loads, stores, atomics, bulk copies,
  non-repeatable reads) holding ``(index, addr, addr2, size, loaded,
  loaded2, stored, nonrep)`` with the same ``-1`` / ``None`` absence
  sentinels as ``TraceEntry``;
* a **sparse branch plane** — one row per *dynamically resolved* control
  transfer (conditional branches and JALR) holding ``(index, next_pc,
  taken)``.  JMP/HALT/fallthrough successors are static and are
  reconstructed from the program, so they occupy no trace storage;
* a ``bulks`` side table for BCOPY word tuples.

Rows are plain tuples while the trace is being built (list appends are
the cheapest thing the interpreter can do per commit); the packed form
(:meth:`to_payload` / :meth:`from_payload`) converts each column to a
little-endian fixed-width byte string — numpy-backed when available,
with a pure-python :mod:`array` fallback.  Set ``REPRO_NO_NUMPY=1`` to
force the fallback (exercised in CI).
"""

from __future__ import annotations

import os
import sys
from array import array
from collections import Counter

from repro.isa.instructions import OP_SPECS, Opcode


def _load_numpy():
    if os.environ.get("REPRO_NO_NUMPY") == "1":
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is normally present
        return None
    return numpy


_np = _load_numpy()
HAVE_NUMPY = _np is not None

#: Presence bits of the packed memory-plane ``flags`` column.
HAS_ADDR = 1
HAS_ADDR2 = 2
HAS_LOADED = 4
HAS_LOADED2 = 8
HAS_STORED = 16
HAS_NONREP = 32
HAS_BULK = 64


def _typecode(itemsize: int) -> str:
    """Stdlib array typecode with exactly ``itemsize`` bytes."""
    for code in {1: "B", 2: "HI", 4: "ILQ", 8: "QL"}[itemsize]:
        if array(code).itemsize == itemsize:
            return code
    raise RuntimeError(f"no array typecode of {itemsize} bytes")


_NP_DTYPES = {1: "u1", 2: "<u2", 4: "<u4", 8: "<u8"}


def pack_column(values, itemsize: int) -> bytes:
    """Pack unsigned ints into little-endian fixed-width bytes."""
    if _np is not None:
        return _np.asarray(values, dtype=_NP_DTYPES[itemsize]).tobytes()
    arr = array(_typecode(itemsize), values)
    if sys.byteorder == "big":  # pragma: no cover - LE hosts everywhere
        arr.byteswap()
    return arr.tobytes()


def unpack_column(data: bytes, itemsize: int) -> list[int]:
    """Inverse of :func:`pack_column`; returns plain python ints."""
    if _np is not None:
        return _np.frombuffer(data, dtype=_NP_DTYPES[itemsize]).tolist()
    arr = array(_typecode(itemsize))
    arr.frombytes(data)
    if sys.byteorder == "big":  # pragma: no cover
        arr.byteswap()
    return arr.tolist()


def _static_next_table(program) -> list[tuple]:
    """Per-pc ``(kind, next_pc)`` for statically-known control flow.

    ``kind`` is 0 for fallthrough, 1 for JMP (taken, static target),
    2 for HALT (next_pc == pc), 3 for dynamically resolved transfers
    (conditional branches and JALR — these have branch-plane rows).
    """
    table = getattr(program, "_static_next_table", None)
    if table is None:
        table = []
        for pc, instr in enumerate(program.instructions):
            op = instr.op
            if op is Opcode.JMP:
                table.append((1, instr.target))
            elif op is Opcode.HALT:
                table.append((2, pc))
            elif OP_SPECS[op].is_branch:  # BEQ/BNE/BLT/BGE/JALR
                table.append((3, pc + 1))
            else:
                table.append((0, pc + 1))
        program._static_next_table = table
    return table


class TraceColumns:
    """Array-backed commit trace (see module docstring)."""

    __slots__ = ("pcs", "mem_rows", "br_rows", "bulks", "program")

    def __init__(self, program=None) -> None:
        self.pcs: list[int] = []
        #: (index, addr, addr2, size, loaded, loaded2, stored, nonrep)
        self.mem_rows: list[tuple] = []
        #: (index, next_pc, taken)
        self.br_rows: list[tuple] = []
        #: trace index -> BCOPY word tuple
        self.bulks: dict[int, tuple] = {}
        self.program = program

    # -- building (called from the functional core's commit path) ----------

    def mem(self, addr, addr2, size, loaded, loaded2, stored, nonrep) -> None:
        self.mem_rows.append((len(self.pcs) - 1, addr, addr2, size,
                              loaded, loaded2, stored, nonrep))

    def mem_bulk(self, src: int, dst: int, values: tuple) -> None:
        index = len(self.pcs) - 1
        self.mem_rows.append((index, src, dst, 8, None, None, None, None))
        self.bulks[index] = values

    def br(self, taken: bool, next_pc: int) -> None:
        self.br_rows.append((len(self.pcs) - 1, next_pc, taken))

    # -- container basics ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.pcs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceColumns):
            return NotImplemented
        return (self.pcs == other.pcs and self.mem_rows == other.mem_rows
                and self.br_rows == other.br_rows
                and self.bulks == other.bulks)

    __hash__ = None

    def extend(self, other: "TraceColumns") -> None:
        """Append ``other``'s trace, shifting its sparse row indices."""
        offset = len(self.pcs)
        self.pcs.extend(other.pcs)
        self.mem_rows.extend((row[0] + offset,) + row[1:]
                             for row in other.mem_rows)
        self.br_rows.extend((idx + offset, nxt, taken)
                            for idx, nxt, taken in other.br_rows)
        for idx, values in other.bulks.items():
            self.bulks[idx + offset] = values

    def class_counts(self, fu_names: list[str]) -> dict[str, int]:
        """Dynamic instruction counts per FU class.

        ``fu_names`` is the per-pc FU-name table.  Keys appear in
        first-dynamic-occurrence order, matching the per-entry
        accumulation the object path performed.
        """
        # The map runs at C speed (list.__getitem__ per pc) and Counter
        # keys preserve first-seen order, so the result matches the
        # per-entry accumulation of the object path exactly — same
        # counts, same first-dynamic-occurrence key order.
        return dict(Counter(map(fu_names.__getitem__, self.pcs)))

    # -- object-path interop ------------------------------------------------

    def entries(self, program=None) -> list:
        """Materialise the legacy ``list[TraceEntry]`` view."""
        from repro.cpu.functional import TraceEntry

        program = program or self.program
        if program is None:
            raise ValueError("TraceColumns has no program to rebuild from")
        instrs = program.instructions
        statics = _static_next_table(program)
        mem_rows = self.mem_rows
        br_rows = self.br_rows
        bulks = self.bulks
        n_mem = len(mem_rows)
        n_br = len(br_rows)
        mp = bp = 0
        out = []
        append = out.append
        for i, pc in enumerate(self.pcs):
            addr = addr2 = -1
            size = 0
            loaded = loaded2 = stored = nonrep = bulk = None
            if mp < n_mem and mem_rows[mp][0] == i:
                (_, addr, addr2, size,
                 loaded, loaded2, stored, nonrep) = mem_rows[mp]
                mp += 1
                bulk = bulks.get(i)
            kind, next_pc = statics[pc]
            taken = kind == 1
            if kind == 3 and bp < n_br and br_rows[bp][0] == i:
                _, next_pc, row_taken = br_rows[bp]
                taken = bool(row_taken)
                bp += 1
            append(TraceEntry(
                pc=pc, instr=instrs[pc], addr=addr, addr2=addr2, size=size,
                loaded=loaded, loaded2=loaded2, stored=stored, nonrep=nonrep,
                taken=taken, next_pc=next_pc, bulk=bulk,
            ))
        return out

    @classmethod
    def from_entries(cls, entries, program=None) -> "TraceColumns":
        """Build columns from a legacy ``list[TraceEntry]``."""
        cols = cls(program)
        pcs = cols.pcs
        mem_rows = cols.mem_rows
        br_rows = cols.br_rows
        for i, e in enumerate(entries):
            pcs.append(e.pc)
            if (e.addr != -1 or e.addr2 != -1 or e.loaded is not None
                    or e.stored is not None or e.nonrep is not None
                    or e.bulk is not None):
                mem_rows.append((i, e.addr, e.addr2, e.size,
                                 e.loaded, e.loaded2, e.stored, e.nonrep))
                if e.bulk is not None:
                    cols.bulks[i] = tuple(e.bulk)
            op = e.instr.op
            if op is Opcode.JALR or (OP_SPECS[op].is_branch
                                     and op is not Opcode.JMP):
                br_rows.append((i, e.next_pc, bool(e.taken)))
        return cols

    # -- packed (binary) form ----------------------------------------------

    def to_payload(self) -> dict:
        """Pack every column into little-endian byte strings.

        The result is cheap to pickle (process-pool handoff) and is the
        section body of the on-disk binary trace container
        (:mod:`repro.cpu.traceio`).
        """
        m_idx, m_flags, m_addr, m_addr2 = [], [], [], []
        m_size, m_loaded, m_loaded2, m_stored, m_nonrep = [], [], [], [], []
        bulks = self.bulks
        for row in self.mem_rows:
            idx, addr, addr2, size, loaded, loaded2, stored, nonrep = row
            flags = 0
            if addr != -1:
                flags |= HAS_ADDR
            if addr2 != -1:
                flags |= HAS_ADDR2
            if loaded is not None:
                flags |= HAS_LOADED
            if loaded2 is not None:
                flags |= HAS_LOADED2
            if stored is not None:
                flags |= HAS_STORED
            if nonrep is not None:
                flags |= HAS_NONREP
            if idx in bulks:
                flags |= HAS_BULK
            m_idx.append(idx)
            m_flags.append(flags)
            m_addr.append(addr if addr != -1 else 0)
            m_addr2.append(addr2 if addr2 != -1 else 0)
            m_size.append(size)
            m_loaded.append(loaded or 0)
            m_loaded2.append(loaded2 or 0)
            m_stored.append(stored or 0)
            m_nonrep.append(nonrep or 0)
        bulk_idx = sorted(bulks)
        bulk_lens = [len(bulks[i]) for i in bulk_idx]
        bulk_data: list[int] = []
        for i in bulk_idx:
            bulk_data.extend(bulks[i])
        return {
            "n": len(self.pcs),
            "pcs": pack_column(self.pcs, 4),
            "m_idx": pack_column(m_idx, 4),
            "m_flags": pack_column(m_flags, 1),
            "m_addr": pack_column(m_addr, 8),
            "m_addr2": pack_column(m_addr2, 8),
            "m_size": pack_column(m_size, 1),
            "m_loaded": pack_column(m_loaded, 8),
            "m_loaded2": pack_column(m_loaded2, 8),
            "m_stored": pack_column(m_stored, 8),
            "m_nonrep": pack_column(m_nonrep, 8),
            "b_idx": pack_column([r[0] for r in self.br_rows], 4),
            "b_next": pack_column([r[1] for r in self.br_rows], 4),
            "b_taken": pack_column([1 if r[2] else 0
                                    for r in self.br_rows], 1),
            "k_idx": pack_column(bulk_idx, 4),
            "k_lens": pack_column(bulk_lens, 2),
            "k_data": pack_column(bulk_data, 8),
        }

    @classmethod
    def from_payload(cls, payload: dict, program=None) -> "TraceColumns":
        """Inverse of :meth:`to_payload`."""
        cols = cls(program)
        cols.pcs = unpack_column(payload["pcs"], 4)
        if len(cols.pcs) != payload["n"]:
            raise ValueError("trace payload length mismatch")
        m_idx = unpack_column(payload["m_idx"], 4)
        m_flags = unpack_column(payload["m_flags"], 1)
        m_addr = unpack_column(payload["m_addr"], 8)
        m_addr2 = unpack_column(payload["m_addr2"], 8)
        m_size = unpack_column(payload["m_size"], 1)
        m_loaded = unpack_column(payload["m_loaded"], 8)
        m_loaded2 = unpack_column(payload["m_loaded2"], 8)
        m_stored = unpack_column(payload["m_stored"], 8)
        m_nonrep = unpack_column(payload["m_nonrep"], 8)
        mem_rows = cols.mem_rows
        for j, idx in enumerate(m_idx):
            flags = m_flags[j]
            mem_rows.append((
                idx,
                m_addr[j] if flags & HAS_ADDR else -1,
                m_addr2[j] if flags & HAS_ADDR2 else -1,
                m_size[j],
                m_loaded[j] if flags & HAS_LOADED else None,
                m_loaded2[j] if flags & HAS_LOADED2 else None,
                m_stored[j] if flags & HAS_STORED else None,
                m_nonrep[j] if flags & HAS_NONREP else None,
            ))
        b_idx = unpack_column(payload["b_idx"], 4)
        b_next = unpack_column(payload["b_next"], 4)
        b_taken = unpack_column(payload["b_taken"], 1)
        cols.br_rows = [(b_idx[j], b_next[j], bool(b_taken[j]))
                        for j in range(len(b_idx))]
        bulk_idx = unpack_column(payload["k_idx"], 4)
        bulk_lens = unpack_column(payload["k_lens"], 2)
        bulk_data = unpack_column(payload["k_data"], 8)
        pos = 0
        for j, idx in enumerate(bulk_idx):
            count = bulk_lens[j]
            cols.bulks[idx] = tuple(bulk_data[pos:pos + count])
            pos += count
        return cols
