"""Trace-driven, cycle-approximate core timing model.

One engine serves every core class in Table I, parameterised by
:class:`~repro.cpu.config.CoreConfig`:

* **out-of-order** (X2): instructions issue as soon as operands and a
  functional unit are available, within a ROB-sized window;
* **in-order** (A510, A35): issue is monotonic in program order, so a
  stalled instruction blocks the issue of everything behind it (completion
  may still overlap, as on the real cores).

Both respect fetch/commit width, per-class functional-unit counts and
initiation intervals, branch misprediction redirects (with a real
predictor model), instruction-cache misses, and MSHR-limited miss
overlap in the data cache.

``checker_mode`` models a ParaVerser checker core: loads and stores are
served by the Load-Store Log Cache at a fixed one-cycle latency — no data
cache misses and no data traffic to the shared LLC (paper section VII-A,
"Instruction Fetch") — while instruction fetch still uses the cache
hierarchy and can contend.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from heapq import heapreplace

from repro.cpu.branch import BranchPredictor
from repro.cpu.columns import TraceColumns
from repro.cpu.config import CoreConfig, CoreInstance, CoreKind
from repro.cpu.functional import TraceEntry
from repro.isa.instructions import FUKind, Instruction, Opcode
from repro.isa.program import Program
from repro.mem.hierarchy import MemoryHierarchy, SharedUncore

_FP_BASE = 32  # fp register keys offset in the scoreboard

#: Scoreboard slots.  Real keys are 1..31 (int) and 33..63 (fp).  Key 0 is
#: x0: never written, so it reads as 0.0 forever and pads unused read
#: slots.  ``_DEAD_SLOT`` is never read and absorbs unused write slots.
_DEAD_SLOT = 64
_SCOREBOARD_SLOTS = 96

#: Dense functional-unit ids, so the hot loop indexes lists instead of
#: hashing FUKind enum members.
_FU_ORDER = list(FUKind)
_FU_INDEX = {kind: idx for idx, kind in enumerate(_FU_ORDER)}
_FU_NAMES = [kind.value for kind in _FU_ORDER]


def _compute_operands(instr: Instruction) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Scoreboard keys read and written by ``instr`` (x0 excluded)."""
    op = instr.op
    spec = instr.spec
    reads: list[int] = []
    writes: list[int] = []
    if op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
        reads = [instr.rs1, instr.rs2]
    elif op is Opcode.JMP or op is Opcode.NOP or op is Opcode.HALT:
        pass
    elif op is Opcode.JALR:
        reads, writes = [instr.rs1], [instr.rd]
    elif op is Opcode.LD:
        reads, writes = [instr.rs1], [instr.rd]
    elif op is Opcode.ST:
        reads = [instr.rs1, instr.rs2]
    elif op is Opcode.LDG:
        reads, writes = [instr.rs1, instr.rs2], [instr.rd, instr.rd2]
    elif op is Opcode.STS:
        reads = [instr.rs1, instr.rs2, instr.rs3]
    elif op is Opcode.SWP:
        reads, writes = [instr.rs1, instr.rs2], [instr.rd]
    elif op is Opcode.SC:
        reads, writes = [instr.rs1, instr.rs2], [instr.rd]
    elif op in (Opcode.RDRAND, Opcode.RDTIME, Opcode.SYSRD):
        writes = [instr.rd]
    elif op is Opcode.LUI:
        writes = [instr.rd]
    elif op in (Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
                Opcode.SLLI, Opcode.SRLI, Opcode.MOV):
        reads, writes = [instr.rs1], [instr.rd]
    elif op is Opcode.FSQRT or op is Opcode.FMOV:
        reads = [_FP_BASE + instr.rs1]
        writes = [_FP_BASE + instr.rd]
    elif op is Opcode.FCVTIF:
        reads, writes = [instr.rs1], [_FP_BASE + instr.rd]
    elif op is Opcode.FCVTFI:
        reads, writes = [_FP_BASE + instr.rs1], [instr.rd]
    elif spec.is_fp:
        reads = [_FP_BASE + instr.rs1, _FP_BASE + instr.rs2]
        writes = [_FP_BASE + instr.rd]
    else:  # three-register integer ops
        reads, writes = [instr.rs1, instr.rs2], [instr.rd]
    reads_t = tuple(r for r in reads if r != 0)
    writes_t = tuple(w for w in writes if w != 0)
    return reads_t, writes_t


#: ``branch_kind`` codes in the per-program static metadata.
_NOT_BRANCH, _COND_BRANCH, _JMP, _JALR = 0, 1, 2, 3

#: ``mem_kind`` bit flags: what the memory stage must do for this opcode.
#: ``_MEM_NONREP`` marks non-repeatable reads that emit a trace mem-row
#: carrying no timing information (RDRAND/RDTIME/SYSRD), so the replay
#: loop advances the row pointer without touching the cache model.
_MEM_LOAD, _MEM_STORE, _MEM_BCOPY, _MEM_STS, _MEM_NONREP = 1, 2, 4, 8, 16


def _program_metadata(program: Program) -> list[tuple]:
    """Per-pc static timing metadata, computed once per program.

    Everything ``simulate`` needs per dynamic instruction that only
    depends on the static instruction — scoreboard operands, FU class,
    load/store/branch kind, fetch address — is precomputed here and
    cached on the program object, so it is shared across every timing
    model (baseline, checked main, every checker class, every
    configuration of a sweep) that replays the same program.
    """
    meta = getattr(program, "_timing_metadata", None)
    if meta is None:
        meta = []
        for pc, instr in enumerate(program.instructions):
            spec = instr.spec
            op = instr.op
            reads, writes = _compute_operands(instr)
            if not spec.is_branch:
                branch_kind = _NOT_BRANCH
            elif op is Opcode.JALR:
                branch_kind = _JALR
            elif op is Opcode.JMP:
                branch_kind = _JMP
            else:
                branch_kind = _COND_BRANCH
            if len(reads) > 3 or len(writes) > 2:
                raise AssertionError(f"operand arity overflow at pc {pc}")
            r1, r2, r3 = (reads + (0, 0, 0))[:3]
            w1, w2 = (writes + (_DEAD_SLOT, _DEAD_SLOT))[:2]
            fetch_addr = program.fetch_address(pc)
            mem_kind = 0
            if spec.is_load:
                mem_kind |= _MEM_LOAD
            if spec.is_store:
                mem_kind |= _MEM_STORE
            if op is Opcode.BCOPY:
                mem_kind |= _MEM_BCOPY
            if op is Opcode.STS:
                mem_kind |= _MEM_STS
            if spec.is_nonrepeatable and not mem_kind:
                mem_kind = _MEM_NONREP
            meta.append((
                _FU_INDEX[spec.fu], r1, r2, r3, w1, w2, mem_kind,
                branch_kind, fetch_addr >> 6, fetch_addr,
                # JMPs redirect statically; precompute whether the target
                # leaves the fall-through fetch line.
                branch_kind == _JMP and instr.target != pc + 1,
            ))
        program._timing_metadata = meta
    return meta


@dataclass
class TimingResult:
    """Cycle/latency outcome of one trace replay on one core instance."""

    label: str
    instructions: int
    cycles: float
    freq_ghz: float
    mispredicts: int = 0
    icache_misses: int = 0
    loads: int = 0
    stores: int = 0
    level_counts: dict[str, int] = field(default_factory=dict)
    llc_accesses: int = 0
    dram_accesses: int = 0
    boundary_cycles: list[float] = field(default_factory=list)
    #: > 1 when the DRAM bandwidth floor bound the run (time was dilated).
    floor_scale: float = 1.0
    #: Instructions issued per functional-unit class.
    fu_issue_counts: dict[str, int] = field(default_factory=dict)
    #: Busy cycles per functional-unit class (issue intervals summed).
    fu_busy_cycles: dict[str, float] = field(default_factory=dict)

    @property
    def time_ns(self) -> float:
        return self.cycles / self.freq_ghz

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def boundary_times_ns(self) -> list[float]:
        return [c / self.freq_ghz for c in self.boundary_cycles]

    def export_stats(self, group,
                     config: CoreConfig | None = None) -> None:
        """Publish this run's counters into an obs StatGroup.

        This is the canonical statistics surface for a timing run; the
        textual dump (:func:`format_stats`) and the ``--stats-json`` tree
        are both rendered from it.  ``config`` enables the per-FU
        utilisation gauges (busy cycles over ``cycles * units``).
        """
        group.scalar("cycles", self.cycles)
        group.scalar("freq_ghz", self.freq_ghz)
        group.count("instructions", self.instructions)
        group.scalar("ipc", self.ipc)
        group.scalar("time_ns", self.time_ns)
        group.count("branch_mispredicts", self.mispredicts)
        group.count("icache_misses", self.icache_misses)
        group.count("loads", self.loads)
        group.count("stores", self.stores)
        group.count("llc_accesses", self.llc_accesses)
        group.count("dram_accesses", self.dram_accesses)
        group.scalar("dram_floor_scale", self.floor_scale,
                     "> 1 when the DRAM bandwidth floor dilated time")
        hits = group.group("data_hits_by_level")
        for level, count in sorted(self.level_counts.items()):
            hits.count(level, count)
        fus = group.group("fu")
        for name in sorted(self.fu_issue_counts):
            fu_group = fus.group(name)
            fu_group.count("issued", self.fu_issue_counts[name])
            busy = self.fu_busy_cycles.get(name, 0.0)
            fu_group.scalar("busy_cycles", busy)
            fu = config.fus.get(FUKind(name)) if config else None
            if fu and self.cycles:
                fu_group.scalar("utilisation",
                                busy / (self.cycles * fu.units))


def format_stats(result: TimingResult, config: CoreConfig) -> str:
    """gem5-style statistics dump for one timing run.

    Rendered from the :meth:`TimingResult.export_stats` tree so the text
    dump and ``--stats-json`` can never disagree.
    """
    from repro.obs import StatGroup

    stats = StatGroup("timing")
    result.export_stats(stats, config)
    flat = stats.flatten()
    lines = [
        f"simTicks        {flat['cycles']:.0f} cycles "
        f"@ {flat['freq_ghz']} GHz",
        f"simInsts        {flat['instructions']}",
        f"ipc             {flat['ipc']:.4f}",
        f"timeNs          {flat['time_ns']:.1f}",
        f"branchMispred   {flat['branch_mispredicts']}",
        f"icacheMisses    {flat['icache_misses']}",
        f"loads           {flat['loads']}",
        f"stores          {flat['stores']}",
        f"llcAccesses     {flat['llc_accesses']}",
        f"dramAccesses    {flat['dram_accesses']}",
    ]
    hits = stats["data_hits_by_level"]
    for level, _ in hits.items():
        lines.append(f"dataHits.{level:6s} {hits[level].to_value()}")
    for name, fu_group in stats["fu"].items():
        issued = fu_group["issued"].to_value()
        busy = fu_group["busy_cycles"].to_value()
        util = (fu_group["utilisation"].to_value()
                if "utilisation" in fu_group else 0.0)
        lines.append(f"fu.{name:10s} issued {issued:8d}  "
                     f"busy {busy:10.0f} cyc  util {util:6.1%}")
    if flat["dram_floor_scale"] > 1.0:
        lines.append("dramBandwidthFloor dilated time "
                     f"x{flat['dram_floor_scale']:.2f}")
    return "\n".join(lines)


class TimingModel:
    """Replays a commit trace against one core instance."""

    #: LSL$ access latency in cycles for checker-mode loads/stores
    #: (direct indexing, no tag comparison — paper section IV-B).
    LSL_LATENCY = 1

    def __init__(
        self,
        instance: CoreInstance,
        uncore: SharedUncore | None = None,
        checker_mode: bool = False,
    ) -> None:
        self.instance = instance
        self.config: CoreConfig = instance.config
        self.freq = instance.freq_ghz
        self.checker_mode = checker_mode
        self.hierarchy = MemoryHierarchy(self.config.hierarchy, uncore)
        self.predictor = BranchPredictor(self.config.predictor_kib)
        #: Per-PC stride prefetcher state: pc -> [last_addr, stride, confidence].
        self._prefetch: dict[int, list[int]] = {}
        self.prefetches_issued = 0

    #: Prefetch distance in strides once a pattern is confirmed.
    PREFETCH_DISTANCE = 4

    def _prefetch_data(self, pc: int, addr: int) -> None:
        """Per-PC stride prefetcher (all Table I cores have one).

        Confirmed strides pull ``PREFETCH_DISTANCE`` strides ahead into the
        cache hierarchy, converting streaming misses into hits — without
        this, streaming workloads (lbm, fotonik3d, bwaves) would be
        latency-bound instead of bandwidth-bound.
        """
        state = self._prefetch.get(pc)
        if state is None:
            self._prefetch[pc] = [addr, 0, 0]
            return
        stride = addr - state[0]
        if stride != 0 and stride == state[1]:
            state[2] += 1
        else:
            state[1] = stride
            state[2] = 0
        state[0] = addr
        if state[2] >= 2 and state[1] != 0:
            target = addr + state[1] * self.PREFETCH_DISTANCE
            if (target ^ addr) >> 6:  # only when it lands on another line
                self.hierarchy.data_access_fast(target, self.freq)
                self.prefetches_issued += 1

    def warm_data(self, addresses) -> None:
        """Functionally warm the data-cache hierarchy (gem5-style).

        The paper fast-forwards 10 B instructions before measuring; we
        instead prime the caches with the workload's resident data
        (pointer-chase rings, seeded working-set pages) so steady-state
        locality is visible from the first measured instruction.
        """
        for addr in addresses:
            self.hierarchy.data_access_fast(addr, self.freq)
        self.hierarchy.reset_stats()
        self.hierarchy.uncore.reset_stats()

    def warm_code(self, program: Program) -> None:
        """Functionally warm the instruction-cache path.

        Checker cores in steady state have run many prior segments of the
        same code; without this, a short simulation charges every checker
        a cold icache that the paper's fast-forwarded runs would not see.
        """
        base = program.fetch_address(0)
        # One extra line: the next-line prefetcher reaches past the end.
        end = program.fetch_address(len(program.instructions)) + 64
        for addr in range(base, end, 64):
            self.hierarchy.fetch_access_fast(addr, self.freq)
        self.hierarchy.reset_stats()
        self.hierarchy.uncore.reset_stats()

    def simulate(
        self,
        program: Program,
        trace: "TraceColumns | list[TraceEntry]",
        boundaries: list[int] | None = None,
        checkpoint_overhead: bool = False,
    ) -> TimingResult:
        """Replay ``trace`` and return timing.

        ``trace`` is a :class:`TraceColumns` (the native hot path) or a
        legacy ``list[TraceEntry]``, which is converted on entry.
        ``boundaries`` is a sorted list of *end-exclusive* instruction
        indices; the cumulative commit cycle at each boundary is reported in
        ``boundary_cycles``.  With ``checkpoint_overhead``, the RCU's
        register-file copy latency is charged at every boundary (this is the
        main-core cost the paper measures under "Register Checkpointing").
        """
        if not isinstance(trace, TraceColumns):
            trace = TraceColumns.from_entries(trace, program)
        config = self.config
        freq = self.freq
        hier = self.hierarchy
        predictor = self.predictor
        in_order = config.kind is CoreKind.IN_ORDER
        width_step = 1.0 / config.width
        commit_step = 1.0 / config.commit_width
        window = config.rob_size
        penalty = config.mispredict_penalty
        l1i_hit_cycles = config.hierarchy.l1i.hit_latency
        checker = self.checker_mode
        lsl_latency = self.LSL_LATENCY
        uncore = hier.uncore
        llc_before = uncore.llc_accesses
        dram_before = uncore.dram.accesses

        fu_free: dict[FUKind, list[float]] = {
            kind: [0.0] * fu.units for kind, fu in config.fus.items()
        }
        #: Indexed by dense FU id: (units, latency, interval, single-unit).
        fu_info: list = [None] * len(_FU_ORDER)
        for kind, fu in config.fus.items():
            fu_info[_FU_INDEX[kind]] = (fu_free[kind], fu.latency,
                                        fu.interval, fu.units == 1)
        mshrs = [0.0] * config.hierarchy.l1d.mshrs
        # Scoreboard: int keys 1..31, fp keys _FP_BASE+1.., dense list.
        ready: list[float] = [0.0] * _SCOREBOARD_SLOTS
        rob: list[float] = [0.0] * window  # ring buffer of commit cycles
        rob_pos = 0

        fetch_cycle = 0.0
        last_issue = 0.0
        last_commit = 0.0
        last_fetch_line = -1
        mispredicts = 0
        icache_misses = 0
        loads = 0
        stores = 0
        #: Per-FU busy cycles beyond ``count * interval`` (BCOPY stretches
        #: its initiation interval to the word count); issue counts and the
        #: base busy product are recovered from the trace after the loop.
        extra_busy: dict[int, int] = {}

        boundary_iter = iter(boundaries or [])
        # Compare against ``i`` directly (boundaries are end-exclusive, so
        # subtract one); 0 - 1 == -1 never matches an index.
        next_boundary = next(boundary_iter, 0) - 1
        boundary_cycles: list[float] = []

        meta = _program_metadata(program)
        fetch_access = hier.fetch_access_fast
        data_access = hier.data_access_fast
        predict_indirect = predictor.predict_indirect

        # The conditional predictor is inlined below (same trick as the
        # L1 probes): its tables are plain bytearrays, so the tournament
        # update is a handful of index ops once the call frame is gone.
        # History and the prediction counters are carried in locals and
        # written back after the loop.
        bp_bimodal = predictor._bimodal
        bp_gshare = predictor._gshare
        bp_chooser = predictor._chooser
        bp_mask = predictor._mask
        bp_history = predictor._history
        bp_hmask = predictor._history_mask
        cond_predictions = 0
        cond_mispredictions = 0

        # Per-PC stride prefetcher, likewise inlined: the common case
        # (streaming stride, target line already resident) is an L1 hit.
        prefetch_table = self._prefetch
        prefetch_distance = self.PREFETCH_DISTANCE
        prefetches = 0

        # L1 hit probes are inlined below (reaching into Cache internals):
        # the warm-cache common case then costs a set lookup and an LRU
        # touch instead of two call frames.  Misses fall through to the
        # full hierarchy walk, whose own L1 probe still misses, so hit /
        # miss / eviction counters stay exact.
        l1d = hier.l1d
        l1d_sets = l1d._sets
        l1d_set_mask = l1d._set_mask
        l1d_shift = l1d._line_shift
        l1i = hier.l1i
        l1i_sets = l1i._sets
        l1i_set_mask = l1i._set_mask
        l1i_shift = l1i._line_shift
        counts = hier.level_counts
        #: Same expression shape as ``data_access_fast`` on an L1 hit.
        l1d_hit_ns = hier._l1d_hit_cycles / freq

        pcs = trace.pcs
        # Sentinel row: index -2 never matches, so the row-pointer test
        # needs no bounds check.  (Copies the list; the trace is shared.)
        mem_rows = trace.mem_rows + [(-2, -1, -1, 0, None, None, None, None)]
        br_rows = trace.br_rows
        bulks = trace.bulks
        mp = 0
        bp = 0

        for i, pc in enumerate(pcs):
            (fu_id, r1, r2, r3, w1, w2, mem_kind, branch_kind, fetch_line,
             fetch_addr, jmp_redirect) = meta[pc]

            # -- fetch / dispatch ----------------------------------------
            if fetch_line != last_fetch_line:
                last_fetch_line = fetch_line
                tag = fetch_addr >> l1i_shift
                ways = l1i_sets[tag & l1i_set_mask]
                if tag in ways:  # inline L1I hit
                    if ways[-1] != tag:
                        ways.remove(tag)
                        ways.append(tag)
                    l1i.hits += 1
                    counts["l1"] += 1
                else:
                    latency_ns, level = fetch_access(fetch_addr, freq)
                    if level != "l1":
                        icache_misses += 1
                        fetch_cycle += latency_ns * freq - l1i_hit_cycles
                # Next-line instruction prefetch (sequential streams hit).
                tag = (fetch_addr + 64) >> l1i_shift
                ways = l1i_sets[tag & l1i_set_mask]
                if tag in ways:
                    if ways[-1] != tag:
                        ways.remove(tag)
                        ways.append(tag)
                    l1i.hits += 1
                    counts["l1"] += 1
                else:
                    fetch_access(fetch_addr + 64, freq)
            disp = fetch_cycle
            fetch_cycle += width_step
            # Window limit: the i-th instruction cannot dispatch before the
            # (i - window)-th commits.
            oldest = rob[rob_pos]
            if oldest > disp:
                disp = oldest
            # Out-of-order cores never update last_issue, so it stays 0.0
            # and this test is always false for them.
            if last_issue > disp:
                disp = last_issue

            # -- register dependencies -----------------------------------
            # Unused read slots hold key 0 (x0), pinned at 0.0 <= disp.
            t_ready = disp
            t = ready[r1]
            if t > t_ready:
                t_ready = t
            t = ready[r2]
            if t > t_ready:
                t_ready = t
            t = ready[r3]
            if t > t_ready:
                t_ready = t

            # -- functional unit -----------------------------------------
            # Units within a class are interchangeable, so only the
            # multiset of free times matters; keeping it as a heap makes
            # pick-earliest-and-reoccupy one C call instead of a
            # min + index double scan.
            units, latency, interval, single = fu_info[fu_id]
            unit_free = units[0]
            issue = t_ready if t_ready > unit_free else unit_free
            if in_order:
                last_issue = issue

            # -- memory ----------------------------------------------------
            if mem_kind:
                if mem_kind == _MEM_NONREP:
                    # Non-repeatable read: the row carries no timing info.
                    if mem_rows[mp][0] == i:
                        mp += 1
                else:
                    row = mem_rows[mp]
                    if row[0] == i:
                        mp += 1
                        addr = row[1]
                        addr2 = row[2]
                    else:
                        addr = addr2 = -1
                    if mem_kind & _MEM_BCOPY \
                            and (bulk := bulks.get(i)) is not None:
                        # Microcoded bulk copy: one word per cycle through
                        # the load/store pipes, touching source and
                        # destination lines.
                        words = len(bulk)
                        loads += words
                        stores += words
                        if checker:
                            latency = max(words, lsl_latency)
                        else:
                            worst = 0.0
                            for base in (addr, addr2):
                                for off in range(0, words * 8, 64):
                                    latency_ns, _ = data_access(base + off,
                                                                freq)
                                    worst = max(worst, latency_ns * freq)
                            latency = max(words, worst)
                        if words > interval:
                            extra_busy[fu_id] = (extra_busy.get(fu_id, 0)
                                                 + words - interval)
                            interval = words
                    else:
                        if mem_kind & _MEM_LOAD:
                            loads += 1
                            if addr2 >= 0:
                                loads += 1
                        if mem_kind & _MEM_STORE:
                            stores += 1
                            if addr2 >= 0 and mem_kind & _MEM_STS:
                                stores += 1
                        if checker:
                            latency = lsl_latency
                        elif mem_kind & _MEM_LOAD:
                            # Inline _prefetch_data: train the per-PC
                            # stride entry; confirmed strides pull
                            # PREFETCH_DISTANCE ahead.  The probe order
                            # (prefetch before demand) matches the
                            # method it replaces.
                            state = prefetch_table.get(pc)
                            if state is None:
                                prefetch_table[pc] = [addr, 0, 0]
                            else:
                                stride = addr - state[0]
                                if stride != 0 and stride == state[1]:
                                    state[2] += 1
                                else:
                                    state[1] = stride
                                    state[2] = 0
                                state[0] = addr
                                if state[2] >= 2 and state[1] != 0:
                                    target = addr \
                                        + state[1] * prefetch_distance
                                    if (target ^ addr) >> 6:
                                        tag = target >> l1d_shift
                                        ways = l1d_sets[tag
                                                        & l1d_set_mask]
                                        if tag in ways:  # inline L1D hit
                                            if ways[-1] != tag:
                                                ways.remove(tag)
                                                ways.append(tag)
                                            l1d.hits += 1
                                            counts["l1"] += 1
                                        else:
                                            data_access(target, freq)
                                        prefetches += 1
                            tag = addr >> l1d_shift
                            ways = l1d_sets[tag & l1d_set_mask]
                            if tag in ways:  # inline L1D hit
                                if ways[-1] != tag:
                                    ways.remove(tag)
                                    ways.append(tag)
                                l1d.hits += 1
                                counts["l1"] += 1
                                mem_cycles = l1d_hit_ns * freq
                                if addr2 >= 0:
                                    latency2_ns, _ = data_access(addr2,
                                                                 freq)
                                    mem_cycles = max(mem_cycles,
                                                     latency2_ns * freq)
                            else:
                                latency_ns, level = data_access(addr, freq)
                                mem_cycles = latency_ns * freq
                                if addr2 >= 0:
                                    latency2_ns, _ = data_access(addr2,
                                                                 freq)
                                    mem_cycles = max(mem_cycles,
                                                     latency2_ns * freq)
                                if level != "l1":
                                    # A miss occupies an MSHR until the
                                    # fill returns (heap: same slot
                                    # interchangeability as FU units).
                                    slot_free = mshrs[0]
                                    if slot_free > issue:
                                        issue = slot_free
                                    heapreplace(mshrs, issue + mem_cycles)
                            latency = mem_cycles
                        else:
                            # Stores retire through the store buffer:
                            # residency and stats are tracked but the
                            # pipeline sees 1 cycle.
                            tag = addr >> l1d_shift
                            ways = l1d_sets[tag & l1d_set_mask]
                            if tag in ways:  # inline L1D hit
                                if ways[-1] != tag:
                                    ways.remove(tag)
                                    ways.append(tag)
                                l1d.hits += 1
                                counts["l1"] += 1
                            else:
                                data_access(addr, freq)
                            if addr2 >= 0:
                                data_access(addr2, freq)
                            latency = 1

            if single:
                units[0] = issue + interval
            else:
                heapreplace(units, issue + interval)
            complete = issue + latency

            # Unused write slots land in the never-read dead slot.
            ready[w1] = complete
            ready[w2] = complete

            # -- commit ----------------------------------------------------
            commit = last_commit + commit_step
            if complete > commit:
                commit = complete
            last_commit = commit
            rob[rob_pos] = commit
            rob_pos += 1
            if rob_pos == window:
                rob_pos = 0

            # -- control flow ----------------------------------------------
            if branch_kind:
                if branch_kind == _JMP:
                    # Always predicted correctly; static redirect only.
                    if jmp_redirect:
                        last_fetch_line = -1
                else:
                    row = br_rows[bp]
                    bp += 1
                    next_pc = row[1]
                    if branch_kind == _JALR:
                        correct = predict_indirect(pc, next_pc)
                    else:
                        # Inline BranchPredictor.predict_conditional
                        # (tournament: bimodal + gshare + chooser).
                        taken = row[2]
                        b_idx = pc & bp_mask
                        g_idx = (pc ^ (bp_history * 0x9E3779B1)) & bp_mask
                        b_counter = bp_bimodal[b_idx]
                        g_counter = bp_gshare[g_idx]
                        b_pred = b_counter >= 2
                        g_pred = g_counter >= 2
                        if bp_chooser[b_idx] >= 2:
                            correct = g_pred == taken
                        else:
                            correct = b_pred == taken
                        cond_predictions += 1
                        if not correct:
                            cond_mispredictions += 1
                        if b_pred != g_pred:
                            chooser = bp_chooser[b_idx]
                            if g_pred == taken and chooser < 3:
                                bp_chooser[b_idx] = chooser + 1
                            elif b_pred == taken and chooser > 0:
                                bp_chooser[b_idx] = chooser - 1
                        if taken:
                            if b_counter < 3:
                                bp_bimodal[b_idx] = b_counter + 1
                            if g_counter < 3:
                                bp_gshare[g_idx] = g_counter + 1
                            bp_history = ((bp_history << 1) | 1) \
                                & bp_hmask
                        else:
                            if b_counter > 0:
                                bp_bimodal[b_idx] = b_counter - 1
                            if g_counter > 0:
                                bp_gshare[g_idx] = g_counter - 1
                            bp_history = (bp_history << 1) & bp_hmask
                    if not correct:
                        mispredicts += 1
                        redirect = complete + penalty
                        if redirect > fetch_cycle:
                            fetch_cycle = redirect
                    # Any taken control flow changes the fetch line.
                    if next_pc != pc + 1:
                        last_fetch_line = -1

            # -- segment boundary ------------------------------------------
            if i == next_boundary:
                if checkpoint_overhead:
                    last_commit += self.config.checkpoint_latency
                    if last_commit > fetch_cycle:
                        fetch_cycle = last_commit
                boundary_cycles.append(last_commit)
                next_boundary = next(boundary_iter, 0) - 1

        predictor._history = bp_history
        predictor.predictions += cond_predictions
        predictor.mispredictions += cond_mispredictions
        self.prefetches_issued += prefetches

        # Issue counts per FU, in first-issue order (Counter preserves
        # first-seen order); busy cycles are ``count * interval`` — exact,
        # because intervals are integers — plus the BCOPY stretch.
        fu_ids = [m[0] for m in meta]
        fu_issue_counts = {}
        fu_busy_cycles = {}
        for fu_id, count in Counter(map(fu_ids.__getitem__, pcs)).items():
            name = _FU_NAMES[fu_id]
            fu_issue_counts[name] = count
            interval = fu_info[fu_id][2]
            fu_busy_cycles[name] = float(interval * count
                                         + extra_busy.get(fu_id, 0))

        # DRAM bandwidth floor: the run cannot finish faster than the memory
        # channel can deliver its line traffic (demand + prefetch).  If the
        # floor binds (bandwidth-bound streaming workloads), time dilates
        # uniformly.
        dram_lines = uncore.dram.accesses - dram_before
        floor_scale = 1.0
        if dram_lines and last_commit > 0:
            dram_cfg = uncore.dram.config
            floor = (dram_lines * dram_cfg.line_bytes
                     / dram_cfg.peak_bandwidth_gbps) * freq
            if floor > last_commit:
                floor_scale = floor / last_commit
                last_commit = floor
                boundary_cycles = [c * floor_scale for c in boundary_cycles]

        return TimingResult(
            label=self.instance.label + (" (checker)" if checker else ""),
            instructions=len(trace),
            cycles=last_commit,
            freq_ghz=freq,
            mispredicts=mispredicts,
            icache_misses=icache_misses,
            loads=loads,
            stores=stores,
            level_counts=dict(hier.level_counts),
            llc_accesses=uncore.llc_accesses - llc_before,
            dram_accesses=uncore.dram.accesses - dram_before,
            boundary_cycles=boundary_cycles,
            floor_scale=floor_scale,
            fu_issue_counts=fu_issue_counts,
            fu_busy_cycles=fu_busy_cycles,
        )
