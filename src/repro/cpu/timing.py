"""Trace-driven, cycle-approximate core timing model.

One engine serves every core class in Table I, parameterised by
:class:`~repro.cpu.config.CoreConfig`:

* **out-of-order** (X2): instructions issue as soon as operands and a
  functional unit are available, within a ROB-sized window;
* **in-order** (A510, A35): issue is monotonic in program order, so a
  stalled instruction blocks the issue of everything behind it (completion
  may still overlap, as on the real cores).

Both respect fetch/commit width, per-class functional-unit counts and
initiation intervals, branch misprediction redirects (with a real
predictor model), instruction-cache misses, and MSHR-limited miss
overlap in the data cache.

``checker_mode`` models a ParaVerser checker core: loads and stores are
served by the Load-Store Log Cache at a fixed one-cycle latency — no data
cache misses and no data traffic to the shared LLC (paper section VII-A,
"Instruction Fetch") — while instruction fetch still uses the cache
hierarchy and can contend.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.branch import BranchPredictor
from repro.cpu.config import CoreConfig, CoreInstance, CoreKind
from repro.cpu.functional import TraceEntry
from repro.isa.instructions import FUKind, Instruction, Opcode
from repro.isa.program import Program
from repro.mem.hierarchy import MemoryHierarchy, SharedUncore

_FP_BASE = 32  # fp register keys offset in the scoreboard


def _compute_operands(instr: Instruction) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Scoreboard keys read and written by ``instr`` (x0 excluded)."""
    op = instr.op
    spec = instr.spec
    reads: list[int] = []
    writes: list[int] = []
    if op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
        reads = [instr.rs1, instr.rs2]
    elif op is Opcode.JMP or op is Opcode.NOP or op is Opcode.HALT:
        pass
    elif op is Opcode.JALR:
        reads, writes = [instr.rs1], [instr.rd]
    elif op is Opcode.LD:
        reads, writes = [instr.rs1], [instr.rd]
    elif op is Opcode.ST:
        reads = [instr.rs1, instr.rs2]
    elif op is Opcode.LDG:
        reads, writes = [instr.rs1, instr.rs2], [instr.rd, instr.rd2]
    elif op is Opcode.STS:
        reads = [instr.rs1, instr.rs2, instr.rs3]
    elif op is Opcode.SWP:
        reads, writes = [instr.rs1, instr.rs2], [instr.rd]
    elif op is Opcode.SC:
        reads, writes = [instr.rs1, instr.rs2], [instr.rd]
    elif op in (Opcode.RDRAND, Opcode.RDTIME, Opcode.SYSRD):
        writes = [instr.rd]
    elif op is Opcode.LUI:
        writes = [instr.rd]
    elif op in (Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
                Opcode.SLLI, Opcode.SRLI, Opcode.MOV):
        reads, writes = [instr.rs1], [instr.rd]
    elif op is Opcode.FSQRT or op is Opcode.FMOV:
        reads = [_FP_BASE + instr.rs1]
        writes = [_FP_BASE + instr.rd]
    elif op is Opcode.FCVTIF:
        reads, writes = [instr.rs1], [_FP_BASE + instr.rd]
    elif op is Opcode.FCVTFI:
        reads, writes = [_FP_BASE + instr.rs1], [instr.rd]
    elif spec.is_fp:
        reads = [_FP_BASE + instr.rs1, _FP_BASE + instr.rs2]
        writes = [_FP_BASE + instr.rd]
    else:  # three-register integer ops
        reads, writes = [instr.rs1, instr.rs2], [instr.rd]
    reads_t = tuple(r for r in reads if r != 0)
    writes_t = tuple(w for w in writes if w != 0)
    return reads_t, writes_t


#: ``branch_kind`` codes in the per-program static metadata.
_NOT_BRANCH, _COND_BRANCH, _JMP, _JALR = 0, 1, 2, 3


def _program_metadata(program: Program) -> list[tuple]:
    """Per-pc static timing metadata, computed once per program.

    Everything ``simulate`` needs per dynamic instruction that only
    depends on the static instruction — scoreboard operands, FU class,
    load/store/branch kind, fetch address — is precomputed here and
    cached on the program object, so it is shared across every timing
    model (baseline, checked main, every checker class, every
    configuration of a sweep) that replays the same program.
    """
    meta = getattr(program, "_timing_metadata", None)
    if meta is None:
        meta = []
        for pc, instr in enumerate(program.instructions):
            spec = instr.spec
            op = instr.op
            reads, writes = _compute_operands(instr)
            if not spec.is_branch:
                branch_kind = _NOT_BRANCH
            elif op is Opcode.JALR:
                branch_kind = _JALR
            elif op is Opcode.JMP:
                branch_kind = _JMP
            else:
                branch_kind = _COND_BRANCH
            meta.append((
                spec.fu, spec.fu.value, reads, writes,
                spec.is_load, spec.is_store, op is Opcode.BCOPY,
                branch_kind, program.fetch_address(pc), op is Opcode.STS,
            ))
        program._timing_metadata = meta
    return meta


@dataclass
class TimingResult:
    """Cycle/latency outcome of one trace replay on one core instance."""

    label: str
    instructions: int
    cycles: float
    freq_ghz: float
    mispredicts: int = 0
    icache_misses: int = 0
    loads: int = 0
    stores: int = 0
    level_counts: dict[str, int] = field(default_factory=dict)
    llc_accesses: int = 0
    dram_accesses: int = 0
    boundary_cycles: list[float] = field(default_factory=list)
    #: > 1 when the DRAM bandwidth floor bound the run (time was dilated).
    floor_scale: float = 1.0
    #: Instructions issued per functional-unit class.
    fu_issue_counts: dict[str, int] = field(default_factory=dict)
    #: Busy cycles per functional-unit class (issue intervals summed).
    fu_busy_cycles: dict[str, float] = field(default_factory=dict)

    @property
    def time_ns(self) -> float:
        return self.cycles / self.freq_ghz

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def boundary_times_ns(self) -> list[float]:
        return [c / self.freq_ghz for c in self.boundary_cycles]

    def export_stats(self, group,
                     config: CoreConfig | None = None) -> None:
        """Publish this run's counters into an obs StatGroup.

        This is the canonical statistics surface for a timing run; the
        textual dump (:func:`format_stats`) and the ``--stats-json`` tree
        are both rendered from it.  ``config`` enables the per-FU
        utilisation gauges (busy cycles over ``cycles * units``).
        """
        group.scalar("cycles", self.cycles)
        group.scalar("freq_ghz", self.freq_ghz)
        group.count("instructions", self.instructions)
        group.scalar("ipc", self.ipc)
        group.scalar("time_ns", self.time_ns)
        group.count("branch_mispredicts", self.mispredicts)
        group.count("icache_misses", self.icache_misses)
        group.count("loads", self.loads)
        group.count("stores", self.stores)
        group.count("llc_accesses", self.llc_accesses)
        group.count("dram_accesses", self.dram_accesses)
        group.scalar("dram_floor_scale", self.floor_scale,
                     "> 1 when the DRAM bandwidth floor dilated time")
        hits = group.group("data_hits_by_level")
        for level, count in sorted(self.level_counts.items()):
            hits.count(level, count)
        fus = group.group("fu")
        for name in sorted(self.fu_issue_counts):
            fu_group = fus.group(name)
            fu_group.count("issued", self.fu_issue_counts[name])
            busy = self.fu_busy_cycles.get(name, 0.0)
            fu_group.scalar("busy_cycles", busy)
            fu = config.fus.get(FUKind(name)) if config else None
            if fu and self.cycles:
                fu_group.scalar("utilisation",
                                busy / (self.cycles * fu.units))


def format_stats(result: TimingResult, config: CoreConfig) -> str:
    """gem5-style statistics dump for one timing run.

    Rendered from the :meth:`TimingResult.export_stats` tree so the text
    dump and ``--stats-json`` can never disagree.
    """
    from repro.obs import StatGroup

    stats = StatGroup("timing")
    result.export_stats(stats, config)
    flat = stats.flatten()
    lines = [
        f"simTicks        {flat['cycles']:.0f} cycles "
        f"@ {flat['freq_ghz']} GHz",
        f"simInsts        {flat['instructions']}",
        f"ipc             {flat['ipc']:.4f}",
        f"timeNs          {flat['time_ns']:.1f}",
        f"branchMispred   {flat['branch_mispredicts']}",
        f"icacheMisses    {flat['icache_misses']}",
        f"loads           {flat['loads']}",
        f"stores          {flat['stores']}",
        f"llcAccesses     {flat['llc_accesses']}",
        f"dramAccesses    {flat['dram_accesses']}",
    ]
    hits = stats["data_hits_by_level"]
    for level, _ in hits.items():
        lines.append(f"dataHits.{level:6s} {hits[level].to_value()}")
    for name, fu_group in stats["fu"].items():
        issued = fu_group["issued"].to_value()
        busy = fu_group["busy_cycles"].to_value()
        util = (fu_group["utilisation"].to_value()
                if "utilisation" in fu_group else 0.0)
        lines.append(f"fu.{name:10s} issued {issued:8d}  "
                     f"busy {busy:10.0f} cyc  util {util:6.1%}")
    if flat["dram_floor_scale"] > 1.0:
        lines.append("dramBandwidthFloor dilated time "
                     f"x{flat['dram_floor_scale']:.2f}")
    return "\n".join(lines)


class TimingModel:
    """Replays a commit trace against one core instance."""

    #: LSL$ access latency in cycles for checker-mode loads/stores
    #: (direct indexing, no tag comparison — paper section IV-B).
    LSL_LATENCY = 1

    def __init__(
        self,
        instance: CoreInstance,
        uncore: SharedUncore | None = None,
        checker_mode: bool = False,
    ) -> None:
        self.instance = instance
        self.config: CoreConfig = instance.config
        self.freq = instance.freq_ghz
        self.checker_mode = checker_mode
        self.hierarchy = MemoryHierarchy(self.config.hierarchy, uncore)
        self.predictor = BranchPredictor(self.config.predictor_kib)
        #: Per-PC stride prefetcher state: pc -> [last_addr, stride, confidence].
        self._prefetch: dict[int, list[int]] = {}
        self.prefetches_issued = 0

    #: Prefetch distance in strides once a pattern is confirmed.
    PREFETCH_DISTANCE = 4

    def _prefetch_data(self, pc: int, addr: int) -> None:
        """Per-PC stride prefetcher (all Table I cores have one).

        Confirmed strides pull ``PREFETCH_DISTANCE`` strides ahead into the
        cache hierarchy, converting streaming misses into hits — without
        this, streaming workloads (lbm, fotonik3d, bwaves) would be
        latency-bound instead of bandwidth-bound.
        """
        state = self._prefetch.get(pc)
        if state is None:
            self._prefetch[pc] = [addr, 0, 0]
            return
        stride = addr - state[0]
        if stride != 0 and stride == state[1]:
            state[2] += 1
        else:
            state[1] = stride
            state[2] = 0
        state[0] = addr
        if state[2] >= 2 and state[1] != 0:
            target = addr + state[1] * self.PREFETCH_DISTANCE
            if (target ^ addr) >> 6:  # only when it lands on another line
                self.hierarchy.data_access(target, self.freq)
                self.prefetches_issued += 1

    def warm_data(self, addresses) -> None:
        """Functionally warm the data-cache hierarchy (gem5-style).

        The paper fast-forwards 10 B instructions before measuring; we
        instead prime the caches with the workload's resident data
        (pointer-chase rings, seeded working-set pages) so steady-state
        locality is visible from the first measured instruction.
        """
        for addr in addresses:
            self.hierarchy.data_access(addr, self.freq)
        self.hierarchy.reset_stats()
        self.hierarchy.uncore.reset_stats()

    def warm_code(self, program: Program) -> None:
        """Functionally warm the instruction-cache path.

        Checker cores in steady state have run many prior segments of the
        same code; without this, a short simulation charges every checker
        a cold icache that the paper's fast-forwarded runs would not see.
        """
        base = program.fetch_address(0)
        # One extra line: the next-line prefetcher reaches past the end.
        end = program.fetch_address(len(program.instructions)) + 64
        for addr in range(base, end, 64):
            self.hierarchy.fetch_access(addr, self.freq)
        self.hierarchy.reset_stats()
        self.hierarchy.uncore.reset_stats()

    def simulate(
        self,
        program: Program,
        trace: list[TraceEntry],
        boundaries: list[int] | None = None,
        checkpoint_overhead: bool = False,
    ) -> TimingResult:
        """Replay ``trace`` and return timing.

        ``boundaries`` is a sorted list of *end-exclusive* instruction
        indices; the cumulative commit cycle at each boundary is reported in
        ``boundary_cycles``.  With ``checkpoint_overhead``, the RCU's
        register-file copy latency is charged at every boundary (this is the
        main-core cost the paper measures under "Register Checkpointing").
        """
        config = self.config
        freq = self.freq
        hier = self.hierarchy
        predictor = self.predictor
        in_order = config.kind is CoreKind.IN_ORDER
        width_step = 1.0 / config.width
        commit_step = 1.0 / config.commit_width
        window = config.rob_size
        penalty = config.mispredict_penalty
        l1i_hit_cycles = config.hierarchy.l1i.hit_latency
        checker = self.checker_mode
        lsl_latency = self.LSL_LATENCY
        uncore = hier.uncore
        llc_before = uncore.llc_accesses
        dram_before = uncore.dram.accesses

        fu_free: dict[FUKind, list[float]] = {
            kind: [0.0] * fu.units for kind, fu in config.fus.items()
        }
        #: One lookup per instruction: kind -> (units, latency, interval).
        fu_info = {kind: (fu_free[kind], fu.latency, fu.interval)
                   for kind, fu in config.fus.items()}
        mshrs = [0.0] * config.hierarchy.l1d.mshrs
        ready: dict[int, float] = {}
        rob: list[float] = [0.0] * window  # ring buffer of commit cycles
        rob_pos = 0

        fetch_cycle = 0.0
        last_issue = 0.0
        last_commit = 0.0
        last_fetch_line = -1
        mispredicts = 0
        icache_misses = 0
        loads = 0
        stores = 0
        fu_issue_counts: dict[str, int] = {}
        fu_busy_cycles: dict[str, float] = {}

        boundary_iter = iter(boundaries or [])
        next_boundary = next(boundary_iter, None)
        boundary_cycles: list[float] = []

        meta = _program_metadata(program)
        fetch_access = hier.fetch_access
        data_access = hier.data_access
        ready_get = ready.get
        predict_conditional = predictor.predict_conditional
        predict_indirect = predictor.predict_indirect
        issue_get = fu_issue_counts.get
        busy_get = fu_busy_cycles.get

        for i, entry in enumerate(trace):
            (fu_kind, fu_name, reads, writes, is_load, is_store, is_bcopy,
             branch_kind, fetch_addr, is_sts) = meta[entry.pc]

            # -- fetch / dispatch ----------------------------------------
            line = fetch_addr >> 6
            if line != last_fetch_line:
                last_fetch_line = line
                result = fetch_access(fetch_addr, freq)
                # Next-line instruction prefetch (sequential streams hit).
                fetch_access(fetch_addr + 64, freq)
                if result.level != "l1":
                    icache_misses += 1
                    fetch_cycle += result.latency_ns * freq - l1i_hit_cycles
            disp = fetch_cycle
            fetch_cycle += width_step
            # Window limit: the i-th instruction cannot dispatch before the
            # (i - window)-th commits.
            oldest = rob[rob_pos]
            if oldest > disp:
                disp = oldest
            if in_order and last_issue > disp:
                disp = last_issue

            # -- register dependencies -----------------------------------
            t_ready = disp
            for key in reads:
                t = ready_get(key, 0.0)
                if t > t_ready:
                    t_ready = t

            # -- functional unit -----------------------------------------
            units, latency, interval = fu_info[fu_kind]
            if len(units) == 1:
                unit_idx = 0
                unit_free = units[0]
            else:
                unit_idx = min(range(len(units)), key=units.__getitem__)
                unit_free = units[unit_idx]
            issue = t_ready if t_ready > unit_free else unit_free
            if in_order:
                last_issue = issue

            # -- memory ----------------------------------------------------
            if is_bcopy and entry.bulk is not None:
                # Microcoded bulk copy: one word per cycle through the
                # load/store pipes, touching source and destination lines.
                words = len(entry.bulk)
                loads += words
                stores += words
                if checker:
                    latency = max(words, lsl_latency)
                else:
                    worst = 0.0
                    for base in (entry.addr, entry.addr2):
                        for off in range(0, words * 8, 64):
                            result = data_access(base + off, freq)
                            worst = max(worst, result.latency_ns * freq)
                    latency = max(words, worst)
                interval = max(words, interval)
            elif is_load or is_store:
                if is_load:
                    loads += 1
                    if entry.addr2 >= 0:
                        loads += 1
                if is_store:
                    stores += 1
                    if entry.addr2 >= 0 and is_sts:
                        stores += 1
                if checker:
                    latency = lsl_latency
                elif is_load:
                    self._prefetch_data(entry.pc, entry.addr)
                    result = data_access(entry.addr, freq)
                    mem_cycles = result.latency_ns * freq
                    if entry.addr2 >= 0:
                        result2 = data_access(entry.addr2, freq)
                        mem_cycles = max(mem_cycles, result2.latency_ns * freq)
                    if result.level != "l1":
                        # A miss occupies an MSHR until the fill returns.
                        slot = min(range(len(mshrs)), key=mshrs.__getitem__)
                        if mshrs[slot] > issue:
                            issue = mshrs[slot]
                        mshrs[slot] = issue + mem_cycles
                    latency = mem_cycles
                else:
                    # Stores retire through the store buffer: residency and
                    # stats are tracked but the pipeline sees 1 cycle.
                    data_access(entry.addr, freq, is_write=True)
                    if entry.addr2 >= 0:
                        data_access(entry.addr2, freq, is_write=True)
                    latency = 1

            units[unit_idx] = issue + interval
            fu_issue_counts[fu_name] = issue_get(fu_name, 0) + 1
            fu_busy_cycles[fu_name] = busy_get(fu_name, 0.0) + interval
            complete = issue + latency

            for key in writes:
                ready[key] = complete

            # -- commit ----------------------------------------------------
            commit = last_commit + commit_step
            if complete > commit:
                commit = complete
            last_commit = commit
            rob[rob_pos] = commit
            rob_pos += 1
            if rob_pos == window:
                rob_pos = 0

            # -- control flow ----------------------------------------------
            if branch_kind:
                if branch_kind == _JALR:
                    correct = predict_indirect(entry.pc, entry.next_pc)
                elif branch_kind == _JMP:
                    correct = True
                else:
                    correct = predict_conditional(entry.pc, entry.taken)
                if not correct:
                    mispredicts += 1
                    redirect = complete + penalty
                    if redirect > fetch_cycle:
                        fetch_cycle = redirect
                # Any taken control flow changes the fetch line.
                if entry.next_pc != entry.pc + 1:
                    last_fetch_line = -1

            # -- segment boundary ------------------------------------------
            if next_boundary is not None and i + 1 == next_boundary:
                if checkpoint_overhead:
                    last_commit += self.config.checkpoint_latency
                    if last_commit > fetch_cycle:
                        fetch_cycle = last_commit
                boundary_cycles.append(last_commit)
                next_boundary = next(boundary_iter, None)

        # DRAM bandwidth floor: the run cannot finish faster than the memory
        # channel can deliver its line traffic (demand + prefetch).  If the
        # floor binds (bandwidth-bound streaming workloads), time dilates
        # uniformly.
        dram_lines = uncore.dram.accesses - dram_before
        floor_scale = 1.0
        if dram_lines and last_commit > 0:
            dram_cfg = uncore.dram.config
            floor = (dram_lines * dram_cfg.line_bytes
                     / dram_cfg.peak_bandwidth_gbps) * freq
            if floor > last_commit:
                floor_scale = floor / last_commit
                last_commit = floor
                boundary_cycles = [c * floor_scale for c in boundary_cycles]

        return TimingResult(
            label=self.instance.label + (" (checker)" if checker else ""),
            instructions=len(trace),
            cycles=last_commit,
            freq_ghz=freq,
            mispredicts=mispredicts,
            icache_misses=icache_misses,
            loads=loads,
            stores=stores,
            level_counts=dict(hier.level_counts),
            llc_accesses=uncore.llc_accesses - llc_before,
            dram_accesses=uncore.dram.accesses - dram_before,
            boundary_cycles=boundary_cycles,
            floor_scale=floor_scale,
            fu_issue_counts=fu_issue_counts,
            fu_busy_cycles=fu_busy_cycles,
        )
