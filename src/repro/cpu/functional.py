"""Functional execution engine.

This is the architectural simulator both sides of ParaVerser run on: the
main core executes against real memory while logging (``repro.core``), and
checker cores replay against the load-store log.  The two are the same
engine parameterised by a :class:`MemoryPort` and a :class:`NonRepSource`,
which guarantees that replay semantics match original-run semantics by
construction.

Fault injection (section VII-B) hooks in through :class:`FaultSurface`:
every functional-unit result and every load/store address passes through
``apply`` tagged with the unit class and instance that produced it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Protocol

from repro.isa.instructions import FUKind, Instruction, Opcode
from repro.isa.program import Program
from repro.isa.registers import RegisterCheckpoint, RegisterFile
from repro.mem.memory import Memory

_MASK64 = (1 << 64) - 1
_SIGN = 1 << 63


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned value as signed."""
    return value - (1 << 64) if value & _SIGN else value


class ExecutionError(Exception):
    """Base class for functional-execution failures."""


class ControlFlowEscape(ExecutionError):
    """Control transferred outside the program (e.g. fault-corrupted JALR)."""


class FaultSurface(Protocol):
    """Hook applied to every value produced by a functional unit."""

    def apply(self, fu: FUKind, unit: int, value: int | float,
              is_address: bool = False) -> int | float: ...


class NoFaults:
    """Fault surface of a healthy core."""

    def apply(self, fu: FUKind, unit: int, value: int | float,
              is_address: bool = False) -> int | float:
        return value


class MemoryPort(Protocol):
    """Where loads/stores go: real memory (main core) or the LSL (checker)."""

    def load(self, addr: int, size: int) -> int: ...
    def store(self, addr: int, size: int, value: int) -> None: ...
    def swap(self, addr: int, size: int, value: int) -> int: ...
    def bulk_copy(self, src: int, dst: int, words: int) -> tuple[int, ...]: ...


class DirectMemoryPort:
    """MemoryPort over flat functional memory (the main core's view)."""

    __slots__ = ("memory",)

    def __init__(self, memory: Memory) -> None:
        self.memory = memory

    def load(self, addr: int, size: int) -> int:
        return self.memory.load(addr, size)

    def store(self, addr: int, size: int, value: int) -> None:
        self.memory.store(addr, size, value)

    def swap(self, addr: int, size: int, value: int) -> int:
        return self.memory.swap(addr, size, value)

    def bulk_copy(self, src: int, dst: int, words: int) -> tuple[int, ...]:
        values = tuple(self.memory.load(src + 8 * i, 8) for i in range(words))
        for i, value in enumerate(values):
            self.memory.store(dst + 8 * i, 8, value)
        return values


class NonRepSource(Protocol):
    """Source of non-repeatable values (RNG, timers, system registers)."""

    def rdrand(self) -> int: ...
    def rdtime(self, committed: int) -> int: ...
    def sysrd(self) -> int: ...
    def sc_success(self) -> int: ...


class MainNonRepSource:
    """The main core's live non-repeatable sources (deterministic per seed)."""

    def __init__(self, seed: int = 0, core_id: int = 0,
                 time_base: int = 1_000_000) -> None:
        self._rng = random.Random(seed ^ 0x5DEECE66D)
        self.core_id = core_id
        self.time_base = time_base

    def rdrand(self) -> int:
        return self._rng.getrandbits(64)

    def rdtime(self, committed: int) -> int:
        return self.time_base + committed

    def sysrd(self) -> int:
        return 0xC0DE0000 | self.core_id

    def sc_success(self) -> int:
        return 1


@dataclass(slots=True)
class TraceEntry:
    """One committed instruction, with its architectural effects."""

    pc: int
    instr: Instruction
    addr: int = -1
    addr2: int = -1
    size: int = 0
    loaded: int | None = None
    loaded2: int | None = None
    stored: int | None = None
    nonrep: int | None = None
    taken: bool = False
    next_pc: int = 0
    #: BCOPY: the words moved (one macro-op, many micro-op accesses).
    bulk: tuple[int, ...] | None = None


@dataclass
class RunResult:
    """Outcome of a functional run (one segment or a whole program)."""

    program: Program
    trace: list[TraceEntry]
    start_checkpoint: RegisterCheckpoint
    end_checkpoint: RegisterCheckpoint
    halted: bool
    instructions: int
    class_counts: dict[str, int] = field(default_factory=dict)

    @property
    def final_pc(self) -> int:
        return self.end_checkpoint.pc


class FunctionalCore:
    """Executes a :class:`Program` instruction by instruction."""

    def __init__(
        self,
        program: Program,
        memory_port: MemoryPort,
        registers: RegisterFile | None = None,
        nonrep: NonRepSource | None = None,
        fault_surface: FaultSurface | None = None,
        fu_counts: dict[FUKind, int] | None = None,
        start_pc: int | None = None,
    ) -> None:
        self.program = program
        self.port = memory_port
        self.regs = registers or RegisterFile()
        self.nonrep = nonrep or MainNonRepSource()
        self.fault = fault_surface or NoFaults()
        self.fu_counts = fu_counts or {}
        self._fu_rr: dict[FUKind, int] = {}
        self.pc = program.entry if start_pc is None else start_pc
        self.committed = 0
        self.halted = False

    # -- functional-unit plumbing -------------------------------------------

    def _unit_for(self, fu: FUKind) -> int:
        """Round-robin unit selection, so stuck-at faults hit a subset of ops."""
        count = self.fu_counts.get(fu, 1)
        if count <= 1:
            return 0
        nxt = self._fu_rr.get(fu, 0)
        self._fu_rr[fu] = (nxt + 1) % count
        return nxt

    def _alu(self, fu: FUKind, value: int) -> int:
        out = self.fault.apply(fu, self._unit_for(fu), value & _MASK64)
        return int(out) & _MASK64

    def _fpu(self, fu: FUKind, value: float) -> float:
        return float(self.fault.apply(fu, self._unit_for(fu), value))

    def _mem_addr(self, fu: FUKind, addr: int) -> int:
        out = self.fault.apply(fu, self._unit_for(fu), addr & _MASK64,
                               is_address=True)
        return int(out) & _MASK64

    # -- execution ----------------------------------------------------------

    def run(self, max_instructions: int,
            record_trace: bool = True) -> RunResult:
        """Execute up to ``max_instructions`` instructions."""
        start = self.regs.snapshot(self.pc)
        trace: list[TraceEntry] = []
        class_counts: dict[str, int] = {}
        instructions = self.program.instructions
        n = len(instructions)
        executed = 0
        while executed < max_instructions and not self.halted:
            if not 0 <= self.pc < n:
                break  # fell off the end of the program
            instr = instructions[self.pc]
            entry = self._execute(instr)
            executed += 1
            self.committed += 1
            if record_trace:
                trace.append(entry)
                fu = instr.spec.fu.value
                class_counts[fu] = class_counts.get(fu, 0) + 1
            self.pc = entry.next_pc
        return RunResult(
            program=self.program,
            trace=trace,
            start_checkpoint=start,
            end_checkpoint=self.regs.snapshot(self.pc),
            halted=self.halted,
            instructions=executed,
            class_counts=class_counts,
        )

    def _execute(self, instr: Instruction) -> TraceEntry:
        handler = _HANDLERS[instr.op]
        return handler(self, instr)

    # -- opcode handlers ----------------------------------------------------
    # Each returns a fully-populated TraceEntry.

    def _entry(self, instr: Instruction, **kw) -> TraceEntry:
        return TraceEntry(pc=self.pc, instr=instr,
                          next_pc=kw.pop("next_pc", self.pc + 1), **kw)

    def _h_int3(self, instr: Instruction) -> TraceEntry:
        a = self.regs.ints[instr.rs1]
        b = self.regs.ints[instr.rs2]
        op = instr.op
        if op is Opcode.ADD:
            v = a + b
        elif op is Opcode.SUB:
            v = a - b
        elif op is Opcode.AND:
            v = a & b
        elif op is Opcode.OR:
            v = a | b
        elif op is Opcode.XOR:
            v = a ^ b
        elif op is Opcode.SLL:
            v = a << (b & 63)
        elif op is Opcode.SRL:
            v = a >> (b & 63)
        else:  # SLT
            v = 1 if to_signed(a) < to_signed(b) else 0
        self.regs.write_int(instr.rd, self._alu(FUKind.INT_ALU, v))
        return self._entry(instr)

    def _h_mul(self, instr: Instruction) -> TraceEntry:
        v = self.regs.ints[instr.rs1] * self.regs.ints[instr.rs2]
        self.regs.write_int(instr.rd, self._alu(FUKind.INT_MUL, v))
        return self._entry(instr)

    def _h_div(self, instr: Instruction) -> TraceEntry:
        a = to_signed(self.regs.ints[instr.rs1])
        b = to_signed(self.regs.ints[instr.rs2])
        if instr.op is Opcode.DIV:
            if b == 0:
                v = -1
            else:
                v = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    v = -v
        else:  # REM
            if b == 0:
                v = a
            else:
                v = abs(a) % abs(b)
                if a < 0:
                    v = -v
        self.regs.write_int(instr.rd, self._alu(FUKind.INT_DIV, v))
        return self._entry(instr)

    def _h_imm(self, instr: Instruction) -> TraceEntry:
        a = self.regs.ints[instr.rs1]
        op = instr.op
        imm = instr.imm
        if op is Opcode.ADDI:
            v = a + imm
        elif op is Opcode.ANDI:
            v = a & (imm & _MASK64)
        elif op is Opcode.ORI:
            v = a | (imm & _MASK64)
        elif op is Opcode.XORI:
            v = a ^ (imm & _MASK64)
        elif op is Opcode.SLLI:
            v = a << (imm & 63)
        else:  # SRLI
            v = a >> (imm & 63)
        self.regs.write_int(instr.rd, self._alu(FUKind.INT_ALU, v))
        return self._entry(instr)

    def _h_lui(self, instr: Instruction) -> TraceEntry:
        self.regs.write_int(instr.rd, self._alu(FUKind.INT_ALU, instr.imm))
        return self._entry(instr)

    def _h_mov(self, instr: Instruction) -> TraceEntry:
        self.regs.write_int(
            instr.rd, self._alu(FUKind.INT_ALU, self.regs.ints[instr.rs1])
        )
        return self._entry(instr)

    def _h_fp3(self, instr: Instruction) -> TraceEntry:
        a = self.regs.fps[instr.rs1]
        b = self.regs.fps[instr.rs2]
        op = instr.op
        if op is Opcode.FADD:
            v = a + b
        elif op is Opcode.FSUB:
            v = a - b
        elif op is Opcode.FMUL:
            v = a * b
        elif op is Opcode.FMIN:
            v = min(a, b)
        else:  # FMAX
            v = max(a, b)
        self.regs.write_fp(instr.rd, self._fpu(FUKind.FP, v))
        return self._entry(instr)

    def _h_fdiv(self, instr: Instruction) -> TraceEntry:
        a = self.regs.fps[instr.rs1]
        if instr.op is Opcode.FDIV:
            b = self.regs.fps[instr.rs2]
            if b == 0.0:
                v = float("inf") if a > 0 else float("-inf") if a < 0 else float("nan")
            else:
                v = a / b
        else:  # FSQRT
            v = a ** 0.5 if a >= 0.0 else float("nan")
        self.regs.write_fp(instr.rd, self._fpu(FUKind.FP_DIV, v))
        return self._entry(instr)

    def _h_fcvt_if(self, instr: Instruction) -> TraceEntry:
        v = float(to_signed(self.regs.ints[instr.rs1]))
        self.regs.write_fp(instr.rd, self._fpu(FUKind.FP, v))
        return self._entry(instr)

    def _h_fcvt_fi(self, instr: Instruction) -> TraceEntry:
        f = self.regs.fps[instr.rs1]
        if f != f:  # NaN
            v = 0
        elif f >= (1 << 63):  # +inf and out-of-range clamp high
            v = (1 << 63) - 1
        elif f < -(1 << 63):  # -inf and out-of-range clamp low
            v = -(1 << 63)
        else:
            v = int(f)
        self.regs.write_int(instr.rd, self._alu(FUKind.FP, v))
        return self._entry(instr)

    def _h_fmov(self, instr: Instruction) -> TraceEntry:
        self.regs.write_fp(
            instr.rd, self._fpu(FUKind.FP, self.regs.fps[instr.rs1])
        )
        return self._entry(instr)

    def _h_ld(self, instr: Instruction) -> TraceEntry:
        addr = self._mem_addr(
            FUKind.LOAD, self.regs.ints[instr.rs1] + instr.imm
        )
        value = self.port.load(addr, instr.size)
        # Loaded data is ECC-protected on its way into the load queue
        # (section IV-C), so it does not pass through the fault surface.
        if instr.size == 8:
            self.regs.write_int(instr.rd, value)
        else:
            self.regs.write_int(instr.rd, value & ((1 << (instr.size * 8)) - 1))
        return self._entry(instr, addr=addr, size=instr.size, loaded=value)

    def _h_st(self, instr: Instruction) -> TraceEntry:
        addr = self._mem_addr(
            FUKind.STORE, self.regs.ints[instr.rs1] + instr.imm
        )
        value = self.regs.ints[instr.rs2]
        self.port.store(addr, instr.size, value)
        return self._entry(instr, addr=addr, size=instr.size,
                           stored=value & ((1 << (instr.size * 8)) - 1))

    def _h_ldg(self, instr: Instruction) -> TraceEntry:
        addr1 = self._mem_addr(FUKind.LOAD, self.regs.ints[instr.rs1])
        addr2 = self._mem_addr(FUKind.LOAD, self.regs.ints[instr.rs2])
        v1 = self.port.load(addr1, 8)
        v2 = self.port.load(addr2, 8)
        self.regs.write_int(instr.rd, v1)
        self.regs.write_int(instr.rd2, v2)
        return self._entry(instr, addr=addr1, addr2=addr2, size=8,
                           loaded=v1, loaded2=v2)

    def _h_sts(self, instr: Instruction) -> TraceEntry:
        addr1 = self._mem_addr(FUKind.STORE, self.regs.ints[instr.rs1])
        addr2 = self._mem_addr(FUKind.STORE, self.regs.ints[instr.rs2])
        value = self.regs.ints[instr.rs3]
        self.port.store(addr1, 8, value)
        self.port.store(addr2, 8, value)
        return self._entry(instr, addr=addr1, addr2=addr2, size=8, stored=value)

    def _h_swp(self, instr: Instruction) -> TraceEntry:
        addr = self._mem_addr(FUKind.LOAD, self.regs.ints[instr.rs1])
        new = self.regs.ints[instr.rs2]
        old = self.port.swap(addr, 8, new)
        self.regs.write_int(instr.rd, old)
        return self._entry(instr, addr=addr, size=8, loaded=old, stored=new)

    def _h_bcopy(self, instr: Instruction) -> TraceEntry:
        words = max(1, min(instr.imm, 32))
        src = self._mem_addr(FUKind.LOAD, self.regs.ints[instr.rs1])
        dst = self._mem_addr(FUKind.STORE, self.regs.ints[instr.rs2])
        values = self.port.bulk_copy(src, dst, words)
        return self._entry(instr, addr=src, addr2=dst, size=8, bulk=values)

    def _h_sc(self, instr: Instruction) -> TraceEntry:
        addr = self._mem_addr(FUKind.STORE, self.regs.ints[instr.rs1])
        success = self.nonrep.sc_success() & 1
        stored = None
        if success:
            stored = self.regs.ints[instr.rs2]
            self.port.store(addr, 8, stored)
        self.regs.write_int(instr.rd, success)
        return self._entry(instr, addr=addr, size=8, stored=stored,
                           nonrep=success)

    def _h_rdrand(self, instr: Instruction) -> TraceEntry:
        v = self.nonrep.rdrand()
        self.regs.write_int(instr.rd, v)
        return self._entry(instr, nonrep=v)

    def _h_rdtime(self, instr: Instruction) -> TraceEntry:
        v = self.nonrep.rdtime(self.committed)
        self.regs.write_int(instr.rd, v)
        return self._entry(instr, nonrep=v)

    def _h_sysrd(self, instr: Instruction) -> TraceEntry:
        v = self.nonrep.sysrd()
        self.regs.write_int(instr.rd, v)
        return self._entry(instr, nonrep=v)

    def _h_branch(self, instr: Instruction) -> TraceEntry:
        a = to_signed(self.regs.ints[instr.rs1])
        b = to_signed(self.regs.ints[instr.rs2])
        op = instr.op
        if op is Opcode.BEQ:
            taken = a == b
        elif op is Opcode.BNE:
            taken = a != b
        elif op is Opcode.BLT:
            taken = a < b
        else:  # BGE
            taken = a >= b
        # The branch ALU computes the condition; a fault can flip it.
        cond = self._alu(FUKind.BRANCH, 1 if taken else 0) & 1
        taken = bool(cond)
        return self._entry(instr, taken=taken,
                           next_pc=instr.target if taken else self.pc + 1)

    def _h_jmp(self, instr: Instruction) -> TraceEntry:
        return self._entry(instr, taken=True, next_pc=instr.target)

    def _h_jalr(self, instr: Instruction) -> TraceEntry:
        target = self._alu(FUKind.BRANCH, self.regs.ints[instr.rs1])
        self.regs.write_int(instr.rd, self.pc + 1)
        if not 0 <= target < len(self.program.instructions):
            raise ControlFlowEscape(
                f"jalr to {target} at pc={self.pc} "
                f"(program has {len(self.program.instructions)} instructions)"
            )
        return self._entry(instr, taken=True, next_pc=target)

    def _h_nop(self, instr: Instruction) -> TraceEntry:
        return self._entry(instr)

    def _h_halt(self, instr: Instruction) -> TraceEntry:
        self.halted = True
        return self._entry(instr, next_pc=self.pc)


_HANDLERS = {
    Opcode.ADD: FunctionalCore._h_int3,
    Opcode.SUB: FunctionalCore._h_int3,
    Opcode.AND: FunctionalCore._h_int3,
    Opcode.OR: FunctionalCore._h_int3,
    Opcode.XOR: FunctionalCore._h_int3,
    Opcode.SLL: FunctionalCore._h_int3,
    Opcode.SRL: FunctionalCore._h_int3,
    Opcode.SLT: FunctionalCore._h_int3,
    Opcode.MUL: FunctionalCore._h_mul,
    Opcode.DIV: FunctionalCore._h_div,
    Opcode.REM: FunctionalCore._h_div,
    Opcode.ADDI: FunctionalCore._h_imm,
    Opcode.ANDI: FunctionalCore._h_imm,
    Opcode.ORI: FunctionalCore._h_imm,
    Opcode.XORI: FunctionalCore._h_imm,
    Opcode.SLLI: FunctionalCore._h_imm,
    Opcode.SRLI: FunctionalCore._h_imm,
    Opcode.LUI: FunctionalCore._h_lui,
    Opcode.MOV: FunctionalCore._h_mov,
    Opcode.FADD: FunctionalCore._h_fp3,
    Opcode.FSUB: FunctionalCore._h_fp3,
    Opcode.FMUL: FunctionalCore._h_fp3,
    Opcode.FMIN: FunctionalCore._h_fp3,
    Opcode.FMAX: FunctionalCore._h_fp3,
    Opcode.FDIV: FunctionalCore._h_fdiv,
    Opcode.FSQRT: FunctionalCore._h_fdiv,
    Opcode.FCVTIF: FunctionalCore._h_fcvt_if,
    Opcode.FCVTFI: FunctionalCore._h_fcvt_fi,
    Opcode.FMOV: FunctionalCore._h_fmov,
    Opcode.LD: FunctionalCore._h_ld,
    Opcode.ST: FunctionalCore._h_st,
    Opcode.LDG: FunctionalCore._h_ldg,
    Opcode.STS: FunctionalCore._h_sts,
    Opcode.SWP: FunctionalCore._h_swp,
    Opcode.BCOPY: FunctionalCore._h_bcopy,
    Opcode.SC: FunctionalCore._h_sc,
    Opcode.RDRAND: FunctionalCore._h_rdrand,
    Opcode.RDTIME: FunctionalCore._h_rdtime,
    Opcode.SYSRD: FunctionalCore._h_sysrd,
    Opcode.BEQ: FunctionalCore._h_branch,
    Opcode.BNE: FunctionalCore._h_branch,
    Opcode.BLT: FunctionalCore._h_branch,
    Opcode.BGE: FunctionalCore._h_branch,
    Opcode.JMP: FunctionalCore._h_jmp,
    Opcode.JALR: FunctionalCore._h_jalr,
    Opcode.NOP: FunctionalCore._h_nop,
    Opcode.HALT: FunctionalCore._h_halt,
}
